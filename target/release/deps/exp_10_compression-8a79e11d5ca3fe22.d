/root/repo/target/release/deps/exp_10_compression-8a79e11d5ca3fe22.d: crates/core/src/bin/exp-10-compression.rs

/root/repo/target/release/deps/exp_10_compression-8a79e11d5ca3fe22: crates/core/src/bin/exp-10-compression.rs

crates/core/src/bin/exp-10-compression.rs:
