/root/repo/target/release/deps/exp_9_mdsurrogate-e755f98e1c422182.d: crates/core/src/bin/exp-9-mdsurrogate.rs

/root/repo/target/release/deps/exp_9_mdsurrogate-e755f98e1c422182: crates/core/src/bin/exp-9-mdsurrogate.rs

crates/core/src/bin/exp-9-mdsurrogate.rs:
