/root/repo/target/release/deps/parking_lot-990d455edb2628f4.d: /root/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-990d455edb2628f4.rlib: /root/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-990d455edb2628f4.rmeta: /root/shims/parking_lot/src/lib.rs

/root/shims/parking_lot/src/lib.rs:
