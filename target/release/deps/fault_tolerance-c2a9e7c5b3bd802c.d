/root/repo/target/release/deps/fault_tolerance-c2a9e7c5b3bd802c.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-c2a9e7c5b3bd802c: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
