/root/repo/target/release/deps/int8_fused-cfdedd16787a7ca0.d: tests/int8_fused.rs

/root/repo/target/release/deps/int8_fused-cfdedd16787a7ca0: tests/int8_fused.rs

tests/int8_fused.rs:
