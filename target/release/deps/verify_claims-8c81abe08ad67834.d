/root/repo/target/release/deps/verify_claims-8c81abe08ad67834.d: crates/core/src/bin/verify-claims.rs

/root/repo/target/release/deps/verify_claims-8c81abe08ad67834: crates/core/src/bin/verify-claims.rs

crates/core/src/bin/verify-claims.rs:
