/root/repo/target/release/deps/exp_2_scaling-9c66a1fe0ee8dc58.d: crates/core/src/bin/exp-2-scaling.rs

/root/repo/target/release/deps/exp_2_scaling-9c66a1fe0ee8dc58: crates/core/src/bin/exp-2-scaling.rs

crates/core/src/bin/exp-2-scaling.rs:
