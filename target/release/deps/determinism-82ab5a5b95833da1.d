/root/repo/target/release/deps/determinism-82ab5a5b95833da1.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-82ab5a5b95833da1: tests/determinism.rs

tests/determinism.rs:
