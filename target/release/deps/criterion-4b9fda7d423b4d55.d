/root/repo/target/release/deps/criterion-4b9fda7d423b4d55.d: /root/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-4b9fda7d423b4d55.rlib: /root/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-4b9fda7d423b4d55.rmeta: /root/shims/criterion/src/lib.rs

/root/shims/criterion/src/lib.rs:
