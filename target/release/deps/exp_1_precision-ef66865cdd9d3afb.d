/root/repo/target/release/deps/exp_1_precision-ef66865cdd9d3afb.d: crates/core/src/bin/exp-1-precision.rs

/root/repo/target/release/deps/exp_1_precision-ef66865cdd9d3afb: crates/core/src/bin/exp-1-precision.rs

crates/core/src/bin/exp-1-precision.rs:
