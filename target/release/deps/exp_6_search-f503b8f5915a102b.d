/root/repo/target/release/deps/exp_6_search-f503b8f5915a102b.d: crates/core/src/bin/exp-6-search.rs

/root/repo/target/release/deps/exp_6_search-f503b8f5915a102b: crates/core/src/bin/exp-6-search.rs

crates/core/src/bin/exp-6-search.rs:
