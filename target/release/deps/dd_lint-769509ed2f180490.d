/root/repo/target/release/deps/dd_lint-769509ed2f180490.d: crates/lint/src/main.rs

/root/repo/target/release/deps/dd_lint-769509ed2f180490: crates/lint/src/main.rs

crates/lint/src/main.rs:
