/root/repo/target/release/deps/tenancy-07bd0c453d2e8e4e.d: tests/tenancy.rs

/root/repo/target/release/deps/tenancy-07bd0c453d2e8e4e: tests/tenancy.rs

tests/tenancy.rs:
