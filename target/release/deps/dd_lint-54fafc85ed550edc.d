/root/repo/target/release/deps/dd_lint-54fafc85ed550edc.d: crates/lint/src/main.rs

/root/repo/target/release/deps/dd_lint-54fafc85ed550edc: crates/lint/src/main.rs

crates/lint/src/main.rs:
