/root/repo/target/release/deps/dd_lint-35d8b1d455491acd.d: crates/lint/src/lib.rs crates/lint/src/ctx.rs crates/lint/src/flow.rs crates/lint/src/graph.rs crates/lint/src/ir.rs crates/lint/src/lex.rs crates/lint/src/rules.rs

/root/repo/target/release/deps/libdd_lint-35d8b1d455491acd.rlib: crates/lint/src/lib.rs crates/lint/src/ctx.rs crates/lint/src/flow.rs crates/lint/src/graph.rs crates/lint/src/ir.rs crates/lint/src/lex.rs crates/lint/src/rules.rs

/root/repo/target/release/deps/libdd_lint-35d8b1d455491acd.rmeta: crates/lint/src/lib.rs crates/lint/src/ctx.rs crates/lint/src/flow.rs crates/lint/src/graph.rs crates/lint/src/ir.rs crates/lint/src/lex.rs crates/lint/src/rules.rs

crates/lint/src/lib.rs:
crates/lint/src/ctx.rs:
crates/lint/src/flow.rs:
crates/lint/src/graph.rs:
crates/lint/src/ir.rs:
crates/lint/src/lex.rs:
crates/lint/src/rules.rs:
