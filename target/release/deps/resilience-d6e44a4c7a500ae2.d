/root/repo/target/release/deps/resilience-d6e44a4c7a500ae2.d: tests/resilience.rs

/root/repo/target/release/deps/resilience-d6e44a4c7a500ae2: tests/resilience.rs

tests/resilience.rs:
