/root/repo/target/release/deps/dd_tensor-75730a2c2526d61f.d: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/libdd_tensor-75730a2c2526d61f.rlib: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/libdd_tensor-75730a2c2526d61f.rmeta: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/kernel.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pack.rs:
crates/tensor/src/precision.rs:
crates/tensor/src/rng.rs:
