/root/repo/target/release/deps/exp_profile-3c6816801aadccfd.d: crates/core/src/bin/exp-profile.rs

/root/repo/target/release/deps/exp_profile-3c6816801aadccfd: crates/core/src/bin/exp-profile.rs

crates/core/src/bin/exp-profile.rs:
