/root/repo/target/release/deps/exp_13_serving-07bcd4cd05497611.d: crates/core/src/bin/exp-13-serving.rs

/root/repo/target/release/deps/exp_13_serving-07bcd4cd05497611: crates/core/src/bin/exp-13-serving.rs

crates/core/src/bin/exp-13-serving.rs:
