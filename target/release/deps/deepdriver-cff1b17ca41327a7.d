/root/repo/target/release/deps/deepdriver-cff1b17ca41327a7.d: src/lib.rs

/root/repo/target/release/deps/deepdriver-cff1b17ca41327a7: src/lib.rs

src/lib.rs:
