/root/repo/target/release/deps/search_integration-66a6e688419da00f.d: tests/search_integration.rs

/root/repo/target/release/deps/search_integration-66a6e688419da00f: tests/search_integration.rs

tests/search_integration.rs:
