/root/repo/target/release/deps/exp_7_hybrid-0bcee56367b04ce1.d: crates/core/src/bin/exp-7-hybrid.rs

/root/repo/target/release/deps/exp_7_hybrid-0bcee56367b04ce1: crates/core/src/bin/exp-7-hybrid.rs

crates/core/src/bin/exp-7-hybrid.rs:
