/root/repo/target/release/deps/serde_json-f81275a83dc034ff.d: /root/shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-f81275a83dc034ff.rlib: /root/shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-f81275a83dc034ff.rmeta: /root/shims/serde_json/src/lib.rs

/root/shims/serde_json/src/lib.rs:
