/root/repo/target/release/deps/parallel_consistency-77c1c823d088da23.d: tests/parallel_consistency.rs

/root/repo/target/release/deps/parallel_consistency-77c1c823d088da23: tests/parallel_consistency.rs

tests/parallel_consistency.rs:
