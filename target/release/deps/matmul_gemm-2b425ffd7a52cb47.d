/root/repo/target/release/deps/matmul_gemm-2b425ffd7a52cb47.d: crates/bench/benches/matmul_gemm.rs

/root/repo/target/release/deps/matmul_gemm-2b425ffd7a52cb47: crates/bench/benches/matmul_gemm.rs

crates/bench/benches/matmul_gemm.rs:
