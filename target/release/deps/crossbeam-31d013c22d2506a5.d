/root/repo/target/release/deps/crossbeam-31d013c22d2506a5.d: /root/shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-31d013c22d2506a5.rlib: /root/shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-31d013c22d2506a5.rmeta: /root/shims/crossbeam/src/lib.rs

/root/shims/crossbeam/src/lib.rs:
