/root/repo/target/release/deps/proptest-764a392ec67204ff.d: /root/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-764a392ec67204ff.rlib: /root/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-764a392ec67204ff.rmeta: /root/shims/proptest/src/lib.rs

/root/shims/proptest/src/lib.rs:
