/root/repo/target/release/deps/exp_gemm-050ff2c7b4ff1c90.d: crates/core/src/bin/exp-gemm.rs

/root/repo/target/release/deps/exp_gemm-050ff2c7b4ff1c90: crates/core/src/bin/exp-gemm.rs

crates/core/src/bin/exp-gemm.rs:
