/root/repo/target/release/deps/cli-00a6c28eb888d91f.d: crates/lint/tests/cli.rs

/root/repo/target/release/deps/cli-00a6c28eb888d91f: crates/lint/tests/cli.rs

crates/lint/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_dd-lint=/root/repo/target/release/dd-lint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
