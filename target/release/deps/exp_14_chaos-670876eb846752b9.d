/root/repo/target/release/deps/exp_14_chaos-670876eb846752b9.d: crates/core/src/bin/exp-14-chaos.rs

/root/repo/target/release/deps/exp_14_chaos-670876eb846752b9: crates/core/src/bin/exp-14-chaos.rs

crates/core/src/bin/exp-14-chaos.rs:
