/root/repo/target/release/deps/exp_4_memory-8483a36543a7e8d9.d: crates/core/src/bin/exp-4-memory.rs

/root/repo/target/release/deps/exp_4_memory-8483a36543a7e8d9: crates/core/src/bin/exp-4-memory.rs

crates/core/src/bin/exp-4-memory.rs:
