/root/repo/target/release/deps/dd_serve-c4809ac26ce98afc.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs crates/serve/src/dispatch.rs crates/serve/src/error.rs crates/serve/src/loadgen.rs crates/serve/src/registry.rs crates/serve/src/replica.rs crates/serve/src/resil.rs crates/serve/src/sched.rs crates/serve/src/server.rs crates/serve/src/sim.rs crates/serve/src/telemetry.rs crates/serve/src/tenant.rs

/root/repo/target/release/deps/libdd_serve-c4809ac26ce98afc.rlib: crates/serve/src/lib.rs crates/serve/src/batcher.rs crates/serve/src/dispatch.rs crates/serve/src/error.rs crates/serve/src/loadgen.rs crates/serve/src/registry.rs crates/serve/src/replica.rs crates/serve/src/resil.rs crates/serve/src/sched.rs crates/serve/src/server.rs crates/serve/src/sim.rs crates/serve/src/telemetry.rs crates/serve/src/tenant.rs

/root/repo/target/release/deps/libdd_serve-c4809ac26ce98afc.rmeta: crates/serve/src/lib.rs crates/serve/src/batcher.rs crates/serve/src/dispatch.rs crates/serve/src/error.rs crates/serve/src/loadgen.rs crates/serve/src/registry.rs crates/serve/src/replica.rs crates/serve/src/resil.rs crates/serve/src/sched.rs crates/serve/src/server.rs crates/serve/src/sim.rs crates/serve/src/telemetry.rs crates/serve/src/tenant.rs

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
crates/serve/src/dispatch.rs:
crates/serve/src/error.rs:
crates/serve/src/loadgen.rs:
crates/serve/src/registry.rs:
crates/serve/src/replica.rs:
crates/serve/src/resil.rs:
crates/serve/src/sched.rs:
crates/serve/src/server.rs:
crates/serve/src/sim.rs:
crates/serve/src/telemetry.rs:
crates/serve/src/tenant.rs:
