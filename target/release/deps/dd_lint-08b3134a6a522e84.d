/root/repo/target/release/deps/dd_lint-08b3134a6a522e84.d: crates/lint/src/lib.rs crates/lint/src/ctx.rs crates/lint/src/flow.rs crates/lint/src/graph.rs crates/lint/src/ir.rs crates/lint/src/lex.rs crates/lint/src/rules.rs

/root/repo/target/release/deps/dd_lint-08b3134a6a522e84: crates/lint/src/lib.rs crates/lint/src/ctx.rs crates/lint/src/flow.rs crates/lint/src/graph.rs crates/lint/src/ir.rs crates/lint/src/lex.rs crates/lint/src/rules.rs

crates/lint/src/lib.rs:
crates/lint/src/ctx.rs:
crates/lint/src/flow.rs:
crates/lint/src/graph.rs:
crates/lint/src/ir.rs:
crates/lint/src/lex.rs:
crates/lint/src/rules.rs:
