/root/repo/target/release/deps/exp_5_nvram-8714033e2871826d.d: crates/core/src/bin/exp-5-nvram.rs

/root/repo/target/release/deps/exp_5_nvram-8714033e2871826d: crates/core/src/bin/exp-5-nvram.rs

crates/core/src/bin/exp-5-nvram.rs:
