/root/repo/target/release/deps/exp_15_telemetry-e6597b62c71f17dc.d: crates/core/src/bin/exp-15-telemetry.rs

/root/repo/target/release/deps/exp_15_telemetry-e6597b62c71f17dc: crates/core/src/bin/exp-15-telemetry.rs

crates/core/src/bin/exp-15-telemetry.rs:
