/root/repo/target/release/deps/dd_obs-eaf024af3b64e1e7.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

/root/repo/target/release/deps/libdd_obs-eaf024af3b64e1e7.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

/root/repo/target/release/deps/libdd_obs-eaf024af3b64e1e7.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/phase.rs:
crates/obs/src/registry.rs:
crates/obs/src/telemetry.rs:
crates/obs/src/window.rs:
