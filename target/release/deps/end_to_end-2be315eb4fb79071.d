/root/repo/target/release/deps/end_to_end-2be315eb4fb79071.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-2be315eb4fb79071: tests/end_to_end.rs

tests/end_to_end.rs:
