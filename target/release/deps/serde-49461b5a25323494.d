/root/repo/target/release/deps/serde-49461b5a25323494.d: /root/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-49461b5a25323494.rlib: /root/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-49461b5a25323494.rmeta: /root/shims/serde/src/lib.rs

/root/shims/serde/src/lib.rs:
