/root/repo/target/release/deps/observability-a2cc449c247f53c8.d: tests/observability.rs

/root/repo/target/release/deps/observability-a2cc449c247f53c8: tests/observability.rs

tests/observability.rs:
