/root/repo/target/release/deps/rayon-36a6b051e759a539.d: /root/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-36a6b051e759a539.rlib: /root/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-36a6b051e759a539.rmeta: /root/shims/rayon/src/lib.rs

/root/shims/rayon/src/lib.rs:
