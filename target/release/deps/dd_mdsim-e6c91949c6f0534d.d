/root/repo/target/release/deps/dd_mdsim-e6c91949c6f0534d.d: crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs

/root/repo/target/release/deps/libdd_mdsim-e6c91949c6f0534d.rlib: crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs

/root/repo/target/release/deps/libdd_mdsim-e6c91949c6f0534d.rmeta: crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs

crates/mdsim/src/lib.rs:
crates/mdsim/src/supervisor.rs:
crates/mdsim/src/system.rs:
