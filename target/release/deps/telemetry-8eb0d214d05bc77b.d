/root/repo/target/release/deps/telemetry-8eb0d214d05bc77b.d: tests/telemetry.rs

/root/repo/target/release/deps/telemetry-8eb0d214d05bc77b: tests/telemetry.rs

tests/telemetry.rs:
