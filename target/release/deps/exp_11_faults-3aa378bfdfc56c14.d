/root/repo/target/release/deps/exp_11_faults-3aa378bfdfc56c14.d: crates/core/src/bin/exp-11-faults.rs

/root/repo/target/release/deps/exp_11_faults-3aa378bfdfc56c14: crates/core/src/bin/exp-11-faults.rs

crates/core/src/bin/exp-11-faults.rs:
