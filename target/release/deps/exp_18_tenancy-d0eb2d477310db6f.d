/root/repo/target/release/deps/exp_18_tenancy-d0eb2d477310db6f.d: crates/core/src/bin/exp-18-tenancy.rs

/root/repo/target/release/deps/exp_18_tenancy-d0eb2d477310db6f: crates/core/src/bin/exp-18-tenancy.rs

crates/core/src/bin/exp-18-tenancy.rs:
