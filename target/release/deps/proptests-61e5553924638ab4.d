/root/repo/target/release/deps/proptests-61e5553924638ab4.d: crates/tensor/tests/proptests.rs

/root/repo/target/release/deps/proptests-61e5553924638ab4: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
