/root/repo/target/release/deps/deepdriver-307798a511d8a5e7.d: src/lib.rs

/root/repo/target/release/deps/libdeepdriver-307798a511d8a5e7.rlib: src/lib.rs

/root/repo/target/release/deps/libdeepdriver-307798a511d8a5e7.rmeta: src/lib.rs

src/lib.rs:
