/root/repo/target/release/deps/bytes-1cda6e66cf42c1c6.d: /root/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-1cda6e66cf42c1c6.rlib: /root/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-1cda6e66cf42c1c6.rmeta: /root/shims/bytes/src/lib.rs

/root/shims/bytes/src/lib.rs:
