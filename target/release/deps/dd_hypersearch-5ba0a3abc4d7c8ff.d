/root/repo/target/release/deps/dd_hypersearch-5ba0a3abc4d7c8ff.d: crates/hypersearch/src/lib.rs crates/hypersearch/src/history.rs crates/hypersearch/src/searcher.rs crates/hypersearch/src/searchers/mod.rs crates/hypersearch/src/searchers/evolutionary.rs crates/hypersearch/src/searchers/generative.rs crates/hypersearch/src/searchers/grid.rs crates/hypersearch/src/searchers/lhs.rs crates/hypersearch/src/searchers/random.rs crates/hypersearch/src/searchers/sha.rs crates/hypersearch/src/searchers/surrogate.rs crates/hypersearch/src/space.rs crates/hypersearch/src/testfunc.rs

/root/repo/target/release/deps/libdd_hypersearch-5ba0a3abc4d7c8ff.rlib: crates/hypersearch/src/lib.rs crates/hypersearch/src/history.rs crates/hypersearch/src/searcher.rs crates/hypersearch/src/searchers/mod.rs crates/hypersearch/src/searchers/evolutionary.rs crates/hypersearch/src/searchers/generative.rs crates/hypersearch/src/searchers/grid.rs crates/hypersearch/src/searchers/lhs.rs crates/hypersearch/src/searchers/random.rs crates/hypersearch/src/searchers/sha.rs crates/hypersearch/src/searchers/surrogate.rs crates/hypersearch/src/space.rs crates/hypersearch/src/testfunc.rs

/root/repo/target/release/deps/libdd_hypersearch-5ba0a3abc4d7c8ff.rmeta: crates/hypersearch/src/lib.rs crates/hypersearch/src/history.rs crates/hypersearch/src/searcher.rs crates/hypersearch/src/searchers/mod.rs crates/hypersearch/src/searchers/evolutionary.rs crates/hypersearch/src/searchers/generative.rs crates/hypersearch/src/searchers/grid.rs crates/hypersearch/src/searchers/lhs.rs crates/hypersearch/src/searchers/random.rs crates/hypersearch/src/searchers/sha.rs crates/hypersearch/src/searchers/surrogate.rs crates/hypersearch/src/space.rs crates/hypersearch/src/testfunc.rs

crates/hypersearch/src/lib.rs:
crates/hypersearch/src/history.rs:
crates/hypersearch/src/searcher.rs:
crates/hypersearch/src/searchers/mod.rs:
crates/hypersearch/src/searchers/evolutionary.rs:
crates/hypersearch/src/searchers/generative.rs:
crates/hypersearch/src/searchers/grid.rs:
crates/hypersearch/src/searchers/lhs.rs:
crates/hypersearch/src/searchers/random.rs:
crates/hypersearch/src/searchers/sha.rs:
crates/hypersearch/src/searchers/surrogate.rs:
crates/hypersearch/src/space.rs:
crates/hypersearch/src/testfunc.rs:
