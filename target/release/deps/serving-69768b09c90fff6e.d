/root/repo/target/release/deps/serving-69768b09c90fff6e.d: tests/serving.rs

/root/repo/target/release/deps/serving-69768b09c90fff6e: tests/serving.rs

tests/serving.rs:
