/root/repo/target/release/deps/dd_testkit-422e536a2fc587b2.d: crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs

/root/repo/target/release/deps/libdd_testkit-422e536a2fc587b2.rlib: crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs

/root/repo/target/release/deps/libdd_testkit-422e536a2fc587b2.rmeta: crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs

crates/testkit/src/lib.rs:
crates/testkit/src/determinism.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/gradcheck.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/runner.rs:
