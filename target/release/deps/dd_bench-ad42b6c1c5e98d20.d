/root/repo/target/release/deps/dd_bench-ad42b6c1c5e98d20.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdd_bench-ad42b6c1c5e98d20.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdd_bench-ad42b6c1c5e98d20.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
