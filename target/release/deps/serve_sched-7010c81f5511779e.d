/root/repo/target/release/deps/serve_sched-7010c81f5511779e.d: crates/bench/benches/serve_sched.rs

/root/repo/target/release/deps/serve_sched-7010c81f5511779e: crates/bench/benches/serve_sched.rs

crates/bench/benches/serve_sched.rs:
