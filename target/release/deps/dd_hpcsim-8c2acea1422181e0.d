/root/repo/target/release/deps/dd_hpcsim-8c2acea1422181e0.d: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

/root/repo/target/release/deps/libdd_hpcsim-8c2acea1422181e0.rlib: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

/root/repo/target/release/deps/libdd_hpcsim-8c2acea1422181e0.rmeta: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

crates/hpcsim/src/lib.rs:
crates/hpcsim/src/collectives.rs:
crates/hpcsim/src/fabric.rs:
crates/hpcsim/src/failure.rs:
crates/hpcsim/src/machine.rs:
crates/hpcsim/src/memory.rs:
crates/hpcsim/src/roofline.rs:
crates/hpcsim/src/storage.rs:
crates/hpcsim/src/trace.rs:
crates/hpcsim/src/trainsim.rs:
