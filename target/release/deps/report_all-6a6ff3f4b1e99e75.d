/root/repo/target/release/deps/report_all-6a6ff3f4b1e99e75.d: crates/core/src/bin/report-all.rs

/root/repo/target/release/deps/report_all-6a6ff3f4b1e99e75: crates/core/src/bin/report-all.rs

crates/core/src/bin/report-all.rs:
