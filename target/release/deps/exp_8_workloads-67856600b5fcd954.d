/root/repo/target/release/deps/exp_8_workloads-67856600b5fcd954.d: crates/core/src/bin/exp-8-workloads.rs

/root/repo/target/release/deps/exp_8_workloads-67856600b5fcd954: crates/core/src/bin/exp-8-workloads.rs

crates/core/src/bin/exp-8-workloads.rs:
