/root/repo/target/release/deps/dd_tensor-a974bc7bde62a41c.d: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/dd_tensor-a974bc7bde62a41c: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/kernel.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pack.rs:
crates/tensor/src/precision.rs:
crates/tensor/src/rng.rs:
