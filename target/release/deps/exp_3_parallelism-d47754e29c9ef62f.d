/root/repo/target/release/deps/exp_3_parallelism-d47754e29c9ef62f.d: crates/core/src/bin/exp-3-parallelism.rs

/root/repo/target/release/deps/exp_3_parallelism-d47754e29c9ef62f: crates/core/src/bin/exp-3-parallelism.rs

crates/core/src/bin/exp-3-parallelism.rs:
