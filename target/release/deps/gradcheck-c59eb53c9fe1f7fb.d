/root/repo/target/release/deps/gradcheck-c59eb53c9fe1f7fb.d: tests/gradcheck.rs

/root/repo/target/release/deps/gradcheck-c59eb53c9fe1f7fb: tests/gradcheck.rs

tests/gradcheck.rs:
