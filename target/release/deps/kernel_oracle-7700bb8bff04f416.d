/root/repo/target/release/deps/kernel_oracle-7700bb8bff04f416.d: tests/kernel_oracle.rs

/root/repo/target/release/deps/kernel_oracle-7700bb8bff04f416: tests/kernel_oracle.rs

tests/kernel_oracle.rs:
