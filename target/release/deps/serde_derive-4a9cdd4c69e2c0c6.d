/root/repo/target/release/deps/serde_derive-4a9cdd4c69e2c0c6.d: /root/shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4a9cdd4c69e2c0c6.so: /root/shims/serde_derive/src/lib.rs

/root/shims/serde_derive/src/lib.rs:
