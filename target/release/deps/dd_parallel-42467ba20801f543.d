/root/repo/target/release/deps/dd_parallel-42467ba20801f543.d: crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs

/root/repo/target/release/deps/libdd_parallel-42467ba20801f543.rlib: crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs

/root/repo/target/release/deps/libdd_parallel-42467ba20801f543.rmeta: crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs

crates/parallel/src/lib.rs:
crates/parallel/src/allreduce.rs:
crates/parallel/src/compression.rs:
crates/parallel/src/data_parallel.rs:
crates/parallel/src/fault.rs:
crates/parallel/src/model_parallel.rs:
crates/parallel/src/planner.rs:
