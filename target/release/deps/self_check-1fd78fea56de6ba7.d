/root/repo/target/release/deps/self_check-1fd78fea56de6ba7.d: crates/lint/tests/self_check.rs

/root/repo/target/release/deps/self_check-1fd78fea56de6ba7: crates/lint/tests/self_check.rs

crates/lint/tests/self_check.rs:

# env-dep:CARGO_BIN_EXE_dd-lint=/root/repo/target/release/dd-lint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
