/root/repo/target/release/examples/amr_mechanisms-5f14849039bcf921.d: examples/amr_mechanisms.rs

/root/repo/target/release/examples/amr_mechanisms-5f14849039bcf921: examples/amr_mechanisms.rs

examples/amr_mechanisms.rs:
