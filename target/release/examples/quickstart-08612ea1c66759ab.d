/root/repo/target/release/examples/quickstart-08612ea1c66759ab.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-08612ea1c66759ab: examples/quickstart.rs

examples/quickstart.rs:
