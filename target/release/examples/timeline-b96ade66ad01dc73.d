/root/repo/target/release/examples/timeline-b96ade66ad01dc73.d: examples/timeline.rs

/root/repo/target/release/examples/timeline-b96ade66ad01dc73: examples/timeline.rs

examples/timeline.rs:
