/root/repo/target/release/examples/scaling_study-c4ea4c408d077d8f.d: examples/scaling_study.rs

/root/repo/target/release/examples/scaling_study-c4ea4c408d077d8f: examples/scaling_study.rs

examples/scaling_study.rs:
