/root/repo/target/release/examples/drug_response-b4de800082037e0e.d: examples/drug_response.rs

/root/repo/target/release/examples/drug_response-b4de800082037e0e: examples/drug_response.rs

examples/drug_response.rs:
