/root/repo/target/release/examples/md_supervision-ce265c7a16028ee8.d: examples/md_supervision.rs

/root/repo/target/release/examples/md_supervision-ce265c7a16028ee8: examples/md_supervision.rs

examples/md_supervision.rs:
