/root/repo/target/release/examples/hyperparameter_search-d06b5ecc065255c3.d: examples/hyperparameter_search.rs

/root/repo/target/release/examples/hyperparameter_search-d06b5ecc065255c3: examples/hyperparameter_search.rs

examples/hyperparameter_search.rs:
