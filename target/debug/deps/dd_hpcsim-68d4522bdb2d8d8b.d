/root/repo/target/debug/deps/dd_hpcsim-68d4522bdb2d8d8b.d: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

/root/repo/target/debug/deps/dd_hpcsim-68d4522bdb2d8d8b: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

crates/hpcsim/src/lib.rs:
crates/hpcsim/src/collectives.rs:
crates/hpcsim/src/fabric.rs:
crates/hpcsim/src/failure.rs:
crates/hpcsim/src/machine.rs:
crates/hpcsim/src/memory.rs:
crates/hpcsim/src/roofline.rs:
crates/hpcsim/src/storage.rs:
crates/hpcsim/src/trace.rs:
crates/hpcsim/src/trainsim.rs:
