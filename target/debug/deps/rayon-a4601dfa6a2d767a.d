/root/repo/target/debug/deps/rayon-a4601dfa6a2d767a.d: /root/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-a4601dfa6a2d767a.rlib: /root/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-a4601dfa6a2d767a.rmeta: /root/shims/rayon/src/lib.rs

/root/shims/rayon/src/lib.rs:
