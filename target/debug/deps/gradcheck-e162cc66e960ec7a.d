/root/repo/target/debug/deps/gradcheck-e162cc66e960ec7a.d: tests/gradcheck.rs

/root/repo/target/debug/deps/gradcheck-e162cc66e960ec7a: tests/gradcheck.rs

tests/gradcheck.rs:
