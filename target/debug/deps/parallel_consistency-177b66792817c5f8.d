/root/repo/target/debug/deps/parallel_consistency-177b66792817c5f8.d: tests/parallel_consistency.rs

/root/repo/target/debug/deps/parallel_consistency-177b66792817c5f8: tests/parallel_consistency.rs

tests/parallel_consistency.rs:
