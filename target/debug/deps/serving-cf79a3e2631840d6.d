/root/repo/target/debug/deps/serving-cf79a3e2631840d6.d: /root/repo/clippy.toml tests/serving.rs Cargo.toml

/root/repo/target/debug/deps/libserving-cf79a3e2631840d6.rmeta: /root/repo/clippy.toml tests/serving.rs Cargo.toml

/root/repo/clippy.toml:
tests/serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
