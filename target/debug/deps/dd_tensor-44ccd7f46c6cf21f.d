/root/repo/target/debug/deps/dd_tensor-44ccd7f46c6cf21f.d: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libdd_tensor-44ccd7f46c6cf21f.rmeta: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/precision.rs:
crates/tensor/src/rng.rs:
