/root/repo/target/debug/deps/parallel_consistency-53e46cd096e7ad71.d: /root/repo/clippy.toml tests/parallel_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_consistency-53e46cd096e7ad71.rmeta: /root/repo/clippy.toml tests/parallel_consistency.rs Cargo.toml

/root/repo/clippy.toml:
tests/parallel_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
