/root/repo/target/debug/deps/deepdriver-acd9ceba48f5fade.d: src/lib.rs

/root/repo/target/debug/deps/deepdriver-acd9ceba48f5fade: src/lib.rs

src/lib.rs:
