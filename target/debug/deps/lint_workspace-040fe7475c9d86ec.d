/root/repo/target/debug/deps/lint_workspace-040fe7475c9d86ec.d: /root/repo/clippy.toml crates/lint/benches/lint_workspace.rs Cargo.toml

/root/repo/target/debug/deps/liblint_workspace-040fe7475c9d86ec.rmeta: /root/repo/clippy.toml crates/lint/benches/lint_workspace.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/benches/lint_workspace.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
