/root/repo/target/debug/deps/criterion-6b51faa0e4dba129.d: /root/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6b51faa0e4dba129.rmeta: /root/shims/criterion/src/lib.rs

/root/shims/criterion/src/lib.rs:
