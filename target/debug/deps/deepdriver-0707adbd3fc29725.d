/root/repo/target/debug/deps/deepdriver-0707adbd3fc29725.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdeepdriver-0707adbd3fc29725.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
