/root/repo/target/debug/deps/serve_sched-184ae81e4fc9ef47.d: /root/repo/clippy.toml crates/bench/benches/serve_sched.rs Cargo.toml

/root/repo/target/debug/deps/libserve_sched-184ae81e4fc9ef47.rmeta: /root/repo/clippy.toml crates/bench/benches/serve_sched.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/serve_sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
