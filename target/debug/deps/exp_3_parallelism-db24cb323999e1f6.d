/root/repo/target/debug/deps/exp_3_parallelism-db24cb323999e1f6.d: /root/repo/clippy.toml crates/core/src/bin/exp-3-parallelism.rs Cargo.toml

/root/repo/target/debug/deps/libexp_3_parallelism-db24cb323999e1f6.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-3-parallelism.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-3-parallelism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
