/root/repo/target/debug/deps/dd_bench-95e87ae9033d6ee4.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdd_bench-95e87ae9033d6ee4.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
