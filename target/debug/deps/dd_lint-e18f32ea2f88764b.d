/root/repo/target/debug/deps/dd_lint-e18f32ea2f88764b.d: /root/repo/clippy.toml crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdd_lint-e18f32ea2f88764b.rmeta: /root/repo/clippy.toml crates/lint/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
