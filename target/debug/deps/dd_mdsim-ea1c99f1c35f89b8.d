/root/repo/target/debug/deps/dd_mdsim-ea1c99f1c35f89b8.d: crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs

/root/repo/target/debug/deps/libdd_mdsim-ea1c99f1c35f89b8.rmeta: crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs

crates/mdsim/src/lib.rs:
crates/mdsim/src/supervisor.rs:
crates/mdsim/src/system.rs:
