/root/repo/target/debug/deps/allreduce-70d94a8e1a691760.d: /root/repo/clippy.toml crates/bench/benches/allreduce.rs Cargo.toml

/root/repo/target/debug/deps/liballreduce-70d94a8e1a691760.rmeta: /root/repo/clippy.toml crates/bench/benches/allreduce.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/allreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
