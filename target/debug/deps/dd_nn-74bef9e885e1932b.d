/root/repo/target/debug/deps/dd_nn-74bef9e885e1932b.d: /root/repo/clippy.toml crates/nn/src/lib.rs crates/nn/src/checkpoint.rs crates/nn/src/init.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/layernorm.rs crates/nn/src/layers/norm.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/spec.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libdd_nn-74bef9e885e1932b.rmeta: /root/repo/clippy.toml crates/nn/src/lib.rs crates/nn/src/checkpoint.rs crates/nn/src/init.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/layernorm.rs crates/nn/src/layers/norm.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/spec.rs crates/nn/src/train.rs Cargo.toml

/root/repo/clippy.toml:
crates/nn/src/lib.rs:
crates/nn/src/checkpoint.rs:
crates/nn/src/init.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/conv.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/dropout.rs:
crates/nn/src/layers/layernorm.rs:
crates/nn/src/layers/norm.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/layers/residual.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/spec.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
