/root/repo/target/debug/deps/dd_datagen-43225dcfb88c5bde.d: /root/repo/clippy.toml crates/datagen/src/lib.rs crates/datagen/src/amr.rs crates/datagen/src/baselines.rs crates/datagen/src/compound.rs crates/datagen/src/dataset.rs crates/datagen/src/drug_response.rs crates/datagen/src/expression.rs crates/datagen/src/records.rs crates/datagen/src/tumor.rs Cargo.toml

/root/repo/target/debug/deps/libdd_datagen-43225dcfb88c5bde.rmeta: /root/repo/clippy.toml crates/datagen/src/lib.rs crates/datagen/src/amr.rs crates/datagen/src/baselines.rs crates/datagen/src/compound.rs crates/datagen/src/dataset.rs crates/datagen/src/drug_response.rs crates/datagen/src/expression.rs crates/datagen/src/records.rs crates/datagen/src/tumor.rs Cargo.toml

/root/repo/clippy.toml:
crates/datagen/src/lib.rs:
crates/datagen/src/amr.rs:
crates/datagen/src/baselines.rs:
crates/datagen/src/compound.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/drug_response.rs:
crates/datagen/src/expression.rs:
crates/datagen/src/records.rs:
crates/datagen/src/tumor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
