/root/repo/target/debug/deps/fault_tolerance-da3dd936a2e59462.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-da3dd936a2e59462: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
