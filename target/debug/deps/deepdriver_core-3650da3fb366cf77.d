/root/repo/target/debug/deps/deepdriver_core-3650da3fb366cf77.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/e10_compression.rs crates/core/src/experiments/e11_faults.rs crates/core/src/experiments/e12_gemm.rs crates/core/src/experiments/e12_profile.rs crates/core/src/experiments/e13_serving.rs crates/core/src/experiments/e14_chaos.rs crates/core/src/experiments/e15_telemetry.rs crates/core/src/experiments/e18_tenancy.rs crates/core/src/experiments/e1_precision.rs crates/core/src/experiments/e2_scaling.rs crates/core/src/experiments/e3_parallelism.rs crates/core/src/experiments/e4_memory.rs crates/core/src/experiments/e5_nvram.rs crates/core/src/experiments/e6_search.rs crates/core/src/experiments/e7_hybrid.rs crates/core/src/experiments/e8_workloads.rs crates/core/src/experiments/e9_mdsurrogate.rs crates/core/src/report.rs crates/core/src/workloads/mod.rs crates/core/src/workloads/w1_tumor.rs crates/core/src/workloads/w2_drug_response.rs crates/core/src/workloads/w3_compound.rs crates/core/src/workloads/w4_autoencoder.rs crates/core/src/workloads/w5_records.rs crates/core/src/workloads/w6_amr.rs crates/core/src/workloads/w7_mdsurrogate.rs Cargo.toml

/root/repo/target/debug/deps/libdeepdriver_core-3650da3fb366cf77.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/e10_compression.rs crates/core/src/experiments/e11_faults.rs crates/core/src/experiments/e12_gemm.rs crates/core/src/experiments/e12_profile.rs crates/core/src/experiments/e13_serving.rs crates/core/src/experiments/e14_chaos.rs crates/core/src/experiments/e15_telemetry.rs crates/core/src/experiments/e18_tenancy.rs crates/core/src/experiments/e1_precision.rs crates/core/src/experiments/e2_scaling.rs crates/core/src/experiments/e3_parallelism.rs crates/core/src/experiments/e4_memory.rs crates/core/src/experiments/e5_nvram.rs crates/core/src/experiments/e6_search.rs crates/core/src/experiments/e7_hybrid.rs crates/core/src/experiments/e8_workloads.rs crates/core/src/experiments/e9_mdsurrogate.rs crates/core/src/report.rs crates/core/src/workloads/mod.rs crates/core/src/workloads/w1_tumor.rs crates/core/src/workloads/w2_drug_response.rs crates/core/src/workloads/w3_compound.rs crates/core/src/workloads/w4_autoencoder.rs crates/core/src/workloads/w5_records.rs crates/core/src/workloads/w6_amr.rs crates/core/src/workloads/w7_mdsurrogate.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/e10_compression.rs:
crates/core/src/experiments/e11_faults.rs:
crates/core/src/experiments/e12_gemm.rs:
crates/core/src/experiments/e12_profile.rs:
crates/core/src/experiments/e13_serving.rs:
crates/core/src/experiments/e14_chaos.rs:
crates/core/src/experiments/e15_telemetry.rs:
crates/core/src/experiments/e18_tenancy.rs:
crates/core/src/experiments/e1_precision.rs:
crates/core/src/experiments/e2_scaling.rs:
crates/core/src/experiments/e3_parallelism.rs:
crates/core/src/experiments/e4_memory.rs:
crates/core/src/experiments/e5_nvram.rs:
crates/core/src/experiments/e6_search.rs:
crates/core/src/experiments/e7_hybrid.rs:
crates/core/src/experiments/e8_workloads.rs:
crates/core/src/experiments/e9_mdsurrogate.rs:
crates/core/src/report.rs:
crates/core/src/workloads/mod.rs:
crates/core/src/workloads/w1_tumor.rs:
crates/core/src/workloads/w2_drug_response.rs:
crates/core/src/workloads/w3_compound.rs:
crates/core/src/workloads/w4_autoencoder.rs:
crates/core/src/workloads/w5_records.rs:
crates/core/src/workloads/w6_amr.rs:
crates/core/src/workloads/w7_mdsurrogate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
