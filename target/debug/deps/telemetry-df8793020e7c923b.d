/root/repo/target/debug/deps/telemetry-df8793020e7c923b.d: /root/repo/clippy.toml tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-df8793020e7c923b.rmeta: /root/repo/clippy.toml tests/telemetry.rs Cargo.toml

/root/repo/clippy.toml:
tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
