/root/repo/target/debug/deps/end_to_end-039f4f01d8aaf4e2.d: /root/repo/clippy.toml tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-039f4f01d8aaf4e2.rmeta: /root/repo/clippy.toml tests/end_to_end.rs Cargo.toml

/root/repo/clippy.toml:
tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
