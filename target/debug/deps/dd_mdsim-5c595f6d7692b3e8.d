/root/repo/target/debug/deps/dd_mdsim-5c595f6d7692b3e8.d: crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs

/root/repo/target/debug/deps/libdd_mdsim-5c595f6d7692b3e8.rlib: crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs

/root/repo/target/debug/deps/libdd_mdsim-5c595f6d7692b3e8.rmeta: crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs

crates/mdsim/src/lib.rs:
crates/mdsim/src/supervisor.rs:
crates/mdsim/src/system.rs:
