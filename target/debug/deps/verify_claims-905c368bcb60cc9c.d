/root/repo/target/debug/deps/verify_claims-905c368bcb60cc9c.d: /root/repo/clippy.toml crates/core/src/bin/verify-claims.rs Cargo.toml

/root/repo/target/debug/deps/libverify_claims-905c368bcb60cc9c.rmeta: /root/repo/clippy.toml crates/core/src/bin/verify-claims.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/verify-claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
