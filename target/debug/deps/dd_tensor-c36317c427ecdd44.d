/root/repo/target/debug/deps/dd_tensor-c36317c427ecdd44.d: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/dd_tensor-c36317c427ecdd44: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/kernel.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pack.rs:
crates/tensor/src/precision.rs:
crates/tensor/src/rng.rs:
