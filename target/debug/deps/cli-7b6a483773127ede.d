/root/repo/target/debug/deps/cli-7b6a483773127ede.d: /root/repo/clippy.toml crates/lint/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-7b6a483773127ede.rmeta: /root/repo/clippy.toml crates/lint/tests/cli.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_dd-lint=placeholder:dd-lint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
