/root/repo/target/debug/deps/dd_hpcsim-ee2ef660ee5d7695.d: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

/root/repo/target/debug/deps/libdd_hpcsim-ee2ef660ee5d7695.rlib: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

/root/repo/target/debug/deps/libdd_hpcsim-ee2ef660ee5d7695.rmeta: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

crates/hpcsim/src/lib.rs:
crates/hpcsim/src/collectives.rs:
crates/hpcsim/src/fabric.rs:
crates/hpcsim/src/failure.rs:
crates/hpcsim/src/machine.rs:
crates/hpcsim/src/memory.rs:
crates/hpcsim/src/roofline.rs:
crates/hpcsim/src/storage.rs:
crates/hpcsim/src/trace.rs:
crates/hpcsim/src/trainsim.rs:
