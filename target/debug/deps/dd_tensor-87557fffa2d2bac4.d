/root/repo/target/debug/deps/dd_tensor-87557fffa2d2bac4.d: /root/repo/clippy.toml crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libdd_tensor-87557fffa2d2bac4.rmeta: /root/repo/clippy.toml crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs Cargo.toml

/root/repo/clippy.toml:
crates/tensor/src/lib.rs:
crates/tensor/src/kernel.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pack.rs:
crates/tensor/src/precision.rs:
crates/tensor/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
