/root/repo/target/debug/deps/telemetry-8c93f13fbbc45097.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-8c93f13fbbc45097: tests/telemetry.rs

tests/telemetry.rs:
