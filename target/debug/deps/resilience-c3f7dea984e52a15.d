/root/repo/target/debug/deps/resilience-c3f7dea984e52a15.d: /root/repo/clippy.toml tests/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-c3f7dea984e52a15.rmeta: /root/repo/clippy.toml tests/resilience.rs Cargo.toml

/root/repo/clippy.toml:
tests/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
