/root/repo/target/debug/deps/dd_testkit-b6e8d13f948049b9.d: crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs

/root/repo/target/debug/deps/libdd_testkit-b6e8d13f948049b9.rlib: crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs

/root/repo/target/debug/deps/libdd_testkit-b6e8d13f948049b9.rmeta: crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs

crates/testkit/src/lib.rs:
crates/testkit/src/determinism.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/gradcheck.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/runner.rs:
