/root/repo/target/debug/deps/proptests-8bf03c73576e9774.d: /root/repo/clippy.toml crates/parallel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8bf03c73576e9774.rmeta: /root/repo/clippy.toml crates/parallel/tests/proptests.rs Cargo.toml

/root/repo/clippy.toml:
crates/parallel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
