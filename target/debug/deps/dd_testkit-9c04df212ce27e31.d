/root/repo/target/debug/deps/dd_testkit-9c04df212ce27e31.d: /root/repo/clippy.toml crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libdd_testkit-9c04df212ce27e31.rmeta: /root/repo/clippy.toml crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs Cargo.toml

/root/repo/clippy.toml:
crates/testkit/src/lib.rs:
crates/testkit/src/determinism.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/gradcheck.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
