/root/repo/target/debug/deps/serde_derive-38defecd218d37d7.d: /root/shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-38defecd218d37d7.so: /root/shims/serde_derive/src/lib.rs

/root/shims/serde_derive/src/lib.rs:
