/root/repo/target/debug/deps/proptests-a44a2390fe35de8a.d: /root/repo/clippy.toml crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a44a2390fe35de8a.rmeta: /root/repo/clippy.toml crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/clippy.toml:
crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
