/root/repo/target/debug/deps/search_integration-a456a4307ae82d90.d: /root/repo/clippy.toml tests/search_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_integration-a456a4307ae82d90.rmeta: /root/repo/clippy.toml tests/search_integration.rs Cargo.toml

/root/repo/clippy.toml:
tests/search_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
