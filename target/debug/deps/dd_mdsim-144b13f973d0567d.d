/root/repo/target/debug/deps/dd_mdsim-144b13f973d0567d.d: /root/repo/clippy.toml crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libdd_mdsim-144b13f973d0567d.rmeta: /root/repo/clippy.toml crates/mdsim/src/lib.rs crates/mdsim/src/supervisor.rs crates/mdsim/src/system.rs Cargo.toml

/root/repo/clippy.toml:
crates/mdsim/src/lib.rs:
crates/mdsim/src/supervisor.rs:
crates/mdsim/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
