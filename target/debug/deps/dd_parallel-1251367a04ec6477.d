/root/repo/target/debug/deps/dd_parallel-1251367a04ec6477.d: crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs

/root/repo/target/debug/deps/libdd_parallel-1251367a04ec6477.rmeta: crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs

crates/parallel/src/lib.rs:
crates/parallel/src/allreduce.rs:
crates/parallel/src/compression.rs:
crates/parallel/src/data_parallel.rs:
crates/parallel/src/fault.rs:
crates/parallel/src/model_parallel.rs:
crates/parallel/src/planner.rs:
