/root/repo/target/debug/deps/end_to_end-6dfb3bd46a8c2416.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6dfb3bd46a8c2416: tests/end_to_end.rs

tests/end_to_end.rs:
