/root/repo/target/debug/deps/proptests-e434bf7db70ec199.d: /root/repo/clippy.toml crates/nn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e434bf7db70ec199.rmeta: /root/repo/clippy.toml crates/nn/tests/proptests.rs Cargo.toml

/root/repo/clippy.toml:
crates/nn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
