/root/repo/target/debug/deps/telemetry_hot_path-b90d7e273b9bc9dc.d: /root/repo/clippy.toml crates/bench/benches/telemetry_hot_path.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_hot_path-b90d7e273b9bc9dc.rmeta: /root/repo/clippy.toml crates/bench/benches/telemetry_hot_path.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/telemetry_hot_path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
