/root/repo/target/debug/deps/datagen_throughput-cbd6b37f3a0b5ef6.d: /root/repo/clippy.toml crates/bench/benches/datagen_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libdatagen_throughput-cbd6b37f3a0b5ef6.rmeta: /root/repo/clippy.toml crates/bench/benches/datagen_throughput.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/datagen_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
