/root/repo/target/debug/deps/exp_13_serving-acd2f4ce1df79e8c.d: /root/repo/clippy.toml crates/core/src/bin/exp-13-serving.rs Cargo.toml

/root/repo/target/debug/deps/libexp_13_serving-acd2f4ce1df79e8c.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-13-serving.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-13-serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
