/root/repo/target/debug/deps/bytes-1d8d9b8d052b8154.d: /root/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-1d8d9b8d052b8154.rmeta: /root/shims/bytes/src/lib.rs

/root/shims/bytes/src/lib.rs:
