/root/repo/target/debug/deps/observability-885f3457fd2f40af.d: tests/observability.rs

/root/repo/target/debug/deps/observability-885f3457fd2f40af: tests/observability.rs

tests/observability.rs:
