/root/repo/target/debug/deps/matmul_gemm-874f53a1f6acd9c6.d: /root/repo/clippy.toml crates/bench/benches/matmul_gemm.rs Cargo.toml

/root/repo/target/debug/deps/libmatmul_gemm-874f53a1f6acd9c6.rmeta: /root/repo/clippy.toml crates/bench/benches/matmul_gemm.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/matmul_gemm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
