/root/repo/target/debug/deps/proptest-222b626b6e636ee1.d: /root/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-222b626b6e636ee1.rlib: /root/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-222b626b6e636ee1.rmeta: /root/shims/proptest/src/lib.rs

/root/shims/proptest/src/lib.rs:
