/root/repo/target/debug/deps/search_integration-e1f8f0da611d3336.d: tests/search_integration.rs

/root/repo/target/debug/deps/search_integration-e1f8f0da611d3336: tests/search_integration.rs

tests/search_integration.rs:
