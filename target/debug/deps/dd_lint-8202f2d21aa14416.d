/root/repo/target/debug/deps/dd_lint-8202f2d21aa14416.d: /root/repo/clippy.toml crates/lint/src/lib.rs crates/lint/src/ctx.rs crates/lint/src/flow.rs crates/lint/src/graph.rs crates/lint/src/ir.rs crates/lint/src/lex.rs crates/lint/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/libdd_lint-8202f2d21aa14416.rmeta: /root/repo/clippy.toml crates/lint/src/lib.rs crates/lint/src/ctx.rs crates/lint/src/flow.rs crates/lint/src/graph.rs crates/lint/src/ir.rs crates/lint/src/lex.rs crates/lint/src/rules.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/src/lib.rs:
crates/lint/src/ctx.rs:
crates/lint/src/flow.rs:
crates/lint/src/graph.rs:
crates/lint/src/ir.rs:
crates/lint/src/lex.rs:
crates/lint/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
