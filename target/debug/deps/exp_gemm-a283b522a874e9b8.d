/root/repo/target/debug/deps/exp_gemm-a283b522a874e9b8.d: /root/repo/clippy.toml crates/core/src/bin/exp-gemm.rs Cargo.toml

/root/repo/target/debug/deps/libexp_gemm-a283b522a874e9b8.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-gemm.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-gemm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
