/root/repo/target/debug/deps/rayon-56b6a8e08a8f021f.d: /root/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-56b6a8e08a8f021f.rmeta: /root/shims/rayon/src/lib.rs

/root/shims/rayon/src/lib.rs:
