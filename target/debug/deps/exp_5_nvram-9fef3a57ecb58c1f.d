/root/repo/target/debug/deps/exp_5_nvram-9fef3a57ecb58c1f.d: /root/repo/clippy.toml crates/core/src/bin/exp-5-nvram.rs Cargo.toml

/root/repo/target/debug/deps/libexp_5_nvram-9fef3a57ecb58c1f.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-5-nvram.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-5-nvram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
