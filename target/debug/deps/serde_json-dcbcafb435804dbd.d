/root/repo/target/debug/deps/serde_json-dcbcafb435804dbd.d: /root/shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-dcbcafb435804dbd.rlib: /root/shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-dcbcafb435804dbd.rmeta: /root/shims/serde_json/src/lib.rs

/root/shims/serde_json/src/lib.rs:
