/root/repo/target/debug/deps/dd_datagen-656973a99f351e82.d: crates/datagen/src/lib.rs crates/datagen/src/amr.rs crates/datagen/src/baselines.rs crates/datagen/src/compound.rs crates/datagen/src/dataset.rs crates/datagen/src/drug_response.rs crates/datagen/src/expression.rs crates/datagen/src/records.rs crates/datagen/src/tumor.rs

/root/repo/target/debug/deps/libdd_datagen-656973a99f351e82.rlib: crates/datagen/src/lib.rs crates/datagen/src/amr.rs crates/datagen/src/baselines.rs crates/datagen/src/compound.rs crates/datagen/src/dataset.rs crates/datagen/src/drug_response.rs crates/datagen/src/expression.rs crates/datagen/src/records.rs crates/datagen/src/tumor.rs

/root/repo/target/debug/deps/libdd_datagen-656973a99f351e82.rmeta: crates/datagen/src/lib.rs crates/datagen/src/amr.rs crates/datagen/src/baselines.rs crates/datagen/src/compound.rs crates/datagen/src/dataset.rs crates/datagen/src/drug_response.rs crates/datagen/src/expression.rs crates/datagen/src/records.rs crates/datagen/src/tumor.rs

crates/datagen/src/lib.rs:
crates/datagen/src/amr.rs:
crates/datagen/src/baselines.rs:
crates/datagen/src/compound.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/drug_response.rs:
crates/datagen/src/expression.rs:
crates/datagen/src/records.rs:
crates/datagen/src/tumor.rs:
