/root/repo/target/debug/deps/dd_datagen-62ed23aedb9aa864.d: crates/datagen/src/lib.rs crates/datagen/src/amr.rs crates/datagen/src/baselines.rs crates/datagen/src/compound.rs crates/datagen/src/dataset.rs crates/datagen/src/drug_response.rs crates/datagen/src/expression.rs crates/datagen/src/records.rs crates/datagen/src/tumor.rs

/root/repo/target/debug/deps/dd_datagen-62ed23aedb9aa864: crates/datagen/src/lib.rs crates/datagen/src/amr.rs crates/datagen/src/baselines.rs crates/datagen/src/compound.rs crates/datagen/src/dataset.rs crates/datagen/src/drug_response.rs crates/datagen/src/expression.rs crates/datagen/src/records.rs crates/datagen/src/tumor.rs

crates/datagen/src/lib.rs:
crates/datagen/src/amr.rs:
crates/datagen/src/baselines.rs:
crates/datagen/src/compound.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/drug_response.rs:
crates/datagen/src/expression.rs:
crates/datagen/src/records.rs:
crates/datagen/src/tumor.rs:
