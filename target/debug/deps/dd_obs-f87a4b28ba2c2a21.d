/root/repo/target/debug/deps/dd_obs-f87a4b28ba2c2a21.d: /root/repo/clippy.toml crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libdd_obs-f87a4b28ba2c2a21.rmeta: /root/repo/clippy.toml crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs Cargo.toml

/root/repo/clippy.toml:
crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/phase.rs:
crates/obs/src/registry.rs:
crates/obs/src/telemetry.rs:
crates/obs/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
