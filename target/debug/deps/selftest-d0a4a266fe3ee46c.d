/root/repo/target/debug/deps/selftest-d0a4a266fe3ee46c.d: crates/testkit/tests/selftest.rs

/root/repo/target/debug/deps/selftest-d0a4a266fe3ee46c: crates/testkit/tests/selftest.rs

crates/testkit/tests/selftest.rs:
