/root/repo/target/debug/deps/resilience-dc91f4fbcab9cef9.d: tests/resilience.rs

/root/repo/target/debug/deps/resilience-dc91f4fbcab9cef9: tests/resilience.rs

tests/resilience.rs:
