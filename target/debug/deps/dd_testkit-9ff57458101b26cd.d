/root/repo/target/debug/deps/dd_testkit-9ff57458101b26cd.d: crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs

/root/repo/target/debug/deps/dd_testkit-9ff57458101b26cd: crates/testkit/src/lib.rs crates/testkit/src/determinism.rs crates/testkit/src/gen.rs crates/testkit/src/gradcheck.rs crates/testkit/src/oracle.rs crates/testkit/src/runner.rs

crates/testkit/src/lib.rs:
crates/testkit/src/determinism.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/gradcheck.rs:
crates/testkit/src/oracle.rs:
crates/testkit/src/runner.rs:
