/root/repo/target/debug/deps/dd_serve-bd54b8dd25f15095.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs crates/serve/src/dispatch.rs crates/serve/src/error.rs crates/serve/src/loadgen.rs crates/serve/src/registry.rs crates/serve/src/replica.rs crates/serve/src/resil.rs crates/serve/src/sched.rs crates/serve/src/server.rs crates/serve/src/sim.rs crates/serve/src/telemetry.rs crates/serve/src/tenant.rs

/root/repo/target/debug/deps/libdd_serve-bd54b8dd25f15095.rlib: crates/serve/src/lib.rs crates/serve/src/batcher.rs crates/serve/src/dispatch.rs crates/serve/src/error.rs crates/serve/src/loadgen.rs crates/serve/src/registry.rs crates/serve/src/replica.rs crates/serve/src/resil.rs crates/serve/src/sched.rs crates/serve/src/server.rs crates/serve/src/sim.rs crates/serve/src/telemetry.rs crates/serve/src/tenant.rs

/root/repo/target/debug/deps/libdd_serve-bd54b8dd25f15095.rmeta: crates/serve/src/lib.rs crates/serve/src/batcher.rs crates/serve/src/dispatch.rs crates/serve/src/error.rs crates/serve/src/loadgen.rs crates/serve/src/registry.rs crates/serve/src/replica.rs crates/serve/src/resil.rs crates/serve/src/sched.rs crates/serve/src/server.rs crates/serve/src/sim.rs crates/serve/src/telemetry.rs crates/serve/src/tenant.rs

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
crates/serve/src/dispatch.rs:
crates/serve/src/error.rs:
crates/serve/src/loadgen.rs:
crates/serve/src/registry.rs:
crates/serve/src/replica.rs:
crates/serve/src/resil.rs:
crates/serve/src/sched.rs:
crates/serve/src/server.rs:
crates/serve/src/sim.rs:
crates/serve/src/telemetry.rs:
crates/serve/src/tenant.rs:
