/root/repo/target/debug/deps/dd_nn-bb350ec78ab83acd.d: crates/nn/src/lib.rs crates/nn/src/checkpoint.rs crates/nn/src/init.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/layernorm.rs crates/nn/src/layers/norm.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/spec.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/dd_nn-bb350ec78ab83acd: crates/nn/src/lib.rs crates/nn/src/checkpoint.rs crates/nn/src/init.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/layernorm.rs crates/nn/src/layers/norm.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/spec.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/checkpoint.rs:
crates/nn/src/init.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/conv.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/dropout.rs:
crates/nn/src/layers/layernorm.rs:
crates/nn/src/layers/norm.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/layers/residual.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/spec.rs:
crates/nn/src/train.rs:
