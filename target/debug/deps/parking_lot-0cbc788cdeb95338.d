/root/repo/target/debug/deps/parking_lot-0cbc788cdeb95338.d: /root/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0cbc788cdeb95338.rmeta: /root/shims/parking_lot/src/lib.rs

/root/shims/parking_lot/src/lib.rs:
