/root/repo/target/debug/deps/obs_overhead-bd0361eee58845b6.d: /root/repo/clippy.toml crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-bd0361eee58845b6.rmeta: /root/repo/clippy.toml crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
