/root/repo/target/debug/deps/exp_10_compression-69e17393a0061440.d: /root/repo/clippy.toml crates/core/src/bin/exp-10-compression.rs Cargo.toml

/root/repo/target/debug/deps/libexp_10_compression-69e17393a0061440.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-10-compression.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-10-compression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
