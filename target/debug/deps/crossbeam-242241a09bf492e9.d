/root/repo/target/debug/deps/crossbeam-242241a09bf492e9.d: /root/shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-242241a09bf492e9.rlib: /root/shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-242241a09bf492e9.rmeta: /root/shims/crossbeam/src/lib.rs

/root/shims/crossbeam/src/lib.rs:
