/root/repo/target/debug/deps/selftest-614c110f1e2f4918.d: /root/repo/clippy.toml crates/testkit/tests/selftest.rs Cargo.toml

/root/repo/target/debug/deps/libselftest-614c110f1e2f4918.rmeta: /root/repo/clippy.toml crates/testkit/tests/selftest.rs Cargo.toml

/root/repo/clippy.toml:
crates/testkit/tests/selftest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
