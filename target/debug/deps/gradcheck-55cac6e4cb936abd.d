/root/repo/target/debug/deps/gradcheck-55cac6e4cb936abd.d: /root/repo/clippy.toml tests/gradcheck.rs Cargo.toml

/root/repo/target/debug/deps/libgradcheck-55cac6e4cb936abd.rmeta: /root/repo/clippy.toml tests/gradcheck.rs Cargo.toml

/root/repo/clippy.toml:
tests/gradcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
