/root/repo/target/debug/deps/dd_parallel-a5e6eeabe1823209.d: /root/repo/clippy.toml crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs Cargo.toml

/root/repo/target/debug/deps/libdd_parallel-a5e6eeabe1823209.rmeta: /root/repo/clippy.toml crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs Cargo.toml

/root/repo/clippy.toml:
crates/parallel/src/lib.rs:
crates/parallel/src/allreduce.rs:
crates/parallel/src/compression.rs:
crates/parallel/src/data_parallel.rs:
crates/parallel/src/fault.rs:
crates/parallel/src/model_parallel.rs:
crates/parallel/src/planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
