/root/repo/target/debug/deps/tenancy-cbca2a77f69791f7.d: /root/repo/clippy.toml tests/tenancy.rs Cargo.toml

/root/repo/target/debug/deps/libtenancy-cbca2a77f69791f7.rmeta: /root/repo/clippy.toml tests/tenancy.rs Cargo.toml

/root/repo/clippy.toml:
tests/tenancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
