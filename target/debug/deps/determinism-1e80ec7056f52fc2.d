/root/repo/target/debug/deps/determinism-1e80ec7056f52fc2.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-1e80ec7056f52fc2: tests/determinism.rs

tests/determinism.rs:
