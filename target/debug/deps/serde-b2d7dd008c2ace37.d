/root/repo/target/debug/deps/serde-b2d7dd008c2ace37.d: /root/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b2d7dd008c2ace37.rmeta: /root/shims/serde/src/lib.rs

/root/shims/serde/src/lib.rs:
