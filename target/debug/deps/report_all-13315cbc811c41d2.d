/root/repo/target/debug/deps/report_all-13315cbc811c41d2.d: /root/repo/clippy.toml crates/core/src/bin/report-all.rs Cargo.toml

/root/repo/target/debug/deps/libreport_all-13315cbc811c41d2.rmeta: /root/repo/clippy.toml crates/core/src/bin/report-all.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/report-all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
