/root/repo/target/debug/deps/observability-1a7da89e18cce823.d: /root/repo/clippy.toml tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-1a7da89e18cce823.rmeta: /root/repo/clippy.toml tests/observability.rs Cargo.toml

/root/repo/clippy.toml:
tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
