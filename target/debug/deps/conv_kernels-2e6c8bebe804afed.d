/root/repo/target/debug/deps/conv_kernels-2e6c8bebe804afed.d: /root/repo/clippy.toml crates/bench/benches/conv_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libconv_kernels-2e6c8bebe804afed.rmeta: /root/repo/clippy.toml crates/bench/benches/conv_kernels.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/conv_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
