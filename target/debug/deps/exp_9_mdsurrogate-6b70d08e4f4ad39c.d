/root/repo/target/debug/deps/exp_9_mdsurrogate-6b70d08e4f4ad39c.d: /root/repo/clippy.toml crates/core/src/bin/exp-9-mdsurrogate.rs Cargo.toml

/root/repo/target/debug/deps/libexp_9_mdsurrogate-6b70d08e4f4ad39c.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-9-mdsurrogate.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-9-mdsurrogate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
