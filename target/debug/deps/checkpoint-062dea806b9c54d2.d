/root/repo/target/debug/deps/checkpoint-062dea806b9c54d2.d: /root/repo/clippy.toml crates/bench/benches/checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint-062dea806b9c54d2.rmeta: /root/repo/clippy.toml crates/bench/benches/checkpoint.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
