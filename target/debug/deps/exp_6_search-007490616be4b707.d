/root/repo/target/debug/deps/exp_6_search-007490616be4b707.d: /root/repo/clippy.toml crates/core/src/bin/exp-6-search.rs Cargo.toml

/root/repo/target/debug/deps/libexp_6_search-007490616be4b707.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-6-search.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-6-search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
