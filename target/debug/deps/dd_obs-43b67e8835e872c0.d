/root/repo/target/debug/deps/dd_obs-43b67e8835e872c0.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

/root/repo/target/debug/deps/dd_obs-43b67e8835e872c0: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/phase.rs:
crates/obs/src/registry.rs:
crates/obs/src/telemetry.rs:
crates/obs/src/window.rs:
