/root/repo/target/debug/deps/search_drivers-9c6b3112a68700ab.d: /root/repo/clippy.toml crates/bench/benches/search_drivers.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_drivers-9c6b3112a68700ab.rmeta: /root/repo/clippy.toml crates/bench/benches/search_drivers.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/search_drivers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
