/root/repo/target/debug/deps/kernel_oracle-91e8c80753172863.d: tests/kernel_oracle.rs

/root/repo/target/debug/deps/kernel_oracle-91e8c80753172863: tests/kernel_oracle.rs

tests/kernel_oracle.rs:
