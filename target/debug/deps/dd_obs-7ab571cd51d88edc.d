/root/repo/target/debug/deps/dd_obs-7ab571cd51d88edc.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

/root/repo/target/debug/deps/libdd_obs-7ab571cd51d88edc.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

/root/repo/target/debug/deps/libdd_obs-7ab571cd51d88edc.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/phase.rs:
crates/obs/src/registry.rs:
crates/obs/src/telemetry.rs:
crates/obs/src/window.rs:
