/root/repo/target/debug/deps/md_step-35d4764f10184bb9.d: /root/repo/clippy.toml crates/bench/benches/md_step.rs Cargo.toml

/root/repo/target/debug/deps/libmd_step-35d4764f10184bb9.rmeta: /root/repo/clippy.toml crates/bench/benches/md_step.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/md_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
