/root/repo/target/debug/deps/int8_fused-1d16593f31921a59.d: /root/repo/clippy.toml tests/int8_fused.rs Cargo.toml

/root/repo/target/debug/deps/libint8_fused-1d16593f31921a59.rmeta: /root/repo/clippy.toml tests/int8_fused.rs Cargo.toml

/root/repo/clippy.toml:
tests/int8_fused.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
