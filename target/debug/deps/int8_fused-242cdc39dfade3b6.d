/root/repo/target/debug/deps/int8_fused-242cdc39dfade3b6.d: tests/int8_fused.rs

/root/repo/target/debug/deps/int8_fused-242cdc39dfade3b6: tests/int8_fused.rs

tests/int8_fused.rs:
