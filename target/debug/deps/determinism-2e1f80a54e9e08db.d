/root/repo/target/debug/deps/determinism-2e1f80a54e9e08db.d: /root/repo/clippy.toml tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-2e1f80a54e9e08db.rmeta: /root/repo/clippy.toml tests/determinism.rs Cargo.toml

/root/repo/clippy.toml:
tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
