/root/repo/target/debug/deps/kernel_oracle-99af5fac884e13df.d: /root/repo/clippy.toml tests/kernel_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_oracle-99af5fac884e13df.rmeta: /root/repo/clippy.toml tests/kernel_oracle.rs Cargo.toml

/root/repo/clippy.toml:
tests/kernel_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
