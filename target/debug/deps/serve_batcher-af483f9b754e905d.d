/root/repo/target/debug/deps/serve_batcher-af483f9b754e905d.d: /root/repo/clippy.toml crates/bench/benches/serve_batcher.rs Cargo.toml

/root/repo/target/debug/deps/libserve_batcher-af483f9b754e905d.rmeta: /root/repo/clippy.toml crates/bench/benches/serve_batcher.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/serve_batcher.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
