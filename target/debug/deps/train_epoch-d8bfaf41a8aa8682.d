/root/repo/target/debug/deps/train_epoch-d8bfaf41a8aa8682.d: /root/repo/clippy.toml crates/bench/benches/train_epoch.rs Cargo.toml

/root/repo/target/debug/deps/libtrain_epoch-d8bfaf41a8aa8682.rmeta: /root/repo/clippy.toml crates/bench/benches/train_epoch.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/train_epoch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
