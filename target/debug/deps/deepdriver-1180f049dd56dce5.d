/root/repo/target/debug/deps/deepdriver-1180f049dd56dce5.d: src/lib.rs

/root/repo/target/debug/deps/libdeepdriver-1180f049dd56dce5.rlib: src/lib.rs

/root/repo/target/debug/deps/libdeepdriver-1180f049dd56dce5.rmeta: src/lib.rs

src/lib.rs:
