/root/repo/target/debug/deps/exp_1_precision-bb100e7f081f8a85.d: /root/repo/clippy.toml crates/core/src/bin/exp-1-precision.rs Cargo.toml

/root/repo/target/debug/deps/libexp_1_precision-bb100e7f081f8a85.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-1-precision.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-1-precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
