/root/repo/target/debug/deps/bytes-35cfcb348dd033ca.d: /root/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-35cfcb348dd033ca.rlib: /root/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-35cfcb348dd033ca.rmeta: /root/shims/bytes/src/lib.rs

/root/shims/bytes/src/lib.rs:
