/root/repo/target/debug/deps/proptests-7f06c6774cfe4abb.d: /root/repo/clippy.toml crates/hypersearch/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7f06c6774cfe4abb.rmeta: /root/repo/clippy.toml crates/hypersearch/tests/proptests.rs Cargo.toml

/root/repo/clippy.toml:
crates/hypersearch/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
