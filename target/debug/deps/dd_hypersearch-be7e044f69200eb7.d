/root/repo/target/debug/deps/dd_hypersearch-be7e044f69200eb7.d: /root/repo/clippy.toml crates/hypersearch/src/lib.rs crates/hypersearch/src/history.rs crates/hypersearch/src/searcher.rs crates/hypersearch/src/searchers/mod.rs crates/hypersearch/src/searchers/evolutionary.rs crates/hypersearch/src/searchers/generative.rs crates/hypersearch/src/searchers/grid.rs crates/hypersearch/src/searchers/lhs.rs crates/hypersearch/src/searchers/random.rs crates/hypersearch/src/searchers/sha.rs crates/hypersearch/src/searchers/surrogate.rs crates/hypersearch/src/space.rs crates/hypersearch/src/testfunc.rs Cargo.toml

/root/repo/target/debug/deps/libdd_hypersearch-be7e044f69200eb7.rmeta: /root/repo/clippy.toml crates/hypersearch/src/lib.rs crates/hypersearch/src/history.rs crates/hypersearch/src/searcher.rs crates/hypersearch/src/searchers/mod.rs crates/hypersearch/src/searchers/evolutionary.rs crates/hypersearch/src/searchers/generative.rs crates/hypersearch/src/searchers/grid.rs crates/hypersearch/src/searchers/lhs.rs crates/hypersearch/src/searchers/random.rs crates/hypersearch/src/searchers/sha.rs crates/hypersearch/src/searchers/surrogate.rs crates/hypersearch/src/space.rs crates/hypersearch/src/testfunc.rs Cargo.toml

/root/repo/clippy.toml:
crates/hypersearch/src/lib.rs:
crates/hypersearch/src/history.rs:
crates/hypersearch/src/searcher.rs:
crates/hypersearch/src/searchers/mod.rs:
crates/hypersearch/src/searchers/evolutionary.rs:
crates/hypersearch/src/searchers/generative.rs:
crates/hypersearch/src/searchers/grid.rs:
crates/hypersearch/src/searchers/lhs.rs:
crates/hypersearch/src/searchers/random.rs:
crates/hypersearch/src/searchers/sha.rs:
crates/hypersearch/src/searchers/surrogate.rs:
crates/hypersearch/src/space.rs:
crates/hypersearch/src/testfunc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
