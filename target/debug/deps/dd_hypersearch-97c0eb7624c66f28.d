/root/repo/target/debug/deps/dd_hypersearch-97c0eb7624c66f28.d: crates/hypersearch/src/lib.rs crates/hypersearch/src/history.rs crates/hypersearch/src/searcher.rs crates/hypersearch/src/searchers/mod.rs crates/hypersearch/src/searchers/evolutionary.rs crates/hypersearch/src/searchers/generative.rs crates/hypersearch/src/searchers/grid.rs crates/hypersearch/src/searchers/lhs.rs crates/hypersearch/src/searchers/random.rs crates/hypersearch/src/searchers/sha.rs crates/hypersearch/src/searchers/surrogate.rs crates/hypersearch/src/space.rs crates/hypersearch/src/testfunc.rs

/root/repo/target/debug/deps/libdd_hypersearch-97c0eb7624c66f28.rmeta: crates/hypersearch/src/lib.rs crates/hypersearch/src/history.rs crates/hypersearch/src/searcher.rs crates/hypersearch/src/searchers/mod.rs crates/hypersearch/src/searchers/evolutionary.rs crates/hypersearch/src/searchers/generative.rs crates/hypersearch/src/searchers/grid.rs crates/hypersearch/src/searchers/lhs.rs crates/hypersearch/src/searchers/random.rs crates/hypersearch/src/searchers/sha.rs crates/hypersearch/src/searchers/surrogate.rs crates/hypersearch/src/space.rs crates/hypersearch/src/testfunc.rs

crates/hypersearch/src/lib.rs:
crates/hypersearch/src/history.rs:
crates/hypersearch/src/searcher.rs:
crates/hypersearch/src/searchers/mod.rs:
crates/hypersearch/src/searchers/evolutionary.rs:
crates/hypersearch/src/searchers/generative.rs:
crates/hypersearch/src/searchers/grid.rs:
crates/hypersearch/src/searchers/lhs.rs:
crates/hypersearch/src/searchers/random.rs:
crates/hypersearch/src/searchers/sha.rs:
crates/hypersearch/src/searchers/surrogate.rs:
crates/hypersearch/src/space.rs:
crates/hypersearch/src/testfunc.rs:
