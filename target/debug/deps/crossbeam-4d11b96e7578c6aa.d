/root/repo/target/debug/deps/crossbeam-4d11b96e7578c6aa.d: /root/shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-4d11b96e7578c6aa.rmeta: /root/shims/crossbeam/src/lib.rs

/root/shims/crossbeam/src/lib.rs:
