/root/repo/target/debug/deps/dd_hpcsim-e3c77e855e8fa367.d: /root/repo/clippy.toml crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs Cargo.toml

/root/repo/target/debug/deps/libdd_hpcsim-e3c77e855e8fa367.rmeta: /root/repo/clippy.toml crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs Cargo.toml

/root/repo/clippy.toml:
crates/hpcsim/src/lib.rs:
crates/hpcsim/src/collectives.rs:
crates/hpcsim/src/fabric.rs:
crates/hpcsim/src/failure.rs:
crates/hpcsim/src/machine.rs:
crates/hpcsim/src/memory.rs:
crates/hpcsim/src/roofline.rs:
crates/hpcsim/src/storage.rs:
crates/hpcsim/src/trace.rs:
crates/hpcsim/src/trainsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
