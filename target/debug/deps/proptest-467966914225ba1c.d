/root/repo/target/debug/deps/proptest-467966914225ba1c.d: /root/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-467966914225ba1c.rmeta: /root/shims/proptest/src/lib.rs

/root/shims/proptest/src/lib.rs:
