/root/repo/target/debug/deps/proptests-cddb2378c9bfb062.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cddb2378c9bfb062: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
