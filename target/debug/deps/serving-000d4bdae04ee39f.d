/root/repo/target/debug/deps/serving-000d4bdae04ee39f.d: tests/serving.rs

/root/repo/target/debug/deps/serving-000d4bdae04ee39f: tests/serving.rs

tests/serving.rs:
