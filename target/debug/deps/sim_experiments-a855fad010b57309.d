/root/repo/target/debug/deps/sim_experiments-a855fad010b57309.d: /root/repo/clippy.toml crates/bench/benches/sim_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libsim_experiments-a855fad010b57309.rmeta: /root/repo/clippy.toml crates/bench/benches/sim_experiments.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/sim_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
