/root/repo/target/debug/deps/exp_7_hybrid-14eab762da305899.d: /root/repo/clippy.toml crates/core/src/bin/exp-7-hybrid.rs Cargo.toml

/root/repo/target/debug/deps/libexp_7_hybrid-14eab762da305899.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-7-hybrid.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-7-hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
