/root/repo/target/debug/deps/fault_tolerance-88c9f991a43d3d95.d: /root/repo/clippy.toml tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-88c9f991a43d3d95.rmeta: /root/repo/clippy.toml tests/fault_tolerance.rs Cargo.toml

/root/repo/clippy.toml:
tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
