/root/repo/target/debug/deps/exp_3_parallelism-a5e108c03befd20b.d: /root/repo/clippy.toml crates/core/src/bin/exp-3-parallelism.rs Cargo.toml

/root/repo/target/debug/deps/libexp_3_parallelism-a5e108c03befd20b.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-3-parallelism.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-3-parallelism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
