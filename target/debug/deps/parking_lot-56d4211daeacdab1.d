/root/repo/target/debug/deps/parking_lot-56d4211daeacdab1.d: /root/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-56d4211daeacdab1.rlib: /root/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-56d4211daeacdab1.rmeta: /root/shims/parking_lot/src/lib.rs

/root/shims/parking_lot/src/lib.rs:
