/root/repo/target/debug/deps/self_check-c969e72ae7d7389e.d: /root/repo/clippy.toml crates/lint/tests/self_check.rs Cargo.toml

/root/repo/target/debug/deps/libself_check-c969e72ae7d7389e.rmeta: /root/repo/clippy.toml crates/lint/tests/self_check.rs Cargo.toml

/root/repo/clippy.toml:
crates/lint/tests/self_check.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_dd-lint=placeholder:dd-lint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
