/root/repo/target/debug/deps/exp_14_chaos-58140de9c6b641ce.d: /root/repo/clippy.toml crates/core/src/bin/exp-14-chaos.rs Cargo.toml

/root/repo/target/debug/deps/libexp_14_chaos-58140de9c6b641ce.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-14-chaos.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-14-chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
