/root/repo/target/debug/deps/exp_15_telemetry-c0983e2ac42d09c4.d: /root/repo/clippy.toml crates/core/src/bin/exp-15-telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libexp_15_telemetry-c0983e2ac42d09c4.rmeta: /root/repo/clippy.toml crates/core/src/bin/exp-15-telemetry.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/bin/exp-15-telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
