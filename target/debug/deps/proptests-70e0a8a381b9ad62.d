/root/repo/target/debug/deps/proptests-70e0a8a381b9ad62.d: crates/hpcsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-70e0a8a381b9ad62: crates/hpcsim/tests/proptests.rs

crates/hpcsim/tests/proptests.rs:
