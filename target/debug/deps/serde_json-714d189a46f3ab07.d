/root/repo/target/debug/deps/serde_json-714d189a46f3ab07.d: /root/shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-714d189a46f3ab07.rmeta: /root/shims/serde_json/src/lib.rs

/root/shims/serde_json/src/lib.rs:
