/root/repo/target/debug/deps/dd_hpcsim-ea0ce1e7386b6a9e.d: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

/root/repo/target/debug/deps/libdd_hpcsim-ea0ce1e7386b6a9e.rmeta: crates/hpcsim/src/lib.rs crates/hpcsim/src/collectives.rs crates/hpcsim/src/fabric.rs crates/hpcsim/src/failure.rs crates/hpcsim/src/machine.rs crates/hpcsim/src/memory.rs crates/hpcsim/src/roofline.rs crates/hpcsim/src/storage.rs crates/hpcsim/src/trace.rs crates/hpcsim/src/trainsim.rs

crates/hpcsim/src/lib.rs:
crates/hpcsim/src/collectives.rs:
crates/hpcsim/src/fabric.rs:
crates/hpcsim/src/failure.rs:
crates/hpcsim/src/machine.rs:
crates/hpcsim/src/memory.rs:
crates/hpcsim/src/roofline.rs:
crates/hpcsim/src/storage.rs:
crates/hpcsim/src/trace.rs:
crates/hpcsim/src/trainsim.rs:
