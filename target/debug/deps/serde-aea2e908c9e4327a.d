/root/repo/target/debug/deps/serde-aea2e908c9e4327a.d: /root/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-aea2e908c9e4327a.rlib: /root/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-aea2e908c9e4327a.rmeta: /root/shims/serde/src/lib.rs

/root/shims/serde/src/lib.rs:
