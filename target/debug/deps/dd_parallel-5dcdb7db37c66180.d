/root/repo/target/debug/deps/dd_parallel-5dcdb7db37c66180.d: crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs

/root/repo/target/debug/deps/libdd_parallel-5dcdb7db37c66180.rlib: crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs

/root/repo/target/debug/deps/libdd_parallel-5dcdb7db37c66180.rmeta: crates/parallel/src/lib.rs crates/parallel/src/allreduce.rs crates/parallel/src/compression.rs crates/parallel/src/data_parallel.rs crates/parallel/src/fault.rs crates/parallel/src/model_parallel.rs crates/parallel/src/planner.rs

crates/parallel/src/lib.rs:
crates/parallel/src/allreduce.rs:
crates/parallel/src/compression.rs:
crates/parallel/src/data_parallel.rs:
crates/parallel/src/fault.rs:
crates/parallel/src/model_parallel.rs:
crates/parallel/src/planner.rs:
