/root/repo/target/debug/deps/dd_serve-5e8f5d47cae86601.d: /root/repo/clippy.toml crates/serve/src/lib.rs crates/serve/src/batcher.rs crates/serve/src/dispatch.rs crates/serve/src/error.rs crates/serve/src/loadgen.rs crates/serve/src/registry.rs crates/serve/src/replica.rs crates/serve/src/resil.rs crates/serve/src/sched.rs crates/serve/src/server.rs crates/serve/src/sim.rs crates/serve/src/telemetry.rs crates/serve/src/tenant.rs Cargo.toml

/root/repo/target/debug/deps/libdd_serve-5e8f5d47cae86601.rmeta: /root/repo/clippy.toml crates/serve/src/lib.rs crates/serve/src/batcher.rs crates/serve/src/dispatch.rs crates/serve/src/error.rs crates/serve/src/loadgen.rs crates/serve/src/registry.rs crates/serve/src/replica.rs crates/serve/src/resil.rs crates/serve/src/sched.rs crates/serve/src/server.rs crates/serve/src/sim.rs crates/serve/src/telemetry.rs crates/serve/src/tenant.rs Cargo.toml

/root/repo/clippy.toml:
crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
crates/serve/src/dispatch.rs:
crates/serve/src/error.rs:
crates/serve/src/loadgen.rs:
crates/serve/src/registry.rs:
crates/serve/src/replica.rs:
crates/serve/src/resil.rs:
crates/serve/src/sched.rs:
crates/serve/src/server.rs:
crates/serve/src/sim.rs:
crates/serve/src/telemetry.rs:
crates/serve/src/tenant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
