/root/repo/target/debug/deps/proptests-fc99b8b0d67be72d.d: crates/datagen/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fc99b8b0d67be72d: crates/datagen/tests/proptests.rs

crates/datagen/tests/proptests.rs:
