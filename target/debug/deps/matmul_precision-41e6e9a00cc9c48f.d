/root/repo/target/debug/deps/matmul_precision-41e6e9a00cc9c48f.d: /root/repo/clippy.toml crates/bench/benches/matmul_precision.rs Cargo.toml

/root/repo/target/debug/deps/libmatmul_precision-41e6e9a00cc9c48f.rmeta: /root/repo/clippy.toml crates/bench/benches/matmul_precision.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/matmul_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
