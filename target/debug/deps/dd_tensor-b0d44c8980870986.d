/root/repo/target/debug/deps/dd_tensor-b0d44c8980870986.d: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libdd_tensor-b0d44c8980870986.rlib: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libdd_tensor-b0d44c8980870986.rmeta: crates/tensor/src/lib.rs crates/tensor/src/kernel.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pack.rs crates/tensor/src/precision.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/kernel.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pack.rs:
crates/tensor/src/precision.rs:
crates/tensor/src/rng.rs:
