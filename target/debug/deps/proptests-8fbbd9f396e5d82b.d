/root/repo/target/debug/deps/proptests-8fbbd9f396e5d82b.d: /root/repo/clippy.toml crates/hpcsim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8fbbd9f396e5d82b.rmeta: /root/repo/clippy.toml crates/hpcsim/tests/proptests.rs Cargo.toml

/root/repo/clippy.toml:
crates/hpcsim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
