/root/repo/target/debug/deps/tenancy-c4399d370b9eb98b.d: tests/tenancy.rs

/root/repo/target/debug/deps/tenancy-c4399d370b9eb98b: tests/tenancy.rs

tests/tenancy.rs:
