/root/repo/target/debug/deps/dd_bench-962c8160e0b78aaf.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdd_bench-962c8160e0b78aaf.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
