/root/repo/target/debug/deps/proptests-ab76f06c5f75338d.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ab76f06c5f75338d: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
