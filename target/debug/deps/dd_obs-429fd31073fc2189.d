/root/repo/target/debug/deps/dd_obs-429fd31073fc2189.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

/root/repo/target/debug/deps/libdd_obs-429fd31073fc2189.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/phase.rs crates/obs/src/registry.rs crates/obs/src/telemetry.rs crates/obs/src/window.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/phase.rs:
crates/obs/src/registry.rs:
crates/obs/src/telemetry.rs:
crates/obs/src/window.rs:
