/root/repo/target/debug/examples/md_supervision-ec3b86e97ae76ec3.d: /root/repo/clippy.toml examples/md_supervision.rs Cargo.toml

/root/repo/target/debug/examples/libmd_supervision-ec3b86e97ae76ec3.rmeta: /root/repo/clippy.toml examples/md_supervision.rs Cargo.toml

/root/repo/clippy.toml:
examples/md_supervision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
