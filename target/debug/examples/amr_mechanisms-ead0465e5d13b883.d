/root/repo/target/debug/examples/amr_mechanisms-ead0465e5d13b883.d: examples/amr_mechanisms.rs

/root/repo/target/debug/examples/amr_mechanisms-ead0465e5d13b883: examples/amr_mechanisms.rs

examples/amr_mechanisms.rs:
