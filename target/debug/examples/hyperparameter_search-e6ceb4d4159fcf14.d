/root/repo/target/debug/examples/hyperparameter_search-e6ceb4d4159fcf14.d: /root/repo/clippy.toml examples/hyperparameter_search.rs Cargo.toml

/root/repo/target/debug/examples/libhyperparameter_search-e6ceb4d4159fcf14.rmeta: /root/repo/clippy.toml examples/hyperparameter_search.rs Cargo.toml

/root/repo/clippy.toml:
examples/hyperparameter_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
