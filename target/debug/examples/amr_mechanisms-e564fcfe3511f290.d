/root/repo/target/debug/examples/amr_mechanisms-e564fcfe3511f290.d: /root/repo/clippy.toml examples/amr_mechanisms.rs Cargo.toml

/root/repo/target/debug/examples/libamr_mechanisms-e564fcfe3511f290.rmeta: /root/repo/clippy.toml examples/amr_mechanisms.rs Cargo.toml

/root/repo/clippy.toml:
examples/amr_mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
