/root/repo/target/debug/examples/drug_response-12d18e0053973478.d: /root/repo/clippy.toml examples/drug_response.rs Cargo.toml

/root/repo/target/debug/examples/libdrug_response-12d18e0053973478.rmeta: /root/repo/clippy.toml examples/drug_response.rs Cargo.toml

/root/repo/clippy.toml:
examples/drug_response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
