/root/repo/target/debug/examples/md_supervision-b65ac3a0b05f2ed0.d: examples/md_supervision.rs

/root/repo/target/debug/examples/md_supervision-b65ac3a0b05f2ed0: examples/md_supervision.rs

examples/md_supervision.rs:
