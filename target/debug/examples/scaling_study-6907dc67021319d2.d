/root/repo/target/debug/examples/scaling_study-6907dc67021319d2.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-6907dc67021319d2: examples/scaling_study.rs

examples/scaling_study.rs:
