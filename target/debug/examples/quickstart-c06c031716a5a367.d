/root/repo/target/debug/examples/quickstart-c06c031716a5a367.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c06c031716a5a367.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
