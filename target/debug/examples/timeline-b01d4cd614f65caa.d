/root/repo/target/debug/examples/timeline-b01d4cd614f65caa.d: /root/repo/clippy.toml examples/timeline.rs Cargo.toml

/root/repo/target/debug/examples/libtimeline-b01d4cd614f65caa.rmeta: /root/repo/clippy.toml examples/timeline.rs Cargo.toml

/root/repo/clippy.toml:
examples/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
