/root/repo/target/debug/examples/hyperparameter_search-62834525bae87ae6.d: examples/hyperparameter_search.rs

/root/repo/target/debug/examples/hyperparameter_search-62834525bae87ae6: examples/hyperparameter_search.rs

examples/hyperparameter_search.rs:
