/root/repo/target/debug/examples/scaling_study-80fa3bf6c85a5223.d: /root/repo/clippy.toml examples/scaling_study.rs Cargo.toml

/root/repo/target/debug/examples/libscaling_study-80fa3bf6c85a5223.rmeta: /root/repo/clippy.toml examples/scaling_study.rs Cargo.toml

/root/repo/clippy.toml:
examples/scaling_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
