/root/repo/target/debug/examples/timeline-e4f555d259d35cb3.d: examples/timeline.rs

/root/repo/target/debug/examples/timeline-e4f555d259d35cb3: examples/timeline.rs

examples/timeline.rs:
