/root/repo/target/debug/examples/quickstart-3d251cf626e65c3a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3d251cf626e65c3a: examples/quickstart.rs

examples/quickstart.rs:
