/root/repo/target/debug/examples/drug_response-2f41c023c133dbed.d: examples/drug_response.rs

/root/repo/target/debug/examples/drug_response-2f41c023c133dbed: examples/drug_response.rs

examples/drug_response.rs:
