//! Antibiotic-resistance mechanism discovery: train a DNN on synthetic
//! k-mer genotype data, then use second-order occlusion attribution to
//! surface the planted *epistatic pair* — the "identify novel antibiotic
//! resistance mechanisms" workload.
//!
//! Run with: `cargo run --release --example amr_mechanisms`

use deepdriver::core::workloads::w6_amr::{discover_mechanisms, train_model};
use deepdriver::core::Scale;

fn main() {
    println!("training the AMR prediction network on synthetic k-mer data...");
    let (mut model, split, data, _) = train_model(Scale::Smoke, 23);

    println!(
        "planted ground truth: {} additive resistance k-mers {:?},",
        data.additive.len(),
        data.additive
    );
    println!(
        "plus one epistatic pair {:?} (resistance only when BOTH present —",
        data.epistatic_pair
    );
    println!("invisible to any additive model; this is the 'novel mechanism').\n");

    let probes = split.train.x.slice_rows(0, 64.min(split.train.x.rows()));
    let ranked = discover_mechanisms(&mut model, &probes, 16);
    let planted = (
        data.epistatic_pair.0.min(data.epistatic_pair.1),
        data.epistatic_pair.0.max(data.epistatic_pair.1),
    );

    println!("top interacting k-mer pairs by occlusion interaction score:");
    for (rank, (pair, score)) in ranked.iter().take(10).enumerate() {
        let marker = if *pair == planted { "  <-- planted epistatic pair" } else { "" };
        println!("  #{:<2} ({:>3}, {:>3})  score {:.5}{}", rank + 1, pair.0, pair.1, score, marker);
    }
    match ranked.iter().position(|&(p, _)| p == planted) {
        Some(i) => println!("\nplanted mechanism recovered at rank {}", i + 1),
        None => println!("\nplanted mechanism not in the candidate set (increase top_singles)"),
    }
}
