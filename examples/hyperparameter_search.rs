//! Hyperparameter search shoot-out: naïve (random) versus intelligent
//! (Hyperband, surrogate forest, generative neural network) searchers
//! tuning a real tumor-classifier training objective in parallel.
//!
//! Run with: `cargo run --release --example hyperparameter_search`

use deepdriver::core::experiments::e6_search::{space, TumorTuning};
use deepdriver::core::Scale;
use deepdriver::hypersearch::searchers::{
    GenerativeSearch, Hyperband, RandomSearch, SurrogateSearch,
};
use deepdriver::hypersearch::{run_search, Searcher};

fn main() {
    let objective = TumorTuning::new(Scale::Smoke, 11);
    let sp = space();
    println!(
        "search space: {} parameters, ~{} discrete configurations",
        sp.dim(),
        sp.cardinality(16)
    );

    let budget = 24.0; // full-training-equivalents
    let searchers: Vec<Box<dyn Searcher>> = vec![
        Box::new(RandomSearch::new()),
        Box::new(Hyperband::new(3, 2)),
        Box::new(SurrogateSearch::new(8)),
        Box::new(GenerativeSearch::new(10)),
    ];

    println!("\nrunning each searcher for {budget} evaluation-equivalents (4-way parallel):\n");
    for mut s in searchers {
        let history = run_search(s.as_mut(), &sp, &objective, budget, 4, 11);
        let best = history.best_trial().expect("at least one trial");
        println!(
            "{:<18} best val-loss {:.4} after {:>3} trials  ({})",
            history.searcher,
            best.value,
            history.trials.len(),
            best.config.describe()
        );
        // Incumbent curve at a few milestones.
        print!("{:<18} incumbent:", "");
        for m in [6.0, 12.0, 24.0] {
            match history.best_at_cost(m) {
                Some(v) => print!("  @{m}: {v:.4}"),
                None => print!("  @{m}: -"),
            }
        }
        println!("\n");
    }
    println!("lower is better; intelligent searchers should reach low loss in fewer trials.");
}
