//! Drug response prediction (the P1B3-style workload): train the dense
//! regression network on synthetic dose-response data, compare against
//! ridge regression, then re-evaluate the trained model under every
//! emulated arithmetic precision — the "rarely require 64 bits" claim in
//! one screen of output.
//!
//! Run with: `cargo run --release --example drug_response`

use deepdriver::datagen::baselines::Ridge;
use deepdriver::datagen::drug_response::{self, DrugResponseConfig};
use deepdriver::datagen::expression::ExpressionModel;
use deepdriver::datagen::Target;
use deepdriver::prelude::*;
use deepdriver::tensor::r2_score;

fn main() {
    let config = DrugResponseConfig {
        cell_lines: 40,
        drugs: 60,
        measurements: 6000,
        descriptor_dim: 48,
        noise: 0.04,
        expression: ExpressionModel { genes: 128, pathways: 10, ..Default::default() },
    };
    let data = drug_response::generate(&config, 7);
    let split = data.dataset.split(0.15, 0.15, 7, true);
    let (y_train, y_val, y_test) = match (&split.train.y, &split.val.y, &split.test.y) {
        (Target::Regression(a), Target::Regression(b), Target::Regression(c)) => (a, b, c),
        _ => unreachable!(),
    };
    println!(
        "drug-response: {} measurements over {} cell lines x {} drugs; feature dim {}",
        data.dataset.len(),
        config.cell_lines,
        config.drugs,
        split.train.dim()
    );

    // Train the DNN in f32.
    let spec = ModelSpec::mlp(split.train.dim(), &[256, 128, 32], 1, Activation::Relu);
    let mut model = spec.build(7, Precision::F32).expect("valid spec");
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs: 25,
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::Mse,
        patience: Some(6),
        ..TrainConfig::default()
    });
    trainer
        .fit(&mut model, &split.train.x, y_train, Some((&split.val.x, y_val)))
        .expect("training converged");

    let dnn_pred = model.predict(&split.test.x);
    let dnn_r2 = r2_score(y_test.as_slice(), dnn_pred.as_slice());

    let ridge = Ridge::fit(&split.train.x, y_train.as_slice(), 1.0);
    let ridge_r2 = r2_score(y_test.as_slice(), &ridge.predict(&split.test.x));
    println!("\ntest R^2: DNN {dnn_r2:.4} vs ridge {ridge_r2:.4}");
    println!("(the cell x drug interaction is invisible to the linear model)");

    // Inference-precision sweep on the already-trained model.
    println!("\ninference precision sweep (same trained weights):");
    for precision in Precision::ALL {
        model.set_precision(precision);
        let pred = model.predict(&split.test.x);
        let r2 = r2_score(y_test.as_slice(), pred.as_slice());
        println!("  {:>5}: test R^2 {r2:.4}", precision.to_string());
    }
    model.set_precision(Precision::F32);

    // Virtual dose-response assay: estimate per-pair IC50s from the model
    // and compare against the generator's ground truth.
    println!("\nvirtual IC50 assay (model-estimated vs generative truth, log10):");
    let scaler = split.scaler.as_ref().expect("standardized").clone();
    let mut rng = deepdriver::tensor::Rng64::new(99);
    let mut est_all = Vec::new();
    let mut true_all = Vec::new();
    for i in 0..6 {
        let c = rng.below(config.cell_lines);
        let d = rng.below(config.drugs);
        let est = deepdriver::core::workloads::w2_drug_response::estimate_log_ic50(
            &mut model,
            &scaler,
            &data,
            c,
            d,
            config.expression.genes,
            config.descriptor_dim,
        );
        let truth = data.true_log_ic50(c, d);
        println!("  pair {i}: cell {c:>2} x drug {d:>2}  est {est:+.2}  true {truth:+.2}");
        est_all.push(est as f32);
        true_all.push(truth);
    }
    println!(
        "  correlation over these pairs: {:.2}",
        deepdriver::tensor::pearson(&est_all, &true_all)
    );
}
