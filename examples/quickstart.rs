//! Quickstart: generate a synthetic tumor-expression dataset, train a small
//! classifier, and evaluate it against a logistic-regression baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use deepdriver::datagen::baselines::{ovr_scores, Logistic};
use deepdriver::datagen::expression::ExpressionModel;
use deepdriver::datagen::tumor::{self, TumorConfig};
use deepdriver::nn::metrics;
use deepdriver::prelude::*;

fn main() {
    // 1. Data: 1200 synthetic tumors, 4 types, 128-gene expression profiles.
    let config = TumorConfig {
        samples: 1200,
        types: 4,
        signature_genes: 12,
        signature_strength: 1.2,
        position_jitter: 0,
        expression: ExpressionModel { genes: 128, pathways: 8, ..Default::default() },
    };
    let data = tumor::generate(&config, 42);
    let split = data.dataset.split(0.15, 0.15, 42, true);
    println!(
        "dataset: {} train / {} val / {} test, {} genes, {} tumor types",
        split.train.len(),
        split.val.len(),
        split.test.len(),
        config.expression.genes,
        config.types
    );

    // 2. Model: a 2-layer MLP described by a serializable spec.
    let spec = ModelSpec::mlp(128, &[64, 32], 4, Activation::Relu);
    let mut model = spec.build(42, Precision::F32).expect("valid spec");
    println!("\n{}", model.summary());

    // 3. Train with Adam + cosine decay and early stopping on validation.
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 32,
        epochs: 25,
        optimizer: OptimizerConfig::adam(1e-3),
        schedule: LrSchedule::Cosine { total: 25, floor: 0.1 },
        loss: Loss::SoftmaxCrossEntropy,
        patience: Some(5),
        ..TrainConfig::default()
    });
    let y_train = split.train.y.to_matrix();
    let y_val = split.val.y.to_matrix();
    let history = trainer
        .fit(&mut model, &split.train.x, &y_train, Some((&split.val.x, &y_val)))
        .expect("training converged");
    for e in &history.epochs {
        println!(
            "epoch {:>2}  train loss {:.4}  val loss {:.4}",
            e.epoch,
            e.train_loss,
            e.val_loss.unwrap_or(f64::NAN)
        );
    }

    // 4. Evaluate against logistic regression.
    let test_labels = split.test.y.labels().unwrap();
    let dnn_acc = metrics::accuracy(&model.predict(&split.test.x), test_labels);
    let logi = Logistic::fit_multiclass(
        &split.train.x,
        split.train.y.labels().unwrap(),
        4,
        1e-4,
        150,
        0.5,
    );
    let base_acc = metrics::accuracy(&ovr_scores(&logi, &split.test.x), test_labels);
    println!("\ntest accuracy: DNN {dnn_acc:.3} vs logistic {base_acc:.3}");

    // 5. Checkpoint the trained model and verify the restored copy agrees.
    let blob = deepdriver::nn::checkpoint::save(&spec, &mut model).expect("checkpoint encodes");
    let (_, mut restored) = deepdriver::nn::checkpoint::load(&blob).expect("valid checkpoint");
    let restored_acc = metrics::accuracy(&restored.predict(&split.test.x), test_labels);
    println!(
        "checkpoint: {} bytes, restored model accuracy {restored_acc:.3} (identical: {})",
        blob.len(),
        restored_acc == dnn_acc
    );
}
