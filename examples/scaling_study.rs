//! Scaling study: real multi-threaded data-parallel training (ring
//! allreduce between OS threads) next to the simulated behaviour of the
//! same algorithm on a 2017 GPU machine at up to 1024 nodes — the "DNNs do
//! not have good strong scaling" claim from both directions.
//!
//! Run with: `cargo run --release --example scaling_study`

use deepdriver::hpcsim::trainsim::{strong_scaling_efficiency, weak_scaling_efficiency};
use deepdriver::hpcsim::AllreduceAlgo;
use deepdriver::parallel::{train_data_parallel, DataParallelConfig};
use deepdriver::prelude::*;

fn main() {
    // Part 1: real threads in this process.
    println!("== measured: threaded data-parallel training (ring allreduce) ==");
    let mut rng = Rng64::new(3);
    let x = Matrix::randn(2048, 64, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(2048, 1, |i, _| x.row(i).iter().sum::<f32>().tanh());
    let spec = ModelSpec::mlp(64, &[128, 64], 1, Activation::Relu);
    let mut t1 = 0.0;
    for world in [1usize, 2, 4, 8] {
        let report = train_data_parallel(
            &spec,
            &x,
            &y,
            &DataParallelConfig {
                world,
                global_batch: 128,
                epochs: 4,
                seed: 3,
                ..Default::default()
            },
        )
        .expect("data-parallel run succeeds");
        if world == 1 {
            t1 = report.seconds;
        }
        println!(
            "world {world}: {:.3}s  speedup {:.2}x  final loss {:.5}  sent {:.1} MB/rank",
            report.seconds,
            t1 / report.seconds,
            report.epoch_losses.last().unwrap(),
            report.bytes_sent_per_rank as f64 / 1e6
        );
    }

    // Part 2: the same algorithm costed on a simulated 2017 GPU machine.
    println!("\n== simulated: gpu2017, 50M-param net, global batch 8192 ==");
    let machine = Machine::gpu_2017(1024);
    let job = TrainJob::from_dense_net(50e6, 2000, 8192, 8);
    println!("{:>6}  {:>10}  {:>10}", "nodes", "strong eff", "weak eff");
    let mut nodes = 1;
    while nodes <= 1024 {
        let strong = strong_scaling_efficiency(
            &machine,
            &job,
            Strategy::Data { nodes, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
        let weak = weak_scaling_efficiency(
            &machine,
            512,
            &job,
            nodes,
            AllreduceAlgo::Auto,
            SimPrecision::F32,
        );
        println!("{nodes:>6}  {strong:>10.3}  {weak:>10.3}");
        nodes *= 4;
    }
    println!("\nstrong scaling collapses while weak scaling holds — the reason the");
    println!("paper prescribes combining model, data and search parallelism.");
}
