//! Where does the time go? Text timelines for simulated training runs,
//! contrasting staging strategies and parallelization choices — each `#` is
//! compute, `~` is fabric communication, `.` is storage I/O.
//!
//! Run with: `cargo run --release --example timeline`

use deepdriver::hpcsim::{
    trace_training_run, AllreduceAlgo, Machine, Phase, SimPrecision, Staging, Strategy, TrainJob,
};

fn main() {
    let machine = Machine::gpu_2017(256);
    let job = TrainJob::from_dense_net(50e6, 2000, 8192, 8);
    let steps = 4000;
    let steps_per_epoch = 1000;
    let shard = 64e9; // 64 GB of training data per node

    println!(
        "50M-param net on {} ({} nodes), {steps} steps ({steps_per_epoch}/epoch), {} GB/node shard\n",
        machine.name,
        machine.nodes,
        shard / 1e9
    );

    let scenarios: Vec<(&str, Strategy, Staging)> = vec![
        (
            "data x16, PFS streaming",
            Strategy::Data { nodes: 16, algo: AllreduceAlgo::Auto },
            Staging::StreamPfs,
        ),
        (
            "data x16, NVRAM staging",
            Strategy::Data { nodes: 16, algo: AllreduceAlgo::Auto },
            Staging::StageNvram,
        ),
        (
            "data x256, NVRAM staging",
            Strategy::Data { nodes: 256, algo: AllreduceAlgo::Auto },
            Staging::StageNvram,
        ),
        (
            "hybrid 32x8, NVRAM staging",
            Strategy::Hybrid { data_ways: 32, model_ways: 8, algo: AllreduceAlgo::Auto },
            Staging::StageNvram,
        ),
    ];

    for (label, strategy, staging) in scenarios {
        let trace = trace_training_run(
            &machine,
            &job,
            strategy,
            SimPrecision::F32,
            staging,
            shard,
            steps,
            steps_per_epoch,
        );
        println!("{label}");
        println!("  [{}]", trace.timeline(70));
        println!("  {}\n", trace.summary());
    }
    println!("legend: '#' compute   '~' fabric communication   '.' storage I/O");
    println!();
    println!(
        "the three architecture asks in one picture: NVRAM staging removes the '.'
wall (E5), scale turns '#' into '~' (E2), and hybrid parallelism + bandwidth
claw compute share back (E3/E7)."
    );
    // Keep the unused-import lint honest if scenarios change:
    let _ = Phase::Compute;
}
