//! ML-supervised multi-resolution molecular dynamics: a DNN surrogate
//! learns online when a Lennard-Jones fluid can be integrated coarsely and
//! when it needs fine substeps, and is compared against always-coarse,
//! always-fine and a hand-tuned force heuristic.
//!
//! Run with: `cargo run --release --example md_supervision`

use deepdriver::mdsim::{run_supervised, LjSystem, Policy, SurrogateController};

fn main() {
    let steps = 120;
    let dt = 0.04;
    let make = || LjSystem::lattice(6, 1.3, 0.4, 99);
    println!("LJ fluid: {} particles, {} macro-steps of dt={dt}\n", make().len(), steps);

    let mut probe = make();
    let force_threshold = probe.max_force();

    let runs = vec![
        run_supervised(make(), Policy::AlwaysCoarse, steps, dt),
        run_supervised(make(), Policy::AlwaysFine, steps, dt),
        run_supervised(make(), Policy::ForceHeuristic { threshold: force_threshold }, steps, dt),
        run_supervised(make(), Policy::Surrogate(SurrogateController::new(5e-3, 1)), steps, dt),
    ];

    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>14}",
        "policy", "refine frac", "force evals", "energy drift", "rmsd vs fine"
    );
    let fine_evals = runs[1].force_evals as f64;
    for r in &runs {
        println!(
            "{:<16} {:>12.2} {:>12} {:>14.2e} {:>14.2e}",
            r.policy, r.refine_fraction, r.force_evals, r.energy_drift, r.rmsd_vs_fine
        );
    }
    let sur = &runs[3];
    let coarse = &runs[0];
    println!(
        "\nthe surrogate spends {:.0}% of the fine run's force evaluations and",
        100.0 * sur.force_evals as f64 / fine_evals
    );
    println!(
        "conserves energy {:.0}x better than always-coarse ({:.1e} vs {:.1e} drift)",
        coarse.energy_drift / sur.energy_drift.max(1e-12),
        sur.energy_drift,
        coarse.energy_drift
    );
    println!("— the ML supervision loop the paper describes for multi-resolution MD.");
    println!("(trajectory RMSD saturates for any inexact integrator: LJ dynamics are");
    println!("chaotic, so energy drift is the meaningful fidelity metric here.)");
}
