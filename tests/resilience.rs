//! Integration tests for fault-tolerant replicated serving: the hot-swap /
//! replica-crash race through the threaded engine, and driver parity for
//! the shared resilience decision core.

use deepdriver::nn::{Activation, ModelSpec, Sequential};
use deepdriver::serve::{
    Action, AttemptOutcome, BatchPolicy, BreakerPolicy, FaultSpec, HedgePolicy, ModelRegistry,
    ReplicaSetState, ResilConfig, ResilPolicy, ResilientCall, RetryPolicy, ServeConfig, Server,
};
use deepdriver::tensor::{Matrix, Precision, Rng64};
use std::sync::Arc;

fn scorer(width: usize, seed: u64) -> (ModelSpec, Sequential) {
    let spec = ModelSpec::mlp(width, &[8], 2, Activation::Tanh);
    let model = spec.build(seed, Precision::F32).expect("static spec builds");
    (spec, model)
}

/// One property case: a fault seed and the request index at which the
/// registry hot-swap lands.
#[derive(Debug, Clone, Copy)]
struct RaceCase {
    fault_seed: u64,
    swap_at: usize,
}

const RACE_REQUESTS: usize = 40;

/// Registry hot-swap racing injected replica crashes: every `Ok` answer is
/// bitwise the old or the new snapshot (never a torn mix), every admitted
/// request is answered exactly once, and failures surface as typed errors.
#[test]
fn hot_swap_racing_replica_crashes_never_tears_answers() {
    let width = 4;
    let features: Vec<f32> = (0..width).map(|i| 0.2 * (i as f32 + 1.0)).collect();
    let probe = Matrix::from_vec(1, width, features.clone());
    let (spec1, model1) = scorer(width, 101);
    let (_s, model2) = scorer(width, 202);
    let y1 = model1.predict_batch(&probe).row(0).to_vec();
    let y2 = model2.predict_batch(&probe).row(0).to_vec();
    assert_ne!(y1, y2, "differently seeded scorers must disagree on the probe");
    drop((spec1, model1, model2));

    dd_testkit::check(
        &dd_testkit::Config::with_seed(2017).cases(6),
        |rng, _| RaceCase {
            fault_seed: (rng.uniform() * 1e6) as u64,
            swap_at: 1 + (rng.uniform() * (RACE_REQUESTS as f64 - 2.0)) as usize,
        },
        |case| {
            let mut smaller = Vec::new();
            if case.swap_at > 1 {
                smaller.push(RaceCase { swap_at: case.swap_at / 2, ..*case });
            }
            smaller
        },
        |case| {
            let reg = Arc::new(ModelRegistry::new());
            let (spec, model) = scorer(width, 101);
            reg.install("scorer", spec, model);
            let config = ServeConfig {
                queue_capacity: 128,
                workers: 2,
                policy: BatchPolicy::new(4, 0.001, 10.0),
                resil: ResilConfig {
                    replicas: 3,
                    policy: ResilPolicy {
                        retry: RetryPolicy::new(6, 1e-4, 1e-3, 0.5),
                        hedge: HedgePolicy::disabled(),
                        breaker: BreakerPolicy::new(5, 0.02, 1),
                        health_eviction: true,
                    },
                    faults: FaultSpec {
                        crash_per_dispatch: 0.3,
                        respawn_s: 0.005,
                        seed: case.fault_seed,
                        ..FaultSpec::none()
                    },
                },
            };
            let server = Server::start(Arc::clone(&reg), config);
            let mut handles = Vec::new();
            for i in 0..RACE_REQUESTS {
                if i == case.swap_at {
                    let (spec2, model2) = scorer(width, 202);
                    reg.install("scorer", spec2, model2);
                }
                match server.submit("scorer", features.clone()) {
                    Ok(h) => handles.push(h),
                    Err(e) => return Err(format!("ample queue rejected request {i}: {e}")),
                }
            }
            let stats = server.shutdown();
            let admitted = handles.len() as u64;
            for (i, h) in handles.into_iter().enumerate() {
                match h.wait() {
                    Ok(row) => {
                        // Bitwise old or new — a torn answer fails both.
                        if row != y1 && row != y2 {
                            return Err(format!("answer {i} matches neither snapshot bitwise"));
                        }
                    }
                    // Crash-injected requests may exhaust their budget;
                    // that must surface as a typed error, never a hang or
                    // a second answer.
                    Err(e) => {
                        let s = e.to_string();
                        if s.is_empty() {
                            return Err(format!("answer {i}: untyped failure"));
                        }
                    }
                }
            }
            if stats.admitted != admitted {
                return Err(format!("admitted {} != {admitted}", stats.admitted));
            }
            if stats.completed + stats.shed + stats.failed != admitted {
                return Err(format!("answers {stats:?} don't sum to admitted {admitted}"));
            }
            Ok(())
        },
    );
}

/// A transcript entry from driving the shared decision core.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    Try { replica: usize, capped: bool },
    Wait,
    Finish { replica: usize },
    GiveUp,
}

/// Everything observable about one drive of the core.
#[derive(Debug, Clone, PartialEq)]
struct Transcript {
    steps: Vec<Step>,
    retries: u32,
    hedges: u32,
    evictions: u64,
    breaker_opens: u64,
}

/// Sim-style driver: virtual time advances by each outcome's elapsed
/// seconds, exactly as `simulate_chaos` does.
fn drive_sim_style(trace: &[AttemptOutcome], policy: ResilPolicy, replicas: usize) -> Transcript {
    let mut set = ReplicaSetState::new(replicas, policy.breaker, 0.05);
    let mut rng = Rng64::new(9);
    let mut call = ResilientCall::new(policy);
    let mut steps = Vec::new();
    let mut t = 0.0f64;
    let mut i = 0usize;
    loop {
        match call.next(&mut set, t) {
            Action::Wait { seconds } => {
                t += seconds;
                steps.push(Step::Wait);
            }
            Action::Try { replica, wait_cap_s } => {
                steps.push(Step::Try { replica, capped: wait_cap_s.is_finite() });
                let outcome =
                    trace.get(i).copied().unwrap_or(AttemptOutcome::Done { elapsed_s: 0.01 });
                i += 1;
                t += outcome.elapsed_s();
                call.observe(&mut set, replica, outcome, t, &mut rng);
            }
            Action::Finish { replica } => {
                steps.push(Step::Finish { replica });
                break;
            }
            Action::GiveUp { .. } => {
                steps.push(Step::GiveUp);
                break;
            }
        }
    }
    Transcript {
        steps,
        retries: call.retries(),
        hedges: call.hedges(),
        evictions: set.evictions(),
        breaker_opens: set.breaker_opens(),
    }
}

/// Server-style driver: samples a monotonic clock before each decision the
/// way `serve_job` does (sleeps become clock advances). Fed the same event
/// trace, it must take exactly the same decisions — the decision core is
/// shared, not duplicated.
fn drive_server_style(
    trace: &[AttemptOutcome],
    policy: ResilPolicy,
    replicas: usize,
) -> Transcript {
    let mut set = ReplicaSetState::new(replicas, policy.breaker, 0.05);
    let mut rng = Rng64::new(9);
    let mut call = ResilientCall::new(policy);
    let mut steps = Vec::new();
    let mut clock = 0.0f64;
    let mut i = 0usize;
    loop {
        let now = clock; // monotonic_seconds() stand-in
        match call.next(&mut set, now) {
            Action::Wait { seconds } => {
                clock += seconds; // thread::sleep stand-in
                steps.push(Step::Wait);
            }
            Action::Try { replica, wait_cap_s } => {
                steps.push(Step::Try { replica, capped: wait_cap_s.is_finite() });
                let outcome =
                    trace.get(i).copied().unwrap_or(AttemptOutcome::Done { elapsed_s: 0.01 });
                i += 1;
                clock += outcome.elapsed_s(); // the attempt's real duration
                call.observe(&mut set, replica, outcome, clock, &mut rng);
            }
            Action::Finish { replica } => {
                steps.push(Step::Finish { replica });
                break;
            }
            Action::GiveUp { .. } => {
                steps.push(Step::GiveUp);
                break;
            }
        }
    }
    Transcript {
        steps,
        retries: call.retries(),
        hedges: call.hedges(),
        evictions: set.evictions(),
        breaker_opens: set.breaker_opens(),
    }
}

#[test]
fn decision_core_parity_on_identical_event_traces() {
    let policy = ResilPolicy {
        retry: RetryPolicy::new(4, 1e-3, 16e-3, 0.5),
        hedge: HedgePolicy::after(0.02, 1),
        breaker: BreakerPolicy::new(3, 0.25, 1),
        health_eviction: true,
    };
    let traces: Vec<Vec<AttemptOutcome>> = vec![
        // Happy path.
        vec![AttemptOutcome::Done { elapsed_s: 0.01 }],
        // Crash, retry elsewhere, succeed.
        vec![
            AttemptOutcome::Crashed { elapsed_s: 0.002 },
            AttemptOutcome::Done { elapsed_s: 0.01 },
        ],
        // Straggler hedged away, hedge succeeds.
        vec![
            AttemptOutcome::TimedOut { elapsed_s: 0.02 },
            AttemptOutcome::Done { elapsed_s: 0.008 },
        ],
        // Corrupt twice, then success.
        vec![
            AttemptOutcome::Corrupt { elapsed_s: 0.01 },
            AttemptOutcome::Corrupt { elapsed_s: 0.01 },
            AttemptOutcome::Done { elapsed_s: 0.01 },
        ],
        // Budget exhaustion: four straight crashes.
        vec![AttemptOutcome::Crashed { elapsed_s: 0.001 }; 4],
        // Hedge, then crash on the hedge, then success.
        vec![
            AttemptOutcome::TimedOut { elapsed_s: 0.02 },
            AttemptOutcome::Crashed { elapsed_s: 0.003 },
            AttemptOutcome::Done { elapsed_s: 0.009 },
        ],
    ];
    for (k, trace) in traces.iter().enumerate() {
        let sim = drive_sim_style(trace, policy, 3);
        let srv = drive_server_style(trace, policy, 3);
        assert_eq!(sim, srv, "trace {k}: engines diverged on an identical event trace");
    }
    // Spot-check the exhaustion trace, so parity is not trivially about
    // empty transcripts: three crashes evict all three replicas (health
    // eviction), the pool is empty, and the core gives up after consuming
    // two retries — it never reaches the fourth scripted crash.
    let sim = drive_sim_style(&traces[4], policy, 3);
    assert_eq!(sim.steps.last(), Some(&Step::GiveUp));
    assert_eq!(sim.retries, 2, "3 attempts issued = 1 original + 2 retries");
    assert_eq!(sim.evictions, 3, "every replica is marked down by its crash");
}
