//! Thread-count invariance: the same seed must produce bitwise-identical
//! results whether Rayon runs on 1 thread or 4. The parallel kernels
//! partition output rows into disjoint chunks, so the floating-point
//! reduction order never depends on the pool width — these tests pin that
//! property for the raw kernels, a full training epoch, and the serving
//! simulator behind experiment e13.
//!
//! `scripts/check.sh` additionally runs this suite under
//! `RAYON_NUM_THREADS=1` and `=4` to cover the *global* pool path; here we
//! build scoped pools so one process exercises both widths.

use dd_nn::{Activation, Loss, LrSchedule, ModelSpec, OptimizerConfig, TrainConfig, Trainer};
use dd_tensor::kernel::{gemm_prec, simd_available, Backend, Orient};
use dd_tensor::{
    matmul_nt_prec, matmul_prec, matmul_tn_prec, Matrix, Precision, Rng64, PAR_MIN_OUT,
};
use dd_testkit::{check_thread_invariance, f32_bits, THREAD_COUNTS};
use deepdriver_core::experiments::e13_serving;
use deepdriver_core::Scale;

/// Matmul kernels, at a size that actually takes the parallel path.
#[test]
fn matmul_kernels_are_bitwise_identical_across_pool_widths() {
    let (m, k, n) = (96, 64, 128);
    assert!(m * n >= PAR_MIN_OUT, "test shape no longer crosses the parallel gate");
    let mut rng = Rng64::new(0xDE7);
    let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
    let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
    let bt = b.transpose();
    let at = a.transpose();

    for p in [Precision::F32, Precision::F64, Precision::Bf16, Precision::F16, Precision::Int8] {
        check_thread_invariance(&THREAD_COUNTS, || {
            let mut bits = f32_bits(matmul_prec(&a, &b, p).as_slice());
            bits.extend(f32_bits(matmul_nt_prec(&a, &bt, p).as_slice()));
            bits.extend(f32_bits(matmul_tn_prec(&at, &b, p).as_slice()));
            bits
        })
        .unwrap_or_else(|e| panic!("{p:?}: {e}"));
    }
}

/// The SIMD and scalar backends of the blocked kernel must agree bitwise:
/// the microkernels run the same single-rounding FMA recurrence per output
/// element (`vfmadd` vs `f32::mul_add`), the int8 contraction is exact
/// integer arithmetic either way, and quantization shares one source
/// expression across both codegen paths. Skipped (vacuously passing) on
/// hosts without AVX2+FMA, where only the scalar backend exists.
#[test]
fn simd_and_scalar_backends_are_bitwise_identical() {
    if !simd_available() {
        return;
    }
    let mut rng = Rng64::new(0x51D);
    // Straddle the MR/NR/KC boundaries and the parallel gate.
    for (m, k, n) in [(5, 7, 15), (96, 64, 128), (65, 257, 33), (1, 300, 1)] {
        let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
        for orient in [Orient::Nn, Orient::Nt, Orient::Tn] {
            // gemm_prec takes operands in kernel layout: Nt wants B as n×k,
            // Tn wants A as k×m.
            let (ak, bk) = match orient {
                Orient::Nn => (a.clone(), b.clone()),
                Orient::Nt => (a.clone(), b.transpose()),
                Orient::Tn => (a.transpose(), b.clone()),
            };
            for p in
                [Precision::F32, Precision::F64, Precision::Bf16, Precision::F16, Precision::Int8]
            {
                let simd = gemm_prec(&ak, &bk, orient, p, Backend::Simd);
                let scalar = gemm_prec(&ak, &bk, orient, p, Backend::Scalar);
                assert_eq!(
                    f32_bits(simd.as_slice()),
                    f32_bits(scalar.as_slice()),
                    "{orient:?}/{p:?} {m}x{k}x{n}: SIMD and scalar backends diverged"
                );
            }
        }
    }
}

/// Backend parity must also hold *through* the pool: running the SIMD and
/// scalar backends under every thread count must give one identical answer.
#[test]
fn backend_parity_is_thread_invariant() {
    if !simd_available() {
        return;
    }
    let mut rng = Rng64::new(0xB17);
    let a = Matrix::randn(96, 33, 0.0, 1.0, &mut rng);
    let b = Matrix::randn(33, 128, 0.0, 1.0, &mut rng);
    check_thread_invariance(&THREAD_COUNTS, || {
        let mut bits =
            f32_bits(gemm_prec(&a, &b, Orient::Nn, Precision::F32, Backend::Simd).as_slice());
        bits.extend(f32_bits(
            gemm_prec(&a, &b, Orient::Nn, Precision::F32, Backend::Scalar).as_slice(),
        ));
        bits.extend(f32_bits(
            gemm_prec(&a, &b, Orient::Nn, Precision::Int8, Backend::Simd).as_slice(),
        ));
        bits.extend(f32_bits(
            gemm_prec(&a, &b, Orient::Nn, Precision::Int8, Backend::Scalar).as_slice(),
        ));
        bits
    })
    .unwrap_or_else(|e| panic!("{e}"));
}

/// One full training epoch — forward, backward, optimizer, shuffle — must
/// be a pure function of the seed, independent of the worker count.
#[test]
fn training_epoch_is_bitwise_identical_across_pool_widths() {
    // batch 64 x hidden 256 = 16384 >= PAR_MIN_OUT: the epoch's matmuls
    // genuinely dispatch to the pool under test.
    let run_one = || {
        let spec = ModelSpec::mlp(32, &[256], 4, Activation::Relu);
        let mut model = spec.build(11, Precision::F32).expect("valid spec");
        let mut rng = Rng64::new(12);
        let x = Matrix::randn(128, 32, 0.0, 1.0, &mut rng);
        let y = Matrix::randn(128, 4, 0.0, 1.0, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            batch_size: 64,
            epochs: 1,
            optimizer: OptimizerConfig::adam(1e-3),
            schedule: LrSchedule::Constant,
            loss: Loss::Mse,
            patience: None,
            grad_clip: Some(5.0),
            seed: 13,
        });
        let loss = trainer.run_epoch(&mut model, &x, &y, 0).expect("epoch trains");
        (loss.to_bits(), f32_bits(&model.flatten_params()))
    };
    check_thread_invariance(&THREAD_COUNTS, run_one).unwrap_or_else(|e| panic!("{e}"));
}

/// The e13 serving simulator (admission control, batching, latency model)
/// must emit byte-identical reports regardless of pool width.
#[test]
fn e13_serving_report_is_byte_identical_across_pool_widths() {
    check_thread_invariance(&THREAD_COUNTS, || e13_serving::run(Scale::Smoke, 2017).to_csv())
        .unwrap_or_else(|e| panic!("{e}"));
}
