//! Integration tests for the parallelism engines: data-parallel training
//! equivalence, model-parallel partition fidelity, and agreement between
//! the real implementations and the simulator's cost structure.

use deepdriver::hpcsim::AllreduceAlgo;
use deepdriver::parallel::{
    build_stages, partition_by_params, train_data_parallel, DataParallelConfig,
};
use deepdriver::prelude::*;

fn toy_data(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = Rng64::new(seed);
    let x = Matrix::randn(n, 6, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(n, 1, |i, _| (x.get(i, 0) * x.get(i, 1) + x.get(i, 2)).tanh());
    (x, y)
}

#[test]
fn data_parallel_equivalence_across_world_sizes() {
    let (x, y) = toy_data(192, 1);
    let spec = ModelSpec::mlp(6, &[16], 1, Activation::Tanh);
    let run = |world: usize| {
        train_data_parallel(
            &spec,
            &x,
            &y,
            &DataParallelConfig {
                world,
                global_batch: 48,
                epochs: 4,
                seed: 5,
                ..Default::default()
            },
        )
        .expect("data-parallel run succeeds")
        .final_params
    };
    let p1 = run(1);
    for world in [2, 3, 4, 6] {
        let pw = run(world);
        let max_diff = p1.iter().zip(&pw).map(|(a, b)| (a - b).abs()).fold(0f32, f32::max);
        assert!(max_diff < 2e-3, "world {world} diverged by {max_diff}");
    }
}

#[test]
fn model_parallel_stages_match_whole_model_predictions() {
    let spec = ModelSpec::mlp(12, &[48, 24, 12], 3, Activation::Relu);
    let mut whole = spec.build(7, Precision::F32).unwrap();
    let mut rng = Rng64::new(8);
    let x = Matrix::randn(10, 12, 0.0, 1.0, &mut rng);
    let y_whole = whole.predict(&x);
    for parts in [2, 3, 4] {
        let partition = partition_by_params(&spec, parts).expect("spec builds");
        let mut staged = build_stages(&spec, &partition, 7, Precision::F32).expect("spec builds");
        let y_staged = staged.forward(&x, false);
        assert!(y_whole.approx_eq(&y_staged, 1e-4), "{parts}-way partition changed predictions");
    }
}

#[test]
fn simulated_allreduce_ordering_matches_real_traffic_shape() {
    // The real ring sends 2(p-1)/p of the buffer per rank; the simulator's
    // ring model must charge time proportional to the same byte count.
    let fabric = deepdriver::hpcsim::Fabric::infiniband_2017();
    let bytes = 1e8;
    let t4 = deepdriver::hpcsim::allreduce_time(&fabric, AllreduceAlgo::Ring, bytes, 4);
    let t8 = deepdriver::hpcsim::allreduce_time(&fabric, AllreduceAlgo::Ring, bytes, 8);
    // Bandwidth term: 2(p-1)/p · bytes → ratio (2·7/8)/(2·3/4) = 7/6.
    let ratio = t8 / t4;
    assert!((ratio - 7.0 / 6.0).abs() < 0.05, "ratio {ratio}");
}

#[test]
fn planner_never_worse_than_default_data_parallel() {
    use deepdriver::parallel::best_plan;
    let machine = Machine::gpu_2017(64);
    for params in [1e6, 50e6, 500e6] {
        let job = TrainJob::from_dense_net(params, 100, 4096, 8);
        let plan = best_plan(&machine, &job, 64, SimPrecision::F32);
        let default = deepdriver::hpcsim::step_time(
            &machine,
            &job,
            Strategy::Data { nodes: 64, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
        assert!(
            plan.breakdown.step <= default.step + 1e-12,
            "{params} params: plan {:?} slower than default",
            plan.strategy
        );
    }
}
