//! Differential kernel oracle: every matmul orientation and precision path
//! replayed against an exact f64 reference with precision-derived error
//! bounds, plus edge-shape regressions (zero and unit dimensions, the
//! parallel-dispatch threshold) across all kernels.

use dd_tensor::kernel::{KC, MC, MR, NR};
use dd_tensor::{
    matmul, matmul_nt, matmul_nt_prec, matmul_prec, matmul_tn, matmul_tn_prec, matvec, Matrix,
    Precision, Rng64, PAR_MIN_OUT,
};
use dd_testkit::{check, check_matmul, f32_bits, Config, MatDims, Orientation};

const PRECISIONS: [Precision; 5] =
    [Precision::F32, Precision::F64, Precision::Bf16, Precision::F16, Precision::Int8];

/// 200 random cases per orientation, each checked across all five precision
/// paths against the f64 reference. The testkit derives the bound from the
/// precision's unit roundoff; any element outside it is a kernel bug.
#[test]
fn all_orientations_and_precisions_stay_within_error_bounds() {
    for orient in Orientation::ALL {
        check(
            &Config::with_seed(0x0AC1E ^ orient as u64).cases(200),
            |rng, _| MatDims::sample(rng, 1, 24),
            |d| d.shrink(1),
            |dims| {
                for p in PRECISIONS {
                    check_matmul(dims, orient, p).map_err(|f| f.to_string())?;
                }
                Ok(())
            },
        );
    }
}

/// Degenerate shapes: m, k or n of zero must yield a well-shaped all-zero
/// result (an empty contraction is a sum over nothing), not a panic.
#[test]
fn zero_dimension_matmuls_return_empty_or_zero_results() {
    for (m, k, n) in [(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0), (1, 0, 1)] {
        let a = Matrix::zeros(m, k);
        let b = Matrix::zeros(k, n);
        for p in PRECISIONS {
            let c = matmul_prec(&a, &b, p);
            assert_eq!(c.shape(), (m, n), "matmul {m}x{k}x{n} {p:?}");
            assert!(c.as_slice().iter().all(|&v| v == 0.0));

            let c = matmul_nt_prec(&a, &b.transpose(), p);
            assert_eq!(c.shape(), (m, n), "matmul_nt {m}x{k}x{n} {p:?}");
            assert!(c.as_slice().iter().all(|&v| v == 0.0));

            let c = matmul_tn_prec(&a.transpose(), &b, p);
            assert_eq!(c.shape(), (m, n), "matmul_tn {m}x{k}x{n} {p:?}");
            assert!(c.as_slice().iter().all(|&v| v == 0.0));
        }
    }
}

/// A zero-width matrix times an empty vector is m zeros, not an empty vector.
#[test]
fn matvec_handles_zero_and_unit_dimensions() {
    assert_eq!(matvec(&Matrix::zeros(3, 0), &[]), vec![0.0; 3]);
    assert_eq!(matvec(&Matrix::zeros(0, 4), &[1.0; 4]), Vec::<f32>::new());
    assert_eq!(matvec(&Matrix::full(1, 1, 2.0), &[3.0]), vec![6.0]);
}

/// Unit dimensions through every orientation: 1xk·kx1, mx1·1xn, 1x1·1x1.
#[test]
fn unit_dimension_matmuls_match_the_oracle() {
    let mut rng = Rng64::new(0x0E1);
    for _ in 0..50 {
        let dims = MatDims {
            m: rng.below(2), // 0 or 1
            k: rng.below(3),
            n: rng.below(2),
            data_seed: rng.next_u64(),
        };
        for orient in Orientation::ALL {
            for p in PRECISIONS {
                if let Err(f) = check_matmul(&dims, orient, p) {
                    panic!("unit-dim case {dims:?}: {f}");
                }
            }
        }
    }
}

/// The sequential and parallel code paths must agree bitwise. Straddle the
/// dispatch threshold: m*n just below, at, and above `PAR_MIN_OUT`.
#[test]
fn parallel_threshold_boundary_is_bitwise_consistent() {
    assert_eq!(PAR_MIN_OUT, 8 * 1024, "threshold moved; update the boundary shapes below");
    let mut rng = Rng64::new(0x7B0);
    let k = 16;
    for n in [127, 128, 129] {
        // m*n = 8128 / 8192 / 8256 around the 8192 gate.
        let m = 64;
        let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
        let dims = MatDims { m, k, n, data_seed: rng.next_u64() };
        for orient in Orientation::ALL {
            for p in PRECISIONS {
                if let Err(f) = check_matmul(&dims, orient, p) {
                    panic!("boundary case m*n={} {orient:?}: {f}", m * n);
                }
            }
        }
        // A 1-row product never takes the parallel path (m > 1 gate); its
        // single output row must match the same row of the full product.
        let c_full = matmul(&a, &b);
        let a0 = Matrix::from_rows(&[a.row(0)]);
        let c_row = matmul(&a0, &b);
        assert_eq!(f32_bits(c_row.row(0)), f32_bits(c_full.row(0)), "n={n}: row 0 diverged");
    }
}

/// `matvec` and `matmul_nt` share the same `dot` kernel, so a matrix-vector
/// product must be bitwise identical to the corresponding 1-column nt-matmul.
#[test]
fn matvec_is_bitwise_consistent_with_matmul_nt() {
    let mut rng = Rng64::new(0x3A7);
    for (m, k) in [(1, 1), (3, 7), (8, 32), (17, 5)] {
        let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
        let x: Vec<f32> = (0..k).map(|_| rng.gaussian() as f32).collect();
        let xm = Matrix::from_rows(&[x.as_slice()]);
        let via_nt = matmul_nt(&a, &xm);
        let direct = matvec(&a, &x);
        assert_eq!(f32_bits(&direct), f32_bits(via_nt.as_slice()), "{m}x{k}");

        // And both must agree with an exact f64 reference to f32 roundoff.
        for (i, &di) in direct.iter().enumerate() {
            let reference: f64 =
                a.row(i).iter().zip(&x).map(|(&av, &xv)| av as f64 * xv as f64).sum();
            let abs: f64 = a.row(i).iter().zip(&x).map(|(&av, &xv)| (av * xv).abs() as f64).sum();
            let bound = 2.0 * (k as f64 + 1.0) * f64::powi(2.0, -24) * abs + 1e-7;
            assert!(
                (di as f64 - reference).abs() <= bound,
                "matvec[{i}] {m}x{k}: {di} vs {reference}"
            );
        }
    }
}

/// The transpose orientations must agree with explicitly transposed inputs
/// through the plain kernel — same math, different memory walk.
#[test]
fn orientation_variants_agree_with_explicit_transposes() {
    let mut rng = Rng64::new(0x7A2);
    for _ in 0..20 {
        let (m, k, n) = (1 + rng.below(8), 1 + rng.below(12), 1 + rng.below(8));
        let a = Matrix::randn(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 0.0, 1.0, &mut rng);
        let c = matmul(&a, &b);
        // Orientation is absorbed at packing time in the blocked kernel, so
        // every orientation shares one reduction order and both transpose
        // variants are bitwise-identical to the plain product.
        let c_tn = matmul_tn(&a.transpose(), &b);
        assert_eq!(f32_bits(c.as_slice()), f32_bits(c_tn.as_slice()), "tn {m}x{k}x{n}");
        let c_nt = matmul_nt(&a, &b.transpose());
        assert_eq!(f32_bits(c.as_slice()), f32_bits(c_nt.as_slice()), "nt {m}x{k}x{n}");
    }
}

/// Adversarial shapes straddling every blocking boundary of the tiled
/// kernel: the MR-row tile, the NR-column strip, the KC contraction panel
/// and the MC row block, each at `boundary − 1 / boundary / boundary + 1`,
/// plus sub-tile contractions, degenerate 1×N / M×1 products and prime
/// extents that divide none of the block sizes. Every shape runs through
/// all three orientations and all five precision paths against the f64
/// oracle — edge tiles take the zero-padded packing paths, so this is
/// where off-by-one packing bugs surface.
#[test]
fn tile_boundary_shapes_survive_every_orientation_and_precision() {
    assert_eq!(
        (MR, NR, KC, MC),
        (6, 16, 256, 64),
        "blocking constants moved; rebalance the boundary shapes below"
    );
    let mut shapes: Vec<(usize, usize, usize)> = Vec::new();
    // One blocking dimension at a time swept across its boundary, the
    // others held at awkward (non-multiple) sizes.
    for m in [MR - 1, MR, MR + 1, MC - 1, MC, MC + 1] {
        shapes.push((m, 33, NR + 1));
    }
    for n in [NR - 1, NR, NR + 1, 2 * NR - 1, 2 * NR, 2 * NR + 1] {
        shapes.push((MR + 1, 33, n));
    }
    for k in [1, 2, 3, 5, KC - 1, KC, KC + 1] {
        shapes.push((MR + 1, k, NR + 1));
    }
    // Degenerate single-row / single-column products around a deep panel.
    shapes.extend([(1, 37, 33), (33, 37, 1), (1, KC + 1, 1)]);
    // Primes: no extent divides any block size.
    shapes.extend([(13, 257, 31), (29, 31, 13), (7, 127, 23)]);

    let mut rng = Rng64::new(0x71E5);
    for (m, k, n) in shapes {
        let dims = MatDims { m, k, n, data_seed: rng.next_u64() };
        for orient in Orientation::ALL {
            for p in PRECISIONS {
                if let Err(f) = check_matmul(&dims, orient, p) {
                    panic!("tile-boundary case {m}x{k}x{n}: {f}");
                }
            }
        }
    }
}
