//! Integration tests for multi-tenant serving: bit-identical scheduler
//! transcripts between the two engine shapes driving the shared decision
//! core, per-tenant hot-swap isolation through the threaded server, and
//! quota/priority behaviour end to end.

use deepdriver::nn::{Activation, ModelSpec, Sequential};
use deepdriver::serve::{
    plan_fair, AutoscalePolicy, Autoscaler, BatchPolicy, DrrScheduler, ModelRegistry,
    PriorityClass, QueueView, ScaleDecision, SchedDecision, ServeConfig, ServeError, Server,
    TenantDirectory, TenantSpec,
};
use deepdriver::tensor::{Matrix, Precision};
use std::collections::VecDeque;
use std::sync::Arc;

fn scorer(width: usize, seed: u64) -> (ModelSpec, Sequential) {
    let spec = ModelSpec::mlp(width, &[8], 2, Activation::Tanh);
    let model = spec.build(seed, Precision::F32).expect("static spec builds");
    (spec, model)
}

fn two_class_directory() -> TenantDirectory {
    TenantDirectory::new(vec![
        TenantSpec::new("clinic", PriorityClass::Interactive, 1, 64, "m-clinic"),
        TenantSpec::new("screen", PriorityClass::Batch, 2, 256, "m-screen"),
        TenantSpec::new("scav", PriorityClass::BestEffort, 1, 64, "m-screen"),
    ])
    .unwrap()
}

/// One scheduler-transcript entry. Times are captured as raw `f64` bits so
/// equality between the two drivers is *bit*-identity, not tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SchedEvent {
    Dispatch { at_bits: u64, tenant: usize, n: usize },
    Scale { at_bits: u64, active: usize },
}

/// Everything observable about one drive of the multi-tenant decision core.
#[derive(Debug, Clone, PartialEq)]
struct SchedTranscript {
    events: Vec<SchedEvent>,
    shed: Vec<usize>,
    completed: Vec<usize>,
}

const SVC_BASE_S: f64 = 0.005;
const SVC_PER_ROW_S: f64 = 0.001;

fn svc_seconds(n: usize) -> f64 {
    SVC_BASE_S + SVC_PER_ROW_S * n as f64
}

/// Shared per-driver state over the pure decision core.
struct CoreState {
    queues: Vec<VecDeque<f64>>,
    sched: DrrScheduler,
    scaler: Autoscaler,
    free: Vec<f64>,
    active: usize,
    shed: Vec<usize>,
    completed: Vec<usize>,
    events: Vec<SchedEvent>,
}

impl CoreState {
    fn new(dir: &TenantDirectory, scale: AutoscalePolicy) -> CoreState {
        CoreState {
            queues: (0..dir.len()).map(|_| VecDeque::new()).collect(),
            sched: DrrScheduler::new(dir),
            scaler: Autoscaler::new(scale),
            free: vec![0.0; scale.max_replicas],
            active: scale.min_replicas,
            shed: vec![0; dir.len()],
            completed: vec![0; dir.len()],
            events: Vec::new(),
        }
    }

    fn total_pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn worker_free(&self) -> f64 {
        self.free[..self.active].iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn shed_expired(&mut self, policy: &BatchPolicy, now: f64) {
        for (t, q) in self.queues.iter_mut().enumerate() {
            while let Some(&enq) = q.front() {
                if now - enq <= policy.deadline_s {
                    break;
                }
                q.pop_front();
                self.shed[t] += 1;
            }
        }
    }

    fn views(&self) -> Vec<QueueView> {
        self.queues
            .iter()
            .map(|q| match q.front() {
                Some(&enq) => QueueView { pending: q.len(), oldest_s: enq },
                None => QueueView::empty(),
            })
            .collect()
    }

    /// Commit a dispatch decided by `plan_fair` and sample the autoscaler
    /// on the depth it left behind — the exact sequence both engines run.
    fn commit_dispatch(&mut self, now: f64, tenant: usize, n: usize) {
        let done = now + svc_seconds(n);
        let mut wi = 0usize;
        for k in 1..self.active {
            if self.free[k] < self.free[wi] {
                wi = k;
            }
        }
        self.free[wi] = done;
        for _ in 0..n {
            self.queues[tenant].pop_front();
        }
        self.completed[tenant] += n;
        self.sched.charge(tenant, n);
        self.events.push(SchedEvent::Dispatch { at_bits: now.to_bits(), tenant, n });
        let depth = self.total_pending();
        match self.scaler.decide(now, depth, self.active) {
            ScaleDecision::Grow => self.active += 1,
            ScaleDecision::Shrink => self.active -= 1,
            ScaleDecision::Hold => return,
        }
        self.events.push(SchedEvent::Scale { at_bits: now.to_bits(), active: self.active });
    }

    fn finish(self) -> SchedTranscript {
        SchedTranscript { events: self.events, shed: self.shed, completed: self.completed }
    }
}

/// Sim-style driver: explicit discrete events on virtual time, exactly the
/// shape of `simulate_tenants`' fair path — arrivals win ties, the
/// dispatch event fires at the earliest legal instant, and the decision
/// core is consulted once per event.
fn drive_sim_style(
    trace: &[(f64, usize)],
    dir: &TenantDirectory,
    policy: &BatchPolicy,
    scale: AutoscalePolicy,
) -> SchedTranscript {
    let mut st = CoreState::new(dir, scale);
    let mut next = 0usize;
    let mut now = 0.0f64;
    loop {
        let na = trace.get(next).copied();
        let draining = na.is_none();
        let dispatch_at = if st.total_pending() == 0 {
            None
        } else {
            let mut ready = f64::INFINITY;
            for q in &st.queues {
                if let Some(&oldest) = q.front() {
                    let rt = if q.len() >= policy.max_batch || draining {
                        now
                    } else {
                        oldest + policy.max_wait_s
                    };
                    ready = ready.min(rt);
                }
            }
            Some(ready.max(st.worker_free()).max(now))
        };
        let take_arrival = match (na, dispatch_at) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((ta, _)), Some(td)) => ta <= td,
        };
        if take_arrival {
            let Some((ta, t)) = na else { unreachable!("take_arrival implies an arrival") };
            now = ta;
            next += 1;
            st.queues[t].push_back(ta);
        } else {
            let Some(td) = dispatch_at else { unreachable!("dispatch event exists") };
            now = now.max(td);
            st.shed_expired(policy, now);
            let views = st.views();
            if let SchedDecision::Dispatch { tenant, n } =
                plan_fair(policy, &mut st.sched, now, &views, draining)
            {
                st.commit_dispatch(now, tenant, n);
            }
        }
    }
    st.finish()
}

/// Server-style driver: the batcher-loop shape — ingest everything already
/// arrived, shed, plan, then sleep (`recv_timeout`) or block on the worker
/// gate — with a virtual clock standing in for `monotonic_seconds()`. Fed
/// the same scripted trace it must produce the *bit*-identical transcript:
/// the decision core is shared, not duplicated.
fn drive_server_style(
    trace: &[(f64, usize)],
    dir: &TenantDirectory,
    policy: &BatchPolicy,
    scale: AutoscalePolicy,
) -> SchedTranscript {
    let mut st = CoreState::new(dir, scale);
    let mut clock = 0.0f64;
    let mut ingested = 0usize;
    let mut draining = false;
    loop {
        // rx.try_recv() loop: move everything already queued into pending.
        while let Some(&(ta, t)) = trace.get(ingested) {
            if ta > clock {
                break;
            }
            st.queues[t].push_back(ta);
            ingested += 1;
        }
        if ingested == trace.len() {
            draining = true;
        }
        // The bounded job channel is the worker gate: with every worker
        // busy the batcher blocks, waking when one frees up.
        if st.total_pending() > 0 {
            let worker = st.worker_free();
            if worker > clock {
                clock = worker;
                continue;
            }
        }
        let now = clock;
        st.shed_expired(policy, now);
        let views = st.views();
        match plan_fair(policy, &mut st.sched, now, &views, draining) {
            SchedDecision::Idle => {
                if draining {
                    break;
                }
                // rx.recv(): block for the next arrival.
                let Some(&(ta, _)) = trace.get(ingested) else { unreachable!("not draining") };
                clock = ta;
            }
            SchedDecision::WaitFor(s) => {
                // rx.recv_timeout(s): wake at the flush point or the next
                // arrival, whichever lands first.
                clock = match trace.get(ingested) {
                    Some(&(ta, _)) => (now + s).min(ta),
                    None => now + s,
                };
            }
            SchedDecision::Dispatch { tenant, n } => {
                st.commit_dispatch(now, tenant, n);
            }
        }
    }
    st.finish()
}

fn scripted_traces() -> Vec<Vec<(f64, usize)>> {
    vec![
        // Steady interleave across classes.
        (0..60).map(|i| (0.003 * i as f64, i % 3)).collect(),
        // Batch burst flooding a steady interactive trickle.
        {
            let mut t: Vec<(f64, usize)> = (0..40).map(|i| (0.010 * i as f64, 0)).collect();
            t.extend((0..200).map(|i| (0.05 + 0.0002 * i as f64, 1)));
            t.sort_by(|a, b| a.0.total_cmp(&b.0));
            t
        },
        // Simultaneous arrivals: directory order must break every tie.
        (0..90).map(|i| (0.004 * (i / 3) as f64, i % 3)).collect(),
        // Sparse trickle that exercises deadline shedding (gaps > deadline).
        (0..20).map(|i| (0.9 * i as f64, (i % 2) + 1)).collect(),
        // Best-effort only, then a late interactive preemption.
        {
            let mut t: Vec<(f64, usize)> = (0..80).map(|i| (0.002 * i as f64, 2)).collect();
            t.extend((0..10).map(|i| (0.08 + 0.001 * i as f64, 0)));
            t.sort_by(|a, b| a.0.total_cmp(&b.0));
            t
        },
    ]
}

/// The tentpole's parity claim: the threaded batcher shape and the
/// virtual-time event shape drive the *same* scheduler state machines and
/// produce bit-identical dispatch/scale transcripts on scripted traces.
#[test]
fn scheduler_transcripts_are_bit_identical_across_engine_shapes() {
    let dir = two_class_directory();
    let policy = BatchPolicy::new(4, 0.002, 0.25);
    let scale = AutoscalePolicy::new(1, 3, 8, 2, 0.05);
    for (i, trace) in scripted_traces().iter().enumerate() {
        let sim = drive_sim_style(trace, &dir, &policy, scale);
        let srv = drive_server_style(trace, &dir, &policy, scale);
        assert_eq!(sim, srv, "trace {i}: engine shapes diverged");
        let total: usize = sim.completed.iter().sum::<usize>() + sim.shed.iter().sum::<usize>();
        assert_eq!(total, trace.len(), "trace {i}: requests must be conserved");
    }
    // The transcripts must be non-trivial: dispatches happen, the burst
    // trace scales up, and the sparse trace sheds.
    let dir2 = two_class_directory();
    let burst = &scripted_traces()[1];
    let t = drive_sim_style(burst, &dir2, &policy, scale);
    assert!(t.events.iter().any(|e| matches!(e, SchedEvent::Scale { .. })), "burst must scale");
    let sparse = &scripted_traces()[3];
    let t = drive_sim_style(sparse, &dir2, &policy, scale);
    assert!(t.events.iter().any(|e| matches!(e, SchedEvent::Dispatch { .. })));
}

/// One property case for the tenanted hot-swap race.
#[derive(Debug, Clone, Copy)]
struct SwapCase {
    model_seed: u64,
    swap_at: usize,
}

const SWAP_ROUNDS: usize = 12;

/// Hot-swap isolation: swapping one tenant's model mid-stream never
/// perturbs another tenant's answers — tenant A's responses stay bitwise
/// equal to A's snapshot across B's swap, while B's answers are bitwise
/// the old or the new snapshot, never a torn mix.
#[test]
fn tenant_hot_swap_is_isolated_to_the_swapped_tenant() {
    let width = 4;
    let features: Vec<f32> = (0..width).map(|i| 0.1 * (i as f32 + 1.0)).collect();
    let probe = Matrix::from_vec(1, width, features.clone());

    dd_testkit::check(
        &dd_testkit::Config::with_seed(2017).cases(4),
        |rng, _| SwapCase {
            model_seed: 300 + (rng.uniform() * 1e4) as u64,
            swap_at: 1 + (rng.uniform() * (SWAP_ROUNDS as f64 - 2.0)) as usize,
        },
        |case| {
            let mut smaller = Vec::new();
            if case.swap_at > 1 {
                smaller.push(SwapCase { swap_at: case.swap_at / 2, ..*case });
            }
            smaller
        },
        |case| {
            let reg = Arc::new(ModelRegistry::new());
            let (spec_a, model_a) = scorer(width, 11);
            let (spec_b, model_b) = scorer(width, 22);
            let ya = model_a.predict_batch(&probe).row(0).to_vec();
            let yb_old = model_b.predict_batch(&probe).row(0).to_vec();
            reg.install("m-a", spec_a, model_a);
            reg.install("m-b", spec_b, model_b);
            let (_s, probe_model) = scorer(width, case.model_seed);
            let yb_new = probe_model.predict_batch(&probe).row(0).to_vec();

            let directory = TenantDirectory::new(vec![
                TenantSpec::new("alpha", PriorityClass::Interactive, 1, 32, "m-a"),
                TenantSpec::new("beta", PriorityClass::Batch, 1, 32, "m-b"),
            ])
            .map_err(|e| e.to_string())?;
            let config = ServeConfig {
                queue_capacity: 64,
                workers: 2,
                policy: BatchPolicy::new(4, 0.001, 10.0),
                ..ServeConfig::default()
            };
            let scale = AutoscalePolicy::new(1, 2, 16, 2, 0.01);
            let server = Server::start_tenanted(Arc::clone(&reg), config, directory, scale);

            for round in 0..SWAP_ROUNDS {
                if round == case.swap_at {
                    // Model builds are seed-deterministic, so this install
                    // is bitwise the same network as `probe_model`.
                    let (spec2, swapped) = scorer(width, case.model_seed);
                    reg.install("m-b", spec2, swapped);
                }
                let ha = server
                    .submit_as("alpha", features.clone())
                    .map_err(|e| format!("alpha round {round}: {e}"))?;
                let hb = server
                    .submit_as("beta", features.clone())
                    .map_err(|e| format!("beta round {round}: {e}"))?;
                let ra = ha.wait().map_err(|e| format!("alpha answer {round}: {e}"))?;
                let rb = hb.wait().map_err(|e| format!("beta answer {round}: {e}"))?;
                // Isolation: alpha's answers never change across beta's swap.
                if ra != ya {
                    return Err(format!("alpha answer {round} perturbed by beta's swap"));
                }
                // Beta: bitwise old or new, never torn.
                if rb != yb_old && rb != yb_new {
                    return Err(format!("beta answer {round} matches neither snapshot"));
                }
            }
            let stats = server.shutdown();
            if stats.completed != (2 * SWAP_ROUNDS) as u64 {
                return Err(format!("all answers must complete: {stats:?}"));
            }
            Ok(())
        },
    );
}

/// Quota admission is per-tenant, typed, and leaves other tenants alone;
/// per-tenant counters and class telemetry reconcile with the outcome.
#[test]
fn quotas_isolate_tenants_and_class_telemetry_reconciles() {
    let width = 4;
    let reg = Arc::new(ModelRegistry::new());
    let (spec_a, model_a) = scorer(width, 31);
    let (spec_b, model_b) = scorer(width, 32);
    reg.install("m-a", spec_a, model_a);
    reg.install("m-b", spec_b, model_b);
    let directory = TenantDirectory::new(vec![
        TenantSpec::new("alpha", PriorityClass::Interactive, 1, 64, "m-a"),
        TenantSpec::new("beta", PriorityClass::Batch, 1, 2, "m-b"),
    ])
    .unwrap();
    let config = ServeConfig {
        queue_capacity: 64,
        workers: 1,
        // A long max_wait holds submissions in the queue so beta's tiny
        // quota genuinely fills.
        policy: BatchPolicy::new(64, 0.2, 10.0),
        ..ServeConfig::default()
    };
    let scale = AutoscalePolicy::new(1, 2, 32, 2, 0.01);
    let server = Server::start_tenanted(Arc::clone(&reg), config, directory, scale);

    let features: Vec<f32> = vec![0.5; width];
    let mut handles = Vec::new();
    let mut beta_quota_rejects = 0usize;
    for _ in 0..8 {
        match server.submit_as("beta", features.clone()) {
            Ok(h) => handles.push(h),
            Err(ServeError::QuotaExceeded { ref tenant, .. }) => {
                assert_eq!(tenant, "beta");
                beta_quota_rejects += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(beta_quota_rejects >= 4, "a 2-slot quota must reject most of an 8-burst");
    // Alpha's own quota is untouched by beta's full queue.
    let ha = server.submit_as("alpha", features.clone()).expect("alpha unaffected");
    handles.push(ha);
    assert!(matches!(
        server.submit_as("ghost", features.clone()),
        Err(ServeError::UnknownTenant(_))
    ));
    for h in handles {
        h.wait().expect("admitted requests complete");
    }
    let tel = server.telemetry_report();
    let stats = server.shutdown();
    assert_eq!(stats.rejected, beta_quota_rejects as u64);
    assert!(
        tel.classes.iter().any(|c| c.class == PriorityClass::Batch && c.rejected > 0),
        "batch-class rejections must reach class telemetry: {:?}",
        tel.classes
    );
    assert!(
        tel.classes.iter().any(|c| c.class == PriorityClass::Interactive && c.completed > 0),
        "interactive completion must reach class telemetry: {:?}",
        tel.classes
    );
}

/// Per-tenant lifetime counters conserve every admitted request.
#[test]
fn tenant_stats_conserve_requests() {
    let width = 4;
    let reg = Arc::new(ModelRegistry::new());
    let (spec_a, model_a) = scorer(width, 41);
    let (spec_b, model_b) = scorer(width, 42);
    reg.install("m-a", spec_a, model_a);
    reg.install("m-b", spec_b, model_b);
    let directory = TenantDirectory::new(vec![
        TenantSpec::new("alpha", PriorityClass::Interactive, 1, 64, "m-a"),
        TenantSpec::new("beta", PriorityClass::Batch, 2, 64, "m-b"),
    ])
    .unwrap();
    let config = ServeConfig {
        queue_capacity: 128,
        workers: 2,
        policy: BatchPolicy::new(8, 0.002, 10.0),
        ..ServeConfig::default()
    };
    let scale = AutoscalePolicy::new(1, 4, 32, 4, 0.01);
    let server = Server::start_tenanted(Arc::clone(&reg), config, directory, scale);
    let features: Vec<f32> = vec![0.25; width];
    let mut handles = Vec::new();
    for i in 0..30 {
        let name = if i % 3 == 0 { "alpha" } else { "beta" };
        if let Ok(h) = server.submit_as(name, features.clone()) {
            handles.push(h);
        }
    }
    for h in handles {
        assert!(h.wait().is_ok(), "healthy pool answers every admitted request");
    }
    assert!(server.active_replicas() >= 1 && server.active_replicas() <= 4);
    let tstats = server.tenant_stats();
    let stats = server.shutdown();
    assert_eq!(tstats.len(), 2);
    let mut admitted = 0u64;
    for (name, t) in &tstats {
        assert_eq!(
            t.admitted,
            t.completed + t.shed + t.failed,
            "tenant {name} must conserve requests: {t:?}"
        );
        admitted += t.admitted;
    }
    assert_eq!(admitted, stats.admitted, "per-tenant admissions must sum to the server total");
    assert_eq!(stats.admitted, 30);
}

/// The plain single-tenant server refuses tenant-routed submissions with a
/// typed error instead of silently misrouting them.
#[test]
fn untenanted_server_rejects_submit_as() {
    let reg = Arc::new(ModelRegistry::new());
    let (spec, model) = scorer(4, 51);
    reg.install("m", spec, model);
    let server = Server::start(reg, ServeConfig::default());
    assert!(matches!(server.submit_as("alpha", vec![0.0; 4]), Err(ServeError::UnknownTenant(_))));
}
