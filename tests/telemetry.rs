//! Integration tests for the streaming telemetry subsystem: threaded-vs-sim
//! telemetry parity on identical event streams, windowed-quantile accuracy
//! against an exact nearest-rank oracle (including across a bucket-rotation
//! boundary), and the C15 detection bound on the chaos sim twin.

use deepdriver::obs::{SlidingWindow, WindowConfig};
use deepdriver::serve::{
    poisson_arrivals, simulate_chaos_telemetry, Action, AttemptOutcome, BatchPolicy, BreakerPolicy,
    ChaosConfig, FaultSpec, HedgePolicy, LoadConfig, ReplicaSetState, ResilPolicy, ResilientCall,
    RetryPolicy, ServeTelemetry, ServiceModel, TelemetryConfig, TelemetryReport, SLO_AVAILABILITY,
    SLO_LATENCY,
};
use deepdriver::tensor::Rng64;

// ---------------------------------------------------------------------------
// Threaded-vs-sim telemetry parity.
//
// The telemetry bundle never reads a clock: every hook takes a caller
// `now_s`. The threaded server samples `dd_obs::monotonic_seconds()` the way
// `drive_server_style` samples its stand-in clock; the virtual-time sim
// passes event times the way `drive_sim_style` advances `t`. Fed the same
// scripted outcome traces, both disciplines must hand the bundle identical
// `(now, event)` pairs and therefore produce bit-identical reports — the
// same parity contract `tests/resilience.rs` pins for the decision core.
// ---------------------------------------------------------------------------

fn parity_policy() -> ResilPolicy {
    ResilPolicy {
        retry: RetryPolicy::new(4, 1e-3, 16e-3, 0.5),
        hedge: HedgePolicy::after(0.02, 1),
        breaker: BreakerPolicy::new(3, 0.25, 1),
        health_eviction: true,
    }
}

fn parity_traces() -> Vec<Vec<AttemptOutcome>> {
    vec![
        // Happy path.
        vec![AttemptOutcome::Done { elapsed_s: 0.01 }],
        // Crash, retry elsewhere, succeed.
        vec![
            AttemptOutcome::Crashed { elapsed_s: 0.002 },
            AttemptOutcome::Done { elapsed_s: 0.01 },
        ],
        // Straggler hedged away, hedge succeeds.
        vec![
            AttemptOutcome::TimedOut { elapsed_s: 0.02 },
            AttemptOutcome::Done { elapsed_s: 0.008 },
        ],
        // Corrupt twice, then success.
        vec![
            AttemptOutcome::Corrupt { elapsed_s: 0.01 },
            AttemptOutcome::Corrupt { elapsed_s: 0.01 },
            AttemptOutcome::Done { elapsed_s: 0.01 },
        ],
        // Budget exhaustion: straight crashes evict the pool and give up —
        // failures burn the availability budget and dump the recorder.
        vec![AttemptOutcome::Crashed { elapsed_s: 0.001 }; 4],
    ]
}

/// Sim-style driver: virtual time advances by each outcome's elapsed
/// seconds, exactly as `simulate_chaos` does, and every telemetry hook gets
/// that virtual time.
fn drive_sim_style(
    traces: &[Vec<AttemptOutcome>],
    policy: ResilPolicy,
    replicas: usize,
    tcfg: &TelemetryConfig,
) -> TelemetryReport {
    let mut set = ReplicaSetState::new(replicas, policy.breaker, 0.05);
    let mut rng = Rng64::new(9);
    let mut tel = ServeTelemetry::new(replicas, tcfg.clone());
    let mut t = 0.0f64;
    for (id, trace) in traces.iter().enumerate() {
        let enq = t;
        tel.on_enqueue(t, 1);
        let mut call = ResilientCall::new(policy);
        let mut i = 0usize;
        let mut queue_wait = 0.0f64;
        let mut waited = false;
        loop {
            match call.next(&mut set, t) {
                Action::Wait { seconds } => t += seconds,
                Action::Try { replica, .. } => {
                    let start = t;
                    if !waited {
                        queue_wait = start - enq;
                        waited = true;
                    }
                    let outcome =
                        trace.get(i).copied().unwrap_or(AttemptOutcome::Done { elapsed_s: 0.01 });
                    i += 1;
                    t += outcome.elapsed_s();
                    let before = (set.evictions(), set.breaker_opens());
                    call.observe(&mut set, replica, outcome, t, &mut rng);
                    tel.on_dispatch(start, replica, 1);
                    tel.on_outcome(t, replica, &outcome);
                    if set.evictions() > before.0 {
                        tel.on_eviction(t, replica);
                    }
                    if set.breaker_opens() > before.1 {
                        tel.on_breaker_open(t, replica);
                    }
                }
                Action::Finish { .. } => {
                    tel.on_complete(t, id as u64, enq, queue_wait);
                    break;
                }
                Action::GiveUp { .. } => {
                    tel.on_failure(t, id as u64, enq);
                    break;
                }
            }
        }
        t += 0.005; // inter-arrival gap before the next request
    }
    tel.report(t)
}

/// Server-style driver: samples a monotonic clock before each decision the
/// way `serve_job` does (sleeps become clock advances) and passes those
/// clock reads to the telemetry hooks.
fn drive_server_style(
    traces: &[Vec<AttemptOutcome>],
    policy: ResilPolicy,
    replicas: usize,
    tcfg: &TelemetryConfig,
) -> TelemetryReport {
    let mut set = ReplicaSetState::new(replicas, policy.breaker, 0.05);
    let mut rng = Rng64::new(9);
    let mut tel = ServeTelemetry::new(replicas, tcfg.clone());
    let mut clock = 0.0f64;
    for (id, trace) in traces.iter().enumerate() {
        let enq = clock;
        tel.on_enqueue(enq, 1);
        let mut call = ResilientCall::new(policy);
        let mut i = 0usize;
        let mut queue_wait = 0.0f64;
        let mut waited = false;
        loop {
            let now = clock; // monotonic_seconds() stand-in
            match call.next(&mut set, now) {
                Action::Wait { seconds } => clock += seconds, // thread::sleep stand-in
                Action::Try { replica, .. } => {
                    let started = now;
                    if !waited {
                        queue_wait = started - enq;
                        waited = true;
                    }
                    let outcome =
                        trace.get(i).copied().unwrap_or(AttemptOutcome::Done { elapsed_s: 0.01 });
                    i += 1;
                    clock += outcome.elapsed_s(); // the attempt's real duration
                    let before = (set.evictions(), set.breaker_opens());
                    call.observe(&mut set, replica, outcome, clock, &mut rng);
                    tel.on_dispatch(started, replica, 1);
                    tel.on_outcome(clock, replica, &outcome);
                    if set.evictions() > before.0 {
                        tel.on_eviction(clock, replica);
                    }
                    if set.breaker_opens() > before.1 {
                        tel.on_breaker_open(clock, replica);
                    }
                }
                Action::Finish { .. } => {
                    tel.on_complete(now, id as u64, enq, queue_wait);
                    break;
                }
                Action::GiveUp { .. } => {
                    tel.on_failure(now, id as u64, enq);
                    break;
                }
            }
        }
        clock += 0.005;
    }
    tel.report(clock)
}

#[test]
fn telemetry_parity_on_identical_event_streams() {
    let policy = parity_policy();
    let traces = parity_traces();
    let tcfg = TelemetryConfig::standard(0.25).with_windows(0.05, 0.2);
    let sim = drive_sim_style(&traces, policy, 3, &tcfg);
    let srv = drive_server_style(&traces, policy, 3, &tcfg);
    assert_eq!(sim, srv, "clock discipline must not leak into telemetry");
    // Parity must not be about empty reports: the traces complete four
    // requests, fail one, and the crash burst evicts replicas — which
    // records attempts and dumps the flight recorder.
    assert_eq!(sim.completed, 4, "four traces end in Finish");
    assert_eq!(sim.failed, 1, "the crash burst ends in GiveUp");
    assert_eq!(sim.enqueued, 5);
    assert_eq!(sim.e2e.count, 4, "every completion records an e2e latency");
    assert!(sim.recorder_events > 0, "dispatch/outcome events hit the recorder");
    assert!(sim.dump_total >= 1, "evictions must dump the flight recorder");
    assert!(
        sim.dumps.iter().all(|d| d.json.starts_with('{') && d.json.ends_with('}')),
        "dumps are JSON objects"
    );
}

#[test]
fn telemetry_reports_are_deterministic_across_reruns() {
    let policy = parity_policy();
    let traces = parity_traces();
    let tcfg = TelemetryConfig::standard(0.25).with_windows(0.05, 0.2);
    let a = drive_sim_style(&traces, policy, 3, &tcfg);
    let b = drive_sim_style(&traces, policy, 3, &tcfg);
    assert_eq!(a, b, "same event stream twice must give byte-identical reports");
}

// ---------------------------------------------------------------------------
// Windowed-quantile accuracy vs an exact oracle.
// ---------------------------------------------------------------------------

/// Exact nearest-rank quantile over a sorted slice — the same rank rule the
/// histogram targets (`ceil(q·n)`, floored at rank 1).
fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

/// Geometric buckets are 32 per decade, so quantile estimates carry at most
/// `10^(1/32) − 1 ≈ 7.5%` relative error; assert with an 8% margin.
const QUANTILE_RTOL: f64 = 0.08;

fn assert_quantiles_match(summary: &deepdriver::obs::HistSummary, sorted: &[f64], label: &str) {
    for (q, got) in [(0.50, summary.p50), (0.95, summary.p95), (0.99, summary.p99)] {
        let want = exact_nearest_rank(sorted, q);
        let rel = (got - want).abs() / want;
        assert!(
            rel < QUANTILE_RTOL,
            "{label}: p{} windowed {got} vs exact {want} (rel err {rel:.4})",
            (q * 100.0) as u32
        );
    }
}

#[test]
fn windowed_quantiles_track_an_exact_sort_oracle() {
    // Log-uniform latencies over two decades (1 ms – 100 ms), all recorded
    // inside the live horizon so the window sees exactly the oracle's data.
    let cfg = WindowConfig::new(0.5, 8);
    let mut w = SlidingWindow::new(cfg);
    let mut rng = Rng64::new(42);
    let mut samples = Vec::new();
    let n = 5000;
    for i in 0..n {
        let t = cfg.horizon_s() * 0.9 * (i as f64 / n as f64);
        let v = 1e-3 * 10f64.powf(2.0 * rng.uniform());
        w.record(t, v);
        samples.push(v);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let now = cfg.horizon_s() * 0.9;
    let s = w.summary(now);
    assert_eq!(s.count, n as u64);
    assert_quantiles_match(&s, &samples, "full horizon");
}

#[test]
fn windowed_quantiles_stay_accurate_across_a_rotation_boundary() {
    // Regression case: two batches from different distributions, the first
    // recorded right up to a bucket edge. Once `now` crosses the edge plus
    // one horizon, the first batch must vanish from the quantiles and the
    // window must agree with an oracle over the surviving batch alone.
    let cfg = WindowConfig::new(0.25, 4); // 1 s horizon
    let mut w = SlidingWindow::new(cfg);
    let mut rng = Rng64::new(7);
    let n = 800;
    // Batch A: slow requests (~0.1 s) in absolute buckets 0..4.
    for i in 0..n {
        let t = 0.999 * (i as f64 / n as f64);
        w.record(t, 0.1 * (1.0 + rng.uniform()));
    }
    // Batch B: fast requests (~1 ms) from t = 1.0 — exactly on the bucket-4
    // rotation edge — through t < 1.25.
    let mut fast = Vec::new();
    for i in 0..n {
        let t = 1.0 + 0.249 * (i as f64 / n as f64);
        let v = 1e-3 * (1.0 + rng.uniform());
        w.record(t, v);
        fast.push(v);
    }
    fast.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    // While most of both batches is live, the p99 reflects the slow batch.
    let mixed = w.summary(1.2);
    assert!(mixed.count > n as u64, "both batches contribute mid-rotation");
    assert!(mixed.p99 > 0.05, "slow batch dominates the mixed p99");
    // At t = 1.9 (cur bucket 7, window covers epochs 4..=7) every batch-A
    // bucket (epochs 0..=3) has left the window; batch B (epoch 4, recorded
    // at t in [1.0, 1.25)) is still live.
    let after = w.summary(1.9);
    assert_eq!(after.count, n as u64, "batch A expired, batch B survives");
    assert_quantiles_match(&after, &fast, "post-rotation");
    assert!(after.p99 < 0.05, "no slow-batch residue after rotation");
}

// ---------------------------------------------------------------------------
// C15 on the sim twin: deterministic chaos detection within the bound.
// ---------------------------------------------------------------------------

const REPLICAS: usize = 3;
const MAX_BATCH: usize = 8;
const DEADLINE_S: f64 = 0.25;
const ONSET_S: f64 = 0.4;
const FAST_WINDOW_S: f64 = 0.1;

fn c15_service() -> ServiceModel {
    ServiceModel::new(2e-3, 0.5e-3)
}

fn c15_config(arrivals: Vec<f64>, crash_mtbf_s: f64, fault_seed: u64) -> ChaosConfig {
    ChaosConfig {
        policy: BatchPolicy::new(MAX_BATCH, 0.002, DEADLINE_S),
        queue_capacity: 128,
        replicas: REPLICAS,
        service: c15_service(),
        arrivals,
        resil: ResilPolicy::standard(),
        faults: FaultSpec { respawn_s: 0.05, seed: fault_seed, ..FaultSpec::none() },
        crash_mtbf_s,
        fallback: true,
    }
}

fn c15_telemetry() -> TelemetryConfig {
    TelemetryConfig::standard(DEADLINE_S).with_windows(FAST_WINDOW_S, 4.0 * FAST_WINDOW_S)
}

/// Steady 0.6×-saturation arrivals until the onset, then 2.5× overload.
fn c15_onset_arrivals(seed: u64) -> Vec<f64> {
    let sat = c15_service().saturation_rps(MAX_BATCH, REPLICAS);
    let steady = poisson_arrivals(&LoadConfig { rate_per_s: 0.6 * sat, requests: 2000, seed })
        .into_iter()
        .filter(|&t| t < ONSET_S);
    let overload = poisson_arrivals(&LoadConfig {
        rate_per_s: 2.5 * sat,
        requests: 2500,
        seed: seed ^ 0x9E37_79B9,
    })
    .into_iter()
    .map(|t| t + ONSET_S);
    steady.chain(overload).collect()
}

#[test]
fn chaos_onset_is_detected_within_two_fast_windows_and_runs_are_deterministic() {
    let tcfg = c15_telemetry();
    let cfg = c15_config(c15_onset_arrivals(2017), 0.02, 4035);
    let (rep_a, tel_a) = simulate_chaos_telemetry(&cfg, &tcfg, ONSET_S);
    let (rep_b, tel_b) = simulate_chaos_telemetry(&cfg, &tcfg, ONSET_S);
    assert_eq!(rep_a, rep_b, "chaos twin must be deterministic");
    assert_eq!(tel_a, tel_b, "telemetry twin must be deterministic");
    // C15: some burn-rate monitor fires after the onset, within two
    // fast-window lengths of it.
    let first = [SLO_AVAILABILITY, SLO_LATENCY]
        .iter()
        .filter_map(|slo| tel_a.first_fired_at(slo))
        .fold(f64::INFINITY, f64::min);
    assert!(first.is_finite(), "chaos must fire a burn-rate alert");
    let latency = first - ONSET_S;
    assert!(
        latency > 0.0 && latency <= 2.0 * FAST_WINDOW_S,
        "detected {latency:.4}s after onset, bound {:.4}s",
        2.0 * FAST_WINDOW_S
    );
    // The chaos segment keeps tail traces and dumps the recorder, and
    // nothing dumps before the onset (the pre-onset segment is clean).
    assert!(tel_a.traces_kept > 0, "shed/error tail must be trace-sampled");
    assert!(tel_a.dump_total > 0, "evictions/breakers must dump the recorder");
    assert!(tel_a.dumps.iter().all(|d| d.at_s >= ONSET_S), "no dumps before onset");
}

#[test]
fn steady_state_fires_no_alerts_and_keeps_no_traces() {
    let sat = c15_service().saturation_rps(MAX_BATCH, REPLICAS);
    let arrivals =
        poisson_arrivals(&LoadConfig { rate_per_s: 0.6 * sat, requests: 3000, seed: 2017 });
    let cfg = c15_config(arrivals, 0.0, 4035);
    let (rep, tel) = simulate_chaos_telemetry(&cfg, &c15_telemetry(), 0.0);
    assert_eq!(rep.failed, 0, "clean steady state fails nothing");
    assert_eq!(tel.fired_count(), 0, "zero false positives at 0.6x load");
    assert_eq!(tel.traces_kept, 0, "tail sampling keeps nothing when clean");
    assert_eq!(tel.dump_total, 0, "nothing trips the flight recorder");
}
