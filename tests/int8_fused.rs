//! Property suite for the fused int8 GEMM path: the quantize → i32 GEMM →
//! dequantize pipeline inside `dd_tensor::kernel` must be *bitwise*
//! reproducible from its unfused parts, and the quantizer itself must obey
//! its half-step error bound.
//!
//! Bitwise equality is a real contract here, not wishful thinking: i32
//! accumulation over the same codes is exact regardless of reduction order,
//! and both writebacks share the single rounding expression in
//! `precision::dequantize_acc`. Any divergence means the fused kernel
//! quantized, contracted or dequantized differently — a bug by definition.

use dd_tensor::precision::{dequantize_i8, quantize_i8};
use dd_tensor::{matmul_nt_prec, matmul_prec, matmul_tn_prec, Precision, Rng64};
use dd_testkit::{check, f32_bits, unfused_int8_matmul, Config, MatDims};

/// Symmetric int8 quantization stores at most half a quantization step of
/// error per element: |v − dequantize(quantize(v))| ≤ scale/2, plus the
/// f32 roundoff of the two scale multiplies.
#[test]
fn quantize_roundtrip_stays_within_half_step() {
    check(
        &Config::with_seed(0x18B1).cases(300),
        |rng, _| {
            let len = 1 + rng.below(192);
            let magnitude = f32::powi(10.0, rng.below(7) as i32 - 3);
            (len, magnitude, rng.next_u64())
        },
        |&(len, magnitude, seed)| (1..len).rev().take(4).map(|l| (l, magnitude, seed)).collect(),
        |&(len, magnitude, seed)| {
            let mut rng = Rng64::new(seed);
            let values: Vec<f32> = (0..len).map(|_| rng.gaussian() as f32 * magnitude).collect();
            let (codes, scale) = quantize_i8(&values);
            let mut back = vec![0f32; len];
            dequantize_i8(&codes, scale, &mut back);
            // Half a step, with relative slack for the rounding of `v/scale`
            // (may clamp at 127) and of the dequantize multiply.
            let bound = 0.5 * scale * (1.0 + 1e-5);
            for (i, (&v, &b)) in values.iter().zip(&back).enumerate() {
                let err = (v - b).abs();
                if err > bound {
                    return Err(format!(
                        "element {i}: |{v} - {b}| = {err:e} > {bound:e} (scale {scale:e})"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Zero and non-finite inputs take the quantizer's guard path: all-zero
/// codes with a unit scale, so round-trip is exact instead of NaN-poisoned.
#[test]
fn quantize_guards_zero_and_nonfinite_inputs() {
    for values in [vec![0.0f32; 9], vec![0.0, f32::INFINITY, 1.0], vec![f32::NAN; 3]] {
        let (codes, scale) = quantize_i8(&values);
        assert!(codes.iter().all(|&c| c == 0), "{values:?}");
        assert_eq!(scale, 1.0);
    }
}

/// The fused kernel's output must be bitwise-equal to the unfused
/// quantize / integer-GEMM / dequantize composition, for every orientation.
/// Orientation is absorbed at packing time, so all three entry points must
/// land on the identical bits too.
#[test]
fn fused_int8_is_bitwise_equal_to_unfused_composition() {
    check(
        &Config::with_seed(0x1F05ED).cases(120),
        |rng, _| MatDims::sample(rng, 1, 40),
        |d| d.shrink(1),
        |dims| {
            let (a, b) = dims.operands(1.0);
            let reference = unfused_int8_matmul(&a, &b);
            let cases = [
                ("matmul", matmul_prec(&a, &b, Precision::Int8)),
                ("matmul_nt", matmul_nt_prec(&a, &b.transpose(), Precision::Int8)),
                ("matmul_tn", matmul_tn_prec(&a.transpose(), &b, Precision::Int8)),
            ];
            for (name, fused) in cases {
                if f32_bits(fused.as_slice()) != f32_bits(reference.as_slice()) {
                    let (i, (&g, &w)) = fused
                        .as_slice()
                        .iter()
                        .zip(reference.as_slice())
                        .enumerate()
                        .find(|(_, (g, w))| g.to_bits() != w.to_bits())
                        .expect("bit vectors differ");
                    return Err(format!(
                        "{name} {}x{}x{}: first divergence at flat index {i}: \
                         fused {g:e} ({:#010x}) vs unfused {w:e} ({:#010x})",
                        dims.m,
                        dims.k,
                        dims.n,
                        g.to_bits(),
                        w.to_bits()
                    ));
                }
            }
            Ok(())
        },
    );
}

/// The fused contract must also survive the shapes where the kernel changes
/// schedule: crossing the parallel-dispatch threshold, the MC row-block
/// boundary, odd contraction depths (the padded k-pair), and single-row /
/// single-column products.
#[test]
fn fused_int8_contract_holds_across_schedule_boundaries() {
    let mut rng = Rng64::new(0xFA57);
    for (m, k, n) in
        [(65, 257, 130), (64, 256, 128), (63, 2, 129), (1, 31, 200), (200, 31, 1), (6, 1, 16)]
    {
        let dims = MatDims { m, k, n, data_seed: rng.next_u64() };
        let (a, b) = dims.operands(1.0);
        let fused = matmul_prec(&a, &b, Precision::Int8);
        let reference = unfused_int8_matmul(&a, &b);
        assert_eq!(
            f32_bits(fused.as_slice()),
            f32_bits(reference.as_slice()),
            "fused != unfused for {m}x{k}x{n}"
        );
    }
}
