//! Integration tests of the dd-serve engine through the public facade:
//! hot-swap atomicity, admission-control overload behaviour, and the
//! exactly-once answer guarantee through shutdown.

use deepdriver::nn::{Activation, ModelSpec, Sequential};
use deepdriver::serve::{BatchPolicy, ModelRegistry, ServeConfig, ServeError, Server};
use deepdriver::tensor::{Matrix, Precision};
use std::sync::Arc;

fn scorer(width: usize, hidden: &[usize], seed: u64) -> (ModelSpec, Sequential) {
    let spec = ModelSpec::mlp(width, hidden, 2, Activation::Tanh);
    let model = spec.build(seed, Precision::F32).expect("static spec builds");
    (spec, model)
}

#[test]
fn hot_swap_returns_old_or_new_and_nothing_else() {
    let width = 6;
    let (spec1, model1) = scorer(width, &[16], 11);
    let (_spec2, model2) = scorer(width, &[16], 22);
    let features: Vec<f32> = (0..width).map(|i| 0.1 * (i as f32 + 1.0)).collect();
    let probe = Matrix::from_vec(1, width, features.clone());
    let y1 = model1.predict_batch(&probe).row(0).to_vec();
    let y2 = model2.predict_batch(&probe).row(0).to_vec();
    assert_ne!(y1, y2, "differently seeded scorers must disagree on the probe");

    let reg = Arc::new(ModelRegistry::new());
    reg.install("scorer", spec1, model1);
    let server = Server::start(Arc::clone(&reg), ServeConfig::default());

    let total = 200;
    let mut answers = Vec::with_capacity(total);
    for i in 0..total {
        if i == total / 2 {
            // Hot-swap mid-stream (same seed rebuild: bitwise-identical to
            // the probe's v2). In-flight batches finish on the snapshot they
            // resolved; later dispatches resolve the new version.
            let (spec2, model2) = scorer(width, &[16], 22);
            reg.install("scorer", spec2, model2);
        }
        let handle = server.submit("scorer", features.clone()).expect("queue is ample");
        answers.push(handle.wait().expect("request must be answered"));
    }
    server.shutdown();

    // Every answer is bitwise one of the two installed versions — never a
    // torn mix of weights.
    for (i, a) in answers.iter().enumerate() {
        assert!(a == &y1 || a == &y2, "answer {i} matches neither version bitwise");
    }
    assert_eq!(answers[0], y1, "pre-swap requests serve v1");
    assert_eq!(answers[total - 1], y2, "post-swap requests serve v2");
}

#[test]
fn overload_rejects_with_typed_error() {
    // One worker, a one-slot admission queue, and a scorer deep enough that
    // a batch takes real time: a tight submit loop must outrun the drain and
    // hit admission control.
    let width = 32;
    let (spec, model) = scorer(width, &[512, 512], 5);
    let reg = Arc::new(ModelRegistry::new());
    reg.install("scorer", spec, model);
    let config = ServeConfig {
        queue_capacity: 1,
        workers: 1,
        policy: BatchPolicy::new(64, 0.001, 10.0),
        ..ServeConfig::default()
    };
    let server = Server::start(reg, config);

    let mut handles = Vec::new();
    let mut overloaded = None;
    for _ in 0..200_000 {
        match server.submit("scorer", vec![0.5; width]) {
            Ok(h) => handles.push(h),
            Err(e) => {
                overloaded = Some(e);
                break;
            }
        }
    }
    let err = overloaded.expect("a 1-slot queue must eventually reject");
    match err {
        ServeError::Overloaded { depth, capacity } => {
            assert_eq!(capacity, 1);
            assert!(depth <= capacity, "reported depth {depth} beyond capacity {capacity}");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = server.shutdown();
    assert!(stats.rejected >= 1);
    // Rejected requests never consume an answer slot: admitted requests are
    // still all answered exactly once through the drain.
    let answered = handles.into_iter().filter_map(|h| h.wait().ok()).count() as u64;
    assert_eq!(answered, stats.completed);
    assert_eq!(stats.admitted, stats.completed + stats.shed + stats.failed);
}

#[test]
fn shutdown_answers_every_admitted_request_exactly_once() {
    let width = 8;
    let (spec, model) = scorer(width, &[16], 7);
    let reg = Arc::new(ModelRegistry::new());
    reg.install("scorer", spec, model);
    let config = ServeConfig {
        queue_capacity: 512,
        workers: 3,
        // A generous deadline: nothing should shed in a drain test.
        policy: BatchPolicy::new(16, 0.002, 30.0),
        ..ServeConfig::default()
    };
    let server = Server::start(reg, config);

    let handles: Vec<_> = (0..300)
        .map(|i| server.submit("scorer", vec![(i as f32) * 1e-2; width]).expect("queue is ample"))
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats.admitted, 300);
    assert_eq!(stats.admitted, stats.completed + stats.shed + stats.failed);
    assert_eq!(stats.shed, 0, "30s deadline must not shed while draining");
    assert_eq!(stats.failed, 0, "no model removal or worker loss in this test");

    let mut answered = 0u64;
    for h in handles {
        let row = h.wait().expect("drained request succeeds");
        assert_eq!(row.len(), 2, "scorer emits two logits");
        answered += 1;
        // The answer channel holds exactly one message: polling again after
        // consuming it can never yield a second answer (enforced by the
        // bounded(1) channel and `wait` consuming the handle).
    }
    assert_eq!(answered, stats.completed);
}
