//! Integration tests for hyperparameter search driving real NN training.

use deepdriver::core::experiments::e6_search::{space, TumorTuning};
use deepdriver::core::Scale;
use deepdriver::hypersearch::searchers::{Hyperband, RandomSearch};
use deepdriver::hypersearch::{run_search, Searcher};

#[test]
fn searchers_tune_a_real_network() {
    let objective = TumorTuning::new(Scale::Smoke, 31);
    let sp = space();
    let mut searchers: Vec<Box<dyn Searcher>> =
        vec![Box::new(RandomSearch::new()), Box::new(Hyperband::new(3, 2))];
    for s in searchers.iter_mut() {
        let h = run_search(s.as_mut(), &sp, &objective, 8.0, 4, 31);
        let best = h.best_value().expect("found something");
        // 4 balanced classes: untrained CE ≈ ln 4 ≈ 1.39. The objective is
        // deliberately hard (weak signatures); any tuning run must at least
        // clearly beat the untrained floor.
        assert!(best < 1.3, "{}: best {best}", h.searcher);
        // The driver may finish the trial that crosses the boundary.
        assert!(h.total_cost() <= 9.0 + 1e-6);
    }
}

#[test]
fn search_is_reproducible_end_to_end() {
    let objective = TumorTuning::new(Scale::Smoke, 32);
    let sp = space();
    let run_once = || {
        let mut s = RandomSearch::new();
        run_search(&mut s, &sp, &objective, 5.0, 2, 32)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.trials.len(), b.trials.len());
    for (ta, tb) in a.trials.iter().zip(&b.trials) {
        assert_eq!(ta.config, tb.config);
        assert_eq!(ta.value, tb.value, "objective must be deterministic");
    }
}

#[test]
fn hyperband_uses_low_fidelity_training() {
    let objective = TumorTuning::new(Scale::Smoke, 33);
    let sp = space();
    let mut hb = Hyperband::new(3, 2);
    let h = run_search(&mut hb, &sp, &objective, 10.0, 4, 33);
    let low = h.trials.iter().filter(|t| t.budget < 0.99).count();
    assert!(low > 0, "Hyperband should run partial-budget trials");
    // Low-fidelity trials cost less: more trials than cost units.
    assert!(h.trials.len() as f64 > h.total_cost());
}
