//! Integration tests for fault-tolerant data-parallel training: injected
//! replica crashes, checkpoint/restart exactness, elastic recovery, and the
//! typed error surface.

use deepdriver::parallel::{
    train_data_parallel, train_data_parallel_ft, DataParallelConfig, DataParallelError,
    FaultConfig, FaultEventKind, FaultKind, ScheduledFault,
};
use deepdriver::prelude::*;

fn toy_data(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = Rng64::new(seed);
    let x = Matrix::randn(n, 6, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(n, 1, |i, _| (x.get(i, 0) * x.get(i, 1) + x.get(i, 2)).tanh());
    (x, y)
}

fn spec() -> ModelSpec {
    ModelSpec::mlp(6, &[16], 1, Activation::Tanh)
}

#[test]
fn kill_at_epoch_k_then_restore_matches_uninterrupted_run_exactly() {
    let (x, y) = toy_data(192, 21);
    let config =
        DataParallelConfig { world: 2, epochs: 6, global_batch: 48, seed: 5, ..Default::default() };
    let uninterrupted = train_data_parallel(&spec(), &x, &y, &config).expect("trains");
    let killed = train_data_parallel_ft(
        &spec(),
        &x,
        &y,
        &config,
        &FaultConfig {
            checkpoint_every: 1,
            scheduled: vec![ScheduledFault {
                attempt: 0,
                rank: 0,
                epoch: 3,
                step: 0,
                kind: FaultKind::ReplicaCrash,
            }],
            ..FaultConfig::none()
        },
    )
    .expect("recovers");
    assert_eq!(killed.restarts, 1);
    assert!(killed
        .events
        .iter()
        .any(|e| e.kind == FaultEventKind::CheckpointRestored { epoch: 3 }));
    // Checkpoint/restart must be invisible in the numbers: identical loss
    // curve and bitwise-identical final parameters.
    assert_eq!(killed.report.epoch_losses, uninterrupted.epoch_losses);
    assert_eq!(killed.report.final_params, uninterrupted.final_params);
}

#[test]
fn zero_fault_supervised_run_is_bitwise_identical_to_plain_trainer() {
    let (x, y) = toy_data(144, 22);
    let config =
        DataParallelConfig { world: 3, epochs: 5, global_batch: 48, seed: 9, ..Default::default() };
    let plain = train_data_parallel(&spec(), &x, &y, &config).expect("trains");
    let supervised = train_data_parallel_ft(
        &spec(),
        &x,
        &y,
        &config,
        &FaultConfig { checkpoint_every: 2, ..FaultConfig::none() },
    )
    .expect("trains");
    assert_eq!(supervised.restarts, 0);
    assert_eq!(supervised.report.epoch_losses, plain.epoch_losses);
    assert_eq!(supervised.report.final_params, plain.final_params);
}

#[test]
fn elastic_recovery_finishes_with_a_smaller_world() {
    let (x, y) = toy_data(144, 23);
    let config =
        DataParallelConfig { world: 3, epochs: 4, global_batch: 48, seed: 2, ..Default::default() };
    let report = train_data_parallel_ft(
        &spec(),
        &x,
        &y,
        &config,
        &FaultConfig {
            elastic: true,
            scheduled: vec![ScheduledFault {
                attempt: 0,
                rank: 2,
                epoch: 1,
                step: 0,
                kind: FaultKind::ReplicaCrash,
            }],
            ..FaultConfig::none()
        },
    )
    .expect("recovers elastically");
    assert_eq!(report.final_world, 2);
    assert_eq!(report.restarts, 1);
    assert_eq!(report.report.epoch_losses.len(), 4);
    assert!(report.report.epoch_losses.iter().all(|l| l.is_finite()));
}

#[test]
fn fault_storm_still_converges_close_to_the_fault_free_run() {
    let (x, y) = toy_data(192, 24);
    let config = DataParallelConfig {
        world: 2,
        epochs: 10,
        global_batch: 48,
        seed: 7,
        ..Default::default()
    };
    let plain = train_data_parallel(&spec(), &x, &y, &config).expect("trains");
    let stormy = train_data_parallel_ft(
        &spec(),
        &x,
        &y,
        &config,
        &FaultConfig {
            seed: 13,
            p_crash: 0.01,
            p_corrupt_grad: 0.03,
            straggler_millis: 1,
            p_straggler: 0.03,
            max_restarts: 50,
            ..FaultConfig::none()
        },
    )
    .expect("survives the storm");
    assert_eq!(stormy.report.epoch_losses.len(), 10);
    let plain_final = *plain.epoch_losses.last().unwrap();
    let stormy_final = *stormy.report.epoch_losses.last().unwrap();
    assert!(stormy_final.is_finite());
    // Dropped/replayed gradients may perturb the trajectory, but the run
    // must still land in the same neighborhood as the fault-free one.
    assert!(
        stormy_final < 3.0 * plain_final + 0.05,
        "stormy final {stormy_final} vs plain {plain_final}"
    );
}

#[test]
fn configuration_errors_are_typed_not_panics() {
    let (x, y) = toy_data(32, 25);
    let err = train_data_parallel(
        &spec(),
        &x,
        &y,
        &DataParallelConfig { world: 64, global_batch: 8, ..Default::default() },
    )
    .unwrap_err();
    assert_eq!(err, DataParallelError::WorldExceedsBatch { world: 64, global_batch: 8 });
    let err = train_data_parallel_ft(
        &spec(),
        &x,
        &y,
        &DataParallelConfig { world: 0, ..Default::default() },
        &FaultConfig::none(),
    )
    .unwrap_err();
    assert_eq!(err, DataParallelError::WorldZero);
}
