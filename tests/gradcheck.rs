//! Finite-difference gradient checks for every layer and loss in dd-nn.
//!
//! Each analytic backward pass is compared against centered differences of a
//! scalar probe loss `L = <G, forward(x)>` (see `dd_testkit::gradcheck`). A
//! deliberately broken layer (`SignFlipDense`) proves the checker actually
//! catches sign errors and that the property harness shrinks the failure to
//! a minimal shape.

use dd_nn::{
    Activation, ActivationLayer, BatchNorm1d, Conv1d, Dense, Dropout, Init, Layer, LayerNorm, Loss,
    MaxPool1d, Residual,
};
use dd_tensor::{Matrix, Precision, Rng64};
use dd_testkit::{
    check_layer, check_loss, falsify, matrix_away_from_zero, usize_in, Config, Tolerance,
};

fn tol() -> Tolerance {
    Tolerance::for_precision(Precision::F32)
}

fn assert_grads_ok(
    name: &str,
    result: Result<dd_testkit::GradReport, Box<dd_testkit::GradFailure>>,
) {
    match result {
        Ok(report) => {
            assert!(
                report.max_rel_err < 1e-3,
                "{name}: max relative error {} over {} checks",
                report.max_rel_err,
                report.checked
            );
        }
        Err(failure) => panic!("{name}: {failure}"),
    }
}

#[test]
fn dense_gradients_match_finite_differences() {
    let mut rng = Rng64::new(101);
    let mut layer = Dense::new(6, 4, Init::Xavier, &mut rng);
    let x = Matrix::randn(5, 6, 0.0, 1.0, &mut rng);
    assert_grads_ok("dense", check_layer(&mut layer, &x, true, Precision::F32, &tol(), 7));
}

#[test]
fn conv1d_gradients_match_finite_differences() {
    let mut rng = Rng64::new(102);
    let mut layer = Conv1d::new(2, 6, 2, 3, 2, Init::Xavier, &mut rng);
    let x = Matrix::randn(3, 12, 0.0, 1.0, &mut rng);
    assert_grads_ok("conv1d", check_layer(&mut layer, &x, true, Precision::F32, &tol(), 7));
}

#[test]
fn maxpool_gradients_match_finite_differences() {
    // Max-pool is non-differentiable at ties; build an input whose entries
    // are separated by >= 0.3, far beyond the 2*eps = 0.02 probe step.
    let mut layer = MaxPool1d::new(2, 8, 3);
    let x = Matrix::from_fn(3, 16, |i, j| ((i * 31 + j * 17) % 97) as f32 * 0.3 - 14.0);
    assert_grads_ok("maxpool", check_layer(&mut layer, &x, true, Precision::F32, &tol(), 7));
}

#[test]
fn layernorm_gradients_match_finite_differences() {
    let mut rng = Rng64::new(103);
    let mut layer = LayerNorm::new(6);
    let x = Matrix::randn(4, 6, 0.0, 1.0, &mut rng);
    assert_grads_ok("layernorm", check_layer(&mut layer, &x, true, Precision::F32, &tol(), 7));
}

#[test]
fn batchnorm_gradients_match_finite_differences() {
    // Train-mode BatchNorm1d reads only the current batch statistics (the
    // running stats are written, never read, during training), so the
    // train-mode forward is a pure function of (params, x) and checkable.
    let mut rng = Rng64::new(104);
    let mut layer = BatchNorm1d::new(5);
    let x = Matrix::randn(5, 5, 0.0, 1.0, &mut rng);
    assert_grads_ok("batchnorm", check_layer(&mut layer, &x, true, Precision::F32, &tol(), 7));
}

#[test]
fn activation_gradients_match_finite_differences() {
    for act in Activation::ALL {
        let mut rng = Rng64::new(105 + act as u64);
        let mut layer = ActivationLayer::new(act);
        // Relu/LeakyRelu kink at 0: keep probe points away from it.
        let x = match act {
            Activation::Relu | Activation::LeakyRelu => matrix_away_from_zero(&mut rng, 4, 6, 0.2),
            _ => Matrix::randn(4, 6, 0.0, 1.0, &mut rng),
        };
        assert_grads_ok(
            &format!("activation {act:?}"),
            check_layer(&mut layer, &x, true, Precision::F32, &tol(), 7),
        );
    }
}

#[test]
fn residual_gradients_match_finite_differences() {
    let mut rng = Rng64::new(106);
    let inner: Vec<Box<dyn Layer>> = vec![
        Box::new(Dense::new(5, 5, Init::Xavier, &mut rng)),
        Box::new(ActivationLayer::new(Activation::Tanh)),
        Box::new(Dense::new(5, 5, Init::Xavier, &mut rng)),
    ];
    let mut layer = Residual::new(inner);
    let x = Matrix::randn(3, 5, 0.0, 1.0, &mut rng);
    assert_grads_ok("residual", check_layer(&mut layer, &x, true, Precision::F32, &tol(), 7));
}

#[test]
fn dropout_eval_gradients_match_finite_differences() {
    // Dropout is stochastic in train mode; in eval mode it is the identity
    // and its backward must pass gradients through untouched.
    let mut rng = Rng64::new(107);
    let mut layer = Dropout::new(0.3, Rng64::new(42));
    let x = Matrix::randn(4, 6, 0.0, 1.0, &mut rng);
    assert_grads_ok("dropout(eval)", check_layer(&mut layer, &x, false, Precision::F32, &tol(), 7));
}

#[test]
fn loss_gradients_match_finite_differences() {
    let mut rng = Rng64::new(108);
    let pred = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);

    let target = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
    for loss in [Loss::Mse, Loss::Huber] {
        match check_loss(loss, &pred, &target, &tol()) {
            Ok(report) => assert!(report.max_rel_err < 1e-3, "{loss:?}: {}", report.max_rel_err),
            Err(failure) => panic!("{loss:?}: {failure}"),
        }
    }

    let one_hot = dd_tensor::one_hot(&[0, 2, 1, 0], 3);
    match check_loss(Loss::SoftmaxCrossEntropy, &pred, &one_hot, &tol()) {
        Ok(report) => assert!(report.max_rel_err < 1e-3, "softmax-ce: {}", report.max_rel_err),
        Err(failure) => panic!("softmax-ce: {failure}"),
    }

    let binary = Matrix::from_fn(4, 3, |i, j| ((i + j) % 2) as f32);
    match check_loss(Loss::BinaryCrossEntropy, &pred, &binary, &tol()) {
        Ok(report) => assert!(report.max_rel_err < 1e-3, "bce: {}", report.max_rel_err),
        Err(failure) => panic!("bce: {failure}"),
    }
}

/// Random-shape sweep: dense layers of every small geometry must pass.
#[test]
fn dense_gradcheck_over_random_shapes() {
    dd_testkit::check(
        &Config::with_seed(0xD5E).cases(16),
        |rng, _| (rng.next_u64(), usize_in(rng, 1, 6), usize_in(rng, 1, 6), usize_in(rng, 1, 4)),
        |&(seed, i, o, b)| {
            let mut out = Vec::new();
            for v in dd_testkit::shrink_usize(i, 1) {
                out.push((seed, v, o, b));
            }
            for v in dd_testkit::shrink_usize(o, 1) {
                out.push((seed, i, v, b));
            }
            for v in dd_testkit::shrink_usize(b, 1) {
                out.push((seed, i, o, v));
            }
            out
        },
        |&(seed, in_dim, out_dim, batch)| {
            let mut rng = Rng64::new(seed);
            let mut layer = Dense::new(in_dim, out_dim, Init::Xavier, &mut rng);
            let x = Matrix::randn(batch, in_dim, 0.0, 1.0, &mut rng);
            check_layer(&mut layer, &x, true, Precision::F32, &tol(), seed ^ 0x5A)
                .map(|_| ())
                .map_err(|f| f.to_string())
        },
    );
}

/// A dense layer whose backward negates the input gradient — the canary the
/// checker must catch, and the harness must shrink to a minimal shape.
struct SignFlipDense(Dense);

impl Layer for SignFlipDense {
    fn name(&self) -> &'static str {
        "sign-flip-dense"
    }
    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        self.0.forward(x, train, prec)
    }
    fn infer(&self, x: &Matrix, prec: Precision) -> Matrix {
        self.0.infer(x, prec)
    }
    fn backward(&mut self, grad_out: &Matrix, prec: Precision) -> Matrix {
        let mut dx = self.0.backward(grad_out, prec);
        dx.scale(-1.0);
        dx
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.0.visit_params(f);
    }
    fn param_count(&self) -> usize {
        self.0.param_count()
    }
    fn output_dim(&self, input_dim: usize) -> usize {
        self.0.output_dim(input_dim)
    }
    fn flops(&self, batch: usize, input_dim: usize) -> u64 {
        self.0.flops(batch, input_dim)
    }
}

#[test]
fn sign_flip_canary_is_caught_and_shrunk_to_minimal_shape() {
    let cx = falsify(
        &Config::with_seed(0xBAD).cases(8),
        |rng, _| (rng.next_u64(), usize_in(rng, 1, 8), usize_in(rng, 1, 8), usize_in(rng, 1, 6)),
        |&(seed, i, o, b)| {
            let mut out = Vec::new();
            for v in dd_testkit::shrink_usize(i, 1) {
                out.push((seed, v, o, b));
            }
            for v in dd_testkit::shrink_usize(o, 1) {
                out.push((seed, i, v, b));
            }
            for v in dd_testkit::shrink_usize(b, 1) {
                out.push((seed, i, o, v));
            }
            out
        },
        |&(seed, in_dim, out_dim, batch)| {
            let mut rng = Rng64::new(seed);
            let mut layer = SignFlipDense(Dense::new(in_dim, out_dim, Init::Xavier, &mut rng));
            let x = Matrix::randn(batch, in_dim, 0.0, 1.0, &mut rng);
            check_layer(&mut layer, &x, true, Precision::F32, &tol(), seed ^ 0x5A)
                .map(|_| ())
                .map_err(|f| f.to_string())
        },
    )
    .expect("gradient checker must catch a sign-flipped backward");

    // The shrinker walks each dimension down while the failure persists;
    // a sign error survives at tiny shapes, so the minimum must be tiny too.
    let (_, in_dim, out_dim, batch) = cx.case;
    assert!(
        in_dim <= 2 && out_dim <= 2 && batch <= 2,
        "counterexample did not shrink: in={in_dim} out={out_dim} batch={batch} ({cx})"
    );
    assert!(
        cx.message.contains("input"),
        "failure should blame the input gradient: {}",
        cx.message
    );
}
