//! Own-process integration tests for the dd-obs observability subsystem:
//! trace validity, FLOP accounting against the analytic model, exporter
//! schemas, and the promise that instrumentation never changes results.
//!
//! The registry is process-global, so every test that asserts on collected
//! values takes the file-local lock; this test binary is the only user of
//! the registry in its process.

use deepdriver::obs;
use deepdriver::obs::Phase;
use deepdriver::parallel::data_parallel::{train_data_parallel, DataParallelConfig};
use deepdriver::prelude::*;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Train W1's CNN shape on a small synthetic problem; returns the spec,
/// final params, and per-epoch train losses.
fn train_small_cnn(seed: u64, epochs: usize) -> (ModelSpec, Vec<f32>, Vec<f64>) {
    let genes = 64;
    let classes = 3;
    let samples = 320;
    let mut rng = Rng64::new(seed);
    let x = Matrix::randn(samples, genes, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(samples, classes, |i, j| if j == i % classes { 1.0 } else { 0.0 });
    let spec = ModelSpec::new(InputShape::Signal { channels: 1, len: genes })
        .push(LayerSpec::Conv1d { out_ch: 4, kernel: 5, stride: 2, init: Init::He })
        .push(LayerSpec::Activation(Activation::Relu))
        .push(LayerSpec::MaxPool1d { pool: 2 })
        .push(LayerSpec::Dense { out: 16, init: Init::He })
        .push(LayerSpec::Activation(Activation::Relu))
        .push(LayerSpec::Dense { out: classes, init: Init::Xavier });
    let mut model = spec.build(seed, Precision::F32).expect("valid spec");
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 32,
        epochs,
        loss: Loss::SoftmaxCrossEntropy,
        optimizer: OptimizerConfig::adam(1e-3),
        seed,
        ..TrainConfig::default()
    });
    let history = trainer.fit(&mut model, &x, &y, None).expect("training converged");
    let losses = history.epochs.iter().map(|e| e.train_loss).collect();
    (spec, model.flatten_params(), losses)
}

#[test]
fn chrome_trace_is_valid_json_with_monotonic_spans() {
    let _l = lock();
    obs::reset();
    obs::enable();
    train_small_cnn(11, 2);
    let snap = obs::snapshot();
    obs::disable();
    obs::reset();

    assert!(!snap.spans.is_empty(), "training produced no spans");
    // Spans are recorded in end order; end timestamps must be monotonic.
    let ends: Vec<f64> = snap.spans.iter().map(|s| s.start_us + s.dur_us).collect();
    for w in ends.windows(2) {
        assert!(w[0] <= w[1] + 1e-3, "span end times regressed: {} > {}", w[0], w[1]);
    }
    for s in &snap.spans {
        assert!(s.start_us >= 0.0 && s.dur_us >= 0.0, "negative timestamp in {}", s.name);
    }

    let json = obs::chrome_trace(&snap);
    let doc: serde_json::Value = serde_json::from_str(&json).expect("trace parses as JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    let mut saw_complete = false;
    for ev in events {
        let ph = ev["ph"].as_str().expect("event has ph");
        assert!(ph == "X" || ph == "C", "unexpected event type {ph}");
        assert!(ev["ts"].as_f64().expect("ts") >= 0.0);
        assert_eq!(ev["pid"].as_i64(), Some(1));
        if ph == "X" {
            saw_complete = true;
            assert!(ev["dur"].as_f64().expect("dur") >= 0.0);
            assert!(ev["tid"].as_u64().is_some());
        }
    }
    assert!(saw_complete, "no complete (ph=X) span events");
    // The structural spans and the phased leaves are both present.
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    for expected in ["fit", "epoch", "step", "forward", "backward", "optimizer"] {
        assert!(names.contains(&expected), "span {expected} missing from trace");
    }
}

#[test]
fn flops_counter_matches_model_shape_arithmetic() {
    let _l = lock();
    obs::reset();
    obs::enable();
    let epochs = 2;
    let (spec, _, _) = train_small_cnn(12, epochs);
    let snap = obs::snapshot();
    obs::disable();
    obs::reset();

    // 320 samples in batches of 32: ten full chunks per epoch, every chunk
    // costing matmul_flops(32, train=true).
    let per_chunk = spec.matmul_flops(32, true).expect("valid spec");
    let expected = (epochs as u64) * 10 * per_chunk;
    let measured = snap.counter("flops_total");
    let rel = (measured as f64 - expected as f64).abs() / expected as f64;
    assert!(
        rel <= 0.01,
        "flops_total {measured} vs model arithmetic {expected} (rel err {rel:.4})"
    );
    // Everything ran in f32, and byte accounting moved too.
    assert_eq!(snap.counter("flops_f32"), measured);
    assert!(snap.counter("bytes_total") > 0);
    assert!(snap.counter("steps_total") == (epochs as u64) * 10);
}

#[test]
fn instrumentation_is_behavior_neutral() {
    let _l = lock();
    obs::disable();
    obs::reset();
    let (_, params_off, losses_off) = train_small_cnn(13, 3);

    obs::reset();
    obs::enable();
    let (_, params_on, losses_on) = train_small_cnn(13, 3);
    obs::disable();
    obs::reset();

    assert_eq!(losses_off, losses_on, "losses changed under instrumentation");
    assert_eq!(params_off, params_on, "parameters changed under instrumentation");
}

#[test]
fn allreduce_bytes_counter_matches_report() {
    let _l = lock();
    obs::reset();
    obs::enable();
    let mut rng = Rng64::new(14);
    let x = Matrix::randn(64, 8, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(64, 1, |i, _| x.get(i, 0) - x.get(i, 3));
    let spec = ModelSpec::mlp(8, &[16], 1, Activation::Tanh);
    let config = DataParallelConfig { world: 2, epochs: 2, global_batch: 32, ..Default::default() };
    let report = train_data_parallel(&spec, &x, &y, &config).expect("trains");
    let snap = obs::snapshot();
    obs::disable();
    obs::reset();

    // The counter sums over all ranks; the report is per rank (symmetric).
    let total = snap.counter("bytes_allreduced");
    assert_eq!(total, (config.world * report.bytes_sent_per_rank) as u64);
    let rank0 = snap.counter("bytes_allreduced_rank0");
    assert_eq!(rank0, report.bytes_sent_per_rank as u64);
    assert!(snap.time_in(Phase::Comm) > 0.0, "allreduce spans missing");
    assert!(snap.hists.contains_key("allreduce_seconds"));
}

#[test]
fn data_parallel_seconds_come_from_the_span_clock() {
    // Regression for the single-clock policy: train_data_parallel used to
    // time itself with a second, private Instant::now(), so report.seconds
    // and the "dp_train" span could disagree. Both must now be the same
    // measurement from the dd-obs span clock.
    let _l = lock();
    obs::reset();
    obs::enable();
    let mut rng = Rng64::new(16);
    let x = Matrix::randn(64, 8, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(64, 1, |i, _| x.get(i, 0) - x.get(i, 3));
    let spec = ModelSpec::mlp(8, &[16], 1, Activation::Tanh);
    let config = DataParallelConfig { world: 2, epochs: 2, global_batch: 32, ..Default::default() };
    let report = train_data_parallel(&spec, &x, &y, &config).expect("trains");
    let snap = obs::snapshot();
    obs::disable();
    obs::reset();

    let run_spans: Vec<f64> =
        snap.spans.iter().filter(|s| s.name == "dp_train").map(|s| s.dur_us / 1e6).collect();
    assert_eq!(run_spans.len(), 1, "exactly one dp_train span per run");
    assert!(
        (run_spans[0] - report.seconds).abs() < 1e-3,
        "dp_train span {}s disagrees with report.seconds {}s",
        run_spans[0],
        report.seconds
    );
    // The ring kernel accounts its own collectives: every rank counts each
    // of its allreduce() calls, so the total is a positive multiple of the
    // world size.
    let calls = snap.counter("allreduces_total");
    assert!(calls > 0, "allreduces_total not counted");
    assert_eq!(calls % config.world as u64, 0, "ranks made unequal allreduce counts");
}

#[test]
fn jsonl_export_has_typed_lines_for_every_kind() {
    let _l = lock();
    obs::reset();
    obs::enable();
    obs::counter_add("c", 3);
    obs::gauge_set("g", 0.5);
    obs::hist_record("h", 2.0);
    obs::span_phase("s", Phase::Io).finish();
    let snap = obs::snapshot();
    obs::disable();
    obs::reset();

    let mut kinds = std::collections::BTreeSet::new();
    for line in obs::jsonl_export(&snap).lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("JSONL line parses");
        let kind = v["type"].as_str().expect("line has a type").to_string();
        match kind.as_str() {
            "span" => {
                assert_eq!(v["name"].as_str(), Some("s"));
                assert_eq!(v["phase"].as_str(), Some("io"));
            }
            "counter" => assert_eq!(v["value"].as_u64(), Some(3)),
            "gauge" => assert_eq!(v["value"].as_f64(), Some(0.5)),
            "hist" => assert_eq!(v["count"].as_u64(), Some(1)),
            other => panic!("unexpected line type {other}"),
        }
        kinds.insert(kind);
    }
    assert_eq!(kinds.len(), 4, "expected span+counter+gauge+hist lines, got {kinds:?}");
}

#[test]
fn epoch_seconds_come_from_the_span_clock() {
    // Satellite check for the single-timing-source refactor: the History's
    // per-epoch seconds and the epoch spans in the trace are the same
    // measurements, not two disagreeing clocks.
    let _l = lock();
    obs::reset();
    obs::enable();
    let genes = 32;
    let mut rng = Rng64::new(15);
    let x = Matrix::randn(128, genes, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(128, 1, |i, _| x.get(i, 0));
    let mut model =
        ModelSpec::mlp(genes, &[16], 1, Activation::Tanh).build(15, Precision::F32).unwrap();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 2,
        loss: Loss::Mse,
        seed: 15,
        ..TrainConfig::default()
    });
    let history = trainer.fit(&mut model, &x, &y, None).expect("trains");
    let snap = obs::snapshot();
    obs::disable();
    obs::reset();

    let epoch_spans: Vec<f64> =
        snap.spans.iter().filter(|s| s.name == "epoch").map(|s| s.dur_us / 1e6).collect();
    assert_eq!(epoch_spans.len(), history.epochs.len());
    for (span_secs, stats) in epoch_spans.iter().zip(&history.epochs) {
        assert!(
            (span_secs - stats.seconds).abs() < 1e-3,
            "epoch span {span_secs}s disagrees with History seconds {}s",
            stats.seconds
        );
    }
    assert_eq!(snap.hists["epoch_seconds"].count, history.epochs.len() as u64);
}
