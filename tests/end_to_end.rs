//! Cross-crate integration tests: data generation → training → evaluation
//! pipelines spanning the whole public API, exactly as the examples use it.

use deepdriver::datagen::baselines::Logistic;
use deepdriver::datagen::expression::ExpressionModel;
use deepdriver::datagen::tumor::{self, TumorConfig};
use deepdriver::nn::metrics;
use deepdriver::prelude::*;

fn small_tumor_split(seed: u64) -> deepdriver::datagen::Split {
    let config = TumorConfig {
        samples: 500,
        types: 3,
        signature_genes: 10,
        signature_strength: 1.5,
        position_jitter: 0,
        expression: ExpressionModel { genes: 64, pathways: 6, ..Default::default() },
    };
    tumor::generate(&config, seed).dataset.split(0.2, 0.2, seed, true)
}

#[test]
fn full_pipeline_classification() {
    let split = small_tumor_split(1);
    let mut model =
        ModelSpec::mlp(64, &[32], 3, Activation::Relu).build(1, Precision::F32).unwrap();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 15,
        loss: Loss::SoftmaxCrossEntropy,
        optimizer: OptimizerConfig::adam(2e-3),
        ..TrainConfig::default()
    });
    let y = split.train.y.to_matrix();
    let history = trainer.fit(&mut model, &split.train.x, &y, None).expect("training converged");
    assert!(history.final_train_loss() < history.epochs[0].train_loss);
    let acc = metrics::accuracy(&model.predict(&split.test.x), split.test.y.labels().unwrap());
    assert!(acc > 0.7, "end-to-end accuracy {acc}");
}

#[test]
fn dnn_and_baseline_agree_on_easy_data() {
    // With strong signatures both model families should classify well —
    // a cross-check that the data generator, the NN stack and the classical
    // baselines all see the same structure.
    let split = small_tumor_split(2);
    let mut model =
        ModelSpec::mlp(64, &[32], 3, Activation::Tanh).build(2, Precision::F32).unwrap();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 15,
        loss: Loss::SoftmaxCrossEntropy,
        optimizer: OptimizerConfig::adam(2e-3),
        ..TrainConfig::default()
    });
    let y = split.train.y.to_matrix();
    trainer.fit(&mut model, &split.train.x, &y, None).expect("training converged");
    let labels = split.test.y.labels().unwrap();
    let dnn_acc = metrics::accuracy(&model.predict(&split.test.x), labels);

    let logi = Logistic::fit_multiclass(
        &split.train.x,
        split.train.y.labels().unwrap(),
        3,
        1e-4,
        150,
        0.5,
    );
    let base_acc = metrics::accuracy(
        &deepdriver::datagen::baselines::ovr_scores(&logi, &split.test.x),
        labels,
    );
    assert!(dnn_acc > 0.75 && base_acc > 0.75, "dnn {dnn_acc} base {base_acc}");
}

#[test]
fn precision_sweep_preserves_trained_model_quality() {
    let split = small_tumor_split(3);
    let mut model =
        ModelSpec::mlp(64, &[32], 3, Activation::Relu).build(3, Precision::F32).unwrap();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 12,
        loss: Loss::SoftmaxCrossEntropy,
        optimizer: OptimizerConfig::adam(2e-3),
        ..TrainConfig::default()
    });
    let y = split.train.y.to_matrix();
    trainer.fit(&mut model, &split.train.x, &y, None).expect("training converged");
    let labels = split.test.y.labels().unwrap();
    let f32_acc = metrics::accuracy(&model.predict(&split.test.x), labels);
    assert!(f32_acc > 0.7);
    // bf16/f16 inference within a few points of f32; int8 usable.
    for (precision, slack) in [
        (Precision::F64, 0.02),
        (Precision::Bf16, 0.05),
        (Precision::F16, 0.05),
        (Precision::Int8, 0.15),
    ] {
        model.set_precision(precision);
        let acc = metrics::accuracy(&model.predict(&split.test.x), labels);
        assert!(acc > f32_acc - slack, "{precision}: {acc} vs f32 {f32_acc}");
    }
}

#[test]
fn spec_roundtrips_through_json_and_retrains() {
    let spec = ModelSpec::mlp(16, &[8], 2, Activation::Gelu);
    let json = serde_json::to_string(&spec).unwrap();
    let back: ModelSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);
    let mut a = spec.build(9, Precision::F32).unwrap();
    let mut b = back.build(9, Precision::F32).unwrap();
    assert_eq!(a.flatten_params(), b.flatten_params());
}
