//! # deepdriver — deep learning driver problems for future HPC architecture
//!
//! A from-scratch Rust reproduction of the system described in
//! *"Deep Learning in Cancer and Infectious Disease: Novel Driver Problems
//! for Future HPC Architecture"* (Rick L. Stevens, HPDC 2017): the
//! cancer/infectious-disease deep learning workloads, the parallel training
//! engines (data / model / search parallelism), a large-scale
//! hyperparameter search system including a generative-neural-network
//! searcher, and a simulated HPC architecture (precision-scaled compute,
//! HBM/DDR/NVRAM/PFS memory tiers, interconnect fabric) on which each of
//! the talk's architectural claims becomes a measurable experiment.
//!
//! This facade crate re-exports every subsystem under one namespace:
//!
//! * [`tensor`] — matrices, parallel matmul, low-precision emulation, RNG.
//! * [`nn`] — layers, backprop, optimizers, training loops.
//! * [`datagen`] — synthetic biomedical datasets + classical baselines.
//! * [`hpcsim`] — the architecture cost-model simulator.
//! * [`parallel`] — real ring-allreduce data parallelism, model-parallel
//!   partitioning, the hybrid parallelism planner.
//! * [`hypersearch`] — grid/random/SHA/Hyperband/surrogate/evolutionary/
//!   generative searchers with a parallel driver.
//! * [`mdsim`] — surrogate-supervised multi-resolution molecular dynamics.
//! * [`serve`] — batched inference serving: model registry with hot-swap,
//!   dynamic batching with admission control, and a virtual-time simulator.
//! * [`obs`] — spans/counters/histograms with Chrome-trace + JSONL export.
//! * [`core`] — the driver workloads (W1–W7) and experiments (E1–E13).
//!
//! ## Quickstart
//!
//! ```
//! use deepdriver::prelude::*;
//!
//! // Generate a synthetic tumor-expression dataset and train a classifier.
//! let config = dd_datagen::tumor::TumorConfig {
//!     samples: 300,
//!     types: 3,
//!     expression: dd_datagen::expression::ExpressionModel {
//!         genes: 64,
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! };
//! let data = dd_datagen::tumor::generate(&config, 7);
//! let split = data.dataset.split(0.2, 0.2, 7, true);
//!
//! let mut model = ModelSpec::mlp(64, &[32], 3, Activation::Relu)
//!     .build(7, Precision::F32)
//!     .unwrap();
//! let mut trainer = Trainer::new(TrainConfig {
//!     epochs: 5,
//!     loss: Loss::SoftmaxCrossEntropy,
//!     ..TrainConfig::default()
//! });
//! let y = split.train.y.to_matrix();
//! trainer.fit(&mut model, &split.train.x, &y, None).expect("training converged");
//! let acc = dd_nn::metrics::accuracy(
//!     &model.predict(&split.test.x),
//!     split.test.y.labels().unwrap(),
//! );
//! assert!(acc > 0.3); // well above with real epochs; kept loose for doctest speed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dd_datagen as datagen;
pub use dd_hpcsim as hpcsim;
pub use dd_hypersearch as hypersearch;
pub use dd_mdsim as mdsim;
pub use dd_nn as nn;
pub use dd_obs as obs;
pub use dd_parallel as parallel;
pub use dd_serve as serve;
pub use dd_tensor as tensor;
pub use deepdriver_core as core;

/// The most common imports in one place.
pub mod prelude {
    pub use dd_datagen::{Dataset, Split, Target};
    pub use dd_hpcsim::{Machine, SimPrecision, Staging, Strategy, Tier, TrainJob};
    pub use dd_hypersearch::{run_search, Config, SearchSpace, Searcher};
    pub use dd_nn::{
        Activation, Init, InputShape, LayerSpec, Loss, LrSchedule, ModelSpec, OptimizerConfig,
        Sequential, TrainConfig, Trainer,
    };
    pub use dd_tensor::{Matrix, Precision, Rng64};
    pub use deepdriver_core::{Scale, Table};
}
