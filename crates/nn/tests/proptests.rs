//! Property-based tests for the NN stack: losses, optimizers and layer
//! invariants under randomized inputs.

use dd_nn::{
    layers::Layer, Activation, ActivationLayer, Init, Loss, LrSchedule, ModelSpec, OptimizerConfig,
    Sequential,
};
use dd_tensor::{Matrix, Precision, Rng64};
use proptest::prelude::*;

fn matrix(
    rows: std::ops::RangeInclusive<usize>,
    cols: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0f32..5.0, r * c).prop_map(move |d| Matrix::from_vec(r, c, d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn losses_are_nonnegative_and_zero_grad_at_optimum(pred in matrix(1..=6, 1..=4)) {
        // MSE and Huber at target == pred must be exactly zero.
        for loss in [Loss::Mse, Loss::Huber] {
            let (l, g) = loss.compute(&pred, &pred);
            prop_assert_eq!(l, 0.0);
            prop_assert_eq!(g.max_abs(), 0.0);
        }
    }

    #[test]
    fn softmax_ce_bounded_below_by_zero(pred in matrix(1..=6, 2..=5)) {
        let labels: Vec<usize> = (0..pred.rows()).map(|i| i % pred.cols()).collect();
        let target = dd_tensor::one_hot(&labels, pred.cols());
        let (l, g) = Loss::SoftmaxCrossEntropy.compute(&pred, &target);
        prop_assert!(l >= 0.0);
        prop_assert!(!g.has_non_finite());
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for i in 0..g.rows() {
            let s: f32 = g.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn bce_gradient_bounded(pred in matrix(1..=6, 1..=4)) {
        let target = Matrix::from_fn(pred.rows(), pred.cols(), |i, j| ((i + j) % 2) as f32);
        let (l, g) = Loss::BinaryCrossEntropy.compute(&pred, &target);
        prop_assert!(l.is_finite() && l >= 0.0);
        // Per-element gradient of BCE-with-logits is (sigmoid − t)/count ∈ [−1, 1].
        prop_assert!(g.max_abs() <= 1.0 + 1e-6);
    }

    #[test]
    fn activations_forward_backward_consistent(x in matrix(1..=4, 1..=6)) {
        for act in Activation::ALL {
            let mut layer = ActivationLayer::new(act);
            let y = layer.forward(&x, true, Precision::F32);
            prop_assert_eq!(y.shape(), x.shape());
            prop_assert!(!y.has_non_finite());
            let g = layer.backward(&Matrix::full(x.rows(), x.cols(), 1.0), Precision::F32);
            prop_assert!(!g.has_non_finite());
        }
    }

    #[test]
    fn relu_output_nonnegative(x in matrix(1..=5, 1..=8)) {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let y = layer.forward(&x, false, Precision::F32);
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn sgd_step_moves_against_gradient(w0 in -3.0f32..3.0, g in -3.0f32..3.0, lr in 0.001f32..0.5) {
        prop_assume!(g.abs() > 1e-3);
        let mut w = Matrix::full(1, 1, w0);
        let grad = Matrix::full(1, 1, g);
        let mut opt = OptimizerConfig::sgd(lr).build();
        opt.step_params(&mut [(&mut w, &grad)], 1.0);
        let moved = w.get(0, 0) - w0;
        prop_assert!(moved * g < 0.0, "step {moved} should oppose gradient {g}");
        prop_assert!((moved + lr * g).abs() < 1e-6);
    }

    #[test]
    fn adam_steps_are_bounded_by_lr(g in -100.0f32..100.0, lr in 0.001f32..0.1) {
        prop_assume!(g.abs() > 1e-3);
        // Adam normalizes by the gradient magnitude: first step ≈ lr.
        let mut w = Matrix::zeros(1, 1);
        let grad = Matrix::full(1, 1, g);
        let mut opt = OptimizerConfig::adam(lr).build();
        opt.step_params(&mut [(&mut w, &grad)], 1.0);
        prop_assert!(w.get(0, 0).abs() <= lr * 1.01);
    }

    #[test]
    fn schedules_stay_in_unit_range(epoch in 0usize..1000) {
        for sched in [
            LrSchedule::Constant,
            LrSchedule::StepDecay { every: 10, gamma: 0.5 },
            LrSchedule::Cosine { total: 100, floor: 0.1 },
            LrSchedule::Warmup { warmup: 8 },
        ] {
            let s = sched.scale(epoch);
            prop_assert!((0.0..=1.0 + 1e-6).contains(&s), "{sched:?} at {epoch}: {s}");
        }
    }

    #[test]
    fn model_flatten_load_roundtrip(seed in any::<u64>(), hidden in 1usize..24) {
        let spec = ModelSpec::mlp(5, &[hidden], 3, Activation::Tanh);
        let mut model: Sequential = spec.build(seed, Precision::F32).unwrap();
        let flat = model.flatten_params();
        prop_assert_eq!(flat.len(), model.param_count());
        let mut other = spec.build(seed.wrapping_add(1), Precision::F32).unwrap();
        other.load_params(&flat);
        prop_assert_eq!(other.flatten_params(), flat);
    }

    #[test]
    fn forward_is_deterministic_in_eval(seed in any::<u64>(), x in matrix(1..=4, 5..=5)) {
        let spec = ModelSpec::mlp(5, &[8], 2, Activation::Relu)
            .push(dd_nn::LayerSpec::Dropout { p: 0.5 });
        let mut model = spec.build(seed, Precision::F32).unwrap();
        // Eval mode ignores dropout: repeated calls agree exactly.
        let a = model.predict(&x);
        let b = model.predict(&x);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn init_shapes_and_finiteness(seed in any::<u64>(), fan_in in 1usize..40, fan_out in 1usize..40) {
        let mut rng = Rng64::new(seed);
        for init in [Init::Zeros, Init::Xavier, Init::He, Init::Uniform(0.5), Init::Normal(0.1)] {
            let m = init.build(fan_in, fan_out, &mut rng);
            prop_assert_eq!(m.shape(), (fan_in, fan_out));
            prop_assert!(!m.has_non_finite());
        }
    }

    #[test]
    fn dense_gradcheck_random_shapes(seed in 0u64..1000, in_dim in 2usize..6, out_dim in 2usize..6) {
        // Randomized finite-difference check of dW through L = 0.5||y||².
        let mut rng = Rng64::new(seed);
        let mut layer = dd_nn::Dense::new(in_dim, out_dim, Init::Xavier, &mut rng);
        let x = Matrix::randn(3, in_dim, 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, true, Precision::F32);
        layer.backward(&y.clone(), Precision::F32);
        let mut analytic = None;
        layer.visit_params(&mut |p, g| {
            if p.shape() == (in_dim, out_dim) && analytic.is_none() {
                analytic = Some(g.get(0, 0));
            }
        });
        let analytic = analytic.unwrap() as f64;
        let eps = 1e-2f32;
        let mut loss_at = |delta: f32, layer: &mut dd_nn::Dense| {
            layer.visit_params(&mut |p, _| {
                if p.shape() == (in_dim, out_dim) {
                    let v = p.get(0, 0);
                    p.set(0, 0, v + delta);
                }
            });
            let y = layer.forward(&x, false, Precision::F32);
            layer.visit_params(&mut |p, _| {
                if p.shape() == (in_dim, out_dim) {
                    let v = p.get(0, 0);
                    p.set(0, 0, v - delta);
                }
            });
            0.5 * y.norm_sq() as f64
        };
        let num = (loss_at(eps, &mut layer) - loss_at(-eps, &mut layer)) / (2.0 * eps as f64);
        prop_assert!(
            (num - analytic).abs() < 0.05 * (1.0 + num.abs()),
            "numeric {num} vs analytic {analytic}"
        );
    }
}
