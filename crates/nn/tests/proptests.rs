//! Property-based tests for the NN stack: losses, optimizers and layer
//! invariants under randomized inputs.
//!
//! Migrated onto the dd-testkit harness: every case derives from a seeded
//! [`Rng64`] stream (no ambient entropy), and failures shrink to a minimal
//! counterexample before the panic message is printed.

use dd_nn::{
    Activation, ActivationLayer, Init, Layer, Loss, LrSchedule, ModelSpec, OptimizerConfig,
    Sequential,
};
use dd_tensor::{Matrix, Precision, Rng64};
use dd_testkit::{check, usize_in, Config, Tolerance};

/// A matrix case: dims plus the seed its uniform [-5, 5) entries regrow from.
#[derive(Debug, Clone)]
struct MatCase {
    rows: usize,
    cols: usize,
    seed: u64,
}

impl MatCase {
    fn sample(rng: &mut Rng64, rows: (usize, usize), cols: (usize, usize)) -> MatCase {
        MatCase {
            rows: usize_in(rng, rows.0, rows.1),
            cols: usize_in(rng, cols.0, cols.1),
            seed: rng.next_u64(),
        }
    }

    fn matrix(&self) -> Matrix {
        let mut rng = Rng64::new(self.seed);
        Matrix::from_fn(self.rows, self.cols, |_, _| rng.range(-5.0, 5.0) as f32)
    }

    fn shrink(&self, row_floor: usize, col_floor: usize) -> Vec<MatCase> {
        let mut out = Vec::new();
        for rows in dd_testkit::shrink_usize(self.rows, row_floor) {
            out.push(MatCase { rows, ..*self });
        }
        for cols in dd_testkit::shrink_usize(self.cols, col_floor) {
            out.push(MatCase { cols, ..*self });
        }
        out
    }
}

#[test]
fn losses_are_nonnegative_and_zero_grad_at_optimum() {
    check(
        &Config::with_seed(0x11).cases(64),
        |rng, _| MatCase::sample(rng, (1, 6), (1, 4)),
        |c| c.shrink(1, 1),
        |c| {
            let pred = c.matrix();
            for loss in [Loss::Mse, Loss::Huber] {
                let (l, g) = loss.compute(&pred, &pred);
                if l != 0.0 || g.max_abs() != 0.0 {
                    return Err(format!("{loss:?} at optimum: loss {l}, grad {}", g.max_abs()));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn softmax_ce_bounded_below_by_zero() {
    check(
        &Config::with_seed(0x12).cases(64),
        |rng, _| MatCase::sample(rng, (1, 6), (2, 5)),
        |c| c.shrink(1, 2),
        |c| {
            let pred = c.matrix();
            let labels: Vec<usize> = (0..pred.rows()).map(|i| i % pred.cols()).collect();
            let target = dd_tensor::one_hot(&labels, pred.cols());
            let (l, g) = Loss::SoftmaxCrossEntropy.compute(&pred, &target);
            if l < 0.0 {
                return Err(format!("negative cross-entropy {l}"));
            }
            if g.has_non_finite() {
                return Err("non-finite gradient".into());
            }
            // Gradient rows sum to ~0 (softmax minus one-hot).
            for i in 0..g.rows() {
                let s: f32 = g.row(i).iter().sum();
                if s.abs() >= 1e-4 {
                    return Err(format!("row {i} gradient sums to {s}"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn bce_gradient_bounded() {
    check(
        &Config::with_seed(0x13).cases(64),
        |rng, _| MatCase::sample(rng, (1, 6), (1, 4)),
        |c| c.shrink(1, 1),
        |c| {
            let pred = c.matrix();
            let target = Matrix::from_fn(pred.rows(), pred.cols(), |i, j| ((i + j) % 2) as f32);
            let (l, g) = Loss::BinaryCrossEntropy.compute(&pred, &target);
            if !l.is_finite() || l < 0.0 {
                return Err(format!("bad loss {l}"));
            }
            // Per-element gradient of BCE-with-logits is (sigmoid − t)/count ∈ [−1, 1].
            if g.max_abs() > 1.0 + 1e-6 {
                return Err(format!("gradient magnitude {}", g.max_abs()));
            }
            Ok(())
        },
    );
}

#[test]
fn activations_forward_backward_consistent() {
    check(
        &Config::with_seed(0x14).cases(64),
        |rng, _| MatCase::sample(rng, (1, 4), (1, 6)),
        |c| c.shrink(1, 1),
        |c| {
            let x = c.matrix();
            for act in Activation::ALL {
                let mut layer = ActivationLayer::new(act);
                let y = layer.forward(&x, true, Precision::F32);
                if y.shape() != x.shape() {
                    return Err(format!("{act:?}: shape {:?} vs {:?}", y.shape(), x.shape()));
                }
                if y.has_non_finite() {
                    return Err(format!("{act:?}: non-finite forward"));
                }
                let g = layer.backward(&Matrix::full(x.rows(), x.cols(), 1.0), Precision::F32);
                if g.has_non_finite() {
                    return Err(format!("{act:?}: non-finite backward"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn relu_output_nonnegative() {
    check(
        &Config::with_seed(0x15).cases(64),
        |rng, _| MatCase::sample(rng, (1, 5), (1, 8)),
        |c| c.shrink(1, 1),
        |c| {
            let mut layer = ActivationLayer::new(Activation::Relu);
            let y = layer.forward(&c.matrix(), false, Precision::F32);
            match y.as_slice().iter().find(|&&v| v < 0.0) {
                Some(v) => Err(format!("negative relu output {v}")),
                None => Ok(()),
            }
        },
    );
}

#[test]
fn sgd_step_moves_against_gradient() {
    check(
        &Config::with_seed(0x16).cases(64),
        |rng, _| {
            let w0 = rng.range(-3.0, 3.0) as f32;
            // Keep the gradient clear of zero: a ~0 gradient moves ~0.
            let g = (rng.range(0.01, 3.0) * if rng.bernoulli(0.5) { 1.0 } else { -1.0 }) as f32;
            let lr = rng.range(0.001, 0.5) as f32;
            (w0, g, lr)
        },
        |_| Vec::new(),
        |&(w0, g, lr)| {
            let mut w = Matrix::full(1, 1, w0);
            let grad = Matrix::full(1, 1, g);
            let mut opt = OptimizerConfig::sgd(lr).build();
            opt.step_params(&mut [(&mut w, &grad)], 1.0);
            let moved = w.get(0, 0) - w0;
            if moved * g >= 0.0 {
                return Err(format!("step {moved} should oppose gradient {g}"));
            }
            if (moved + lr * g).abs() >= 1e-6 {
                return Err(format!("step {moved} is not -lr*g = {}", -lr * g));
            }
            Ok(())
        },
    );
}

#[test]
fn adam_steps_are_bounded_by_lr() {
    check(
        &Config::with_seed(0x17).cases(64),
        |rng, _| {
            let g = (rng.range(0.01, 100.0) * if rng.bernoulli(0.5) { 1.0 } else { -1.0 }) as f32;
            let lr = rng.range(0.001, 0.1) as f32;
            (g, lr)
        },
        |_| Vec::new(),
        |&(g, lr)| {
            // Adam normalizes by the gradient magnitude: first step ≈ lr.
            let mut w = Matrix::zeros(1, 1);
            let grad = Matrix::full(1, 1, g);
            let mut opt = OptimizerConfig::adam(lr).build();
            opt.step_params(&mut [(&mut w, &grad)], 1.0);
            let step = w.get(0, 0).abs();
            if step > lr * 1.01 {
                return Err(format!("first Adam step {step} exceeds lr {lr}"));
            }
            Ok(())
        },
    );
}

#[test]
fn schedules_stay_in_unit_range() {
    check(
        &Config::with_seed(0x18).cases(128),
        |rng, _| usize_in(rng, 0, 999),
        |&e| dd_testkit::shrink_usize(e, 0),
        |&epoch| {
            for sched in [
                LrSchedule::Constant,
                LrSchedule::StepDecay { every: 10, gamma: 0.5 },
                LrSchedule::Cosine { total: 100, floor: 0.1 },
                LrSchedule::Warmup { warmup: 8 },
            ] {
                let s = sched.scale(epoch);
                if !(0.0..=1.0 + 1e-6).contains(&s) {
                    return Err(format!("{sched:?} at {epoch}: {s}"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn model_flatten_load_roundtrip() {
    check(
        &Config::with_seed(0x19).cases(64),
        |rng, _| (rng.next_u64(), usize_in(rng, 1, 24)),
        |&(seed, hidden)| {
            dd_testkit::shrink_usize(hidden, 1).into_iter().map(|h| (seed, h)).collect()
        },
        |&(seed, hidden)| {
            let spec = ModelSpec::mlp(5, &[hidden], 3, Activation::Tanh);
            let mut model: Sequential =
                spec.build(seed, Precision::F32).map_err(|e| e.to_string())?;
            let flat = model.flatten_params();
            if flat.len() != model.param_count() {
                return Err(format!("{} flat vs {} params", flat.len(), model.param_count()));
            }
            let mut other =
                spec.build(seed.wrapping_add(1), Precision::F32).map_err(|e| e.to_string())?;
            other.load_params(&flat);
            if other.flatten_params() != flat {
                return Err("load_params/flatten_params roundtrip differs".into());
            }
            Ok(())
        },
    );
}

#[test]
fn forward_is_deterministic_in_eval() {
    check(
        &Config::with_seed(0x1A).cases(64),
        |rng, _| (rng.next_u64(), MatCase::sample(rng, (1, 4), (5, 5))),
        |_| Vec::new(),
        |(seed, c)| {
            let spec = ModelSpec::mlp(5, &[8], 2, Activation::Relu)
                .push(dd_nn::LayerSpec::Dropout { p: 0.5 });
            let mut model = spec.build(*seed, Precision::F32).map_err(|e| e.to_string())?;
            // Eval mode ignores dropout: repeated calls agree exactly.
            let x = c.matrix();
            let a = model.predict(&x);
            let b = model.predict(&x);
            if a != b {
                return Err("eval-mode forward is not reproducible".into());
            }
            Ok(())
        },
    );
}

#[test]
fn init_shapes_and_finiteness() {
    check(
        &Config::with_seed(0x1B).cases(64),
        |rng, _| (rng.next_u64(), usize_in(rng, 1, 39), usize_in(rng, 1, 39)),
        |&(seed, fi, fo)| {
            let mut out = Vec::new();
            for v in dd_testkit::shrink_usize(fi, 1) {
                out.push((seed, v, fo));
            }
            for v in dd_testkit::shrink_usize(fo, 1) {
                out.push((seed, fi, v));
            }
            out
        },
        |&(seed, fan_in, fan_out)| {
            let mut rng = Rng64::new(seed);
            for init in [Init::Zeros, Init::Xavier, Init::He, Init::Uniform(0.5), Init::Normal(0.1)]
            {
                let m = init.build(fan_in, fan_out, &mut rng);
                if m.shape() != (fan_in, fan_out) {
                    return Err(format!("{init:?}: shape {:?}", m.shape()));
                }
                if m.has_non_finite() {
                    return Err(format!("{init:?}: non-finite init"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn dense_gradcheck_random_shapes() {
    // The full checker (all parameters + input gradient) over random dense
    // shapes, replacing the old single-entry finite-difference spot check.
    check(
        &Config::with_seed(0x1C).cases(24),
        |rng, _| (rng.next_u64(), usize_in(rng, 2, 5), usize_in(rng, 2, 5), usize_in(rng, 1, 4)),
        |&(seed, i, o, b)| {
            let mut out = Vec::new();
            for v in dd_testkit::shrink_usize(i, 2) {
                out.push((seed, v, o, b));
            }
            for v in dd_testkit::shrink_usize(o, 2) {
                out.push((seed, i, v, b));
            }
            for v in dd_testkit::shrink_usize(b, 1) {
                out.push((seed, i, o, v));
            }
            out
        },
        |&(seed, in_dim, out_dim, batch)| {
            let mut rng = Rng64::new(seed);
            let mut layer = dd_nn::Dense::new(in_dim, out_dim, Init::Xavier, &mut rng);
            let x = Matrix::randn(batch, in_dim, 0.0, 1.0, &mut rng);
            let tol = Tolerance::for_precision(Precision::F32);
            dd_testkit::check_layer(&mut layer, &x, true, Precision::F32, &tol, seed ^ 0xA5)
                .map(|_| ())
                .map_err(|f| f.to_string())
        },
    );
}
