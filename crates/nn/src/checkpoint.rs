//! Model checkpointing: a compact binary format bundling the serializable
//! [`ModelSpec`] with the flattened parameter vector and (since version 2)
//! the resume-at-epoch training state.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   u32  = 0xDDC0FFEE
//! version u32  = 1 | 2
//! spec_len u32, spec: JSON bytes of the ModelSpec
//! precision: 1 byte tag
//! param_count u64, params: f32 × param_count
//! state_len u32, state: JSON bytes of TrainState   (version 2 only)
//! checksum u64 (FNV-1a over everything above)
//! ```
//!
//! Version 1 checkpoints (weights only) still load; version 2 adds a
//! [`TrainState`] — epoch index, optimizer moment buffers and the shuffle
//! RNG position — so fault-tolerant training can restart mid-run and
//! reproduce the uninterrupted run bit for bit.

use crate::model::Sequential;
use crate::optim::OptimizerState;
use crate::spec::ModelSpec;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dd_tensor::{Precision, Rng64};
use serde::{Deserialize, Serialize};

const MAGIC: u32 = 0xDDC0_FFEE;
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Resume-at-epoch training state carried by a version-2 checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainState {
    /// Next epoch to run (epochs `0..epoch` are already applied to the
    /// stored weights).
    pub epoch: u64,
    /// Optimizer step counter and moment buffers.
    pub optimizer: OptimizerState,
    /// Position of the shuffle RNG stream at the checkpoint boundary.
    pub rng: Rng64,
}

/// Errors arising when decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer too short or structurally truncated.
    Truncated,
    /// Magic number mismatch (not a checkpoint).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Spec JSON failed to parse or validate.
    BadSpec(String),
    /// Unknown precision tag.
    BadPrecision(u8),
    /// Parameter count disagrees with the spec's architecture.
    ParamMismatch {
        /// Count stored in the checkpoint.
        stored: u64,
        /// Count the spec requires.
        expected: u64,
    },
    /// Training-state JSON failed to parse (version 2).
    BadState(String),
    /// Checksum mismatch (corruption).
    BadChecksum,
    /// Serialization failed while *writing* a checkpoint (spec/state JSON
    /// encoding, or a section exceeding the format's u32 length fields).
    EncodeFailed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a deepdriver checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadSpec(e) => write!(f, "invalid model spec: {e}"),
            CheckpointError::BadPrecision(t) => write!(f, "unknown precision tag {t}"),
            CheckpointError::ParamMismatch { stored, expected } => {
                write!(f, "parameter count {stored} does not match spec ({expected})")
            }
            CheckpointError::BadState(e) => write!(f, "invalid training state: {e}"),
            CheckpointError::BadChecksum => write!(f, "checksum mismatch (corrupt checkpoint)"),
            CheckpointError::EncodeFailed(e) => write!(f, "checkpoint encoding failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn precision_tag(p: Precision) -> u8 {
    match p {
        Precision::F64 => 0,
        Precision::F32 => 1,
        Precision::Bf16 => 2,
        Precision::F16 => 3,
        Precision::Int8 => 4,
    }
}

fn precision_from_tag(t: u8) -> Option<Precision> {
    Some(match t {
        0 => Precision::F64,
        1 => Precision::F32,
        2 => Precision::Bf16,
        3 => Precision::F16,
        4 => Precision::Int8,
        _ => return None,
    })
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn encode(
    spec: &ModelSpec,
    model: &mut Sequential,
    state: Option<&TrainState>,
) -> Result<Bytes, CheckpointError> {
    let spec_json =
        serde_json::to_vec(spec).map_err(|e| CheckpointError::EncodeFailed(e.to_string()))?;
    let params = model.flatten_params();
    let mut buf = BytesMut::with_capacity(64 + spec_json.len() + params.len() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(if state.is_some() { VERSION_V2 } else { VERSION_V1 });
    let spec_len = u32::try_from(spec_json.len())
        .map_err(|_| CheckpointError::EncodeFailed("spec JSON exceeds u32 length".into()))?;
    buf.put_u32_le(spec_len);
    buf.put_slice(&spec_json);
    buf.put_u8(precision_tag(model.precision()));
    buf.put_u64_le(params.len() as u64);
    for v in &params {
        buf.put_f32_le(*v);
    }
    if let Some(state) = state {
        let state_json =
            serde_json::to_vec(state).map_err(|e| CheckpointError::EncodeFailed(e.to_string()))?;
        let state_len = u32::try_from(state_json.len())
            .map_err(|_| CheckpointError::EncodeFailed("state JSON exceeds u32 length".into()))?;
        buf.put_u32_le(state_len);
        buf.put_slice(&state_json);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    Ok(buf.freeze())
}

/// Serialize a model (spec + current weights) into a version-1 checkpoint.
pub fn save(spec: &ModelSpec, model: &mut Sequential) -> Result<Bytes, CheckpointError> {
    let span = dd_obs::span_phase("checkpoint_save", dd_obs::Phase::Checkpoint);
    let blob = encode(spec, model, None)?;
    dd_obs::hist_record("checkpoint_seconds", span.finish());
    dd_obs::counter_add("checkpoints_saved", 1);
    dd_obs::counter_add("checkpoint_bytes", blob.len() as u64);
    Ok(blob)
}

/// Serialize a model plus its training state into a version-2 checkpoint
/// that supports exact mid-run resume.
pub fn save_with_state(
    spec: &ModelSpec,
    model: &mut Sequential,
    state: &TrainState,
) -> Result<Bytes, CheckpointError> {
    let span = dd_obs::span_phase("checkpoint_save", dd_obs::Phase::Checkpoint);
    let blob = encode(spec, model, Some(state))?;
    dd_obs::hist_record("checkpoint_seconds", span.finish());
    dd_obs::counter_add("checkpoints_saved", 1);
    dd_obs::counter_add("checkpoint_bytes", blob.len() as u64);
    Ok(blob)
}

/// Decode a checkpoint (either version), rebuilding the model with its
/// stored weights and returning the training state when present.
pub fn load_with_state(
    data: &[u8],
) -> Result<(ModelSpec, Sequential, Option<TrainState>), CheckpointError> {
    let _span = dd_obs::span_phase("checkpoint_load", dd_obs::Phase::Checkpoint);
    // Verify the trailing checksum before trusting any field.
    if data.len() < 20 {
        return Err(CheckpointError::Truncated);
    }
    let (body, tail) = data.split_at(data.len() - 8);
    // split_at guarantees an 8-byte tail; surface the impossible case as
    // Truncated rather than aborting.
    let stored_sum = u64::from_le_bytes(tail.try_into().map_err(|_| CheckpointError::Truncated)?);
    if fnv1a(body) != stored_sum {
        return Err(CheckpointError::BadChecksum);
    }

    let mut buf = body;
    if buf.get_u32_le() != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(CheckpointError::BadVersion(version));
    }
    let spec_len = buf.get_u32_le() as usize;
    if buf.len() < spec_len {
        return Err(CheckpointError::Truncated);
    }
    let spec: ModelSpec = serde_json::from_slice(&buf[..spec_len])
        .map_err(|e| CheckpointError::BadSpec(e.to_string()))?;
    buf.advance(spec_len);
    if buf.len() < 9 {
        return Err(CheckpointError::Truncated);
    }
    let precision = precision_from_tag(buf.get_u8()).ok_or(CheckpointError::BadPrecision(0xFF))?;
    let count = buf.get_u64_le() as usize;
    if buf.len() < count * 4 {
        return Err(CheckpointError::Truncated);
    }
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        params.push(buf.get_f32_le());
    }
    let state = if version == VERSION_V2 {
        if buf.len() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let state_len = buf.get_u32_le() as usize;
        if buf.len() < state_len {
            return Err(CheckpointError::Truncated);
        }
        let state: TrainState = serde_json::from_slice(&buf[..state_len])
            .map_err(|e| CheckpointError::BadState(e.to_string()))?;
        Some(state)
    } else {
        None
    };
    let mut model =
        spec.build(0, precision).map_err(|e| CheckpointError::BadSpec(e.to_string()))?;
    if model.param_count() != count {
        return Err(CheckpointError::ParamMismatch {
            stored: count as u64,
            expected: model.param_count() as u64,
        });
    }
    model.load_params(&params);
    dd_obs::counter_add("checkpoints_loaded", 1);
    Ok((spec, model, state))
}

/// Decode a checkpoint and rebuild the model with its stored weights,
/// discarding any training state.
pub fn load(data: &[u8]) -> Result<(ModelSpec, Sequential), CheckpointError> {
    load_with_state(data).map(|(spec, model, _)| (spec, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Activation;
    use dd_tensor::{Matrix, Rng64};

    fn model_pair() -> (ModelSpec, Sequential) {
        let spec = ModelSpec::mlp(6, &[10], 3, Activation::Relu);
        let model = spec.build(7, Precision::Bf16).unwrap();
        (spec, model)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (spec, mut model) = model_pair();
        let blob = save(&spec, &mut model).unwrap();
        let (spec2, mut model2) = load(&blob).unwrap();
        assert_eq!(spec2, spec);
        assert_eq!(model2.precision(), Precision::Bf16);
        assert_eq!(model2.flatten_params(), model.flatten_params());
        // Same predictions.
        let mut rng = Rng64::new(1);
        let x = Matrix::randn(4, 6, 0.0, 1.0, &mut rng);
        assert_eq!(model.predict(&x), model2.predict(&x));
    }

    #[test]
    fn corruption_detected() {
        let (spec, mut model) = model_pair();
        let blob = save(&spec, &mut model).unwrap();
        let mut bytes = blob.to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(load(&bytes).unwrap_err(), CheckpointError::BadChecksum);
    }

    #[test]
    fn truncation_detected() {
        let (spec, mut model) = model_pair();
        let blob = save(&spec, &mut model).unwrap();
        for cut in [0, 4, 11, blob.len() / 2] {
            let err = load(&blob[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Truncated | CheckpointError::BadChecksum),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_detected() {
        let (spec, mut model) = model_pair();
        let blob = save(&spec, &mut model).unwrap();
        let mut bytes = blob.to_vec();
        bytes[0] = 0;
        // Fix up checksum so the magic check is what fires.
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(load(&bytes).unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn v1_checkpoints_carry_no_state() {
        let (spec, mut model) = model_pair();
        let blob = save(&spec, &mut model).unwrap();
        let (_, _, state) = load_with_state(&blob).unwrap();
        assert!(state.is_none());
    }

    #[test]
    fn v2_roundtrip_preserves_state() {
        let (spec, mut model) = model_pair();
        let mut opt = crate::optim::OptimizerConfig::adam(0.01).build();
        let mut rng = Rng64::new(11);
        let x = Matrix::randn(8, 6, 0.0, 1.0, &mut rng);
        let y = Matrix::zeros(8, 3);
        for _ in 0..5 {
            let pred = model.forward(&x, true);
            let (_, grad) = crate::loss::Loss::Mse.compute(&pred, &y);
            model.backward(&grad);
            model.step_with(&mut opt, 1.0);
        }
        let state = TrainState { epoch: 7, optimizer: opt.export_state(), rng: rng.clone() };
        let blob = save_with_state(&spec, &mut model, &state).unwrap();
        let (spec2, mut model2, state2) = load_with_state(&blob).unwrap();
        assert_eq!(spec2, spec);
        assert_eq!(model2.flatten_params(), model.flatten_params());
        assert_eq!(state2.expect("v2 carries state"), state);
    }

    #[test]
    fn v2_corruption_detected() {
        let (spec, mut model) = model_pair();
        let state = TrainState {
            epoch: 1,
            optimizer: crate::optim::OptimizerState::default(),
            rng: Rng64::new(1),
        };
        let blob = save_with_state(&spec, &mut model, &state).unwrap();
        let mut bytes = blob.to_vec();
        let at = bytes.len() - 12; // inside the state JSON
        bytes[at] ^= 0x55;
        assert_eq!(load_with_state(&bytes).unwrap_err(), CheckpointError::BadChecksum);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn extended_checkpoint_roundtrips(
                seed in 0u64..(u64::MAX / 2),
                epoch in 0u64..1000,
                inputs in 1usize..8,
                hidden in 1usize..16,
                steps in 1usize..12,
                rng_skip in 0usize..32,
            ) {
                let spec = ModelSpec::mlp(inputs, &[hidden], 1, Activation::Tanh);
                let mut model = spec.build(seed, Precision::F32).unwrap();
                let mut opt = crate::optim::OptimizerConfig::adam(0.01).build();
                let mut data_rng = Rng64::new(seed ^ 0xFEED);
                let x = Matrix::randn(8, inputs, 0.0, 1.0, &mut data_rng);
                let y = Matrix::from_fn(8, 1, |i, _| x.get(i, 0));
                for _ in 0..steps {
                    let pred = model.forward(&x, true);
                    let (_, grad) = crate::loss::Loss::Mse.compute(&pred, &y);
                    model.backward(&grad);
                    model.step_with(&mut opt, 1.0);
                }
                let mut stream = Rng64::new(seed);
                for _ in 0..rng_skip {
                    let _ = stream.next_u64();
                }
                let state = TrainState {
                    epoch,
                    optimizer: opt.export_state(),
                    rng: stream.clone(),
                };
                let blob = save_with_state(&spec, &mut model, &state).unwrap();
                let (spec2, mut model2, state2) = load_with_state(&blob).unwrap();
                prop_assert_eq!(spec2, spec);
                prop_assert_eq!(model2.flatten_params(), model.flatten_params());
                prop_assert_eq!(state2.expect("v2 carries state"), state);
            }
        }
    }

    #[test]
    fn trained_weights_survive() {
        let spec = ModelSpec::mlp(2, &[8], 1, Activation::Tanh);
        let mut model = spec.build(3, Precision::F32).unwrap();
        // Take a few training steps so weights differ from init.
        let mut rng = Rng64::new(4);
        let x = Matrix::randn(32, 2, 0.0, 1.0, &mut rng);
        let y = Matrix::from_fn(32, 1, |i, _| x.get(i, 0) * 2.0);
        let mut opt = crate::optim::OptimizerConfig::adam(0.01).build();
        for _ in 0..20 {
            let pred = model.forward(&x, true);
            let (_, grad) = crate::loss::Loss::Mse.compute(&pred, &y);
            model.backward(&grad);
            model.step_with(&mut opt, 1.0);
        }
        let blob = save(&spec, &mut model).unwrap();
        let (_, mut restored) = load(&blob).unwrap();
        assert_eq!(restored.predict(&x), model.predict(&x));
    }
}
