//! Weight initialization schemes.

use dd_tensor::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// How a weight matrix is filled before training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Init {
    /// All zeros (biases, residual scales).
    Zeros,
    /// Glorot/Xavier normal: std = sqrt(2 / (fan_in + fan_out)). Good default
    /// for tanh/sigmoid layers.
    Xavier,
    /// He/Kaiming normal: std = sqrt(2 / fan_in). Good default for ReLU.
    He,
    /// Uniform in `[-scale, scale]`.
    Uniform(f32),
    /// Normal with explicit standard deviation.
    Normal(f32),
}

impl Init {
    /// Materialize a `fan_in × fan_out` matrix.
    pub fn build(self, fan_in: usize, fan_out: usize, rng: &mut Rng64) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(fan_in, fan_out),
            Init::Xavier => {
                let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
                Matrix::randn(fan_in, fan_out, 0.0, std, rng)
            }
            Init::He => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                Matrix::randn(fan_in, fan_out, 0.0, std, rng)
            }
            Init::Uniform(scale) => Matrix::rand_uniform(fan_in, fan_out, -scale, scale, rng),
            Init::Normal(std) => Matrix::randn(fan_in, fan_out, 0.0, std, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let mut rng = Rng64::new(1);
        let m = Init::Zeros.build(4, 5, &mut rng);
        assert_eq!(m.sum(), 0.0);
        assert_eq!(m.shape(), (4, 5));
    }

    #[test]
    fn he_std_matches_fan_in() {
        let mut rng = Rng64::new(2);
        let fan_in = 400;
        let m = Init::He.build(fan_in, 300, &mut rng);
        let expected = (2.0 / fan_in as f32).sqrt();
        let std = (m.norm_sq() / m.len() as f32).sqrt();
        assert!((std - expected).abs() / expected < 0.05, "std {std} vs {expected}");
    }

    #[test]
    fn xavier_std_matches_fans() {
        let mut rng = Rng64::new(3);
        let m = Init::Xavier.build(200, 600, &mut rng);
        let expected = (2.0 / 800f32).sqrt();
        let std = (m.norm_sq() / m.len() as f32).sqrt();
        assert!((std - expected).abs() / expected < 0.05);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Rng64::new(4);
        let m = Init::Uniform(0.3).build(50, 50, &mut rng);
        assert!(m.max_abs() <= 0.3);
        assert!(m.max_abs() > 0.25, "should come close to the bound");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::He.build(8, 8, &mut Rng64::new(9));
        let b = Init::He.build(8, 8, &mut Rng64::new(9));
        assert_eq!(a, b);
    }
}
