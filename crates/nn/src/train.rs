//! Single-node training loop with minibatching, shuffling, validation and
//! early stopping.
//!
//! The loop is instrumented with `dd-obs`: every epoch is a structural span
//! whose [`SpanGuard::finish`](dd_obs::SpanGuard::finish) return value *is*
//! the `seconds` field of [`EpochStats`] — there is no separate
//! `Instant::now()`, so the exported trace and the training history cannot
//! disagree. Within a step, the forward/backward/optimizer work runs under
//! compute-phase leaf spans and minibatch gathering under an I/O-phase span;
//! all of it is free (one atomic load) when recording is disabled.

use crate::loss::Loss;
use crate::metrics;
use crate::model::Sequential;
use crate::optim::{LrSchedule, Optimizer, OptimizerConfig};
use dd_obs::Phase;
use dd_tensor::{Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Minibatch size.
    pub batch_size: usize,
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Optimizer to build.
    pub optimizer: OptimizerConfig,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Objective.
    pub loss: Loss,
    /// Stop if validation loss fails to improve for this many epochs
    /// (`None` disables early stopping).
    pub patience: Option<usize>,
    /// Global gradient-norm clip (`None` disables).
    pub grad_clip: Option<f32>,
    /// Shuffle seed; also reseeds nothing else (model dropout has its own).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            epochs: 20,
            optimizer: OptimizerConfig::adam(1e-3),
            schedule: LrSchedule::Constant,
            loss: Loss::Mse,
            patience: None,
            grad_clip: Some(5.0),
            seed: 0,
        }
    }
}

/// Typed training failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The loss left the finite range (NaN or ±Inf) — learning rate too
    /// high, exploding activations, or corrupted inputs. The epoch index
    /// and offending loss identify where the run broke down.
    Diverged {
        /// 0-based epoch in which the non-finite loss appeared.
        epoch: usize,
        /// The non-finite loss value.
        loss: f64,
    },
    /// Feature and target matrices disagree on row count.
    ShapeMismatch {
        /// Rows in the feature matrix.
        x_rows: usize,
        /// Rows in the target matrix.
        y_rows: usize,
    },
    /// The training set has zero rows.
    EmptyDataset,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Diverged { epoch, loss } => {
                write!(f, "training diverged at epoch {epoch} (loss {loss})")
            }
            TrainError::ShapeMismatch { x_rows, y_rows } => {
                write!(f, "feature/target row mismatch: {x_rows} vs {y_rows}")
            }
            TrainError::EmptyDataset => write!(f, "empty training set"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Per-epoch record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's minibatches.
    pub train_loss: f64,
    /// Validation loss, when a validation set was supplied.
    pub val_loss: Option<f64>,
    /// Wall-clock seconds for the epoch.
    pub seconds: f64,
}

/// Full training history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    /// One entry per completed epoch.
    pub epochs: Vec<EpochStats>,
    /// True when early stopping fired before `epochs` ran out.
    pub early_stopped: bool,
}

impl History {
    /// Final training loss (NaN when no epochs ran).
    pub fn final_train_loss(&self) -> f64 {
        self.epochs.last().map(|e| e.train_loss).unwrap_or(f64::NAN)
    }

    /// Best (minimum) validation loss seen.
    pub fn best_val_loss(&self) -> Option<f64> {
        self.epochs
            .iter()
            .filter_map(|e| e.val_loss)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Trains a [`Sequential`] on `(x, y)` matrices.
pub struct Trainer {
    config: TrainConfig,
    optimizer: Optimizer,
    rng: Rng64,
}

impl Trainer {
    /// New trainer from a config.
    pub fn new(config: TrainConfig) -> Self {
        let optimizer = config.optimizer.build();
        let rng = Rng64::new(config.seed);
        Trainer { config, optimizer, rng }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Run one epoch over shuffled minibatches; returns the mean batch loss.
    ///
    /// Aborts with [`TrainError::Diverged`] as soon as a batch loss leaves
    /// the finite range, so NaN never silently propagates into reports.
    pub fn run_epoch(
        &mut self,
        model: &mut Sequential,
        x: &Matrix,
        y: &Matrix,
        epoch: usize,
    ) -> Result<f64, TrainError> {
        if x.rows() != y.rows() {
            return Err(TrainError::ShapeMismatch { x_rows: x.rows(), y_rows: y.rows() });
        }
        if x.rows() == 0 {
            return Err(TrainError::EmptyDataset);
        }
        let n = x.rows();
        let bs = self.config.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut order);
        let lr_scale = self.config.schedule.scale(epoch);
        let mut total = 0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(bs) {
            let step_span = dd_obs::span("step");
            let (xb, yb) = {
                let _io = dd_obs::span_phase("gather", Phase::Io);
                (x.gather_rows(chunk), y.gather_rows(chunk))
            };
            let (loss, grad) = {
                let _fwd = dd_obs::span_phase("forward", Phase::Compute);
                let pred = model.forward(&xb, true);
                self.config.loss.compute(&pred, &yb)
            };
            if !loss.is_finite() {
                return Err(TrainError::Diverged { epoch, loss });
            }
            {
                let _bwd = dd_obs::span_phase("backward", Phase::Compute);
                model.backward(&grad);
                if let Some(limit) = self.config.grad_clip {
                    clip_model_grads(model, limit);
                }
            }
            {
                let _opt = dd_obs::span_phase("optimizer", Phase::Compute);
                model.step_with(&mut self.optimizer, lr_scale);
            }
            dd_obs::hist_record("step_seconds", step_span.finish());
            dd_obs::counter_add("steps_total", 1);
            total += loss;
            batches += 1;
        }
        Ok(total / batches.max(1) as f64)
    }

    /// Mean loss over a dataset without updating parameters.
    pub fn evaluate(&self, model: &mut Sequential, x: &Matrix, y: &Matrix) -> f64 {
        let pred = model.predict(x);
        self.config.loss.compute(&pred, y).0
    }

    /// Full fit loop with optional validation-based early stopping.
    ///
    /// Returns [`TrainError::Diverged`] when a training or validation loss
    /// goes non-finite; the model is left at its last (broken) state for
    /// post-mortem inspection.
    pub fn fit(
        &mut self,
        model: &mut Sequential,
        x: &Matrix,
        y: &Matrix,
        val: Option<(&Matrix, &Matrix)>,
    ) -> Result<History, TrainError> {
        let _fit_span = dd_obs::span("fit");
        let mut history = History::default();
        let mut best_val = f64::INFINITY;
        let mut stale = 0usize;
        for epoch in 0..self.config.epochs {
            // The epoch span is the single timing source: its finish() value
            // becomes EpochStats::seconds, so trace and history always agree.
            let epoch_span = dd_obs::span("epoch");
            let train_loss = self.run_epoch(model, x, y, epoch)?;
            let val_loss = val.map(|(vx, vy)| {
                let eval_span = dd_obs::span_phase("eval", Phase::Compute);
                let vl = self.evaluate(model, vx, vy);
                eval_span.finish();
                vl
            });
            if let Some(vl) = val_loss {
                if !vl.is_finite() {
                    return Err(TrainError::Diverged { epoch, loss: vl });
                }
            }
            let seconds = epoch_span.finish();
            dd_obs::gauge_set("train_loss", train_loss);
            if let Some(vl) = val_loss {
                dd_obs::gauge_set("val_loss", vl);
            }
            dd_obs::hist_record("epoch_seconds", seconds);
            dd_obs::counter_add("epochs_total", 1);
            history.epochs.push(EpochStats { epoch, train_loss, val_loss, seconds });
            if let (Some(vl), Some(patience)) = (val_loss, self.config.patience) {
                if vl < best_val - 1e-9 {
                    best_val = vl;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= patience {
                        history.early_stopped = true;
                        break;
                    }
                }
            }
        }
        Ok(history)
    }
}

/// Clip the model's gradients to a global L2 norm.
fn clip_model_grads(model: &mut Sequential, max_norm: f32) {
    let mut total = 0f64;
    model.visit_params(&mut |_, g| total += g.norm_sq() as f64);
    let norm = total.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        model.visit_params(&mut |_, g| g.scale(scale));
    }
}

/// Stratified-ish deterministic train/validation/test split of row indices.
pub fn split_indices(
    n: usize,
    val_frac: f64,
    test_frac: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    assert!(
        val_frac >= 0.0 && test_frac >= 0.0 && val_frac + test_frac < 1.0,
        "split fractions must be non-negative and leave room for training"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    Rng64::new(seed).shuffle(&mut idx);
    // dd-lint: allow(lossy-cast/float-to-int) -- fraction-of-n rounds to a count in [0, n]
    let n_test = (n as f64 * test_frac).round() as usize;
    // dd-lint: allow(lossy-cast/float-to-int) -- fraction-of-n rounds to a count in [0, n]
    let n_val = (n as f64 * val_frac).round() as usize;
    let test = idx.split_off(n - n_test);
    let val = idx.split_off(n - n_test - n_val);
    (idx, val, test)
}

/// Convenience: classification accuracy of a model on a labelled set.
pub fn eval_accuracy(model: &mut Sequential, x: &Matrix, labels: &[usize]) -> f64 {
    metrics::accuracy(&model.predict(x), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Activation;
    use crate::spec::ModelSpec;
    use dd_tensor::Precision;

    fn toy_regression(n: usize, seed: u64) -> (Matrix, Matrix) {
        // y = 2x0 - x1 + 0.5, learnable by a linear model.
        let mut rng = Rng64::new(seed);
        let x = Matrix::randn(n, 2, 0.0, 1.0, &mut rng);
        let y = Matrix::from_fn(n, 1, |i, _| 2.0 * x.get(i, 0) - x.get(i, 1) + 0.5);
        (x, y)
    }

    #[test]
    fn fit_learns_linear_function() {
        let (x, y) = toy_regression(512, 1);
        let mut model =
            ModelSpec::mlp(2, &[], 1, Activation::Identity).build(2, Precision::F32).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 60,
            optimizer: OptimizerConfig::sgd(0.05),
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y, None).expect("trains");
        assert!(history.final_train_loss() < 1e-3, "loss {}", history.final_train_loss());
        assert_eq!(history.epochs.len(), 60);
    }

    #[test]
    fn early_stopping_fires() {
        let (x, y) = toy_regression(128, 3);
        let (vx, vy) = toy_regression(64, 4);
        let mut model =
            ModelSpec::mlp(2, &[8], 1, Activation::Tanh).build(5, Precision::F32).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 500,
            patience: Some(3),
            optimizer: OptimizerConfig::adam(0.01),
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y, Some((&vx, &vy))).expect("trains");
        assert!(history.early_stopped, "should stop before 500 epochs");
        assert!(history.epochs.len() < 500);
        assert!(history.best_val_loss().unwrap() < 0.05);
    }

    #[test]
    fn epoch_loss_decreases() {
        let (x, y) = toy_regression(256, 6);
        let mut model =
            ModelSpec::mlp(2, &[16], 1, Activation::Relu).build(7, Precision::F32).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 30,
            optimizer: OptimizerConfig::adam(0.005),
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y, None).expect("trains");
        let first = history.epochs.first().unwrap().train_loss;
        let last = history.final_train_loss();
        assert!(last < first * 0.5, "{first} -> {last}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = toy_regression(128, 8);
        let run = || {
            let mut model =
                ModelSpec::mlp(2, &[8], 1, Activation::Relu).build(9, Precision::F32).unwrap();
            let mut trainer =
                Trainer::new(TrainConfig { epochs: 5, seed: 42, ..TrainConfig::default() });
            trainer.fit(&mut model, &x, &y, None).expect("trains");
            model.flatten_params()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn split_indices_partition() {
        let (train, val, test) = split_indices(100, 0.2, 0.1, 1);
        assert_eq!(train.len() + val.len() + test.len(), 100);
        assert_eq!(test.len(), 10);
        assert_eq!(val.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(&val).chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "split fractions")]
    fn bad_split_fractions_panic() {
        let _ = split_indices(10, 0.6, 0.5, 1);
    }

    #[test]
    fn divergence_returns_typed_error() {
        // An absurd learning rate with clipping disabled blows the loss up
        // to infinity within a few epochs; fit must surface Diverged rather
        // than report NaN losses.
        let (x, y) = toy_regression(64, 12);
        let mut model =
            ModelSpec::mlp(2, &[8], 1, Activation::Relu).build(13, Precision::F32).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 50,
            grad_clip: None,
            optimizer: OptimizerConfig::sgd(1e6),
            ..TrainConfig::default()
        });
        let err = trainer.fit(&mut model, &x, &y, None).unwrap_err();
        match err {
            TrainError::Diverged { loss, .. } => assert!(!loss.is_finite()),
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_returns_typed_error() {
        let (x, y) = toy_regression(16, 20);
        let y_short = y.gather_rows(&(0..8).collect::<Vec<_>>());
        let mut model =
            ModelSpec::mlp(2, &[], 1, Activation::Identity).build(21, Precision::F32).unwrap();
        let mut trainer = Trainer::new(TrainConfig::default());
        let err = trainer.run_epoch(&mut model, &x, &y_short, 0).unwrap_err();
        assert_eq!(err, TrainError::ShapeMismatch { x_rows: 16, y_rows: 8 });

        let x0 = Matrix::zeros(0, 2);
        let y0 = Matrix::zeros(0, 1);
        let err = trainer.run_epoch(&mut model, &x0, &y0, 0).unwrap_err();
        assert_eq!(err, TrainError::EmptyDataset);
    }

    #[test]
    fn grad_clip_keeps_training_stable_with_huge_lr_signal() {
        // With clipping, even exploding-scale targets keep params finite.
        let mut rng = Rng64::new(10);
        let x = Matrix::randn(64, 2, 0.0, 1.0, &mut rng);
        let y = Matrix::from_fn(64, 1, |i, _| 1e4 * x.get(i, 0));
        let mut model =
            ModelSpec::mlp(2, &[8], 1, Activation::Relu).build(11, Precision::F32).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 5,
            grad_clip: Some(1.0),
            optimizer: OptimizerConfig::sgd(0.1),
            ..TrainConfig::default()
        });
        trainer.fit(&mut model, &x, &y, None).expect("trains");
        assert!(model.flatten_params().iter().all(|v| v.is_finite()));
    }
}
