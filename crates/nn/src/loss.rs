//! Loss functions returning `(mean loss, gradient w.r.t. predictions)`.

use dd_tensor::{ops, Matrix};
use serde::{Deserialize, Serialize};

/// Supported training objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error over all elements (regression, autoencoders).
    Mse,
    /// Softmax + categorical cross-entropy. Targets are one-hot rows; the
    /// network's final layer must output raw logits.
    SoftmaxCrossEntropy,
    /// Sigmoid + binary cross-entropy. Targets in {0,1}; logits input.
    BinaryCrossEntropy,
    /// Huber loss (delta = 1): quadratic near zero, linear in the tails.
    Huber,
}

impl Loss {
    /// Mean loss over the batch and its gradient w.r.t. the predictions
    /// (already divided by the batch size so gradients are scale-free).
    pub fn compute(self, pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
        assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
        let n = pred.rows().max(1) as f64;
        match self {
            Loss::Mse => {
                let count = pred.len().max(1) as f64;
                let mut grad = pred.zip_map(target, |p, t| p - t);
                let loss =
                    grad.as_slice().iter().map(|&d| d as f64 * d as f64).sum::<f64>() / count;
                grad.scale(2.0 / count as f32);
                (loss, grad)
            }
            Loss::Huber => {
                let count = pred.len().max(1) as f64;
                let mut loss = 0f64;
                let mut grad = Matrix::zeros(pred.rows(), pred.cols());
                for ((g, &p), &t) in
                    grad.as_mut_slice().iter_mut().zip(pred.as_slice()).zip(target.as_slice())
                {
                    let d = p - t;
                    if d.abs() <= 1.0 {
                        loss += 0.5 * (d as f64) * (d as f64);
                        *g = d;
                    } else {
                        loss += d.abs() as f64 - 0.5;
                        *g = d.signum();
                    }
                }
                grad.scale(1.0 / count as f32);
                (loss / count, grad)
            }
            Loss::SoftmaxCrossEntropy => {
                let log_probs = ops::log_softmax_rows(pred);
                let mut loss = 0f64;
                for i in 0..pred.rows() {
                    for (&lp, &t) in log_probs.row(i).iter().zip(target.row(i)) {
                        if t > 0.0 {
                            loss -= (t * lp) as f64;
                        }
                    }
                }
                // Gradient of mean CE w.r.t. logits: (softmax - target) / n.
                let mut probs = pred.clone();
                ops::softmax_rows(&mut probs);
                let mut grad = probs.zip_map(target, |p, t| p - t);
                grad.scale(1.0 / n as f32);
                (loss / n, grad)
            }
            Loss::BinaryCrossEntropy => {
                let count = pred.len().max(1) as f64;
                let mut loss = 0f64;
                let mut grad = Matrix::zeros(pred.rows(), pred.cols());
                for ((g, &logit), &t) in
                    grad.as_mut_slice().iter_mut().zip(pred.as_slice()).zip(target.as_slice())
                {
                    // Stable BCE-with-logits:
                    // loss = max(z,0) - z*t + ln(1 + e^{-|z|}).
                    let z = logit as f64;
                    loss += z.max(0.0) - z * t as f64 + (1.0 + (-z.abs()).exp()).ln();
                    *g = dd_tensor::sigmoid(logit) - t;
                }
                grad.scale(1.0 / count as f32);
                (loss / count, grad)
            }
        }
    }

    /// Name used in specs and tables.
    pub fn name(self) -> &'static str {
        match self {
            Loss::Mse => "mse",
            Loss::SoftmaxCrossEntropy => "softmax_ce",
            Loss::BinaryCrossEntropy => "bce",
            Loss::Huber => "huber",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_tensor::Rng64;

    fn grad_check(loss: Loss, pred: &Matrix, target: &Matrix) {
        let (_, grad) = loss.compute(pred, target);
        let eps = 1e-3f32;
        for &(i, j) in &[(0usize, 0usize), (pred.rows() - 1, pred.cols() - 1)] {
            let mut pp = pred.clone();
            pp.set(i, j, pred.get(i, j) + eps);
            let (lp, _) = loss.compute(&pp, target);
            let mut pm = pred.clone();
            pm.set(i, j, pred.get(i, j) - eps);
            let (lm, _) = loss.compute(&pm, target);
            let num = (lp - lm) / (2.0 * eps as f64);
            let analytic = grad.get(i, j) as f64;
            assert!(
                (num - analytic).abs() < 1e-2 * (1.0 + num.abs()),
                "{:?} grad[{i},{j}]: numeric {num} analytic {analytic}",
                loss
            );
        }
    }

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let t = Matrix::from_rows(&[&[1.0, 2.0]]);
        let (l, g) = Loss::Mse.compute(&t, &t);
        assert_eq!(l, 0.0);
        assert_eq!(g.max_abs(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(&[&[3.0], &[1.0]]);
        let t = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let (l, _) = Loss::Mse.compute(&p, &t);
        assert!((l - 2.0).abs() < 1e-9); // (4 + 0) / 2
    }

    #[test]
    fn all_losses_pass_gradient_check() {
        let mut rng = Rng64::new(1);
        let pred = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        let reg_target = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        grad_check(Loss::Mse, &pred, &reg_target);
        grad_check(Loss::Huber, &pred, &reg_target);
        let one_hot = dd_tensor::one_hot(&[0, 2, 1, 2], 3);
        grad_check(Loss::SoftmaxCrossEntropy, &pred, &one_hot);
        let bin_target = Matrix::from_fn(4, 3, |i, j| ((i + j) % 2) as f32);
        grad_check(Loss::BinaryCrossEntropy, &pred, &bin_target);
    }

    #[test]
    fn softmax_ce_matches_manual() {
        // Single row, uniform logits: loss = ln(K).
        let p = Matrix::zeros(1, 4);
        let t = dd_tensor::one_hot(&[2], 4);
        let (l, _) = Loss::SoftmaxCrossEntropy.compute(&p, &t);
        assert!((l - (4f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let p = Matrix::from_rows(&[&[500.0, -500.0]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (l, g) = Loss::BinaryCrossEntropy.compute(&p, &t);
        assert!(l.is_finite() && l < 1e-6);
        assert!(!g.has_non_finite());
        // Wrong with extreme confidence: large finite loss.
        let (l2, g2) = Loss::BinaryCrossEntropy.compute(&p, &Matrix::from_rows(&[&[0.0, 1.0]]));
        assert!(l2.is_finite() && l2 > 100.0);
        assert!(!g2.has_non_finite());
    }

    #[test]
    fn huber_is_linear_in_tails() {
        let p = Matrix::from_rows(&[&[10.0]]);
        let t = Matrix::zeros(1, 1);
        let (_, g) = Loss::Huber.compute(&p, &t);
        assert_eq!(g.get(0, 0), 1.0); // clipped gradient
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = Loss::Mse.compute(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }
}
