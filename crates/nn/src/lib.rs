//! # dd-nn — neural network library for the DeepDriver workspace
//!
//! Dense and 1-D convolutional networks with full backpropagation, the model
//! families the paper identifies as the core of cancer/infectious-disease
//! deep learning workloads ("most current DNNs rely on dense fully connected
//! networks and convolutional networks").
//!
//! Key types:
//! * [`ModelSpec`] — serializable network description; the unit the
//!   hyperparameter searcher mutates and the model-parallel partitioner
//!   splits.
//! * [`Sequential`] — the runnable model: forward/backward, flatten/load of
//!   parameters and gradients (the interface the data-parallel allreduce
//!   uses), per-layer FLOP accounting for the HPC simulator.
//! * [`Trainer`] — minibatch training with shuffling, LR schedules, gradient
//!   clipping, validation and early stopping.
//! * [`Loss`], [`OptimizerConfig`], [`metrics`] — objectives, optimizers and
//!   evaluation metrics.
//!
//! Every matrix product flows through `dd-tensor`'s precision-emulating
//! kernels, so a whole model can be trained or evaluated under f64, f32,
//! bf16, f16 or int8 numerics by flipping [`Sequential::set_precision`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod spec;
pub mod train;

pub use checkpoint::{CheckpointError, TrainState};
pub use init::Init;
pub use layers::{
    Activation, ActivationLayer, BatchNorm1d, Conv1d, Dense, Dropout, Layer, LayerNorm, MaxPool1d,
    Residual,
};
pub use loss::Loss;
pub use model::Sequential;
pub use optim::{LrSchedule, Optimizer, OptimizerConfig, OptimizerState};
pub use spec::{InputShape, LayerSpec, ModelSpec, SpecError};
pub use train::{split_indices, History, TrainConfig, TrainError, Trainer};

/// Umbrella error for dd-nn: any failure from spec validation, training, or
/// checkpoint encode/decode. Lets callers that drive the whole
/// spec→train→checkpoint pipeline use one error type with `?`.
#[derive(Debug)]
pub enum NnError {
    /// Model specification failed validation.
    Spec(SpecError),
    /// Training failed (divergence, bad shapes, empty data, ...).
    Train(TrainError),
    /// Checkpoint blob could not be encoded or decoded.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Spec(e) => write!(f, "spec error: {e}"),
            NnError::Train(e) => write!(f, "train error: {e}"),
            NnError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Spec(e) => Some(e),
            NnError::Train(e) => Some(e),
            NnError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<SpecError> for NnError {
    fn from(e: SpecError) -> Self {
        NnError::Spec(e)
    }
}

impl From<TrainError> for NnError {
    fn from(e: TrainError) -> Self {
        NnError::Train(e)
    }
}

impl From<CheckpointError> for NnError {
    fn from(e: CheckpointError) -> Self {
        NnError::Checkpoint(e)
    }
}
