//! # dd-nn — neural network library for the DeepDriver workspace
//!
//! Dense and 1-D convolutional networks with full backpropagation, the model
//! families the paper identifies as the core of cancer/infectious-disease
//! deep learning workloads ("most current DNNs rely on dense fully connected
//! networks and convolutional networks").
//!
//! Key types:
//! * [`ModelSpec`] — serializable network description; the unit the
//!   hyperparameter searcher mutates and the model-parallel partitioner
//!   splits.
//! * [`Sequential`] — the runnable model: forward/backward, flatten/load of
//!   parameters and gradients (the interface the data-parallel allreduce
//!   uses), per-layer FLOP accounting for the HPC simulator.
//! * [`Trainer`] — minibatch training with shuffling, LR schedules, gradient
//!   clipping, validation and early stopping.
//! * [`Loss`], [`OptimizerConfig`], [`metrics`] — objectives, optimizers and
//!   evaluation metrics.
//!
//! Every matrix product flows through `dd-tensor`'s precision-emulating
//! kernels, so a whole model can be trained or evaluated under f64, f32,
//! bf16, f16 or int8 numerics by flipping [`Sequential::set_precision`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod spec;
pub mod train;

pub use checkpoint::{CheckpointError, TrainState};
pub use init::Init;
pub use layers::{
    Activation, ActivationLayer, BatchNorm1d, Conv1d, Dense, Dropout, Layer, LayerNorm, MaxPool1d,
    Residual,
};
pub use loss::Loss;
pub use model::Sequential;
pub use optim::{LrSchedule, Optimizer, OptimizerConfig, OptimizerState};
pub use spec::{InputShape, LayerSpec, ModelSpec};
pub use train::{split_indices, History, TrainConfig, TrainError, Trainer};
