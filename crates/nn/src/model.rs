//! Sequential model container.

use crate::layers::{self, Layer};
use dd_tensor::{Matrix, Precision};

/// A stack of layers applied in order, carrying the arithmetic precision its
/// matrix products should emulate.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    input_dim: usize,
    precision: Precision,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("input_dim", &self.input_dim)
            .field("precision", &self.precision)
            .field("layers", &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>())
            .field("params", &self.param_count())
            .finish()
    }
}

impl Sequential {
    /// Assemble from already-built layers (normally via `ModelSpec::build`).
    pub fn from_layers(
        layers: Vec<Box<dyn Layer>>,
        input_dim: usize,
        precision: Precision,
    ) -> Self {
        Sequential { layers, input_dim, precision }
    }

    /// Width of one input row.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Width of one output row.
    pub fn output_dim(&self) -> usize {
        let mut d = self.input_dim;
        for layer in &self.layers {
            d = layer.output_dim(d);
        }
        d
    }

    /// The emulated arithmetic precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Change the emulated precision (e.g. for a precision sweep over one
    /// trained model).
    pub fn set_precision(&mut self, p: Precision) {
        self.precision = p;
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrow the layer stack (for partitioners and attribution).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutably borrow the layer stack.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Consume into the owned layer stack (used by the model-parallel
    /// partitioner, which regroups layers into stages without re-initializing
    /// weights).
    pub fn into_layers(self) -> Vec<Box<dyn Layer>> {
        self.layers
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass. `train = true` enables dropout/batch statistics and
    /// caches activations for a following [`Sequential::backward`].
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        assert_eq!(x.cols(), self.input_dim, "model input width mismatch");
        let prec = self.precision;
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, train, prec);
        }
        h
    }

    /// Inference-mode forward pass.
    pub fn predict(&mut self, x: &Matrix) -> Matrix {
        self.forward(x, false)
    }

    /// Inference-mode forward pass through `&self` — the serving path.
    ///
    /// Bitwise-identical to [`Sequential::predict`] (eval-mode `forward`
    /// delegates to the same per-layer [`Layer::infer`] code), but borrows
    /// the model immutably so one snapshot behind an `Arc` can serve
    /// concurrent batched predictions without per-worker clones.
    pub fn predict_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim, "model input width mismatch");
        let prec = self.precision;
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(&h, prec);
        }
        h
    }

    /// Backward pass from the loss gradient; fills every layer's parameter
    /// gradients and returns the gradient w.r.t. the input batch.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let prec = self.precision;
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g, prec);
        }
        g
    }

    /// Visit all `(param, grad)` pairs in layer order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Apply one optimizer step to every parameter from its current
    /// gradient. The optimizer's momentum slots follow the stable
    /// `visit_params` order.
    pub fn step_with(&mut self, opt: &mut crate::optim::Optimizer, lr_scale: f32) {
        opt.begin_step();
        for layer in &mut self.layers {
            layer.visit_params(&mut |p, g| opt.update(p, g, lr_scale));
        }
    }

    /// Flatten all parameters into one vector (layer order).
    pub fn flatten_params(&mut self) -> Vec<f32> {
        layers::flatten_params(&mut self.layers)
    }

    /// Flatten all gradients into one vector (layer order).
    pub fn flatten_grads(&mut self) -> Vec<f32> {
        layers::flatten_grads(&mut self.layers)
    }

    /// Overwrite all parameters from a flat vector.
    pub fn load_params(&mut self, flat: &[f32]) {
        layers::unflatten_params(&mut self.layers, flat);
    }

    /// Overwrite all gradients from a flat vector (after an allreduce).
    pub fn load_grads(&mut self, flat: &[f32]) {
        layers::unflatten_grads(&mut self.layers, flat);
    }

    /// Total forward FLOPs for a batch of the given size.
    pub fn forward_flops(&self, batch: usize) -> u64 {
        let mut d = self.input_dim;
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.flops(batch, d);
            d = layer.output_dim(d);
        }
        total
    }

    /// One-line-per-layer human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut d = self.input_dim;
        out.push_str(&format!("input: {d}\n"));
        for layer in &self.layers {
            let next = layer.output_dim(d);
            out.push_str(&format!(
                "{:<12} {:>8} -> {:<8} params={}\n",
                layer.name(),
                d,
                next,
                layer.param_count()
            ));
            d = next;
        }
        out.push_str(&format!("total params: {}\n", self.param_count()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Activation;
    use crate::loss::Loss;
    use crate::optim::OptimizerConfig;
    use crate::spec::ModelSpec;
    use dd_tensor::Rng64;

    fn small_model(seed: u64) -> Sequential {
        ModelSpec::mlp(4, &[16, 8], 2, Activation::Relu).build(seed, Precision::F32).unwrap()
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut m = small_model(1);
        let mut rng = Rng64::new(2);
        let x = Matrix::randn(5, 4, 0.0, 1.0, &mut rng);
        let y1 = m.predict(&x);
        let y2 = m.predict(&x);
        assert_eq!(y1.shape(), (5, 2));
        assert_eq!(y1, y2);
    }

    #[test]
    fn flatten_load_roundtrip() {
        let mut m = small_model(3);
        let flat = m.flatten_params();
        assert_eq!(flat.len(), m.param_count());
        let mut m2 = small_model(4);
        assert_ne!(m2.flatten_params(), flat);
        m2.load_params(&flat);
        assert_eq!(m2.flatten_params(), flat);
        // Identical params give identical outputs.
        let mut rng = Rng64::new(5);
        let x = Matrix::randn(3, 4, 0.0, 1.0, &mut rng);
        assert_eq!(m.predict(&x), m2.predict(&x));
    }

    #[test]
    fn training_reduces_loss_on_toy_problem() {
        // Learn y = [sum(x) > 0] as a 2-class problem.
        let mut rng = Rng64::new(6);
        let x = Matrix::randn(256, 4, 0.0, 1.0, &mut rng);
        let labels: Vec<usize> =
            x.iter_rows().map(|r| usize::from(r.iter().sum::<f32>() > 0.0)).collect();
        let t = dd_tensor::one_hot(&labels, 2);

        let mut m = small_model(7);
        let mut opt = OptimizerConfig::adam(0.01).build();
        let (l0, _) = Loss::SoftmaxCrossEntropy.compute(&m.forward(&x, true), &t);
        let mut last = l0;
        for _ in 0..100 {
            let pred = m.forward(&x, true);
            let (l, grad) = Loss::SoftmaxCrossEntropy.compute(&pred, &t);
            m.backward(&grad);
            m.step_with(&mut opt, 1.0);
            last = l;
        }
        assert!(last < 0.4 * l0, "loss {l0} -> {last}");
        let acc = crate::metrics::accuracy(&m.predict(&x), &labels);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn grad_flat_length_matches_params() {
        let mut m = small_model(8);
        let mut rng = Rng64::new(9);
        let x = Matrix::randn(4, 4, 0.0, 1.0, &mut rng);
        let y = m.forward(&x, true);
        m.backward(&y);
        assert_eq!(m.flatten_grads().len(), m.param_count());
    }

    #[test]
    fn load_grads_roundtrip() {
        let mut m = small_model(10);
        let n = m.param_count();
        let fake: Vec<f32> = (0..n).map(|i| i as f32 * 0.001).collect();
        m.load_grads(&fake);
        assert_eq!(m.flatten_grads(), fake);
    }

    #[test]
    fn summary_and_flops() {
        let m = small_model(11);
        let s = m.summary();
        assert!(s.contains("dense"));
        assert!(s.contains(&format!("total params: {}", m.param_count())));
        assert!(m.forward_flops(32) > 0);
        // FLOPs scale linearly with batch.
        assert_eq!(m.forward_flops(64), 2 * m.forward_flops(32));
    }

    #[test]
    fn predict_batch_matches_predict_bitwise() {
        use crate::init::Init;
        use crate::layers::{
            ActivationLayer, BatchNorm1d, Conv1d, Dense, Dropout, LayerNorm, MaxPool1d, Residual,
        };
        // One of every layer kind, so the &self `infer` path is exercised
        // everywhere train-only behaviour (dropout, batch stats) diverges.
        let mut rng = Rng64::new(14);
        let layers: Vec<Box<dyn crate::layers::Layer>> = vec![
            Box::new(Conv1d::new(2, 6, 3, 3, 1, Init::Xavier, &mut rng)),
            Box::new(ActivationLayer::new(Activation::Relu)),
            Box::new(MaxPool1d::new(3, 4, 2)),
            Box::new(BatchNorm1d::new(6)),
            Box::new(Residual::new(vec![
                Box::new(Dense::new(6, 6, Init::Xavier, &mut rng)),
                Box::new(ActivationLayer::new(Activation::Tanh)),
            ])),
            Box::new(LayerNorm::new(6)),
            Box::new(Dropout::new(0.3, Rng64::new(15))),
            Box::new(Dense::new(6, 2, Init::Xavier, &mut rng)),
        ];
        let mut m = Sequential::from_layers(layers, 12, Precision::Bf16);
        // A few training steps so batch-norm running statistics are
        // non-trivial before comparing the two inference paths.
        let x = Matrix::randn(8, 12, 0.0, 1.0, &mut rng);
        for _ in 0..3 {
            let y = m.forward(&x, true);
            m.backward(&y);
        }
        let via_mut = m.predict(&x);
        let via_ref = m.predict_batch(&x);
        assert_eq!(via_mut, via_ref, "predict and predict_batch must agree bitwise");
        // And the &self path is repeatable (no hidden state).
        assert_eq!(via_ref, m.predict_batch(&x));
    }

    #[test]
    fn precision_switch_changes_output_slightly() {
        let mut m = small_model(12);
        let mut rng = Rng64::new(13);
        let x = Matrix::randn(8, 4, 0.0, 2.0, &mut rng);
        let y32 = m.predict(&x);
        m.set_precision(Precision::Int8);
        let y8 = m.predict(&x);
        assert_eq!(m.precision(), Precision::Int8);
        let diff = y32.zip_map(&y8, |a, b| (a - b).abs()).max_abs();
        assert!(diff > 0.0, "int8 should perturb outputs");
        assert!(diff < 0.5 * y32.max_abs().max(1.0), "but not catastrophically");
    }
}
