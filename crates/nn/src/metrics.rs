//! Evaluation metrics for classification and regression.

use dd_tensor::Matrix;

/// Fraction of rows whose argmax matches the label.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "accuracy length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// Binary accuracy from a single logit column at threshold 0.
pub fn binary_accuracy(logits: &Matrix, labels: &[f32]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    assert_eq!(logits.cols(), 1, "binary accuracy expects one logit column");
    if labels.is_empty() {
        return 0.0;
    }
    let correct =
        logits.iter_rows().zip(labels).filter(|(row, &l)| (row[0] > 0.0) == (l > 0.5)).count();
    correct as f64 / labels.len() as f64
}

/// Confusion matrix: `counts[true][pred]`.
pub fn confusion_matrix(logits: &Matrix, labels: &[usize], classes: usize) -> Vec<Vec<usize>> {
    let preds = logits.argmax_rows();
    let mut m = vec![vec![0usize; classes]; classes];
    for (&p, &t) in preds.iter().zip(labels) {
        assert!(t < classes && p < classes, "class index out of range");
        m[t][p] += 1;
    }
    m
}

/// Macro-averaged F1 score over all classes.
pub fn macro_f1(logits: &Matrix, labels: &[usize], classes: usize) -> f64 {
    let cm = confusion_matrix(logits, labels, classes);
    let mut f1_sum = 0f64;
    for (c, row) in cm.iter().enumerate() {
        let tp = row[c] as f64;
        let fp: f64 = (0..classes).filter(|&t| t != c).map(|t| cm[t][c] as f64).sum();
        let fnv: f64 = (0..classes).filter(|&p| p != c).map(|p| row[p] as f64).sum();
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fnv > 0.0 { tp / (tp + fnv) } else { 0.0 };
        f1_sum += if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
    }
    f1_sum / classes as f64
}

/// Area under the ROC curve for binary scores (higher score = positive),
/// computed via the rank statistic with midrank tie handling.
pub fn roc_auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc length mismatch");
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5; // undefined; conventionally chance level
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    // Midranks for ties.
    let mut ranks = vec![0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 =
        labels.iter().zip(&ranks).filter(|(&l, _)| l > 0.5).map(|(_, &r)| r).sum();
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Enrichment factor at fraction `alpha`: among the top `alpha` fraction of
/// compounds by score, the ratio of the active rate to the overall active
/// rate. The standard virtual-screening metric (EF1% etc.); 1.0 = random,
/// `1/alpha` (capped by the active count) = perfect.
pub fn enrichment_factor(scores: &[f32], labels: &[f32], alpha: f64) -> f64 {
    assert_eq!(scores.len(), labels.len(), "enrichment length mismatch");
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let n = scores.len();
    if n == 0 {
        return 0.0;
    }
    let total_actives = labels.iter().filter(|&&l| l > 0.5).count();
    if total_actives == 0 {
        return 0.0;
    }
    // dd-lint: allow(lossy-cast/float-to-int) -- enrichment cutoff: ceil'd fraction clamped to [1, n]
    let k = ((n as f64 * alpha).ceil() as usize).clamp(1, n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let hits = order[..k].iter().filter(|&&i| labels[i] > 0.5).count();
    let top_rate = hits as f64 / k as f64;
    let base_rate = total_actives as f64 / n as f64;
    top_rate / base_rate
}

/// Mean absolute error over all elements.
pub fn mae(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(pred.shape(), target.shape());
    if pred.is_empty() {
        return 0.0;
    }
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| (p as f64 - t as f64).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error over all elements.
pub fn rmse(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(pred.shape(), target.shape());
    if pred.is_empty() {
        return 0.0;
    }
    (pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| {
            let d = p as f64 - t as f64;
            d * d
        })
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[1.0, 0.5]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn binary_accuracy_threshold_zero() {
        let logits = Matrix::from_rows(&[&[1.2], &[-0.4], &[0.1]]);
        assert!((binary_accuracy(&logits, &[1.0, 0.0, 0.0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_shape_and_totals() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let cm = confusion_matrix(&logits, &[0, 1, 1], 2);
        assert_eq!(cm[0][0], 1);
        assert_eq!(cm[1][0], 1);
        assert_eq!(cm[1][1], 1);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn macro_f1_perfect_and_degenerate() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!((macro_f1(&logits, &[0, 1], 2) - 1.0).abs() < 1e-12);
        // All predictions wrong: F1 = 0.
        assert_eq!(macro_f1(&logits, &[1, 0], 2), 0.0);
    }

    #[test]
    fn auc_perfect_random_and_inverted() {
        let labels = [1.0f32, 1.0, 0.0, 0.0];
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &labels) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &labels) - 0.0).abs() < 1e-12);
        // All-equal scores: midranks make it exactly chance.
        assert!((roc_auc(&[0.5, 0.5, 0.5, 0.5], &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn auc_handles_ties_with_midranks() {
        // One tie spanning classes contributes half.
        let labels = [1.0f32, 0.0, 0.0];
        let auc = roc_auc(&[0.5, 0.5, 0.1], &labels);
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn enrichment_perfect_random_and_empty() {
        // 4 actives in 20; perfect scorer at alpha=0.2 puts all 4 in top 4.
        let labels: Vec<f32> = (0..20).map(|i| f32::from(u8::from(i < 4))).collect();
        let perfect: Vec<f32> = (0..20).map(|i| -(i as f32)).collect();
        let ef = enrichment_factor(&perfect, &labels, 0.2);
        assert!((ef - 5.0).abs() < 1e-9, "perfect EF20% = 1/0.2 = 5, got {ef}");
        // Uniform scores: ties broken by stable order — compute explicitly.
        let worst: Vec<f32> = (0..20).map(|i| i as f32).collect();
        assert_eq!(enrichment_factor(&worst, &labels, 0.2), 0.0);
        // No actives: defined as 0.
        assert_eq!(enrichment_factor(&perfect, &[0.0; 20], 0.2), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn enrichment_bad_alpha_panics() {
        let _ = enrichment_factor(&[1.0], &[1.0], 0.0);
    }

    #[test]
    fn regression_metrics() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]);
        let t = Matrix::from_rows(&[&[2.0, 4.0]]);
        assert!((mae(&p, &t) - 1.5).abs() < 1e-12);
        assert!((rmse(&p, &t) - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(mae(&p, &p), 0.0);
    }
}
