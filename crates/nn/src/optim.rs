//! Optimizers and learning-rate schedules.
//!
//! Optimizers keep per-parameter state (momentum/moment buffers) keyed by the
//! visiting order of `visit_params`, which is stable for a given model. The
//! state is lazily sized on the first step so one optimizer value can be
//! constructed before the model exists (e.g. from a hyperparameter config).

use dd_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Serializable optimizer configuration; build with [`OptimizerConfig::build`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerConfig {
    /// Stochastic gradient descent with momentum and decoupled weight decay.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables).
        momentum: f32,
        /// Decoupled L2 weight decay.
        weight_decay: f32,
    },
    /// Adam with bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Decoupled L2 weight decay (AdamW-style).
        weight_decay: f32,
    },
    /// RMSProp.
    RmsProp {
        /// Learning rate.
        lr: f32,
        /// Squared-gradient decay.
        rho: f32,
    },
}

impl OptimizerConfig {
    /// Plain SGD at the given rate.
    pub fn sgd(lr: f32) -> Self {
        OptimizerConfig::Sgd { lr, momentum: 0.0, weight_decay: 0.0 }
    }

    /// Adam with the usual defaults.
    pub fn adam(lr: f32) -> Self {
        OptimizerConfig::Adam { lr, beta1: 0.9, beta2: 0.999, weight_decay: 0.0 }
    }

    /// Materialize the optimizer state machine.
    pub fn build(self) -> Optimizer {
        Optimizer { config: self, step: 0, cursor: 0, slots: Vec::new() }
    }

    /// The configured base learning rate.
    pub fn base_lr(self) -> f32 {
        match self {
            OptimizerConfig::Sgd { lr, .. }
            | OptimizerConfig::Adam { lr, .. }
            | OptimizerConfig::RmsProp { lr, .. } => lr,
        }
    }

    /// Copy of the config with a different base learning rate.
    pub fn with_lr(self, new_lr: f32) -> Self {
        match self {
            OptimizerConfig::Sgd { momentum, weight_decay, .. } => {
                OptimizerConfig::Sgd { lr: new_lr, momentum, weight_decay }
            }
            OptimizerConfig::Adam { beta1, beta2, weight_decay, .. } => {
                OptimizerConfig::Adam { lr: new_lr, beta1, beta2, weight_decay }
            }
            OptimizerConfig::RmsProp { rho, .. } => OptimizerConfig::RmsProp { lr: new_lr, rho },
        }
    }
}

/// Per-parameter optimizer state.
struct Slot {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Snapshot of one parameter slot's moment buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotState {
    /// First-moment (momentum) buffer.
    pub m: Vec<f32>,
    /// Second-moment buffer.
    pub v: Vec<f32>,
}

/// Serializable snapshot of an optimizer's mutable state (step counter plus
/// moment buffers in parameter visiting order), for checkpoint/restart.
///
/// Restoring into an optimizer built from the same [`OptimizerConfig`] and
/// driven through the same model makes the continued run bit-identical to
/// one that never stopped.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OptimizerState {
    /// Steps taken so far (drives Adam bias correction).
    pub step: u64,
    /// Moment buffers, one per parameter tensor in visiting order.
    pub slots: Vec<SlotState>,
}

/// A stateful optimizer driving parameter updates.
///
/// Designed to be driven through a model's `visit_params` visitor: call
/// [`Optimizer::begin_step`] once, then [`Optimizer::update`] for every
/// `(param, grad)` pair in the model's stable visiting order.
pub struct Optimizer {
    config: OptimizerConfig,
    step: u64,
    cursor: usize,
    slots: Vec<Slot>,
}

impl Optimizer {
    /// Start a new update step, resetting the slot cursor.
    pub fn begin_step(&mut self) {
        self.step += 1;
        self.cursor = 0;
    }

    /// Update one parameter tensor in place from its gradient. Must follow a
    /// [`Optimizer::begin_step`]; pairs must arrive in the same order every
    /// step so momentum state stays attached to the right tensor.
    pub fn update(&mut self, p: &mut Matrix, g: &Matrix, lr_scale: f32) {
        assert_eq!(p.shape(), g.shape(), "optimizer param/grad shape mismatch");
        if self.cursor == self.slots.len() {
            let n = p.len();
            self.slots.push(Slot { m: vec![0.0; n], v: vec![0.0; n] });
        }
        let slot = &mut self.slots[self.cursor];
        assert_eq!(slot.m.len(), p.len(), "parameter visiting order changed");
        self.cursor += 1;

        match self.config {
            OptimizerConfig::Sgd { lr, momentum, weight_decay } => {
                let lr = lr * lr_scale;
                for ((w, &grad), m) in
                    p.as_mut_slice().iter_mut().zip(g.as_slice()).zip(&mut slot.m)
                {
                    let d = grad + weight_decay * *w;
                    if momentum > 0.0 {
                        *m = momentum * *m + d;
                        *w -= lr * *m;
                    } else {
                        *w -= lr * d;
                    }
                }
            }
            OptimizerConfig::Adam { lr, beta1, beta2, weight_decay } => {
                let lr = lr * lr_scale;
                let bc1 = 1.0 - beta1.powi(self.step as i32);
                let bc2 = 1.0 - beta2.powi(self.step as i32);
                let eps = 1e-8f32;
                for (((w, &grad), m), v) in
                    p.as_mut_slice().iter_mut().zip(g.as_slice()).zip(&mut slot.m).zip(&mut slot.v)
                {
                    *m = beta1 * *m + (1.0 - beta1) * grad;
                    *v = beta2 * *v + (1.0 - beta2) * grad * grad;
                    let mhat = *m / bc1;
                    let vhat = *v / bc2;
                    *w -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * *w);
                }
            }
            OptimizerConfig::RmsProp { lr, rho } => {
                let lr = lr * lr_scale;
                let eps = 1e-8f32;
                for ((w, &grad), v) in
                    p.as_mut_slice().iter_mut().zip(g.as_slice()).zip(&mut slot.v)
                {
                    *v = rho * *v + (1.0 - rho) * grad * grad;
                    *w -= lr * grad / (v.sqrt() + eps);
                }
            }
        }
    }

    /// One-shot convenience over a pair list (used by tests and simple
    /// call sites without a visitor).
    pub fn step_params(&mut self, params: &mut [(&mut Matrix, &Matrix)], lr_scale: f32) {
        self.begin_step();
        for (p, g) in params.iter_mut() {
            self.update(p, g, lr_scale);
        }
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Snapshot the mutable state for checkpointing; restore with
    /// [`Optimizer::load_state`].
    pub fn export_state(&self) -> OptimizerState {
        OptimizerState {
            step: self.step,
            slots: self
                .slots
                .iter()
                .map(|s| SlotState { m: s.m.clone(), v: s.v.clone() })
                .collect(),
        }
    }

    /// Restore a snapshot taken with [`Optimizer::export_state`]. Subsequent
    /// steps must visit parameters in the same order as the exporting
    /// optimizer did, or the buffers attach to the wrong tensors.
    pub fn load_state(&mut self, state: &OptimizerState) {
        self.step = state.step;
        self.cursor = 0;
        self.slots = state.slots.iter().map(|s| Slot { m: s.m.clone(), v: s.v.clone() }).collect();
    }

    /// The config this optimizer was built from.
    pub fn config(&self) -> OptimizerConfig {
        self.config
    }
}

/// Learning-rate schedule, expressed as a multiplier on the base rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from 1 to `floor` over `total` epochs.
    Cosine {
        /// Total epochs of the anneal.
        total: usize,
        /// Final multiplier.
        floor: f32,
    },
    /// Linear warmup over `warmup` epochs, then constant.
    Warmup {
        /// Warmup length in epochs.
        warmup: usize,
    },
}

impl LrSchedule {
    /// Multiplier for the given (0-based) epoch.
    pub fn scale(self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => gamma.powi((epoch / every.max(1)) as i32),
            LrSchedule::Cosine { total, floor } => {
                if total == 0 {
                    return 1.0;
                }
                let t = (epoch.min(total)) as f32 / total as f32;
                floor + (1.0 - floor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || epoch >= warmup {
                    1.0
                } else {
                    (epoch + 1) as f32 / warmup as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(w) = 0.5*(w-3)² from w=0 with each optimizer.
    fn converges(config: OptimizerConfig, iters: usize, tol: f32) {
        let mut w = Matrix::zeros(1, 1);
        let mut opt = config.build();
        for _ in 0..iters {
            let g = Matrix::from_rows(&[&[w.get(0, 0) - 3.0]]);
            opt.step_params(&mut [(&mut w, &g)], 1.0);
        }
        assert!((w.get(0, 0) - 3.0).abs() < tol, "{:?} ended at {}", config, w.get(0, 0));
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges(OptimizerConfig::sgd(0.1), 200, 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        converges(OptimizerConfig::Sgd { lr: 0.05, momentum: 0.9, weight_decay: 0.0 }, 300, 1e-2);
    }

    #[test]
    fn adam_converges() {
        converges(OptimizerConfig::adam(0.1), 500, 1e-2);
    }

    #[test]
    fn rmsprop_converges() {
        converges(OptimizerConfig::RmsProp { lr: 0.05, rho: 0.9 }, 500, 5e-2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut w = Matrix::full(1, 1, 1.0);
        let zero_grad = Matrix::zeros(1, 1);
        let mut opt = OptimizerConfig::Sgd { lr: 0.1, momentum: 0.0, weight_decay: 0.5 }.build();
        for _ in 0..10 {
            opt.step_params(&mut [(&mut w, &zero_grad)], 1.0);
        }
        assert!(w.get(0, 0) < 0.7 && w.get(0, 0) > 0.0);
    }

    #[test]
    fn lr_scale_multiplies() {
        let mut w1 = Matrix::zeros(1, 1);
        let mut w2 = Matrix::zeros(1, 1);
        let g = Matrix::full(1, 1, 1.0);
        let mut o1 = OptimizerConfig::sgd(0.1).build();
        let mut o2 = OptimizerConfig::sgd(0.1).build();
        o1.step_params(&mut [(&mut w1, &g)], 1.0);
        o2.step_params(&mut [(&mut w2, &g)], 0.5);
        assert!((w1.get(0, 0) - 2.0 * w2.get(0, 0)).abs() < 1e-7);
    }

    #[test]
    fn schedules_behave() {
        assert_eq!(LrSchedule::Constant.scale(100), 1.0);
        let sd = LrSchedule::StepDecay { every: 10, gamma: 0.5 };
        assert_eq!(sd.scale(0), 1.0);
        assert_eq!(sd.scale(10), 0.5);
        assert_eq!(sd.scale(25), 0.25);
        let cos = LrSchedule::Cosine { total: 100, floor: 0.1 };
        assert!((cos.scale(0) - 1.0).abs() < 1e-6);
        assert!((cos.scale(100) - 0.1).abs() < 1e-6);
        assert!(cos.scale(50) < 1.0 && cos.scale(50) > 0.1);
        let w = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(w.scale(0), 0.25);
        assert_eq!(w.scale(3), 1.0);
        assert_eq!(w.scale(10), 1.0);
    }

    #[test]
    fn state_roundtrip_resumes_bitwise() {
        // 10 Adam steps, snapshot, 10 more — versus a fresh optimizer that
        // loads the snapshot and runs the same final 10. Bitwise identical.
        let config = OptimizerConfig::adam(0.05);
        let grad_at = |i: usize, w: &Matrix| Matrix::from_rows(&[&[w.get(0, 0) - i as f32]]);
        let mut w = Matrix::zeros(1, 1);
        let mut opt = config.build();
        for i in 0..10 {
            let g = grad_at(i, &w);
            opt.step_params(&mut [(&mut w, &g)], 1.0);
        }
        let snapshot = opt.export_state();
        let w_mid = w.clone();
        assert_eq!(snapshot.step, 10);
        for i in 10..20 {
            let g = grad_at(i, &w);
            opt.step_params(&mut [(&mut w, &g)], 1.0);
        }
        let mut w2 = w_mid;
        let mut resumed = config.build();
        resumed.load_state(&snapshot);
        assert_eq!(resumed.steps_taken(), 10);
        for i in 10..20 {
            let g = grad_at(i, &w2);
            resumed.step_params(&mut [(&mut w2, &g)], 1.0);
        }
        assert_eq!(w.get(0, 0), w2.get(0, 0));
        assert_eq!(opt.export_state(), resumed.export_state());
    }

    #[test]
    fn with_lr_preserves_other_fields() {
        let c = OptimizerConfig::Adam { lr: 0.1, beta1: 0.8, beta2: 0.99, weight_decay: 0.01 };
        let c2 = c.with_lr(0.2);
        assert_eq!(c2.base_lr(), 0.2);
        if let OptimizerConfig::Adam { beta1, weight_decay, .. } = c2 {
            assert_eq!(beta1, 0.8);
            assert_eq!(weight_decay, 0.01);
        } else {
            panic!("variant changed");
        }
    }
}
