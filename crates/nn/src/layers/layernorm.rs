//! Layer normalization.

use super::Layer;
use dd_tensor::{Matrix, Precision};

/// Layer normalization: each *row* (sample) is normalized to zero mean and
/// unit variance across its features, then scaled/shifted by learned
/// `gamma`/`beta`. Unlike batch norm it has no batch-size coupling, making
/// it the normalizer of choice for small-batch model-parallel stages.
pub struct LayerNorm {
    dim: usize,
    eps: f32,
    gamma: Matrix,
    beta: Matrix,
    g_gamma: Matrix,
    g_beta: Matrix,
    cache_xhat: Option<Matrix>,
    cache_inv_std: Vec<f32>,
}

impl LayerNorm {
    /// New layer-norm over `dim` features.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2, "normalizing a single feature is degenerate");
        LayerNorm {
            dim,
            eps: 1e-5,
            gamma: Matrix::full(1, dim, 1.0),
            beta: Matrix::zeros(1, dim),
            g_gamma: Matrix::zeros(1, dim),
            g_beta: Matrix::zeros(1, dim),
            cache_xhat: None,
            cache_inv_std: Vec::new(),
        }
    }
}

impl Layer for LayerNorm {
    fn name(&self) -> &'static str {
        "layernorm"
    }

    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        if !train {
            return self.infer(x, prec);
        }
        assert_eq!(x.cols(), self.dim, "layernorm width mismatch");
        let d = self.dim as f32;
        let mut xhat = x.clone();
        let mut inv_stds = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let row = xhat.row_mut(i);
            let mean: f32 = row.iter().sum::<f32>() / d;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for v in row.iter_mut() {
                *v = (*v - mean) * inv_std;
            }
            inv_stds.push(inv_std);
        }
        let mut y = xhat.clone();
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            for ((v, &g), &b) in row.iter_mut().zip(self.gamma.as_slice()).zip(self.beta.as_slice())
            {
                *v = *v * g + b;
            }
        }
        self.cache_xhat = Some(xhat);
        self.cache_inv_std = inv_stds;
        y
    }

    fn infer(&self, x: &Matrix, _prec: Precision) -> Matrix {
        assert_eq!(x.cols(), self.dim, "layernorm width mismatch");
        let d = self.dim as f32;
        let mut y = x.clone();
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            let mean: f32 = row.iter().sum::<f32>() / d;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for v in row.iter_mut() {
                *v = (*v - mean) * inv_std;
            }
            for ((v, &g), &b) in row.iter_mut().zip(self.gamma.as_slice()).zip(self.beta.as_slice())
            {
                *v = *v * g + b;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix, _prec: Precision) -> Matrix {
        let Some(xhat) = self.cache_xhat.as_ref() else { unreachable!("backward before forward") };
        let d = self.dim as f32;
        // Parameter gradients.
        let mut dgamma = vec![0f32; self.dim];
        let mut dbeta = vec![0f32; self.dim];
        for i in 0..grad_out.rows() {
            for ((dg, db), (&g, &xh)) in
                dgamma.iter_mut().zip(dbeta.iter_mut()).zip(grad_out.row(i).iter().zip(xhat.row(i)))
            {
                *dg += g * xh;
                *db += g;
            }
        }
        self.g_gamma = Matrix::from_vec(1, self.dim, dgamma);
        self.g_beta = Matrix::from_vec(1, self.dim, dbeta);

        // Input gradient, per row:
        // dx = inv_std/d * (d·gy − Σgy − xhat·Σ(gy⊙xhat)) with gy = g⊙gamma.
        let mut dx = grad_out.clone();
        for i in 0..dx.rows() {
            let xr = xhat.row(i);
            let inv_std = self.cache_inv_std[i];
            let row = dx.row_mut(i);
            // gy in place.
            for (v, &g) in row.iter_mut().zip(self.gamma.as_slice()) {
                *v *= g;
            }
            let sum_gy: f32 = row.iter().sum();
            let sum_gy_xhat: f32 = row.iter().zip(xr).map(|(&a, &b)| a * b).sum();
            for (v, &xh) in row.iter_mut().zip(xr) {
                *v = inv_std / d * (d * *v - sum_gy - xh * sum_gy_xhat);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.gamma, &mut self.g_gamma);
        f(&mut self.beta, &mut self.g_beta);
    }

    fn param_count(&self) -> usize {
        2 * self.dim
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.dim, "layernorm geometry mismatch");
        self.dim
    }

    fn flops(&self, batch: usize, input_dim: usize) -> u64 {
        (8 * batch * input_dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_tensor::Rng64;

    #[test]
    fn rows_normalized_independently() {
        let mut ln = LayerNorm::new(6);
        let mut rng = Rng64::new(1);
        let x = Matrix::randn(5, 6, 3.0, 4.0, &mut rng);
        let y = ln.forward(&x, false, Precision::F32);
        for i in 0..5 {
            let row = y.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-4, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {i} var {var}");
        }
    }

    #[test]
    fn batch_size_one_works() {
        // The property batch norm lacks.
        let mut ln = LayerNorm::new(4);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let y = ln.forward(&x, true, Precision::F32);
        assert!(!y.has_non_finite());
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn gradient_check() {
        let mut ln = LayerNorm::new(5);
        // Non-trivial affine params.
        ln.gamma = Matrix::from_rows(&[&[1.5, 0.5, 2.0, 1.0, 0.8]]);
        ln.beta = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 0.0, -0.1]]);
        let mut rng = Rng64::new(2);
        let x = Matrix::randn(4, 5, 1.0, 2.0, &mut rng);
        let y = ln.forward(&x, true, Precision::F32);
        let dx = ln.backward(&y.clone(), Precision::F32);
        let eps = 1e-3f32;
        let loss = |ln: &mut LayerNorm, x: &Matrix| {
            0.5 * ln.forward(x, true, Precision::F32).norm_sq() as f64
        };
        for &(i, j) in &[(0usize, 0usize), (2, 3), (3, 4)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let lp = loss(&mut ln, &xp);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let lm = loss(&mut ln, &xm);
            let num = (lp - lm) / (2.0 * eps as f64);
            let analytic = dx.get(i, j) as f64;
            assert!(
                (num - analytic).abs() < 5e-2 * (1.0 + num.abs()),
                "dx[{i},{j}] numeric {num} analytic {analytic}"
            );
        }
    }

    #[test]
    fn scale_invariance_of_normalized_output() {
        // LayerNorm(a·x) == LayerNorm(x) for a > 0 (with default affine).
        let mut ln = LayerNorm::new(8);
        let mut rng = Rng64::new(3);
        let x = Matrix::randn(3, 8, 0.0, 1.0, &mut rng);
        let mut x10 = x.clone();
        x10.scale(10.0);
        let a = ln.forward(&x, false, Precision::F32);
        let b = ln.forward(&x10, false, Precision::F32);
        assert!(a.approx_eq(&b, 1e-3));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn single_feature_rejected() {
        let _ = LayerNorm::new(1);
    }
}
