//! Residual (skip-connection) blocks.

use super::Layer;
use dd_tensor::{Matrix, Precision};

/// `y = x + f(x)` where `f` is an inner layer stack whose output width must
/// equal its input width. Skip connections keep deep driver-workload
/// networks trainable (they carry the gradient past saturating blocks).
pub struct Residual {
    inner: Vec<Box<dyn Layer>>,
}

impl Residual {
    /// Wrap an inner stack. Width preservation is checked at first forward
    /// (and by `ModelSpec::validate` when built from a spec).
    pub fn new(inner: Vec<Box<dyn Layer>>) -> Self {
        Residual { inner }
    }

    /// Number of inner layers.
    pub fn inner_len(&self) -> usize {
        self.inner.len()
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        if !train {
            return self.infer(x, prec);
        }
        let mut h = x.clone();
        for layer in &mut self.inner {
            h = layer.forward(&h, train, prec);
        }
        assert_eq!(h.shape(), x.shape(), "residual inner stack must preserve shape");
        h.axpy(1.0, x);
        h
    }

    fn infer(&self, x: &Matrix, prec: Precision) -> Matrix {
        let mut h = x.clone();
        for layer in &self.inner {
            h = layer.infer(&h, prec);
        }
        assert_eq!(h.shape(), x.shape(), "residual inner stack must preserve shape");
        h.axpy(1.0, x);
        h
    }

    fn backward(&mut self, grad_out: &Matrix, prec: Precision) -> Matrix {
        // d/dx [x + f(x)] = I + f'(x): the skip path passes grad_out through
        // unchanged and adds the branch gradient.
        let mut g = grad_out.clone();
        for layer in self.inner.iter_mut().rev() {
            g = layer.backward(&g, prec);
        }
        g.axpy(1.0, grad_out);
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.inner {
            layer.visit_params(f);
        }
    }

    fn param_count(&self) -> usize {
        self.inner.iter().map(|l| l.param_count()).sum()
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        let mut d = input_dim;
        for layer in &self.inner {
            d = layer.output_dim(d);
        }
        assert_eq!(d, input_dim, "residual inner stack must preserve width");
        input_dim
    }

    fn flops(&self, batch: usize, input_dim: usize) -> u64 {
        let mut d = input_dim;
        let mut total = (batch * input_dim) as u64; // the addition
        for layer in &self.inner {
            total += layer.flops(batch, d);
            d = layer.output_dim(d);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Activation, ActivationLayer, Dense};
    use dd_tensor::Rng64;

    fn block(dim: usize, seed: u64) -> Residual {
        let mut rng = Rng64::new(seed);
        Residual::new(vec![
            Box::new(Dense::new(dim, dim, Init::Xavier, &mut rng)),
            Box::new(ActivationLayer::new(Activation::Tanh)),
            Box::new(Dense::new(dim, dim, Init::Xavier, &mut rng)),
        ])
    }

    #[test]
    fn identity_branch_passes_input() {
        // Zero-weight inner stack: y = x exactly.
        let mut rng = Rng64::new(1);
        let mut res = Residual::new(vec![Box::new(Dense::new(3, 3, Init::Zeros, &mut rng))]);
        let x = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        let y = res.forward(&x, false, Precision::F32);
        assert!(y.approx_eq(&x, 1e-7));
    }

    #[test]
    fn gradient_check() {
        let mut res = block(4, 2);
        let mut rng = Rng64::new(3);
        let x = Matrix::randn(3, 4, 0.0, 1.0, &mut rng);
        let y = res.forward(&x, true, Precision::F32);
        let grad_in = res.backward(&y.clone(), Precision::F32); // L = 0.5||y||²
        let eps = 1e-3f32;
        let loss = |res: &mut Residual, x: &Matrix| {
            0.5 * res.forward(x, false, Precision::F32).norm_sq() as f64
        };
        for &(i, j) in &[(0usize, 0usize), (2, 3)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let lp = loss(&mut res, &xp);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let lm = loss(&mut res, &xm);
            let num = (lp - lm) / (2.0 * eps as f64);
            let analytic = grad_in.get(i, j) as f64;
            assert!(
                (num - analytic).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{i},{j}] numeric {num} analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_flows_through_skip_even_with_dead_branch() {
        // ReLU branch fully dead (all negative pre-activations): gradient
        // still reaches the input via the skip path with identity scale.
        let mut rng = Rng64::new(4);
        let mut dead = Dense::new(2, 2, Init::Zeros, &mut rng);
        dead.visit_params(&mut |p, _| {
            if p.shape() == (1, 2) {
                p.set(0, 0, -100.0);
                p.set(0, 1, -100.0);
            }
        });
        let mut res = Residual::new(vec![
            Box::new(dead),
            Box::new(ActivationLayer::new(Activation::Relu)),
            Box::new(Dense::new(2, 2, Init::Xavier, &mut rng)),
        ]);
        let x = Matrix::full(3, 2, 1.0);
        let _ = res.forward(&x, true, Precision::F32);
        let g = res.backward(&Matrix::full(3, 2, 1.0), Precision::F32);
        assert!(g.approx_eq(&Matrix::full(3, 2, 1.0), 1e-6), "skip gradient lost");
    }

    #[test]
    fn param_count_and_dims() {
        let res = block(5, 6);
        assert_eq!(res.param_count(), 2 * (5 * 5 + 5));
        assert_eq!(res.output_dim(5), 5);
        assert_eq!(res.inner_len(), 3);
    }

    #[test]
    #[should_panic(expected = "preserve width")]
    fn width_changing_branch_rejected() {
        let mut rng = Rng64::new(7);
        let res = Residual::new(vec![Box::new(Dense::new(4, 8, Init::He, &mut rng))]);
        let _ = res.output_dim(4);
    }
}
