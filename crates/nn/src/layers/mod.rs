//! Layer abstraction and the concrete layers used by the driver workloads.
//!
//! Layers own their parameters *and* their gradients: `backward` fills the
//! gradient buffers, then an optimizer walks `visit_params` to apply the
//! update. This keeps every buffer pre-allocated across steps (no per-step
//! allocation in the hot path) and makes gradient exchange for data
//! parallelism a simple flatten/unflatten of the visited pairs.

mod activation;
mod conv;
mod dense;
mod dropout;
mod layernorm;
mod norm;
mod pool;
mod residual;

pub use activation::{Activation, ActivationLayer};
pub use conv::Conv1d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use layernorm::LayerNorm;
pub use norm::BatchNorm1d;
pub use pool::MaxPool1d;
pub use residual::Residual;

use dd_tensor::{Matrix, Precision};

/// A differentiable network layer.
///
/// The contract: `forward` caches whatever it needs, `backward` must be
/// called with the gradient of the loss w.r.t. that forward's output and
/// returns the gradient w.r.t. its input, overwriting the layer's parameter
/// gradients as a side effect.
pub trait Layer: Send + Sync {
    /// Short name used in summaries and partition plans.
    fn name(&self) -> &'static str;

    /// Compute the layer output for a batch (one sample per row).
    ///
    /// `train` toggles train-only behaviour (dropout masks, batch-norm batch
    /// statistics); `prec` selects the emulated arithmetic precision for the
    /// layer's matrix products.
    ///
    /// Contract with [`Layer::infer`]: `forward(x, false, prec)` must return
    /// the bitwise-identical output (eval-mode forwards delegate to `infer`).
    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix;

    /// Eval-mode forward without mutation — the inference-serving path.
    ///
    /// Semantically `forward(x, false, prec)` but through `&self`, so one
    /// model snapshot can serve concurrent batched predictions (dd-serve
    /// workers) without per-worker clones. Implementations must not touch
    /// caches; train-only behaviour (dropout, batch statistics) is off.
    fn infer(&self, x: &Matrix, prec: Precision) -> Matrix;

    /// Propagate the output gradient back to the input, filling this layer's
    /// parameter gradients.
    fn backward(&mut self, grad_out: &Matrix, prec: Precision) -> Matrix;

    /// Visit `(parameter, gradient)` pairs in a fixed, stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize;

    /// Width of the output rows given the input width (used to validate
    /// specs and to size model-parallel partitions).
    fn output_dim(&self, input_dim: usize) -> usize;

    /// Approximate FLOPs for one forward pass over a batch of `batch` rows
    /// of width `input_dim`. Drives the HPC simulator's compute cost model.
    fn flops(&self, batch: usize, input_dim: usize) -> u64;
}

/// Flatten all parameters of a layer stack into one contiguous vector.
pub fn flatten_params(layers: &mut [Box<dyn Layer>]) -> Vec<f32> {
    let mut out = Vec::new();
    for layer in layers {
        layer.visit_params(&mut |p, _| out.extend_from_slice(p.as_slice()));
    }
    out
}

/// Flatten all gradients of a layer stack into one contiguous vector.
pub fn flatten_grads(layers: &mut [Box<dyn Layer>]) -> Vec<f32> {
    let mut out = Vec::new();
    for layer in layers {
        layer.visit_params(&mut |_, g| out.extend_from_slice(g.as_slice()));
    }
    out
}

/// Write a flat parameter vector back into a layer stack. Panics if the
/// length does not match the stack's parameter count.
pub fn unflatten_params(layers: &mut [Box<dyn Layer>], flat: &[f32]) {
    let mut offset = 0;
    for layer in layers.iter_mut() {
        layer.visit_params(&mut |p, _| {
            let n = p.len();
            p.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
    }
    assert_eq!(offset, flat.len(), "flat parameter vector length mismatch");
}

/// Write a flat gradient vector back into a layer stack.
pub fn unflatten_grads(layers: &mut [Box<dyn Layer>], flat: &[f32]) {
    let mut offset = 0;
    for layer in layers.iter_mut() {
        layer.visit_params(&mut |_, g| {
            let n = g.len();
            g.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
    }
    assert_eq!(offset, flat.len(), "flat gradient vector length mismatch");
}
