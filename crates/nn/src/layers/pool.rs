//! 1-D max pooling over channel-major flattened rows.

use super::Layer;
use dd_tensor::{Matrix, Precision};

/// Non-overlapping 1-D max pooling: each channel of length `len` is reduced
/// by taking the maximum over windows of `pool` elements (stride = `pool`;
/// a trailing partial window is pooled too).
pub struct MaxPool1d {
    channels: usize,
    len: usize,
    pool: usize,
    out_len: usize,
    /// Flat argmax indices from the last training forward, one per output
    /// element, pointing into the input row.
    cache_argmax: Option<Vec<usize>>,
    cache_batch: usize,
}

impl MaxPool1d {
    /// New pooling layer over `channels` signals of length `len`.
    pub fn new(channels: usize, len: usize, pool: usize) -> Self {
        assert!(pool >= 1, "pool must be >= 1");
        assert!(pool <= len, "pool {pool} larger than signal {len}");
        let out_len = len.div_ceil(pool);
        MaxPool1d { channels, len, pool, out_len, cache_argmax: None, cache_batch: 0 }
    }

    /// Pooled signal length per channel.
    pub fn out_len(&self) -> usize {
        self.out_len
    }
}

impl Layer for MaxPool1d {
    fn name(&self) -> &'static str {
        "maxpool1d"
    }

    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        if !train {
            return self.infer(x, prec);
        }
        assert_eq!(x.cols(), self.channels * self.len, "maxpool input width mismatch");
        let batch = x.rows();
        let mut y = Matrix::zeros(batch, self.channels * self.out_len);
        let mut argmax = Vec::with_capacity(batch * self.channels * self.out_len);
        for bi in 0..batch {
            let row = x.row(bi);
            let out = y.row_mut(bi);
            for c in 0..self.channels {
                for t in 0..self.out_len {
                    let start = c * self.len + t * self.pool;
                    let end = (start + self.pool).min((c + 1) * self.len);
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = start;
                    for (i, &v) in row[start..end].iter().enumerate() {
                        if v > best {
                            best = v;
                            best_i = start + i;
                        }
                    }
                    out[c * self.out_len + t] = best;
                    argmax.push(best_i);
                }
            }
        }
        self.cache_argmax = Some(argmax);
        self.cache_batch = batch;
        y
    }

    fn infer(&self, x: &Matrix, _prec: Precision) -> Matrix {
        assert_eq!(x.cols(), self.channels * self.len, "maxpool input width mismatch");
        let batch = x.rows();
        let mut y = Matrix::zeros(batch, self.channels * self.out_len);
        for bi in 0..batch {
            let row = x.row(bi);
            let out = y.row_mut(bi);
            for c in 0..self.channels {
                for t in 0..self.out_len {
                    let start = c * self.len + t * self.pool;
                    let end = (start + self.pool).min((c + 1) * self.len);
                    let mut best = f32::NEG_INFINITY;
                    for &v in &row[start..end] {
                        if v > best {
                            best = v;
                        }
                    }
                    out[c * self.out_len + t] = best;
                }
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix, _prec: Precision) -> Matrix {
        let Some(argmax) = self.cache_argmax.as_ref() else {
            unreachable!("backward before forward")
        };
        let batch = self.cache_batch;
        assert_eq!(grad_out.cols(), self.channels * self.out_len);
        let mut dx = Matrix::zeros(batch, self.channels * self.len);
        let per_row = self.channels * self.out_len;
        for bi in 0..batch {
            let g = grad_out.row(bi);
            let d = dx.row_mut(bi);
            for (slot, &src_idx) in argmax[bi * per_row..(bi + 1) * per_row].iter().enumerate() {
                d[src_idx] += g[slot];
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn param_count(&self) -> usize {
        0
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.channels * self.len, "maxpool geometry mismatch");
        self.channels * self.out_len
    }

    fn flops(&self, batch: usize, input_dim: usize) -> u64 {
        (batch * input_dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_maxima() {
        let mut p = MaxPool1d::new(1, 6, 2);
        let x = Matrix::from_rows(&[&[1.0, 5.0, 2.0, 2.0, -1.0, 0.0]]);
        let y = p.forward(&x, false, Precision::F32);
        assert_eq!(y.as_slice(), &[5.0, 2.0, 0.0]);
    }

    #[test]
    fn partial_trailing_window() {
        let mut p = MaxPool1d::new(1, 5, 2);
        assert_eq!(p.out_len(), 3);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, -9.0]]);
        let y = p.forward(&x, false, Precision::F32);
        assert_eq!(y.as_slice(), &[2.0, 4.0, -9.0]);
    }

    #[test]
    fn multi_channel_windows_do_not_cross_channels() {
        let mut p = MaxPool1d::new(2, 3, 2);
        // Channel 0: [1, 2, 3], channel 1: [10, 0, -1].
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 10.0, 0.0, -1.0]]);
        let y = p.forward(&x, false, Precision::F32);
        // Windows: ch0 [1,2],[3]; ch1 [10,0],[-1].
        assert_eq!(y.as_slice(), &[2.0, 3.0, 10.0, -1.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool1d::new(1, 4, 2);
        let x = Matrix::from_rows(&[&[1.0, 5.0, 7.0, 2.0]]);
        let _ = p.forward(&x, true, Precision::F32);
        let dx = p.backward(&Matrix::from_rows(&[&[3.0, 4.0]]), Precision::F32);
        assert_eq!(dx.as_slice(), &[0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = dd_tensor::Rng64::new(1);
        let mut p = MaxPool1d::new(2, 8, 3);
        let x = Matrix::randn(2, 16, 0.0, 1.0, &mut rng);
        let y = p.forward(&x, true, Precision::F32);
        let dx = p.backward(&y.clone(), Precision::F32);
        let eps = 1e-3f32;
        let loss = |p: &mut MaxPool1d, x: &Matrix| {
            0.5 * p.forward(x, false, Precision::F32).norm_sq() as f64
        };
        for &(bi, bj) in &[(0usize, 3usize), (1, 10), (0, 15)] {
            let mut xp = x.clone();
            xp.set(bi, bj, x.get(bi, bj) + eps);
            let lp = loss(&mut p, &xp);
            let mut xm = x.clone();
            xm.set(bi, bj, x.get(bi, bj) - eps);
            let lm = loss(&mut p, &xm);
            let num = (lp - lm) / (2.0 * eps as f64);
            let analytic = dx.get(bi, bj) as f64;
            assert!(
                (num - analytic).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{bi},{bj}] numeric {num} analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "larger than signal")]
    fn oversized_pool_panics() {
        let _ = MaxPool1d::new(1, 2, 3);
    }
}
