//! Batch normalization over feature columns.

use super::Layer;
use dd_tensor::{Matrix, Precision};

/// Batch normalization for 2-D activations (one feature per column).
///
/// Training normalizes with batch statistics and maintains exponential
/// running averages; evaluation uses the running averages so single samples
/// normalize consistently.
pub struct BatchNorm1d {
    dim: usize,
    eps: f32,
    momentum: f32,
    gamma: Matrix,
    beta: Matrix,
    g_gamma: Matrix,
    g_beta: Matrix,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Caches for backward.
    cache_xhat: Option<Matrix>,
    cache_inv_std: Vec<f32>,
}

impl BatchNorm1d {
    /// New batch-norm layer over `dim` features.
    pub fn new(dim: usize) -> Self {
        BatchNorm1d {
            dim,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Matrix::full(1, dim, 1.0),
            beta: Matrix::zeros(1, dim),
            g_gamma: Matrix::zeros(1, dim),
            g_beta: Matrix::zeros(1, dim),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            cache_xhat: None,
            cache_inv_std: vec![0.0; dim],
        }
    }

    /// Running mean estimate (for tests / inspection).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance estimate.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm1d {
    fn name(&self) -> &'static str {
        "batchnorm1d"
    }

    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        if !train {
            return self.infer(x, prec);
        }
        assert_eq!(x.cols(), self.dim, "batchnorm width mismatch");
        let n = x.rows();
        assert!(n >= 2, "batchnorm training requires batch size >= 2");
        let means = x.col_means();
        let stds = x.col_stds(&means);
        let vars: Vec<f32> = stds.iter().map(|s| s * s).collect();
        for j in 0..self.dim {
            self.running_mean[j] =
                (1.0 - self.momentum) * self.running_mean[j] + self.momentum * means[j];
            self.running_var[j] =
                (1.0 - self.momentum) * self.running_var[j] + self.momentum * vars[j];
        }

        let inv_std: Vec<f32> = vars.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = x.clone();
        for i in 0..n {
            let row = xhat.row_mut(i);
            for ((v, &m), &is) in row.iter_mut().zip(&means).zip(&inv_std) {
                *v = (*v - m) * is;
            }
        }
        let mut y = xhat.clone();
        for i in 0..n {
            let row = y.row_mut(i);
            for ((v, g), b) in row.iter_mut().zip(self.gamma.as_slice()).zip(self.beta.as_slice()) {
                *v = *v * g + b;
            }
        }
        self.cache_xhat = Some(xhat);
        self.cache_inv_std = inv_std;
        y
    }

    fn infer(&self, x: &Matrix, _prec: Precision) -> Matrix {
        assert_eq!(x.cols(), self.dim, "batchnorm width mismatch");
        let inv_std: Vec<f32> =
            self.running_var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut y = x.clone();
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            for ((v, &m), &is) in row.iter_mut().zip(&self.running_mean).zip(&inv_std) {
                *v = (*v - m) * is;
            }
            for ((v, g), b) in row.iter_mut().zip(self.gamma.as_slice()).zip(self.beta.as_slice()) {
                *v = *v * g + b;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix, _prec: Precision) -> Matrix {
        let Some(xhat) = self.cache_xhat.as_ref() else { unreachable!("backward before forward") };
        let n = grad_out.rows() as f32;
        // dgamma = Σ g⊙xhat, dbeta = Σ g (column-wise).
        let mut dgamma = vec![0f32; self.dim];
        let mut dbeta = vec![0f32; self.dim];
        for i in 0..grad_out.rows() {
            for ((dg, db), (&g, &xh)) in
                dgamma.iter_mut().zip(dbeta.iter_mut()).zip(grad_out.row(i).iter().zip(xhat.row(i)))
            {
                *dg += g * xh;
                *db += g;
            }
        }
        self.g_gamma = Matrix::from_vec(1, self.dim, dgamma.clone());
        self.g_beta = Matrix::from_vec(1, self.dim, dbeta.clone());

        // dx = gamma*inv_std/n * (n*g - dbeta - xhat*dgamma).
        let mut dx = grad_out.clone();
        for i in 0..dx.rows() {
            let xr = xhat.row(i);
            let row = dx.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                let coeff = self.gamma.as_slice()[j] * self.cache_inv_std[j] / n;
                *v = coeff * (n * *v - dbeta[j] - xr[j] * dgamma[j]);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.gamma, &mut self.g_gamma);
        f(&mut self.beta, &mut self.g_beta);
    }

    fn param_count(&self) -> usize {
        2 * self.dim
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.dim, "batchnorm geometry mismatch");
        self.dim
    }

    fn flops(&self, batch: usize, input_dim: usize) -> u64 {
        (8 * batch * input_dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_tensor::Rng64;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = Rng64::new(1);
        let mut bn = BatchNorm1d::new(5);
        let x = Matrix::randn(256, 5, 3.0, 2.0, &mut rng);
        let y = bn.forward(&x, true, Precision::F32);
        let means = y.col_means();
        let stds = y.col_stds(&means);
        for j in 0..5 {
            assert!(means[j].abs() < 1e-4, "mean {}", means[j]);
            assert!((stds[j] - 1.0).abs() < 1e-2, "std {}", stds[j]);
        }
    }

    #[test]
    fn running_stats_converge_to_data_stats() {
        let mut rng = Rng64::new(2);
        let mut bn = BatchNorm1d::new(2);
        for _ in 0..200 {
            let x = Matrix::randn(64, 2, 5.0, 3.0, &mut rng);
            let _ = bn.forward(&x, true, Precision::F32);
        }
        assert!((bn.running_mean()[0] - 5.0).abs() < 0.5);
        assert!((bn.running_var()[0].sqrt() - 3.0).abs() < 0.5);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = Rng64::new(3);
        let mut bn = BatchNorm1d::new(1);
        for _ in 0..100 {
            let x = Matrix::randn(64, 1, 10.0, 1.0, &mut rng);
            let _ = bn.forward(&x, true, Precision::F32);
        }
        // Single sample at the running mean normalizes to ~0.
        let y = bn.forward(&Matrix::full(1, 1, 10.0), false, Precision::F32);
        assert!(y.get(0, 0).abs() < 0.3, "got {}", y.get(0, 0));
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng64::new(4);
        let mut bn = BatchNorm1d::new(3);
        // Non-trivial gamma/beta so their gradients are exercised.
        bn.gamma = Matrix::from_rows(&[&[1.5, 0.5, 2.0]]);
        bn.beta = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let x = Matrix::randn(8, 3, 1.0, 2.0, &mut rng);
        let y = bn.forward(&x, true, Precision::F32);
        let dx = bn.backward(&y.clone(), Precision::F32);

        // Finite differences must be computed through *training* forward
        // (batch statistics), with running stats reset to avoid drift.
        let eps = 1e-3f32;
        let loss = |bn: &mut BatchNorm1d, x: &Matrix| {
            let saved_m = bn.running_mean.clone();
            let saved_v = bn.running_var.clone();
            let y = bn.forward(x, true, Precision::F32);
            bn.running_mean = saved_m;
            bn.running_var = saved_v;
            0.5 * y.norm_sq() as f64
        };
        for &(i, j) in &[(0usize, 0usize), (3, 1), (7, 2)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + eps);
            let lp = loss(&mut bn, &xp);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - eps);
            let lm = loss(&mut bn, &xm);
            let num = (lp - lm) / (2.0 * eps as f64);
            let analytic = dx.get(i, j) as f64;
            assert!(
                (num - analytic).abs() < 5e-2 * (1.0 + num.abs()),
                "dx[{i},{j}] numeric {num} analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch size >= 2")]
    fn single_sample_training_panics() {
        let mut bn = BatchNorm1d::new(2);
        let _ = bn.forward(&Matrix::zeros(1, 2), true, Precision::F32);
    }
}
