//! 1-D convolution over channel-major flattened rows.
//!
//! Genomic and expression-profile workloads (the NT3-style tumor classifier)
//! use 1-D convolutions over a feature axis. A batch row stores a
//! `(channels, length)` signal flattened channel-major:
//! `[c0 t0 .. c0 tL-1, c1 t0 .. , ...]`. The convolution is implemented as
//! im2col followed by one large matmul, which routes the FLOPs through the
//! same precision-emulating kernels as dense layers.

use super::Layer;
use crate::init::Init;
use dd_tensor::{matmul_nt_prec, matmul_prec, matmul_tn_prec, Matrix, Precision, Rng64};

/// 1-D convolution: `in_ch` input channels of length `len`, `out_ch` filters
/// of width `kernel`, stride `stride`, no padding.
pub struct Conv1d {
    in_ch: usize,
    len: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    out_len: usize,
    /// Weights: `(in_ch * kernel) × out_ch`.
    w: Matrix,
    b: Matrix,
    gw: Matrix,
    gb: Matrix,
    /// Cached im2col patches of the last training forward.
    cache_patches: Option<Matrix>,
    cache_batch: usize,
}

impl Conv1d {
    /// New convolution layer. Panics if the geometry is inconsistent.
    pub fn new(
        in_ch: usize,
        len: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        init: Init,
        rng: &mut Rng64,
    ) -> Self {
        assert!(kernel >= 1 && stride >= 1, "kernel and stride must be >= 1");
        assert!(kernel <= len, "kernel {kernel} longer than input {len}");
        let out_len = (len - kernel) / stride + 1;
        Conv1d {
            in_ch,
            len,
            out_ch,
            kernel,
            stride,
            out_len,
            w: init.build(in_ch * kernel, out_ch, rng),
            b: Matrix::zeros(1, out_ch),
            gw: Matrix::zeros(in_ch * kernel, out_ch),
            gb: Matrix::zeros(1, out_ch),
            cache_patches: None,
            cache_batch: 0,
        }
    }

    /// Output signal length per channel.
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// Number of output channels.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Extract im2col patches: `(batch * out_len) × (in_ch * kernel)`.
    fn im2col(&self, x: &Matrix) -> Matrix {
        let batch = x.rows();
        let mut p = Matrix::zeros(batch * self.out_len, self.in_ch * self.kernel);
        for bi in 0..batch {
            let row = x.row(bi);
            for t in 0..self.out_len {
                let dst = p.row_mut(bi * self.out_len + t);
                let start = t * self.stride;
                for c in 0..self.in_ch {
                    let src = &row[c * self.len + start..c * self.len + start + self.kernel];
                    dst[c * self.kernel..(c + 1) * self.kernel].copy_from_slice(src);
                }
            }
        }
        p
    }

    /// Scatter-add patch gradients back to input layout (col2im).
    fn col2im(&self, dp: &Matrix, batch: usize) -> Matrix {
        let mut dx = Matrix::zeros(batch, self.in_ch * self.len);
        for bi in 0..batch {
            for t in 0..self.out_len {
                let src = dp.row(bi * self.out_len + t);
                let start = t * self.stride;
                let dst = dx.row_mut(bi);
                for c in 0..self.in_ch {
                    let base = c * self.len + start;
                    for j in 0..self.kernel {
                        dst[base + j] += src[c * self.kernel + j];
                    }
                }
            }
        }
        dx
    }

    /// Reshape `(batch*out_len) × out_ch` to channel-major rows
    /// `batch × (out_ch*out_len)`.
    fn to_channel_major(&self, y2: &Matrix, batch: usize) -> Matrix {
        let mut y = Matrix::zeros(batch, self.out_ch * self.out_len);
        for bi in 0..batch {
            let dst = y.row_mut(bi);
            for t in 0..self.out_len {
                let src = y2.row(bi * self.out_len + t);
                for (o, &v) in src.iter().enumerate() {
                    dst[o * self.out_len + t] = v;
                }
            }
        }
        y
    }

    /// Inverse of [`Self::to_channel_major`] for gradients.
    fn undo_channel_major(&self, dy: &Matrix, batch: usize) -> Matrix {
        let mut dy2 = Matrix::zeros(batch * self.out_len, self.out_ch);
        for bi in 0..batch {
            let src = dy.row(bi);
            for t in 0..self.out_len {
                let dst = dy2.row_mut(bi * self.out_len + t);
                for (o, d) in dst.iter_mut().enumerate() {
                    *d = src[o * self.out_len + t];
                }
            }
        }
        dy2
    }
}

impl Layer for Conv1d {
    fn name(&self) -> &'static str {
        "conv1d"
    }

    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        if !train {
            return self.infer(x, prec);
        }
        assert_eq!(
            x.cols(),
            self.in_ch * self.len,
            "conv1d input width mismatch: expected {}x{}",
            self.in_ch,
            self.len
        );
        let batch = x.rows();
        let patches = self.im2col(x);
        let mut y2 = matmul_prec(&patches, &self.w, prec);
        y2.add_row_broadcast(self.b.as_slice());
        let y = self.to_channel_major(&y2, batch);
        self.cache_patches = Some(patches);
        self.cache_batch = batch;
        y
    }

    fn infer(&self, x: &Matrix, prec: Precision) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_ch * self.len,
            "conv1d input width mismatch: expected {}x{}",
            self.in_ch,
            self.len
        );
        let batch = x.rows();
        let patches = self.im2col(x);
        let mut y2 = matmul_prec(&patches, &self.w, prec);
        y2.add_row_broadcast(self.b.as_slice());
        self.to_channel_major(&y2, batch)
    }

    fn backward(&mut self, grad_out: &Matrix, prec: Precision) -> Matrix {
        let Some(patches) = self.cache_patches.as_ref() else {
            unreachable!("backward before forward")
        };
        let batch = self.cache_batch;
        assert_eq!(grad_out.cols(), self.out_ch * self.out_len, "conv1d grad width mismatch");
        let dy2 = self.undo_channel_major(grad_out, batch);
        self.gw = matmul_tn_prec(patches, &dy2, prec);
        self.gb = Matrix::from_vec(1, self.out_ch, dy2.sum_rows());
        let dp = matmul_nt_prec(&dy2, &self.w, prec);
        self.col2im(&dp, batch)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.in_ch * self.len, "conv1d geometry mismatch");
        self.out_ch * self.out_len
    }

    fn flops(&self, batch: usize, _input_dim: usize) -> u64 {
        2 * (batch * self.out_len) as u64 * (self.in_ch * self.kernel) as u64 * self.out_ch as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (slow) convolution for cross-checking.
    #[allow(clippy::too_many_arguments)]
    fn naive_conv(
        x: &Matrix,
        w: &Matrix,
        b: &Matrix,
        in_ch: usize,
        len: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
    ) -> Matrix {
        let out_len = (len - kernel) / stride + 1;
        let mut y = Matrix::zeros(x.rows(), out_ch * out_len);
        for bi in 0..x.rows() {
            for o in 0..out_ch {
                for t in 0..out_len {
                    let mut acc = b.get(0, o);
                    for c in 0..in_ch {
                        for j in 0..kernel {
                            acc += x.get(bi, c * len + t * stride + j) * w.get(c * kernel + j, o);
                        }
                    }
                    y.set(bi, o * out_len + t, acc);
                }
            }
        }
        y
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = Rng64::new(1);
        let (in_ch, len, out_ch, kernel, stride) = (3, 17, 5, 4, 2);
        let mut conv = Conv1d::new(in_ch, len, out_ch, kernel, stride, Init::Xavier, &mut rng);
        let x = Matrix::randn(4, in_ch * len, 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, false, Precision::F32);
        let expect = naive_conv(&x, &conv.w, &conv.b, in_ch, len, out_ch, kernel, stride);
        assert!(y.approx_eq(&expect, 1e-4), "conv mismatch");
        assert_eq!(y.cols(), out_ch * conv.out_len());
    }

    #[test]
    fn stride_one_full_coverage() {
        let mut rng = Rng64::new(2);
        let mut conv = Conv1d::new(1, 8, 1, 3, 1, Init::Xavier, &mut rng);
        assert_eq!(conv.out_len(), 6);
        let x = Matrix::randn(2, 8, 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, false, Precision::F32);
        assert_eq!(y.shape(), (2, 6));
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut rng = Rng64::new(3);
        let (in_ch, len, out_ch, kernel, stride) = (2, 9, 3, 3, 2);
        let mut conv = Conv1d::new(in_ch, len, out_ch, kernel, stride, Init::Xavier, &mut rng);
        let x = Matrix::randn(3, in_ch * len, 0.0, 1.0, &mut rng);

        let y = conv.forward(&x, true, Precision::F32);
        let grad_in = conv.backward(&y.clone(), Precision::F32); // L = 0.5||y||²

        let loss = |conv: &mut Conv1d, x: &Matrix| {
            let y = conv.forward(x, false, Precision::F32);
            0.5 * y.norm_sq() as f64
        };
        let eps = 1e-3f32;

        // Weight gradient at a few positions.
        for &(i, j) in &[(0usize, 0usize), (3, 2), (5, 1)] {
            let orig = conv.w.get(i, j);
            conv.w.set(i, j, orig + eps);
            let lp = loss(&mut conv, &x);
            conv.w.set(i, j, orig - eps);
            let lm = loss(&mut conv, &x);
            conv.w.set(i, j, orig);
            let num = (lp - lm) / (2.0 * eps as f64);
            let analytic = conv.gw.get(i, j) as f64;
            assert!(
                (num - analytic).abs() < 2e-2 * (1.0 + num.abs()),
                "gw[{i},{j}] numeric {num} analytic {analytic}"
            );
        }
        // Input gradient at a position covered by overlapping windows.
        let (bi, bj) = (1, 4);
        let mut xp = x.clone();
        xp.set(bi, bj, x.get(bi, bj) + eps);
        let lp = loss(&mut conv, &xp);
        let mut xm = x.clone();
        xm.set(bi, bj, x.get(bi, bj) - eps);
        let lm = loss(&mut conv, &xm);
        let num = (lp - lm) / (2.0 * eps as f64);
        let analytic = grad_in.get(bi, bj) as f64;
        assert!(
            (num - analytic).abs() < 2e-2 * (1.0 + num.abs()),
            "dx numeric {num} analytic {analytic}"
        );
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let mut rng = Rng64::new(4);
        let mut conv = Conv1d::new(1, 6, 2, 2, 1, Init::Zeros, &mut rng);
        let x = Matrix::randn(2, 6, 0.0, 1.0, &mut rng);
        conv.forward(&x, true, Precision::F32);
        // Unit output gradient: db[o] = batch * out_len.
        let g = Matrix::full(2, 2 * conv.out_len(), 1.0);
        conv.backward(&g, Precision::F32);
        assert_eq!(conv.gb.as_slice(), &[10.0, 10.0]); // 2 batch × 5 positions
    }

    #[test]
    #[should_panic(expected = "longer than input")]
    fn kernel_too_long_panics() {
        let mut rng = Rng64::new(5);
        let _ = Conv1d::new(1, 3, 1, 5, 1, Init::Xavier, &mut rng);
    }

    #[test]
    fn param_count() {
        let mut rng = Rng64::new(6);
        let conv = Conv1d::new(4, 20, 8, 5, 1, Init::He, &mut rng);
        assert_eq!(conv.param_count(), 4 * 5 * 8 + 8);
    }
}
