//! Elementwise activation functions as layers.

use super::Layer;
use dd_tensor::{sigmoid, Matrix, Precision};
use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.01 on the negative side.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Identity (useful when a spec slot must hold "no activation").
    Identity,
}

impl Activation {
    /// All activations, for search-space construction.
    pub const ALL: [Activation; 6] = [
        Activation::Relu,
        Activation::LeakyRelu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Gelu,
        Activation::Identity,
    ];

    /// Apply the function to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => sigmoid(x),
            Activation::Gelu => {
                // tanh approximation of GELU
                let c = 0.797_884_6; // sqrt(2/pi)
                0.5 * x * (1.0 + (c * (x + 0.044_715 * x * x * x)).tanh())
            }
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *input* `x` and the cached
    /// *output* `y` — whichever is cheaper for each function.
    #[inline]
    pub fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Gelu => {
                let c = 0.797_884_6f32;
                let inner = c * (x + 0.044_715 * x * x * x);
                let t = inner.tanh();
                let sech2 = 1.0 - t * t;
                0.5 * (1.0 + t) + 0.5 * x * sech2 * c * (1.0 + 3.0 * 0.044_715 * x * x)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Name used in specs and tables.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Gelu => "gelu",
            Activation::Identity => "identity",
        }
    }
}

impl std::str::FromStr for Activation {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Activation::ALL
            .iter()
            .copied()
            .find(|a| a.name() == s)
            .ok_or_else(|| format!("unknown activation '{s}'"))
    }
}

/// Layer wrapper applying an [`Activation`] elementwise.
pub struct ActivationLayer {
    kind: Activation,
    cache_x: Option<Matrix>,
    cache_y: Option<Matrix>,
}

impl ActivationLayer {
    /// Wrap an activation function as a layer.
    pub fn new(kind: Activation) -> Self {
        ActivationLayer { kind, cache_x: None, cache_y: None }
    }

    /// Which activation this layer applies.
    pub fn kind(&self) -> Activation {
        self.kind
    }
}

impl Layer for ActivationLayer {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        let y = self.infer(x, prec);
        if train {
            self.cache_x = Some(x.clone());
            self.cache_y = Some(y.clone());
        }
        y
    }

    fn infer(&self, x: &Matrix, _prec: Precision) -> Matrix {
        let kind = self.kind;
        x.map(move |v| kind.apply(v))
    }

    fn backward(&mut self, grad_out: &Matrix, _prec: Precision) -> Matrix {
        let (Some(x), Some(y)) = (self.cache_x.as_ref(), self.cache_y.as_ref()) else {
            unreachable!("backward before forward")
        };
        let kind = self.kind;
        let mut grad = grad_out.clone();
        for i in 0..grad.rows() {
            let (xr, yr) = (x.row(i), y.row(i));
            let gr = grad.row_mut(i);
            for ((g, &xv), &yv) in gr.iter_mut().zip(xr).zip(yr) {
                *g *= kind.derivative(xv, yv);
            }
        }
        grad
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn param_count(&self) -> usize {
        0
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }

    fn flops(&self, batch: usize, input_dim: usize) -> u64 {
        (batch * input_dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_leaky_values() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::LeakyRelu.apply(-2.0), -0.02);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f64;
        for act in Activation::ALL {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                let y = act.apply(x);
                let d = act.derivative(x, y) as f64;
                let num = (act.apply(x + eps as f32) as f64 - act.apply(x - eps as f32) as f64)
                    / (2.0 * eps);
                assert!((d - num).abs() < 1e-2, "{:?} at {x}: analytic {d} vs numeric {num}", act);
            }
        }
    }

    #[test]
    fn gelu_known_points() {
        // GELU(0) = 0; GELU is ~x for large positive x, ~0 for large negative.
        assert_eq!(Activation::Gelu.apply(0.0), 0.0);
        assert!((Activation::Gelu.apply(10.0) - 10.0).abs() < 1e-3);
        assert!(Activation::Gelu.apply(-10.0).abs() < 1e-3);
    }

    #[test]
    fn layer_backward_scales_gradient() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let x = Matrix::from_rows(&[&[-1.0, 2.0], &[3.0, -4.0]]);
        let y = layer.forward(&x, true, Precision::F32);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 3.0, 0.0]);
        let g = layer.backward(&Matrix::full(2, 2, 5.0), Precision::F32);
        assert_eq!(g.as_slice(), &[0.0, 5.0, 5.0, 0.0]);
    }

    #[test]
    fn parse_roundtrip() {
        for a in Activation::ALL {
            assert_eq!(a.name().parse::<Activation>().unwrap(), a);
        }
        assert!("swish".parse::<Activation>().is_err());
    }

    #[test]
    fn stateless_between_eval_calls() {
        let mut layer = ActivationLayer::new(Activation::Tanh);
        let x = Matrix::full(1, 1, 0.5);
        // Eval-mode forward must not require or disturb caches.
        let y1 = layer.forward(&x, false, Precision::F32);
        let y2 = layer.forward(&x, false, Precision::F32);
        assert_eq!(y1, y2);
    }
}
