//! Inverted dropout.

use super::Layer;
use dd_tensor::{Matrix, Precision, Rng64};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation mode
/// is a plain identity.
pub struct Dropout {
    p: f32,
    rng: Rng64,
    mask: Option<Matrix>,
}

impl Dropout {
    /// New dropout layer. `p` is the drop probability in `[0, 1)`.
    pub fn new(p: f32, rng: Rng64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1), got {p}");
        Dropout { p, rng, mask: None }
    }

    /// The configured drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        if !train || self.p == 0.0 {
            self.mask = None;
            return self.infer(x, prec);
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Matrix::zeros(x.rows(), x.cols());
        for v in mask.as_mut_slice() {
            *v = if self.rng.bernoulli(keep as f64) { scale } else { 0.0 };
        }
        let y = x.zip_map(&mask, |a, m| a * m);
        self.mask = Some(mask);
        y
    }

    fn infer(&self, x: &Matrix, _prec: Precision) -> Matrix {
        x.clone()
    }

    fn backward(&mut self, grad_out: &Matrix, _prec: Precision) -> Matrix {
        match &self.mask {
            Some(mask) => grad_out.zip_map(mask, |g, m| g * m),
            None => grad_out.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}

    fn param_count(&self) -> usize {
        0
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }

    fn flops(&self, batch: usize, input_dim: usize) -> u64 {
        (batch * input_dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, Rng64::new(1));
        let x = Matrix::full(4, 4, 2.0);
        let y = d.forward(&x, false, Precision::F32);
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, Rng64::new(2));
        let x = Matrix::full(200, 200, 1.0);
        let y = d.forward(&x, true, Precision::F32);
        // Inverted dropout: E[y] = E[x].
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
        // Roughly p of entries are zero.
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count() as f32 / y.len() as f32;
        assert!((zeros - 0.3).abs() < 0.02, "zero fraction {zeros}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, Rng64::new(3));
        let x = Matrix::full(8, 8, 1.0);
        let y = d.forward(&x, true, Precision::F32);
        let g = d.backward(&Matrix::full(8, 8, 1.0), Precision::F32);
        // Gradient flows exactly where the forward pass let values through.
        for (yy, gg) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yy == 0.0, *gg == 0.0);
        }
    }

    #[test]
    fn p_zero_is_noop_even_in_train() {
        let mut d = Dropout::new(0.0, Rng64::new(4));
        let x = Matrix::full(3, 3, 7.0);
        assert_eq!(d.forward(&x, true, Precision::F32), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn p_one_rejected() {
        let _ = Dropout::new(1.0, Rng64::new(5));
    }
}
