//! Fully connected layer — the workhorse of every driver workload.

use super::Layer;
use crate::init::Init;
use dd_tensor::{matmul_nt_prec, matmul_prec, matmul_tn_prec, Matrix, Precision, Rng64};

/// `y = x · W + b` with `W: in_dim × out_dim`, `b: 1 × out_dim`.
pub struct Dense {
    w: Matrix,
    b: Matrix,
    gw: Matrix,
    gb: Matrix,
    /// Cached input of the last forward pass (needed for dW = xᵀ · δ).
    cache_x: Option<Matrix>,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// New dense layer with the given initializer for weights; biases start
    /// at zero.
    pub fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut Rng64) -> Self {
        Dense {
            w: init.build(in_dim, out_dim, rng),
            b: Matrix::zeros(1, out_dim),
            gw: Matrix::zeros(in_dim, out_dim),
            gb: Matrix::zeros(1, out_dim),
            cache_x: None,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Borrow the weight matrix (for attribution / inspection).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Borrow the bias row.
    pub fn bias(&self) -> &Matrix {
        &self.b
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, x: &Matrix, train: bool, prec: Precision) -> Matrix {
        if train {
            self.cache_x = Some(x.clone());
        }
        self.infer(x, prec)
    }

    fn infer(&self, x: &Matrix, prec: Precision) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "dense input width mismatch");
        let mut y = matmul_prec(x, &self.w, prec);
        y.add_row_broadcast(self.b.as_slice());
        y
    }

    fn backward(&mut self, grad_out: &Matrix, prec: Precision) -> Matrix {
        let Some(x) = self.cache_x.as_ref() else {
            unreachable!("backward called before forward(train=true)")
        };
        assert_eq!(grad_out.cols(), self.out_dim, "dense grad width mismatch");
        assert_eq!(grad_out.rows(), x.rows(), "dense grad batch mismatch");
        // dW = xᵀ · δ ; db = column sums of δ ; dx = δ · Wᵀ.
        self.gw = matmul_tn_prec(x, grad_out, prec);
        self.gb = Matrix::from_vec(1, self.out_dim, grad_out.sum_rows());
        matmul_nt_prec(grad_out, &self.w, prec)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.in_dim, "dense layer expects width {}", self.in_dim);
        self.out_dim
    }

    fn flops(&self, batch: usize, _input_dim: usize) -> u64 {
        // 2·m·k·n multiply-adds plus the bias add.
        2 * batch as u64 * self.in_dim as u64 * self.out_dim as u64
            + batch as u64 * self.out_dim as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;

    fn finite_diff_check(in_dim: usize, out_dim: usize, batch: usize, seed: u64) {
        // Numerical gradient check of dW, db and dx through an MSE-style
        // scalar loss L = 0.5 * ||y||².
        let mut rng = Rng64::new(seed);
        let mut layer = Dense::new(in_dim, out_dim, Init::Xavier, &mut rng);
        let x = Matrix::randn(batch, in_dim, 0.0, 1.0, &mut rng);

        let y = layer.forward(&x, true, Precision::F32);
        let grad_out = y.clone(); // dL/dy = y for L = 0.5||y||²
        let grad_in = layer.backward(&grad_out, Precision::F32);

        let loss = |layer: &mut Dense, x: &Matrix| -> f64 {
            let y = layer.forward(x, false, Precision::F32);
            0.5 * y.norm_sq() as f64
        };

        let eps = 1e-3f32;
        // Check a handful of weight entries.
        for &(i, j) in &[(0usize, 0usize), (in_dim - 1, out_dim - 1), (in_dim / 2, out_dim / 2)] {
            let orig = layer.weights().get(i, j);
            layer.visit_params(&mut |p, _| {
                if p.shape() == (in_dim, out_dim) {
                    p.set(i, j, orig + eps);
                }
            });
            let lp = loss(&mut layer, &x);
            layer.visit_params(&mut |p, _| {
                if p.shape() == (in_dim, out_dim) {
                    p.set(i, j, orig - eps);
                }
            });
            let lm = loss(&mut layer, &x);
            layer.visit_params(&mut |p, _| {
                if p.shape() == (in_dim, out_dim) {
                    p.set(i, j, orig);
                }
            });
            let num = (lp - lm) / (2.0 * eps as f64);
            let mut analytic = 0f32;
            layer.visit_params(&mut |p, g| {
                if p.shape() == (in_dim, out_dim) {
                    analytic = g.get(i, j);
                }
            });
            assert!(
                (num - analytic as f64).abs() < 2e-2 * (1.0 + num.abs()),
                "dW[{i},{j}]: numeric {num} vs analytic {analytic}"
            );
        }
        // Check one input gradient entry.
        let (bi, bj) = (batch / 2, in_dim / 2);
        let mut xp = x.clone();
        xp.set(bi, bj, x.get(bi, bj) + eps);
        let lp = loss(&mut layer, &xp);
        let mut xm = x.clone();
        xm.set(bi, bj, x.get(bi, bj) - eps);
        let lm = loss(&mut layer, &xm);
        let num = (lp - lm) / (2.0 * eps as f64);
        let analytic = grad_in.get(bi, bj) as f64;
        assert!(
            (num - analytic).abs() < 2e-2 * (1.0 + num.abs()),
            "dx[{bi},{bj}]: numeric {num} vs analytic {analytic}"
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(6, 4, 5, 1);
        finite_diff_check(3, 8, 2, 2);
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Rng64::new(3);
        let mut layer = Dense::new(4, 2, Init::Zeros, &mut rng);
        // Zero weights: output is the bias broadcast.
        layer.visit_params(&mut |p, _| {
            if p.shape() == (1, 2) {
                p.set(0, 0, 1.5);
                p.set(0, 1, -0.5);
            }
        });
        let x = Matrix::randn(3, 4, 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, false, Precision::F32);
        assert_eq!(y.shape(), (3, 2));
        for i in 0..3 {
            assert_eq!(y.row(i), &[1.5, -0.5]);
        }
    }

    #[test]
    fn bias_gradient_is_row_sum() {
        let mut rng = Rng64::new(4);
        let mut layer = Dense::new(3, 2, Init::Xavier, &mut rng);
        let x = Matrix::randn(4, 3, 0.0, 1.0, &mut rng);
        layer.forward(&x, true, Precision::F32);
        let grad = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 2.0], &[1.0, 0.0], &[1.0, 0.0]]);
        layer.backward(&grad, Precision::F32);
        let mut gb = Matrix::zeros(0, 0);
        layer.visit_params(&mut |p, g| {
            if p.shape() == (1, 2) {
                gb = g.clone();
            }
        });
        assert_eq!(gb.as_slice(), &[4.0, 2.0]);
    }

    #[test]
    fn param_count_and_output_dim() {
        let mut rng = Rng64::new(5);
        let layer = Dense::new(10, 7, Init::He, &mut rng);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
        assert_eq!(layer.output_dim(10), 7);
        assert!(layer.flops(32, 10) >= 2 * 32 * 10 * 7);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let mut rng = Rng64::new(6);
        let mut layer = Dense::new(4, 2, Init::He, &mut rng);
        let x = Matrix::zeros(1, 5);
        let _ = layer.forward(&x, false, Precision::F32);
    }

    #[test]
    fn low_precision_forward_close_to_f32() {
        let mut rng = Rng64::new(7);
        let mut layer = Dense::new(64, 32, Init::Xavier, &mut rng);
        let x = Matrix::randn(16, 64, 0.0, 1.0, &mut rng);
        let y32 = layer.forward(&x, false, Precision::F32);
        let yb = layer.forward(&x, false, Precision::Bf16);
        let diff = y32.zip_map(&yb, |a, b| (a - b).abs()).max_abs();
        assert!(diff > 0.0 && diff < 0.2, "bf16 diff {diff}");
    }
}
