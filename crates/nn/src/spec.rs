//! Serializable model descriptions.
//!
//! A [`ModelSpec`] is the unit of exchange between the hyperparameter search
//! engine (which mutates specs), the model-parallel partitioner (which splits
//! specs across simulated nodes) and the trainer (which builds and fits
//! them). Building is deterministic given a seed.

use crate::init::Init;
use crate::layers::{
    Activation, ActivationLayer, BatchNorm1d, Conv1d, Dense, Dropout, Layer, MaxPool1d,
};
use crate::model::Sequential;
use dd_tensor::{Precision, Rng64};
use serde::{Deserialize, Serialize};

/// Shape of the data flowing between layers while a spec is validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputShape {
    /// A flat feature vector of the given width.
    Flat(usize),
    /// A multi-channel 1-D signal (flattened channel-major into rows).
    Signal {
        /// Number of channels.
        channels: usize,
        /// Samples per channel.
        len: usize,
    },
}

impl InputShape {
    /// Total row width.
    pub fn width(self) -> usize {
        match self {
            InputShape::Flat(d) => d,
            InputShape::Signal { channels, len } => channels * len,
        }
    }
}

/// One layer in a [`ModelSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully connected layer to `out` units. Signal shapes flatten first.
    Dense {
        /// Output width.
        out: usize,
        /// Weight initializer.
        init: Init,
    },
    /// Elementwise activation.
    Activation(Activation),
    /// Inverted dropout with drop probability `p`.
    Dropout {
        /// Drop probability.
        p: f32,
    },
    /// 1-D convolution (requires a Signal shape).
    Conv1d {
        /// Number of filters.
        out_ch: usize,
        /// Filter width.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Weight initializer.
        init: Init,
    },
    /// 1-D max pooling (requires a Signal shape).
    MaxPool1d {
        /// Window length (stride = window).
        pool: usize,
    },
    /// Batch normalization over the current width.
    BatchNorm,
    /// Layer normalization over the current width.
    LayerNorm,
    /// Residual block `y = x + f(x)`: the inner stack must preserve width.
    Residual(Vec<LayerSpec>),
}

/// Why a [`ModelSpec`] failed validation.
///
/// Every variant carries the index of the offending layer so search engines
/// and partitioners can point mutation/repair logic at it directly instead
/// of parsing a message string.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The input shape has zero width.
    EmptyInput,
    /// A dense layer declares zero output width.
    ZeroWidthDense {
        /// Offending layer index.
        layer: usize,
    },
    /// Dropout probability outside `[0, 1)`.
    BadDropout {
        /// Offending layer index.
        layer: usize,
        /// The rejected probability.
        p: f32,
    },
    /// Conv kernel or stride of zero.
    ZeroConvParam {
        /// Offending layer index.
        layer: usize,
    },
    /// Conv kernel longer than the incoming signal.
    KernelExceedsSignal {
        /// Offending layer index.
        layer: usize,
        /// Kernel width.
        kernel: usize,
        /// Incoming signal length.
        len: usize,
    },
    /// Conv declares zero output channels.
    ZeroConvChannels {
        /// Offending layer index.
        layer: usize,
    },
    /// A conv/pool layer applied to a flat (non-Signal) shape.
    NeedsSignal {
        /// Offending layer index.
        layer: usize,
        /// The operation that needed a signal (`conv1d` / `maxpool1d`).
        op: &'static str,
    },
    /// Pool window invalid for the incoming signal length.
    BadPool {
        /// Offending layer index.
        layer: usize,
        /// Pool window.
        pool: usize,
        /// Incoming signal length.
        len: usize,
    },
    /// A residual branch changes width.
    ResidualWidthChange {
        /// Offending layer index.
        layer: usize,
        /// Width entering the branch.
        from: usize,
        /// Width leaving the branch.
        to: usize,
    },
    /// An error inside a residual branch, tagged with the outer layer index.
    InResidual {
        /// Index of the residual layer in the outer stack.
        layer: usize,
        /// The inner failure.
        source: Box<SpecError>,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyInput => write!(f, "input width must be positive"),
            SpecError::ZeroWidthDense { layer } => {
                write!(f, "layer {layer}: dense output width 0")
            }
            SpecError::BadDropout { layer, p } => {
                write!(f, "layer {layer}: dropout p {p} outside [0,1)")
            }
            SpecError::ZeroConvParam { layer } => {
                write!(f, "layer {layer}: conv kernel/stride must be >= 1")
            }
            SpecError::KernelExceedsSignal { layer, kernel, len } => {
                write!(f, "layer {layer}: conv kernel {kernel} exceeds signal length {len}")
            }
            SpecError::ZeroConvChannels { layer } => {
                write!(f, "layer {layer}: conv needs out_ch >= 1")
            }
            SpecError::NeedsSignal { layer, op } => {
                write!(f, "layer {layer}: {op} requires a Signal shape")
            }
            SpecError::BadPool { layer, pool, len } => {
                write!(f, "layer {layer}: pool {pool} invalid for signal length {len}")
            }
            SpecError::ResidualWidthChange { layer, from, to } => {
                write!(f, "layer {layer}: residual branch changes width {from} -> {to}")
            }
            SpecError::InResidual { layer, source } => {
                write!(f, "layer {layer} (residual): {source}")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::InResidual { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// A validated, buildable network description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Shape of one input row.
    pub input: InputShape,
    /// Layer stack, applied in order.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// New empty spec for the given input shape.
    pub fn new(input: InputShape) -> Self {
        ModelSpec { input, layers: Vec::new() }
    }

    /// Convenience: an MLP `input → hidden... → out` with the given
    /// activation after each hidden layer.
    pub fn mlp(input_dim: usize, hidden: &[usize], out: usize, act: Activation) -> Self {
        let mut spec = ModelSpec::new(InputShape::Flat(input_dim));
        for &h in hidden {
            spec.layers.push(LayerSpec::Dense { out: h, init: Init::He });
            spec.layers.push(LayerSpec::Activation(act));
        }
        spec.layers.push(LayerSpec::Dense { out, init: Init::Xavier });
        spec
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: LayerSpec) -> Self {
        self.layers.push(layer);
        self
    }

    /// Walk the stack and return the output shape, or an error describing
    /// the first inconsistency.
    pub fn validate(&self) -> Result<InputShape, SpecError> {
        let mut shape = self.input;
        if shape.width() == 0 {
            return Err(SpecError::EmptyInput);
        }
        for (i, layer) in self.layers.iter().enumerate() {
            shape = match *layer {
                LayerSpec::Dense { out, .. } => {
                    if out == 0 {
                        return Err(SpecError::ZeroWidthDense { layer: i });
                    }
                    InputShape::Flat(out)
                }
                LayerSpec::Activation(_) | LayerSpec::BatchNorm | LayerSpec::LayerNorm => shape,
                LayerSpec::Dropout { p } => {
                    if !(0.0..1.0).contains(&p) {
                        return Err(SpecError::BadDropout { layer: i, p });
                    }
                    shape
                }
                LayerSpec::Conv1d { out_ch, kernel, stride, .. } => match shape {
                    InputShape::Signal { len, .. } => {
                        if kernel == 0 || stride == 0 {
                            return Err(SpecError::ZeroConvParam { layer: i });
                        }
                        if kernel > len {
                            return Err(SpecError::KernelExceedsSignal { layer: i, kernel, len });
                        }
                        if out_ch == 0 {
                            return Err(SpecError::ZeroConvChannels { layer: i });
                        }
                        InputShape::Signal { channels: out_ch, len: (len - kernel) / stride + 1 }
                    }
                    InputShape::Flat(_) => {
                        return Err(SpecError::NeedsSignal { layer: i, op: "conv1d" })
                    }
                },
                LayerSpec::MaxPool1d { pool } => match shape {
                    InputShape::Signal { channels, len } => {
                        if pool == 0 || pool > len {
                            return Err(SpecError::BadPool { layer: i, pool, len });
                        }
                        InputShape::Signal { channels, len: len.div_ceil(pool) }
                    }
                    InputShape::Flat(_) => {
                        return Err(SpecError::NeedsSignal { layer: i, op: "maxpool1d" })
                    }
                },
                LayerSpec::Residual(ref inner) => {
                    let sub = ModelSpec { input: shape, layers: inner.clone() };
                    let out = sub
                        .validate()
                        .map_err(|e| SpecError::InResidual { layer: i, source: Box::new(e) })?;
                    if out.width() != shape.width() {
                        return Err(SpecError::ResidualWidthChange {
                            layer: i,
                            from: shape.width(),
                            to: out.width(),
                        });
                    }
                    shape
                }
            };
        }
        Ok(shape)
    }

    /// Output row width after the full stack (validated).
    pub fn output_dim(&self) -> Result<usize, SpecError> {
        self.validate().map(InputShape::width)
    }

    /// Exact matmul FLOPs for one pass over `batch` rows.
    ///
    /// Sums `2·m·k·n` over every kernel invocation the built model issues:
    /// one forward multiply per dense/conv layer, and — when `train` — the
    /// backward `dW = xᵀ·δ` and `dx = δ·Wᵀ` multiplies, which share the same
    /// `m·k·n` product (hence a flat ×3). This mirrors the counting that
    /// `dd-tensor`'s kernels report to `dd-obs` (`flops_total`), so an
    /// instrumented run over `s` batches of this size ends with
    /// `flops_total == s × matmul_flops(batch, true)` exactly. Bias adds,
    /// activations, norms, pooling and dropout use no matmul kernel and
    /// contribute nothing here (or to the counter).
    pub fn matmul_flops(&self, batch: usize, train: bool) -> Result<u64, SpecError> {
        self.validate()?;
        let factor: u64 = if train { 3 } else { 1 };
        let mut shape = self.input;
        let mut total: u64 = 0;
        for layer in &self.layers {
            match *layer {
                LayerSpec::Dense { out, .. } => {
                    total += factor * 2 * batch as u64 * shape.width() as u64 * out as u64;
                    shape = InputShape::Flat(out);
                }
                LayerSpec::Conv1d { out_ch, kernel, stride, .. } => {
                    let InputShape::Signal { channels, len } = shape else {
                        unreachable!("validated above");
                    };
                    let out_len = (len - kernel) / stride + 1;
                    total += factor
                        * 2
                        * (batch * out_len) as u64
                        * (channels * kernel) as u64
                        * out_ch as u64;
                    shape = InputShape::Signal { channels: out_ch, len: out_len };
                }
                LayerSpec::MaxPool1d { pool } => {
                    let InputShape::Signal { channels, len } = shape else {
                        unreachable!("validated above");
                    };
                    shape = InputShape::Signal { channels, len: len.div_ceil(pool) };
                }
                LayerSpec::Residual(ref inner) => {
                    let sub = ModelSpec { input: shape, layers: inner.clone() };
                    total += sub.matmul_flops(batch, train)?;
                }
                LayerSpec::Activation(_)
                | LayerSpec::Dropout { .. }
                | LayerSpec::BatchNorm
                | LayerSpec::LayerNorm => {}
            }
        }
        Ok(total)
    }

    /// Build the runnable model. Weight init and dropout masks derive from
    /// `seed`, so builds are reproducible.
    pub fn build(&self, seed: u64, precision: Precision) -> Result<Sequential, SpecError> {
        self.validate()?;
        let rng = Rng64::new(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(self.layers.len());
        let mut shape = self.input;
        for (i, spec) in self.layers.iter().enumerate() {
            match *spec {
                LayerSpec::Dense { out, init } => {
                    let mut r = rng.split(i as u64);
                    layers.push(Box::new(Dense::new(shape.width(), out, init, &mut r)));
                    shape = InputShape::Flat(out);
                }
                LayerSpec::Activation(a) => layers.push(Box::new(ActivationLayer::new(a))),
                LayerSpec::Dropout { p } => {
                    layers.push(Box::new(Dropout::new(p, rng.split(1000 + i as u64))));
                }
                LayerSpec::Conv1d { out_ch, kernel, stride, init } => {
                    if let InputShape::Signal { channels, len } = shape {
                        let mut r = rng.split(i as u64);
                        let conv = Conv1d::new(channels, len, out_ch, kernel, stride, init, &mut r);
                        shape = InputShape::Signal { channels: out_ch, len: conv.out_len() };
                        layers.push(Box::new(conv));
                    } else {
                        unreachable!("validated above");
                    }
                }
                LayerSpec::MaxPool1d { pool } => {
                    if let InputShape::Signal { channels, len } = shape {
                        let mp = MaxPool1d::new(channels, len, pool);
                        shape = InputShape::Signal { channels, len: mp.out_len() };
                        layers.push(Box::new(mp));
                    } else {
                        unreachable!("validated above");
                    }
                }
                LayerSpec::BatchNorm => {
                    layers.push(Box::new(BatchNorm1d::new(shape.width())));
                }
                LayerSpec::LayerNorm => {
                    layers.push(Box::new(crate::layers::LayerNorm::new(shape.width())));
                }
                LayerSpec::Residual(ref inner) => {
                    // Build the branch as a sub-spec with its own derived
                    // seed; validation above guarantees width preservation.
                    let sub = ModelSpec { input: shape, layers: inner.clone() };
                    let sub_model = sub.build(rng.split(2000 + i as u64).next_u64(), precision)?;
                    layers.push(Box::new(crate::layers::Residual::new(sub_model.into_layers())));
                }
            }
        }
        Ok(Sequential::from_layers(layers, self.input.width(), precision))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_spec_shapes() {
        let spec = ModelSpec::mlp(10, &[32, 16], 3, Activation::Relu);
        assert_eq!(spec.output_dim().unwrap(), 3);
        assert_eq!(spec.layers.len(), 5);
    }

    #[test]
    fn conv_pipeline_shapes() {
        let spec = ModelSpec::new(InputShape::Signal { channels: 1, len: 100 })
            .push(LayerSpec::Conv1d { out_ch: 8, kernel: 5, stride: 1, init: Init::He })
            .push(LayerSpec::Activation(Activation::Relu))
            .push(LayerSpec::MaxPool1d { pool: 2 })
            .push(LayerSpec::Dense { out: 4, init: Init::Xavier });
        // conv: 96, pool: 48 → dense over 8*48.
        assert_eq!(spec.output_dim().unwrap(), 4);
    }

    #[test]
    fn matmul_flops_counts_dense_and_conv() {
        // MLP 10 → 32 → 3 on a batch of 4: dense multiplies only.
        let mlp = ModelSpec::mlp(10, &[32], 3, Activation::Relu);
        let fwd = 2 * 4 * (10 * 32 + 32 * 3) as u64;
        assert_eq!(mlp.matmul_flops(4, false).unwrap(), fwd);
        assert_eq!(mlp.matmul_flops(4, true).unwrap(), 3 * fwd);

        // Conv 1ch×100 → 8ch k5 s1 (out_len 96), pool 2 (48), dense → 4.
        let conv = ModelSpec::new(InputShape::Signal { channels: 1, len: 100 })
            .push(LayerSpec::Conv1d { out_ch: 8, kernel: 5, stride: 1, init: Init::He })
            .push(LayerSpec::Activation(Activation::Relu))
            .push(LayerSpec::MaxPool1d { pool: 2 })
            .push(LayerSpec::Dense { out: 4, init: Init::Xavier });
        let conv_fwd = 2 * (2 * 96) as u64 * 5 * 8 + 2 * 2 * (8 * 48) as u64 * 4;
        assert_eq!(conv.matmul_flops(2, false).unwrap(), conv_fwd);
        assert_eq!(conv.matmul_flops(2, true).unwrap(), 3 * conv_fwd);

        // Residual branches count like their inner stack.
        let res = ModelSpec::new(InputShape::Flat(8))
            .push(LayerSpec::Residual(vec![LayerSpec::Dense { out: 8, init: Init::Xavier }]));
        assert_eq!(res.matmul_flops(1, false).unwrap(), 2 * 8 * 8);
    }

    #[test]
    fn conv_on_flat_rejected() {
        let spec = ModelSpec::new(InputShape::Flat(10)).push(LayerSpec::Conv1d {
            out_ch: 2,
            kernel: 3,
            stride: 1,
            init: Init::He,
        });
        let err = spec.validate().unwrap_err();
        assert_eq!(err, SpecError::NeedsSignal { layer: 0, op: "conv1d" });
        assert!(err.to_string().contains("Signal"), "{err}");
    }

    #[test]
    fn invalid_dropout_rejected() {
        let spec = ModelSpec::new(InputShape::Flat(4)).push(LayerSpec::Dropout { p: 1.5 });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn kernel_longer_than_signal_rejected() {
        let spec = ModelSpec::new(InputShape::Signal { channels: 1, len: 4 })
            .push(LayerSpec::Conv1d { out_ch: 2, kernel: 9, stride: 1, init: Init::He });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn build_is_deterministic() {
        let spec = ModelSpec::mlp(6, &[8], 2, Activation::Tanh);
        let mut a = spec.build(42, Precision::F32).unwrap();
        let mut b = spec.build(42, Precision::F32).unwrap();
        assert_eq!(a.flatten_params(), b.flatten_params());
        let mut c = spec.build(43, Precision::F32).unwrap();
        assert_ne!(a.flatten_params(), c.flatten_params());
    }

    #[test]
    fn residual_spec_builds_and_preserves_width() {
        let spec = ModelSpec::new(InputShape::Flat(8))
            .push(LayerSpec::Residual(vec![
                LayerSpec::Dense { out: 8, init: Init::Xavier },
                LayerSpec::Activation(Activation::Tanh),
                LayerSpec::Dense { out: 8, init: Init::Xavier },
            ]))
            .push(LayerSpec::Dense { out: 2, init: Init::Xavier });
        assert_eq!(spec.output_dim().unwrap(), 2);
        let mut model = spec.build(5, Precision::F32).unwrap();
        let x = dd_tensor::Matrix::zeros(3, 8);
        assert_eq!(model.predict(&x).shape(), (3, 2));
        // Deterministic across builds.
        let mut again = spec.build(5, Precision::F32).unwrap();
        assert_eq!(model.flatten_params(), again.flatten_params());
    }

    #[test]
    fn residual_width_change_rejected() {
        let spec = ModelSpec::new(InputShape::Flat(8))
            .push(LayerSpec::Residual(vec![LayerSpec::Dense { out: 4, init: Init::Xavier }]));
        let err = spec.validate().unwrap_err();
        assert_eq!(err, SpecError::ResidualWidthChange { layer: 0, from: 8, to: 4 });
        assert!(err.to_string().contains("changes width"), "{err}");
    }

    #[test]
    fn residual_serde_roundtrip() {
        let spec = ModelSpec::new(InputShape::Flat(4)).push(LayerSpec::Residual(vec![
            LayerSpec::Dense { out: 4, init: Init::He },
            LayerSpec::Activation(Activation::Gelu),
        ]));
        let json = serde_json::to_string(&spec).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn serde_roundtrip() {
        let spec = ModelSpec::new(InputShape::Signal { channels: 2, len: 30 })
            .push(LayerSpec::Conv1d { out_ch: 4, kernel: 3, stride: 2, init: Init::He })
            .push(LayerSpec::BatchNorm)
            .push(LayerSpec::Dense { out: 5, init: Init::Xavier });
        let json = serde_json::to_string(&spec).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
