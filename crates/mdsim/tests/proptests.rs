//! Property-based tests for the MD engine's physical invariants.

use dd_mdsim::LjSystem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forces_sum_to_zero_any_state(
        side in 2usize..6,
        spacing in 1.0f64..2.0,
        temp in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut sys = LjSystem::lattice(side, spacing, temp, seed);
        let (f, _) = sys.forces();
        let total: [f64; 2] = f.iter().fold([0.0, 0.0], |a, v| [a[0] + v[0], a[1] + v[1]]);
        let scale = f
            .iter()
            .map(|v| v[0].abs() + v[1].abs())
            .fold(0.0f64, f64::max)
            .max(1.0);
        prop_assert!(total[0].abs() < 1e-9 * scale, "Fx {}", total[0]);
        prop_assert!(total[1].abs() < 1e-9 * scale, "Fy {}", total[1]);
    }

    #[test]
    fn positions_wrapped_after_steps(
        side in 2usize..5,
        seed in any::<u64>(),
        steps in 1usize..30,
    ) {
        let mut sys = LjSystem::lattice(side, 1.3, 0.3, seed);
        for _ in 0..steps {
            sys.step(0.003);
        }
        for p in &sys.pos {
            prop_assert!((0.0..sys.box_len).contains(&p[0]));
            prop_assert!((0.0..sys.box_len).contains(&p[1]));
        }
    }

    #[test]
    fn advance_substeps_equals_repeated_steps(
        side in 2usize..4,
        seed in any::<u64>(),
    ) {
        let mut a = LjSystem::lattice(side, 1.4, 0.2, seed);
        let mut b = a.clone();
        a.advance(0.02, 4);
        for _ in 0..4 {
            b.step(0.005);
        }
        prop_assert!(a.rmsd(&b) < 1e-12, "substeps must equal explicit steps");
    }

    #[test]
    fn kinetic_energy_nonnegative_and_temperature_consistent(
        side in 2usize..6,
        temp in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let sys = LjSystem::lattice(side, 1.5, temp, seed);
        prop_assert!(sys.kinetic() >= 0.0);
        let t = sys.temperature();
        prop_assert!((t - sys.kinetic() / sys.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn energy_drift_decreases_with_substeps_on_average(base_seed in any::<u64>()) {
        // Chaotic dynamics make per-trajectory drift comparisons noisy; the
        // property is statistical, so average over derived seeds.
        // A gentle regime (cool, loose lattice, moderate step) where Verlet
        // convergence theory applies cleanly for every seed.
        let drift = |substeps: usize, seed: u64| {
            let mut sys = LjSystem::lattice(4, 1.4, 0.15, seed);
            let e0 = sys.total_energy();
            for _ in 0..20 {
                sys.advance(0.02, substeps);
            }
            (sys.total_energy() - e0).abs()
        };
        let mut coarse = 0.0;
        let mut fine = 0.0;
        for i in 0..8u64 {
            let seed = base_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            coarse += drift(1, seed);
            fine += drift(16, seed);
        }
        prop_assert!(
            fine < coarse,
            "mean fine drift {fine} should be below mean coarse drift {coarse}"
        );
    }
}
