//! A 2-D Lennard-Jones fluid with periodic boundaries and velocity-Verlet
//! integration — the mechanistic simulation the DNN surrogate supervises.
//!
//! Reduced units throughout (ε = σ = m = 1).

use dd_tensor::Rng64;

/// Particle system state.
#[derive(Debug, Clone)]
pub struct LjSystem {
    /// Positions, wrapped into `[0, box_len)²`.
    pub pos: Vec<[f64; 2]>,
    /// Velocities.
    pub vel: Vec<[f64; 2]>,
    /// Periodic box edge length.
    pub box_len: f64,
    /// Interaction cutoff radius.
    pub cutoff: f64,
    /// Cumulative force evaluations (cost metric).
    pub force_evals: u64,
}

impl LjSystem {
    /// Particles on a square lattice with Maxwell-ish random velocities at
    /// the requested temperature.
    pub fn lattice(n_side: usize, spacing: f64, temperature: f64, seed: u64) -> Self {
        assert!(n_side >= 2, "need at least a 2x2 lattice");
        assert!(spacing > 0.5, "lattice spacing too tight for LJ");
        let n = n_side * n_side;
        let box_len = n_side as f64 * spacing;
        let mut rng = Rng64::new(seed);
        let mut pos = Vec::with_capacity(n);
        let mut vel = Vec::with_capacity(n);
        for i in 0..n_side {
            for j in 0..n_side {
                pos.push([(i as f64 + 0.5) * spacing, (j as f64 + 0.5) * spacing]);
                let std = temperature.max(0.0).sqrt();
                vel.push([rng.normal(0.0, std), rng.normal(0.0, std)]);
            }
        }
        // Remove center-of-mass drift.
        let mut com = [0.0, 0.0];
        for v in &vel {
            com[0] += v[0];
            com[1] += v[1];
        }
        let nf = n as f64;
        for v in &mut vel {
            v[0] -= com[0] / nf;
            v[1] -= com[1] / nf;
        }
        LjSystem { pos, vel, box_len, cutoff: 2.5, force_evals: 0 }
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when the system has no particles.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Minimum-image displacement from particle `i` to `j`.
    #[inline]
    fn min_image(&self, i: usize, j: usize) -> [f64; 2] {
        let mut d = [self.pos[j][0] - self.pos[i][0], self.pos[j][1] - self.pos[i][1]];
        for v in &mut d {
            if *v > self.box_len / 2.0 {
                *v -= self.box_len;
            } else if *v < -self.box_len / 2.0 {
                *v += self.box_len;
            }
        }
        d
    }

    /// LJ forces and potential energy with the current cutoff (O(n²) pair
    /// loop; fine at the system sizes the workload uses).
    pub fn forces(&mut self) -> (Vec<[f64; 2]>, f64) {
        self.force_evals += 1;
        let n = self.len();
        let mut f = vec![[0.0f64; 2]; n];
        let mut potential = 0.0;
        let rc2 = self.cutoff * self.cutoff;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.min_image(i, j);
                let r2 = d[0] * d[0] + d[1] * d[1];
                if r2 >= rc2 || r2 == 0.0 {
                    continue;
                }
                let inv_r2 = 1.0 / r2;
                let inv_r6 = inv_r2 * inv_r2 * inv_r2;
                // F = 24ε (2 (σ/r)^12 − (σ/r)^6) / r², along d.
                let coeff = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0);
                for k in 0..2 {
                    f[i][k] -= coeff * d[k];
                    f[j][k] += coeff * d[k];
                }
                potential += 4.0 * inv_r6 * (inv_r6 - 1.0);
            }
        }
        (f, potential)
    }

    /// One velocity-Verlet step of size `dt`. Returns the potential energy
    /// at the new positions.
    pub fn step(&mut self, dt: f64) -> f64 {
        let (f0, _) = self.forces();
        let box_len = self.box_len;
        for ((p, v), a0) in self.pos.iter_mut().zip(&self.vel).zip(&f0) {
            for k in 0..2 {
                p[k] += v[k] * dt + 0.5 * a0[k] * dt * dt;
                p[k] = p[k].rem_euclid(box_len);
            }
        }
        let (f1, potential) = self.forces();
        for ((v, a0), a1) in self.vel.iter_mut().zip(&f0).zip(&f1) {
            for k in 0..2 {
                v[k] += 0.5 * (a0[k] + a1[k]) * dt;
            }
        }
        potential
    }

    /// Advance a macro-step of total time `dt` using `substeps` equal
    /// Verlet steps — the resolution knob the surrogate controls.
    pub fn advance(&mut self, dt: f64, substeps: usize) {
        assert!(substeps >= 1, "need at least one substep");
        let h = dt / substeps as f64;
        for _ in 0..substeps {
            self.step(h);
        }
    }

    /// Kinetic energy.
    pub fn kinetic(&self) -> f64 {
        self.vel.iter().map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1])).sum()
    }

    /// Instantaneous temperature (2-D: Ek per degree of freedom).
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.kinetic() / self.len() as f64
    }

    /// Total energy (kinetic + potential at current positions).
    pub fn total_energy(&mut self) -> f64 {
        let (_, potential) = self.forces();
        self.force_evals -= 1; // diagnostic call, not integration cost
        self.kinetic() + potential
    }

    /// Largest force magnitude currently acting (diagnostic feature for the
    /// surrogate: large forces mean stiff dynamics needing fine steps).
    pub fn max_force(&mut self) -> f64 {
        let (f, _) = self.forces();
        self.force_evals -= 1;
        f.iter().map(|v| (v[0] * v[0] + v[1] * v[1]).sqrt()).fold(0.0, f64::max)
    }

    /// RMS displacement between this system and another with identical
    /// particle identities (minimum-image metric).
    pub fn rmsd(&self, other: &LjSystem) -> f64 {
        assert_eq!(self.len(), other.len(), "system size mismatch");
        let mut acc = 0.0;
        for (a, b) in self.pos.iter().zip(&other.pos) {
            let mut d = [b[0] - a[0], b[1] - a[1]];
            for v in &mut d {
                if *v > self.box_len / 2.0 {
                    *v -= self.box_len;
                } else if *v < -self.box_len / 2.0 {
                    *v += self.box_len;
                }
            }
            acc += d[0] * d[0] + d[1] * d[1];
        }
        (acc / self.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LjSystem {
        LjSystem::lattice(4, 1.2, 0.3, 1)
    }

    #[test]
    fn lattice_setup() {
        let s = small();
        assert_eq!(s.len(), 16);
        assert!((s.box_len - 4.8).abs() < 1e-12);
        // COM velocity removed.
        let com: [f64; 2] = s.vel.iter().fold([0.0, 0.0], |a, v| [a[0] + v[0], a[1] + v[1]]);
        assert!(com[0].abs() < 1e-10 && com[1].abs() < 1e-10);
    }

    #[test]
    fn forces_are_newtonian() {
        let mut s = small();
        let (f, _) = s.forces();
        let total: [f64; 2] = f.iter().fold([0.0, 0.0], |a, v| [a[0] + v[0], a[1] + v[1]]);
        assert!(total[0].abs() < 1e-9 && total[1].abs() < 1e-9, "forces must sum to zero");
    }

    #[test]
    fn energy_conserved_with_small_steps() {
        let mut s = small();
        let e0 = s.total_energy();
        for _ in 0..200 {
            s.step(0.001);
        }
        let e1 = s.total_energy();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 0.01, "energy drift {drift} (e0={e0}, e1={e1})");
    }

    #[test]
    fn large_steps_drift_more() {
        let drift_for = |substeps: usize| {
            let mut s = small();
            let e0 = s.total_energy();
            for _ in 0..50 {
                s.advance(0.05, substeps);
            }
            (s.total_energy() - e0).abs()
        };
        let coarse = drift_for(1);
        let fine = drift_for(10);
        assert!(fine < coarse, "fine {fine} should drift less than coarse {coarse}");
    }

    #[test]
    fn positions_stay_in_box() {
        let mut s = small();
        for _ in 0..100 {
            s.step(0.005);
        }
        for p in &s.pos {
            assert!((0.0..s.box_len).contains(&p[0]));
            assert!((0.0..s.box_len).contains(&p[1]));
        }
    }

    #[test]
    fn force_evals_count_integration_only() {
        let mut s = small();
        let before = s.force_evals;
        let _ = s.total_energy();
        let _ = s.max_force();
        assert_eq!(s.force_evals, before, "diagnostics must not count");
        s.step(0.001);
        assert_eq!(s.force_evals, before + 2, "verlet costs two evaluations");
    }

    #[test]
    fn rmsd_zero_for_identical() {
        let s = small();
        assert_eq!(s.rmsd(&s.clone()), 0.0);
    }

    #[test]
    fn deterministic_trajectories() {
        let mut a = small();
        let mut b = small();
        for _ in 0..20 {
            a.step(0.002);
            b.step(0.002);
        }
        assert_eq!(a.rmsd(&b), 0.0);
    }

    #[test]
    fn temperature_tracks_kinetic() {
        // Large lattice so the sample temperature concentrates.
        let s = LjSystem::lattice(16, 1.5, 0.5, 3);
        assert!((s.temperature() - 0.5).abs() < 0.1, "T {}", s.temperature());
    }
}
