//! DNN-supervised multi-resolution integration.
//!
//! The abstract: deep learning is "used to supervise large-scale
//! multi-resolution molecular dynamics simulations". Here the resolution
//! axis is temporal: each macro-step can be integrated coarsely (1 Verlet
//! step, cheap) or finely (`FINE_SUBSTEPS` substeps, accurate). A small
//! `dd-nn` regressor learns online to predict the coarse-step error from
//! cheap state features and triggers refinement only when the predicted
//! error exceeds a threshold — fine-MD fidelity at a fraction of the force
//! evaluations. (The paper's spatial multi-resolution RAS simulations are
//! substituted by this temporal variant; the *control loop* — ML watches a
//! mechanistic simulation and decides where to spend resolution — is the
//! same. See DESIGN.md.)

use crate::system::LjSystem;
use dd_nn::{Activation, Loss, ModelSpec, Optimizer, OptimizerConfig, Sequential};
use dd_tensor::{Matrix, Precision};
use serde::{Deserialize, Serialize};

/// Substeps used for a "fine" macro-step.
pub const FINE_SUBSTEPS: usize = 8;

/// Resolution policy for each macro-step.
pub enum Policy {
    /// Always one big step (fast, drifts).
    AlwaysCoarse,
    /// Always fine substeps (accurate, expensive) — the reference.
    AlwaysFine,
    /// Refine when the current max force exceeds a threshold (the classical
    /// hand-tuned heuristic the surrogate is compared against).
    ForceHeuristic {
        /// Max-force trigger.
        threshold: f64,
    },
    /// Refine when the DNN predicts a coarse-step error above `threshold`.
    Surrogate(SurrogateController),
}

impl Policy {
    /// Table label.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::AlwaysCoarse => "coarse",
            Policy::AlwaysFine => "fine",
            Policy::ForceHeuristic { .. } => "force-heuristic",
            Policy::Surrogate(_) => "dnn-surrogate",
        }
    }
}

/// Online-trained error predictor.
pub struct SurrogateController {
    model: Sequential,
    optimizer: Optimizer,
    /// Predicted-error refinement threshold.
    pub threshold: f64,
    /// Compute a ground-truth label every `label_every` macro-steps.
    pub label_every: usize,
    steps_seen: usize,
    labels_collected: usize,
    /// Warmup: refine unconditionally until this many labels exist.
    warmup_labels: usize,
}

impl SurrogateController {
    /// Fresh controller with an untrained network.
    pub fn new(threshold: f64, seed: u64) -> Self {
        let spec = ModelSpec::mlp(4, &[16, 8], 1, Activation::Tanh);
        // dd-lint: allow(error-policy/expect) -- hard-coded MLP spec is statically valid
        let model = spec.build(seed, Precision::F32).expect("valid surrogate spec");
        SurrogateController {
            model,
            optimizer: OptimizerConfig::adam(0.005).build(),
            threshold,
            label_every: 5,
            steps_seen: 0,
            labels_collected: 0,
            warmup_labels: 10,
        }
    }

    /// Cheap state features: temperature, potential energy per particle,
    /// log max force, and a stiffness proxy (max force × dt).
    pub fn features(system: &mut LjSystem, dt: f64) -> [f32; 4] {
        let t = system.temperature();
        let n = system.len() as f64;
        let e = system.total_energy();
        let pe = (e - system.kinetic()) / n;
        let fmax = system.max_force();
        [t as f32, pe as f32, (1.0 + fmax).ln() as f32, (fmax * dt) as f32]
    }

    /// Predicted log10 coarse-step error.
    pub fn predict(&mut self, features: &[f32; 4]) -> f64 {
        let x = Matrix::from_vec(1, 4, features.to_vec());
        self.model.predict(&x).get(0, 0) as f64
    }

    /// One online supervised update from an observed (features, log-error)
    /// pair.
    pub fn learn(&mut self, features: &[f32; 4], log_error: f64) {
        let x = Matrix::from_vec(1, 4, features.to_vec());
        let y = Matrix::from_vec(1, 1, vec![log_error as f32]);
        // A few gradient steps per label: labels are scarce.
        for _ in 0..4 {
            let pred = self.model.forward(&x, true);
            let (_, grad) = Loss::Mse.compute(&pred, &y);
            self.model.backward(&grad);
            self.model.step_with(&mut self.optimizer, 1.0);
        }
        self.labels_collected += 1;
    }

    /// Decide whether to refine this macro-step; occasionally runs a shadow
    /// coarse-vs-fine comparison to harvest a training label.
    pub fn decide(&mut self, system: &mut LjSystem, dt: f64) -> bool {
        self.steps_seen += 1;
        let features = Self::features(system, dt);
        // Periodic labelling: integrate a copy both ways and record the
        // true error (this costs force evaluations, charged to the run).
        if self.steps_seen % self.label_every == 1 || self.labels_collected < self.warmup_labels {
            let base = system.force_evals;
            let mut coarse = system.clone();
            coarse.advance(dt, 1);
            let mut fine = system.clone();
            fine.advance(dt, FINE_SUBSTEPS);
            // Charge the shadow integrations to the supervised run.
            system.force_evals += (coarse.force_evals - base) + (fine.force_evals - base);
            let err = coarse.rmsd(&fine).max(1e-12);
            self.learn(&features, err.log10());
        }
        if self.labels_collected < self.warmup_labels {
            return true; // refine while untrained
        }
        self.predict(&features) > self.threshold.log10()
    }
}

/// Outcome of a supervised run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy label.
    pub policy: String,
    /// Macro-steps taken.
    pub macro_steps: usize,
    /// Fraction of macro-steps refined.
    pub refine_fraction: f64,
    /// Total force evaluations (the compute-cost metric).
    pub force_evals: u64,
    /// |E(end) − E(start)| / |E(start)| — integration quality.
    pub energy_drift: f64,
    /// RMSD against an always-fine twin trajectory.
    pub rmsd_vs_fine: f64,
}

/// Run `macro_steps` of size `dt` under a policy, tracking an always-fine
/// twin for accuracy measurement.
pub fn run_supervised(
    mut system: LjSystem,
    mut policy: Policy,
    macro_steps: usize,
    dt: f64,
) -> RunReport {
    assert!(macro_steps >= 1, "need at least one macro step");
    let mut fine_twin = system.clone();
    let e0 = system.total_energy();
    let mut refinements = 0usize;
    for _ in 0..macro_steps {
        let refine = match &mut policy {
            Policy::AlwaysCoarse => false,
            Policy::AlwaysFine => true,
            Policy::ForceHeuristic { threshold } => system.max_force() > *threshold,
            Policy::Surrogate(ctrl) => ctrl.decide(&mut system, dt),
        };
        if refine {
            refinements += 1;
        }
        system.advance(dt, if refine { FINE_SUBSTEPS } else { 1 });
        fine_twin.advance(dt, FINE_SUBSTEPS);
    }
    let e1 = system.total_energy();
    RunReport {
        policy: policy.name().to_string(),
        macro_steps,
        refine_fraction: refinements as f64 / macro_steps as f64,
        force_evals: system.force_evals,
        energy_drift: (e1 - e0).abs() / e0.abs().max(1e-9),
        rmsd_vs_fine: system.rmsd(&fine_twin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(seed: u64) -> LjSystem {
        LjSystem::lattice(5, 1.3, 0.4, seed)
    }

    const DT: f64 = 0.04;

    #[test]
    fn fine_policy_is_most_accurate_and_most_expensive() {
        let fine = run_supervised(system(1), Policy::AlwaysFine, 40, DT);
        let coarse = run_supervised(system(1), Policy::AlwaysCoarse, 40, DT);
        assert!(fine.rmsd_vs_fine < 1e-12, "fine twin == fine run");
        assert!(coarse.rmsd_vs_fine > fine.rmsd_vs_fine);
        assert!(coarse.force_evals < fine.force_evals / 4);
        assert_eq!(fine.refine_fraction, 1.0);
        assert_eq!(coarse.refine_fraction, 0.0);
    }

    #[test]
    fn surrogate_cheaper_than_fine_better_than_coarse() {
        let fine = run_supervised(system(2), Policy::AlwaysFine, 60, DT);
        let coarse = run_supervised(system(2), Policy::AlwaysCoarse, 60, DT);
        let sur =
            run_supervised(system(2), Policy::Surrogate(SurrogateController::new(5e-3, 7)), 60, DT);
        assert!(
            sur.force_evals < fine.force_evals,
            "surrogate {} vs fine {}",
            sur.force_evals,
            fine.force_evals
        );
        assert!(
            sur.rmsd_vs_fine < coarse.rmsd_vs_fine,
            "surrogate {} vs coarse {}",
            sur.rmsd_vs_fine,
            coarse.rmsd_vs_fine
        );
    }

    #[test]
    fn surrogate_refines_selectively_after_warmup() {
        let sur =
            run_supervised(system(3), Policy::Surrogate(SurrogateController::new(5e-3, 8)), 80, DT);
        assert!(
            sur.refine_fraction > 0.05 && sur.refine_fraction < 1.0,
            "refine fraction {}",
            sur.refine_fraction
        );
    }

    #[test]
    fn controller_learns_error_scale() {
        // After labelled warmup, predictions should be in the right order
        // of magnitude for the observed errors.
        let mut ctrl = SurrogateController::new(1e-3, 9);
        let mut sys = system(4);
        for _ in 0..30 {
            let _ = ctrl.decide(&mut sys, DT);
            sys.advance(DT, 2);
        }
        let f = SurrogateController::features(&mut sys, DT);
        let pred = ctrl.predict(&f);
        assert!((-9.0..0.0).contains(&pred), "predicted log10 error {pred} implausible");
    }

    #[test]
    fn force_heuristic_sits_between_extremes() {
        let mut probe = system(5);
        let typical_force = probe.max_force();
        let h =
            run_supervised(system(5), Policy::ForceHeuristic { threshold: typical_force }, 40, DT);
        assert!(h.refine_fraction > 0.0 || h.force_evals > 0);
        assert!(h.refine_fraction < 1.0 || h.rmsd_vs_fine < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one macro step")]
    fn zero_steps_panics() {
        let _ = run_supervised(system(6), Policy::AlwaysCoarse, 0, DT);
    }
}
