//! # dd-mdsim — ML-supervised multi-resolution molecular dynamics
//!
//! The abstract: in basic cancer research deep learning is "used to
//! supervise large-scale multi-resolution molecular dynamics simulations
//! used to explore cancer gene signaling pathways." We cannot run the
//! RAS-pathway membrane simulations that sentence refers to; the faithful
//! substitution (DESIGN.md) is a small Lennard-Jones fluid whose
//! *integration resolution* is chosen per macro-step by an online-trained
//! `dd-nn` regressor — the same control loop (ML watches the mechanistic
//! simulation, predicts where cheap resolution suffices, and escalates only
//! where needed) at laptop scale.
//!
//! * [`LjSystem`] — velocity-Verlet LJ fluid with periodic boundaries and a
//!   force-evaluation cost counter.
//! * [`SurrogateController`] — online error-predicting DNN.
//! * [`run_supervised`] — runs a policy (coarse / fine / force heuristic /
//!   surrogate) and reports cost vs fidelity (experiment E9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod supervisor;
pub mod system;

pub use supervisor::{run_supervised, Policy, RunReport, SurrogateController, FINE_SUBSTEPS};
pub use system::LjSystem;
