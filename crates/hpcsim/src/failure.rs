//! Node failure and checkpoint/restart modeling.
//!
//! At the paper's target scale (thousands of accelerator nodes, week-long
//! training campaigns) the system-level mean time between failures drops
//! below the run length and checkpoint/restart stops being optional. This
//! module provides the three pieces experiment E11 sweeps:
//!
//! * [`FailureModel`] — exponential per-node failures aggregated to a
//!   system MTBF (`M_sys = M_node / n`).
//! * [`checkpoint_cost`] — checkpoint write/read time for a model of a
//!   given size on a given memory/storage tier, reusing the
//!   [`crate::memory`] tier specs (burst buffer vs PFS is exactly the
//!   placement question the paper's NVRAM discussion raises).
//! * The Young/Daly optimal interval [`young_daly_interval`]
//!   (`τ* ≈ sqrt(2 δ M)`), the first-order analytic expected runtime
//!   [`expected_runtime`], and a deterministic Monte Carlo
//!   [`simulate_checkpointed_run`] to check the closed forms against
//!   sampled failures.
//!
//! Like the rest of `dd-hpcsim` this module is numerics-free and owns its
//! tiny splitmix64 sampler rather than depending on `dd-tensor`.

use crate::memory::{MemoryHierarchy, Tier};
use serde::{Deserialize, Serialize};

/// Exponential (memoryless) node-failure model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time between failures of a single node, in seconds.
    pub node_mtbf: f64,
}

impl FailureModel {
    /// A model with the given per-node MTBF (seconds).
    pub fn new(node_mtbf: f64) -> Self {
        assert!(node_mtbf > 0.0, "MTBF must be positive");
        FailureModel { node_mtbf }
    }

    /// System MTBF across `nodes` independent nodes: any node failing kills
    /// the synchronous job, so rates add.
    pub fn system_mtbf(&self, nodes: usize) -> f64 {
        self.node_mtbf / nodes.max(1) as f64
    }

    /// Probability at least one of `nodes` fails within `horizon` seconds.
    pub fn failure_probability(&self, nodes: usize, horizon: f64) -> f64 {
        assert!(horizon >= 0.0, "negative horizon");
        1.0 - (-horizon / self.system_mtbf(nodes)).exp()
    }

    /// Sorted absolute failure times of one component within
    /// `[0, horizon_s)`, sampled from the exponential interarrival process
    /// this model describes. Deterministic in `seed`.
    ///
    /// This is the same MTBF machinery E11 sweeps for training
    /// checkpoint/restart, exposed so the serving resilience layer
    /// (dd-serve replica chaos) draws its replica-crash schedule from one
    /// failure model instead of reinventing it.
    pub fn arrivals(&self, horizon_s: f64, seed: u64) -> Vec<f64> {
        assert!(horizon_s >= 0.0, "negative horizon");
        let mut rng = SimRng::new(seed);
        let mut times = Vec::new();
        let mut t = rng.exponential(self.node_mtbf);
        while t < horizon_s {
            times.push(t);
            t += rng.exponential(self.node_mtbf);
        }
        times
    }
}

/// Time to write and read back one checkpoint on a given tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCost {
    /// Seconds to write the checkpoint (the per-interval overhead δ).
    pub write_seconds: f64,
    /// Seconds to read it back on restart (part of the restart cost R).
    pub read_seconds: f64,
}

/// Cost of checkpointing `bytes` of model + optimizer state to `tier`.
/// `None` when the node lacks that tier. Writes and reads are modeled as
/// one streaming transfer each (the v2 checkpoint format is a single blob).
pub fn checkpoint_cost(memory: &MemoryHierarchy, tier: Tier, bytes: f64) -> Option<CheckpointCost> {
    let spec = memory.tier(tier)?;
    Some(CheckpointCost {
        write_seconds: spec.transfer_time(bytes),
        read_seconds: spec.transfer_time(bytes),
    })
}

/// Young/Daly first-order optimal checkpoint interval
/// `τ* = sqrt(2 δ M)` for checkpoint cost `δ` and (system) MTBF `M`.
pub fn young_daly_interval(checkpoint_seconds: f64, mtbf: f64) -> f64 {
    assert!(checkpoint_seconds >= 0.0 && mtbf > 0.0, "bad interval inputs");
    (2.0 * checkpoint_seconds * mtbf).sqrt()
}

/// First-order analytic expected wall-clock to finish `work` seconds of
/// computation, checkpointing every `interval` seconds (cost
/// `checkpoint_seconds` each), restarting in `restart_seconds` after
/// failures arriving with MTBF `mtbf`.
///
/// Uses the standard self-consistent approximation: the base time is
/// inflated by the checkpoint tax `1 + δ/τ`, and every failure (rate `1/M`
/// over the whole run) costs a restart plus half an interval of rework:
/// `T = W (1 + δ/τ) / (1 − (R + τ/2)/M)`, valid while the waste per MTBF
/// stays below one. Returns `f64::INFINITY` outside that regime (the job
/// never finishes in expectation).
pub fn expected_runtime(
    work: f64,
    interval: f64,
    checkpoint_seconds: f64,
    restart_seconds: f64,
    mtbf: f64,
) -> f64 {
    assert!(work >= 0.0 && interval > 0.0 && mtbf > 0.0, "bad runtime inputs");
    let tax = 1.0 + checkpoint_seconds / interval;
    let waste = (restart_seconds + interval / 2.0) / mtbf;
    if waste >= 1.0 {
        return f64::INFINITY;
    }
    work * tax / (1.0 - waste)
}

/// Outcome of one simulated checkpointed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Total wall-clock seconds, including checkpoints, rework and
    /// restarts.
    pub wall_clock: f64,
    /// Failures endured.
    pub failures: usize,
    /// Checkpoints written (the final segment commits without one).
    pub checkpoints: usize,
    /// Compute + checkpoint seconds thrown away by failures.
    pub lost_work: f64,
}

/// Deterministic splitmix64 stream — enough RNG for exponential
/// interarrival sampling without pulling numerics into this crate.
#[derive(Debug, Clone)]
struct SimRng {
    state: u64,
}

impl SimRng {
    fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 random bits.
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Exponential with the given mean.
    fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.uniform()).ln()
    }
}

/// Simulate a checkpointed run against sampled exponential failures.
///
/// The job computes `work` seconds in segments of `interval`, writing a
/// checkpoint (`checkpoint_seconds`) after every committed segment except
/// the last. A failure during a segment (or its checkpoint write) discards
/// the whole attempt back to the last committed checkpoint and adds
/// `restart_seconds` before retrying; failures are an exponential process
/// with mean `mtbf`, re-armed after each restart. Fully deterministic in
/// `seed`.
pub fn simulate_checkpointed_run(
    work: f64,
    interval: f64,
    checkpoint_seconds: f64,
    restart_seconds: f64,
    mtbf: f64,
    seed: u64,
) -> RunOutcome {
    assert!(work >= 0.0 && interval > 0.0 && mtbf > 0.0, "bad simulation inputs");
    let mut rng = SimRng::new(seed);
    let mut now = 0.0_f64;
    let mut done = 0.0_f64;
    let mut failures = 0usize;
    let mut checkpoints = 0usize;
    let mut lost_work = 0.0_f64;
    let mut next_failure = rng.exponential(mtbf);
    while done < work {
        let segment = interval.min(work - done);
        let write = if done + segment < work { checkpoint_seconds } else { 0.0 };
        let attempt = segment + write;
        if now + attempt <= next_failure {
            now += attempt;
            done += segment;
            if write > 0.0 {
                checkpoints += 1;
            }
        } else {
            lost_work += next_failure - now;
            now = next_failure + restart_seconds;
            failures += 1;
            next_failure = now + rng.exponential(mtbf);
        }
    }
    RunOutcome { wall_clock: now, failures, checkpoints, lost_work }
}

/// Mean simulated wall-clock over `seeds` independent runs — the estimator
/// E11 plots against the analytic curve.
pub fn mean_simulated_runtime(
    work: f64,
    interval: f64,
    checkpoint_seconds: f64,
    restart_seconds: f64,
    mtbf: f64,
    seeds: std::ops::Range<u64>,
) -> f64 {
    let n = seeds.end.saturating_sub(seeds.start).max(1);
    let total: f64 = seeds
        .map(|s| {
            simulate_checkpointed_run(work, interval, checkpoint_seconds, restart_seconds, mtbf, s)
                .wall_clock
        })
        .sum();
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::accelerator_node_2017;

    #[test]
    fn system_mtbf_scales_inversely_with_nodes() {
        let model = FailureModel::new(50.0 * 3600.0);
        assert_eq!(model.system_mtbf(1), 50.0 * 3600.0);
        assert!((model.system_mtbf(1000) - 180.0).abs() < 1e-9);
        let p_small = model.failure_probability(10, 3600.0);
        let p_large = model.failure_probability(1000, 3600.0);
        assert!(p_large > p_small);
        assert!((0.0..=1.0).contains(&p_large));
    }

    #[test]
    fn arrivals_are_sorted_deterministic_and_rate_consistent() {
        let model = FailureModel::new(100.0);
        let a = model.arrivals(10_000.0, 7);
        let b = model.arrivals(10_000.0, 7);
        assert_eq!(a, b, "same seed must give identical schedules");
        assert!(a.windows(2).all(|w| w[1] > w[0]), "arrival times must be increasing");
        assert!(a.iter().all(|&t| (0.0..10_000.0).contains(&t)));
        // Expected count = horizon / mtbf = 100; Poisson sd = 10.
        assert!((70..=130).contains(&a.len()), "got {} arrivals", a.len());
        let c = model.arrivals(10_000.0, 8);
        assert_ne!(a, c, "different seeds should sample different schedules");
        assert!(model.arrivals(0.0, 1).is_empty());
    }

    #[test]
    fn checkpoint_cost_reflects_tier_bandwidth() {
        let mem = accelerator_node_2017();
        let bytes = 4e9; // 1B-parameter f32 model
        let nvram = checkpoint_cost(&mem, Tier::Nvram, bytes).unwrap();
        let pfs = checkpoint_cost(&mem, Tier::Pfs, bytes).unwrap();
        // Burst buffer is ~6x the PFS stream rate, so checkpoints are
        // proportionally cheaper.
        assert!(nvram.write_seconds * 4.0 < pfs.write_seconds);
        assert!(pfs.write_seconds > 3.9); // ≥ bytes / bandwidth
        let mut no_nvram = mem.clone();
        no_nvram.nvram = None;
        assert!(checkpoint_cost(&no_nvram, Tier::Nvram, bytes).is_none());
    }

    #[test]
    fn young_daly_matches_hand_calculation() {
        // δ = 60 s, M = 6 h → τ* = sqrt(2 · 60 · 21600) = 1609.97 s.
        let tau = young_daly_interval(60.0, 6.0 * 3600.0);
        assert!((tau - 1609.968944).abs() < 1e-3);
        // More nodes → smaller M → shorter interval.
        let model = FailureModel::new(50.0 * 3600.0);
        let tau_small = young_daly_interval(60.0, model.system_mtbf(100));
        let tau_large = young_daly_interval(60.0, model.system_mtbf(1000));
        assert!(tau_large < tau_small);
    }

    #[test]
    fn analytic_optimum_tracks_young_daly_on_a_grid() {
        let (work, delta, restart, mtbf) = (86_400.0, 30.0, 60.0, 7_200.0);
        let grid = [150.0, 300.0, 450.0, 600.0, 750.0, 900.0, 1_200.0, 1_800.0];
        let best = grid
            .iter()
            .enumerate()
            .min_by(|a, b| {
                expected_runtime(work, *a.1, delta, restart, mtbf)
                    .partial_cmp(&expected_runtime(work, *b.1, delta, restart, mtbf))
                    .unwrap()
            })
            .map(|(i, _)| i)
            .unwrap();
        let tau = young_daly_interval(delta, mtbf);
        let nearest = grid
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - tau).abs().partial_cmp(&(b.1 - tau).abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            best.abs_diff(nearest) <= 1,
            "analytic argmin {best} vs Young/Daly grid point {nearest}"
        );
    }

    #[test]
    fn failure_free_simulation_is_exact() {
        // MTBF astronomically larger than the run: no failures, so the
        // wall-clock is work plus one checkpoint per interior boundary.
        let out = simulate_checkpointed_run(1_000.0, 100.0, 5.0, 50.0, 1e15, 42);
        assert_eq!(out.failures, 0);
        assert_eq!(out.checkpoints, 9);
        assert!((out.wall_clock - (1_000.0 + 9.0 * 5.0)).abs() < 1e-9);
        assert_eq!(out.lost_work, 0.0);
    }

    #[test]
    fn simulation_is_deterministic_in_seed() {
        let a = simulate_checkpointed_run(50_000.0, 600.0, 30.0, 60.0, 7_200.0, 7);
        let b = simulate_checkpointed_run(50_000.0, 600.0, 30.0, 60.0, 7_200.0, 7);
        let c = simulate_checkpointed_run(50_000.0, 600.0, 30.0, 60.0, 7_200.0, 8);
        assert_eq!(a, b);
        assert!(a != c, "different seeds should sample different failures");
        assert!(a.wall_clock > 50_000.0);
    }

    #[test]
    fn mean_simulation_tracks_the_analytic_model() {
        let (work, delta, restart, mtbf) = (43_200.0, 30.0, 60.0, 7_200.0);
        let interval = 600.0;
        let analytic = expected_runtime(work, interval, delta, restart, mtbf);
        let simulated = mean_simulated_runtime(work, interval, delta, restart, mtbf, 0..64);
        let ratio = simulated / analytic;
        assert!(
            (0.85..1.15).contains(&ratio),
            "simulated {simulated:.0}s vs analytic {analytic:.0}s (ratio {ratio:.3})"
        );
    }
}
