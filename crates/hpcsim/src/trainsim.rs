//! Analytical model of one distributed training step under data, model and
//! hybrid parallelism (experiments E2, E3, E7).
//!
//! The abstract: "DNNs in general do not have good strong scaling behavior,
//! so to fully exploit large-scale parallelism they rely on a combination of
//! model, data and search parallelism." These models quantify exactly why:
//! synchronous data parallelism shrinks per-node compute while the gradient
//! allreduce does not shrink, and model parallelism trades compute division
//! for per-layer activation exchanges whose cost is set by fabric bandwidth.

use crate::collectives::{allreduce_energy, allreduce_time, AllreduceAlgo};
use crate::machine::{Machine, SimPrecision};
use serde::{Deserialize, Serialize};

/// Static description of a training job (per step).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainJob {
    /// Trainable parameter count.
    pub params: f64,
    /// Forward+backward FLOPs per sample (≈ 3× forward for dense nets).
    pub flops_per_sample: f64,
    /// Bytes of input per sample.
    pub sample_bytes: f64,
    /// Global minibatch size.
    pub global_batch: usize,
    /// Activation bytes per sample crossing one model-parallel cut.
    pub activation_bytes_per_cut: f64,
    /// Number of layer boundaries available for model-parallel cuts.
    pub cuttable_layers: usize,
}

impl TrainJob {
    /// A job sized from a dense network description.
    pub fn from_dense_net(
        params: f64,
        input_dim: usize,
        global_batch: usize,
        layers: usize,
    ) -> Self {
        TrainJob {
            params,
            flops_per_sample: 6.0 * params, // fwd 2·P + bwd 4·P multiply-adds
            sample_bytes: input_dim as f64 * 4.0,
            global_batch,
            // Rough: activations at a cut are ~sqrt(params/layers) wide.
            activation_bytes_per_cut: (params / layers.max(1) as f64).sqrt() * 4.0,
            cuttable_layers: layers.saturating_sub(1),
        }
    }
}

/// Parallelization strategy for one step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Pure synchronous data parallelism over `nodes` replicas.
    Data {
        /// Replica count.
        nodes: usize,
        /// Gradient allreduce algorithm.
        algo: AllreduceAlgo,
    },
    /// Pure model (layer) parallelism over `parts` nodes.
    Model {
        /// Partition count.
        parts: usize,
    },
    /// `model_ways`-way model parallel groups replicated `data_ways` times.
    Hybrid {
        /// Data-parallel replica count.
        data_ways: usize,
        /// Model-parallel group size.
        model_ways: usize,
        /// Gradient allreduce algorithm.
        algo: AllreduceAlgo,
    },
    /// GPipe-style pipeline: `stages` layer groups, the batch split into
    /// `microbatches` that stream through. The pipeline bubble costs a
    /// `(stages − 1)/(microbatches + stages − 1)` fraction of ideal time.
    Pipeline {
        /// Pipeline depth (layer groups).
        stages: usize,
        /// Microbatch count.
        microbatches: usize,
    },
}

impl Strategy {
    /// Total nodes the strategy occupies.
    pub fn nodes(self) -> usize {
        match self {
            Strategy::Data { nodes, .. } => nodes,
            Strategy::Model { parts } => parts,
            Strategy::Hybrid { data_ways, model_ways, .. } => data_ways * model_ways,
            Strategy::Pipeline { stages, .. } => stages,
        }
    }
}

/// Fraction of per-step compute the gradient allreduce can hide behind
/// (the backward pass is ~2/3 of fwd+bwd FLOPs and buckets reduce as soon
/// as each layer's gradients are ready).
pub const ALLREDUCE_OVERLAP: f64 = 2.0 / 3.0;

/// Time/energy breakdown of one training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// Per-node compute time (the slowest node's share).
    pub compute: f64,
    /// Communication time (gradient allreduce + activation exchange).
    pub comm: f64,
    /// Total step time.
    pub step: f64,
    /// Total energy across all participating nodes (joules).
    pub energy: f64,
}

/// Model one synchronous training step.
///
/// Panics if the strategy needs more nodes than the machine has or if the
/// model-parallel partition exceeds the cuttable layer count.
pub fn step_time(
    machine: &Machine,
    job: &TrainJob,
    strategy: Strategy,
    precision: SimPrecision,
) -> StepBreakdown {
    assert!(
        strategy.nodes() <= machine.nodes,
        "strategy needs {} nodes, machine has {}",
        strategy.nodes(),
        machine.nodes
    );
    assert!(strategy.nodes() >= 1, "strategy must use at least one node");
    let grad_bytes = job.params * precision.bytes();
    match strategy {
        Strategy::Data { nodes, algo } => {
            let per_node_batch = (job.global_batch as f64 / nodes as f64).ceil();
            let flops = per_node_batch * job.flops_per_sample;
            let compute = machine.node.compute_time(flops, precision);
            // Bucketed allreduce overlaps with the backward pass (~2/3 of
            // step compute); only the excess is exposed on the critical
            // path.
            let raw_comm = allreduce_time(&machine.fabric, algo, grad_bytes, nodes);
            let comm = (raw_comm - ALLREDUCE_OVERLAP * compute).max(0.0);
            let energy = nodes as f64 * machine.node.compute_energy(flops, precision)
                + allreduce_energy(&machine.fabric, algo, grad_bytes, nodes)
                + nodes as f64 * machine.node.idle_power * (compute + comm);
            StepBreakdown { compute, comm, step: compute + comm, energy }
        }
        Strategy::Model { parts } => {
            assert!(
                parts <= job.cuttable_layers + 1,
                "cannot cut {} ways with {} cuttable layers",
                parts,
                job.cuttable_layers
            );
            let flops = job.global_batch as f64 * job.flops_per_sample / parts as f64;
            let compute = machine.node.compute_time(flops, precision);
            // Each of (parts-1) cuts exchanges activations forward and
            // gradients backward for the whole batch; the exchanges are
            // serialized along the layer chain.
            let cut_bytes =
                job.global_batch as f64 * job.activation_bytes_per_cut * precision.bytes() / 4.0;
            let cuts = parts.saturating_sub(1) as f64;
            let comm = 2.0 * cuts * machine.fabric.ptp_time(cut_bytes, parts);
            let energy = parts as f64 * machine.node.compute_energy(flops, precision)
                + 2.0 * cuts * machine.fabric.energy(cut_bytes)
                + parts as f64 * machine.node.idle_power * (compute + comm);
            StepBreakdown { compute, comm, step: compute + comm, energy }
        }
        Strategy::Pipeline { stages, microbatches } => {
            assert!(microbatches >= 1, "need at least one microbatch");
            assert!(
                stages <= job.cuttable_layers + 1,
                "cannot pipeline {} ways with {} cuttable layers",
                stages,
                job.cuttable_layers
            );
            // Ideal per-node compute with perfect stage balance, inflated by
            // the pipeline bubble (s − 1 of m + s − 1 slots are idle).
            let ideal = machine.node.compute_time(
                job.global_batch as f64 * job.flops_per_sample / stages as f64,
                precision,
            );
            let slots = (microbatches + stages - 1) as f64;
            let compute = ideal * slots / microbatches as f64;
            // Each microbatch crosses every cut forward and backward; the
            // per-slot transfer rides the critical path once.
            let micro_act = (job.global_batch as f64 / microbatches as f64)
                * job.activation_bytes_per_cut
                * precision.bytes()
                / 4.0;
            let comm = 2.0 * slots * machine.fabric.ptp_time(micro_act, stages);
            let energy = stages as f64
                * machine.node.compute_energy(
                    job.global_batch as f64 * job.flops_per_sample / stages as f64,
                    precision,
                )
                + 2.0
                    * (stages.saturating_sub(1) * microbatches) as f64
                    * machine.fabric.energy(micro_act)
                + stages as f64 * machine.node.idle_power * (compute + comm);
            StepBreakdown { compute, comm, step: compute + comm, energy }
        }
        Strategy::Hybrid { data_ways, model_ways, algo } => {
            // Each model group processes global_batch / data_ways samples.
            let group_job = TrainJob {
                // dd-lint: allow(lossy-cast/float-to-int) -- per-group batch: ceil'd division of two positive counts
                global_batch: (job.global_batch as f64 / data_ways as f64).ceil() as usize,
                ..*job
            };
            let inner =
                step_time(machine, &group_job, Strategy::Model { parts: model_ways }, precision);
            // Gradient allreduce across replicas covers params/model_ways
            // per node (each node owns a slice of the model); it overlaps
            // with the group's backward compute like the pure-data case.
            let slice_bytes = grad_bytes / model_ways as f64;
            let raw_ar = allreduce_time(&machine.fabric, algo, slice_bytes, data_ways);
            let ar = (raw_ar - ALLREDUCE_OVERLAP * inner.compute).max(0.0);
            let energy = data_ways as f64 * inner.energy
                + model_ways as f64
                    * allreduce_energy(&machine.fabric, algo, slice_bytes, data_ways);
            StepBreakdown {
                compute: inner.compute,
                comm: inner.comm + ar,
                step: inner.step + ar,
                energy,
            }
        }
    }
}

/// Parallel efficiency of a strategy versus the single-node step on the
/// same global batch (strong-scaling efficiency).
pub fn strong_scaling_efficiency(
    machine: &Machine,
    job: &TrainJob,
    strategy: Strategy,
    precision: SimPrecision,
) -> f64 {
    let single =
        step_time(machine, job, Strategy::Data { nodes: 1, algo: AllreduceAlgo::Auto }, precision);
    let multi = step_time(machine, job, strategy, precision);
    single.step / (multi.step * strategy.nodes() as f64)
}

/// Weak-scaling efficiency: per-node batch held constant as nodes grow.
pub fn weak_scaling_efficiency(
    machine: &Machine,
    per_node_batch: usize,
    base_job: &TrainJob,
    nodes: usize,
    algo: AllreduceAlgo,
    precision: SimPrecision,
) -> f64 {
    let single_job = TrainJob { global_batch: per_node_batch, ..*base_job };
    let single = step_time(machine, &single_job, Strategy::Data { nodes: 1, algo }, precision);
    let scaled_job = TrainJob { global_batch: per_node_batch * nodes, ..*base_job };
    let multi = step_time(machine, &scaled_job, Strategy::Data { nodes, algo }, precision);
    single.step / multi.step
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> TrainJob {
        TrainJob::from_dense_net(50e6, 1000, 4096, 8)
    }

    fn machine(nodes: usize) -> Machine {
        Machine::gpu_2017(nodes)
    }

    #[test]
    fn strong_scaling_efficiency_decays() {
        let m = machine(1024);
        let j = job();
        let eff = |n: usize| {
            strong_scaling_efficiency(
                &m,
                &j,
                Strategy::Data { nodes: n, algo: AllreduceAlgo::Auto },
                SimPrecision::F32,
            )
        };
        let e4 = eff(4);
        let e64 = eff(64);
        let e512 = eff(512);
        assert!(e4 > e64 && e64 > e512, "{e4} {e64} {e512}");
        assert!(e512 < 0.5, "strong scaling should collapse: {e512}");
        assert!(e4 > 0.9, "small scale should be efficient: {e4}");
    }

    #[test]
    fn weak_scaling_healthier_than_strong() {
        let m = machine(1024);
        let j = job();
        let weak =
            weak_scaling_efficiency(&m, 512, &j, 512, AllreduceAlgo::Auto, SimPrecision::F32);
        let strong = strong_scaling_efficiency(
            &m,
            &j,
            Strategy::Data { nodes: 512, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
        assert!(weak > strong, "weak {weak} strong {strong}");
        assert!(weak > 0.8, "weak scaling should hold up: {weak}");
    }

    #[test]
    fn comm_share_grows_with_nodes() {
        let m = machine(1024);
        let j = job();
        let share = |n: usize| {
            let b = step_time(
                &m,
                &j,
                Strategy::Data { nodes: n, algo: AllreduceAlgo::Auto },
                SimPrecision::F32,
            );
            b.comm / b.step
        };
        assert!(share(256) > share(4));
    }

    #[test]
    fn model_parallel_sensitive_to_fabric_bandwidth() {
        let j = job();
        let slow = machine(64);
        let mut fast = machine(64);
        fast.fabric = fast.fabric.with_bandwidth(400e9);
        let t_slow = step_time(&slow, &j, Strategy::Model { parts: 8 }, SimPrecision::F32);
        let t_fast = step_time(&fast, &j, Strategy::Model { parts: 8 }, SimPrecision::F32);
        assert!(t_fast.comm < t_slow.comm / 4.0);
        assert_eq!(t_fast.compute, t_slow.compute);
    }

    #[test]
    fn hybrid_uses_product_of_ways() {
        let m = machine(64);
        let j = job();
        let s = Strategy::Hybrid { data_ways: 8, model_ways: 4, algo: AllreduceAlgo::Auto };
        assert_eq!(s.nodes(), 32);
        let b = step_time(&m, &j, s, SimPrecision::F32);
        assert!(b.step > 0.0 && b.energy > 0.0);
    }

    #[test]
    fn hybrid_beats_pure_data_at_extreme_scale() {
        // At very large node counts with a big model, hybrid reduces the
        // allreduce size per replica group and wins.
        let m = machine(4096);
        let big = TrainJob::from_dense_net(2e9, 4000, 16384, 32);
        let data = step_time(
            &m,
            &big,
            Strategy::Data { nodes: 4096, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
        let hybrid = step_time(
            &m,
            &big,
            Strategy::Hybrid { data_ways: 512, model_ways: 8, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
        assert!(hybrid.step < data.step, "hybrid {} vs data {}", hybrid.step, data.step);
    }

    #[test]
    fn low_precision_shrinks_compute_and_comm() {
        let m = machine(64);
        let j = job();
        let s = Strategy::Data { nodes: 16, algo: AllreduceAlgo::Auto };
        let f32_t = step_time(&m, &j, s, SimPrecision::F32);
        let f16_t = step_time(&m, &j, s, SimPrecision::F16);
        assert!(f16_t.compute < f32_t.compute);
        assert!(f16_t.comm < f32_t.comm); // half-width gradients
        assert!(f16_t.energy < f32_t.energy);
    }

    #[test]
    #[should_panic(expected = "strategy needs")]
    fn oversubscription_panics() {
        let m = machine(4);
        let _ = step_time(
            &m,
            &job(),
            Strategy::Data { nodes: 8, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
    }

    #[test]
    fn pipeline_bubble_shrinks_with_microbatches() {
        let m = machine(64);
        let j = job();
        let t = |mb: usize| {
            step_time(&m, &j, Strategy::Pipeline { stages: 8, microbatches: mb }, SimPrecision::F32)
        };
        let few = t(1);
        let many = t(64);
        // With one microbatch the bubble factor is s = 8×; with many it
        // approaches 1.
        assert!(
            few.compute > 6.0 * many.compute / (71.0 / 64.0),
            "few {} many {}",
            few.compute,
            many.compute
        );
        assert!(many.compute < few.compute);
        // Microbatching beats unpipelined model parallelism on compute.
        let model = step_time(&m, &j, Strategy::Model { parts: 8 }, SimPrecision::F32);
        assert!(many.compute <= model.compute * 1.2);
    }

    #[test]
    fn pipeline_microbatch_tradeoff_exists() {
        // More microbatches shrink the bubble but add per-message latency;
        // the model must show cost for both extremes.
        let m = machine(64);
        let j = job();
        let t = |mb: usize| {
            step_time(&m, &j, Strategy::Pipeline { stages: 4, microbatches: mb }, SimPrecision::F32)
                .step
        };
        let coarse = t(1);
        let sweet = t(32);
        assert!(sweet < coarse, "microbatching should pay: {coarse} vs {sweet}");
    }

    #[test]
    #[should_panic(expected = "cannot pipeline")]
    fn over_deep_pipeline_panics() {
        let m = machine(64);
        let mut j = job();
        j.cuttable_layers = 3;
        let _ = step_time(
            &m,
            &j,
            Strategy::Pipeline { stages: 16, microbatches: 4 },
            SimPrecision::F32,
        );
    }

    #[test]
    #[should_panic(expected = "cannot cut")]
    fn over_partitioning_panics() {
        let m = machine(64);
        let mut j = job();
        j.cuttable_layers = 3;
        let _ = step_time(&m, &j, Strategy::Model { parts: 16 }, SimPrecision::F32);
    }
}
