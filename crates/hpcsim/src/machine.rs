//! Node and machine models.

use crate::fabric::Fabric;
use crate::memory::{self, MemoryHierarchy, TierSpec};
use serde::{Deserialize, Serialize};

/// Emulated arithmetic precision, mirrored from `dd-tensor` without taking a
/// dependency (the simulator is numerics-free). Conversions exist at the
/// `dd-parallel` layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimPrecision {
    /// 64-bit floating point.
    F64,
    /// 32-bit floating point.
    F32,
    /// 16-bit floating point (bf16/f16 treated identically for throughput).
    F16,
    /// 8-bit integer.
    Int8,
}

impl SimPrecision {
    /// Bytes per element in this format.
    pub fn bytes(self) -> f64 {
        match self {
            SimPrecision::F64 => 8.0,
            SimPrecision::F32 => 4.0,
            SimPrecision::F16 => 2.0,
            SimPrecision::Int8 => 1.0,
        }
    }
}

/// Compute characteristics of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Peak f32 throughput in FLOP/s.
    pub peak_flops_f32: f64,
    /// Throughput multiplier for f64 relative to f32 (≤ 1 typically).
    pub f64_ratio: f64,
    /// Throughput multiplier for 16-bit formats (tensor-core-style units).
    pub f16_ratio: f64,
    /// Throughput multiplier for int8.
    pub int8_ratio: f64,
    /// Fraction of peak a real DNN kernel sustains.
    pub efficiency: f64,
    /// Energy per f32 FLOP in joules.
    pub energy_per_flop: f64,
    /// Idle/static power in watts.
    pub idle_power: f64,
    /// Memory hierarchy.
    pub memory: MemoryHierarchy,
}

impl Node {
    /// Sustained FLOP/s at a precision.
    pub fn flops_at(&self, p: SimPrecision) -> f64 {
        let ratio = match p {
            SimPrecision::F64 => self.f64_ratio,
            SimPrecision::F32 => 1.0,
            SimPrecision::F16 => self.f16_ratio,
            SimPrecision::Int8 => self.int8_ratio,
        };
        self.peak_flops_f32 * ratio * self.efficiency
    }

    /// Time to execute `flops` at a precision.
    pub fn compute_time(&self, flops: f64, p: SimPrecision) -> f64 {
        assert!(flops >= 0.0, "negative flop count");
        flops / self.flops_at(p)
    }

    /// Dynamic compute energy for `flops` at a precision. Energy per op
    /// scales with operand width (a first-order model of real silicon).
    pub fn compute_energy(&self, flops: f64, p: SimPrecision) -> f64 {
        let width_scale = p.bytes() / 4.0;
        flops.max(0.0) * self.energy_per_flop * width_scale
    }
}

/// A whole machine: homogeneous nodes plus a fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Node count.
    pub nodes: usize,
    /// Per-node model.
    pub node: Node,
    /// Interconnect.
    pub fabric: Fabric,
    /// Display name for tables.
    pub name: String,
}

impl Machine {
    /// 2017-era GPU supercomputer (P100-class nodes, fat-tree EDR fabric) —
    /// the machine the paper's workloads targeted.
    pub fn gpu_2017(nodes: usize) -> Self {
        Machine {
            nodes,
            node: Node {
                peak_flops_f32: 10.6e12,
                f64_ratio: 0.5,
                f16_ratio: 2.0,
                int8_ratio: 4.0,
                efficiency: 0.35,
                energy_per_flop: 15e-12,
                idle_power: 100.0,
                memory: memory::accelerator_node_2017(),
            },
            fabric: Fabric::infiniband_2017(),
            name: format!("gpu2017-{nodes}"),
        }
    }

    /// CPU-only commodity cluster (Xeon-class, no HBM, no NVRAM).
    pub fn cpu_cluster(nodes: usize) -> Self {
        let mut memory = memory::accelerator_node_2017();
        memory.hbm = None;
        memory.nvram = None;
        Machine {
            nodes,
            node: Node {
                peak_flops_f32: 1.5e12,
                f64_ratio: 0.5,
                f16_ratio: 1.0, // no hardware f16: same rate as f32
                int8_ratio: 2.0,
                efficiency: 0.5,
                energy_per_flop: 40e-12,
                idle_power: 200.0,
                memory,
            },
            fabric: Fabric::torus_2013(),
            name: format!("cpu-{nodes}"),
        }
    }

    /// Hypothetical future DL-optimized machine: wide low-precision units,
    /// HBM-heavy, very fast fabric — the design point the abstract argues
    /// for.
    pub fn future_dl(nodes: usize) -> Self {
        let mut memory = memory::accelerator_node_2017();
        if let Some(hbm) = &mut memory.hbm {
            *hbm = TierSpec {
                bandwidth: 3e12,
                latency: 1e-7,
                capacity: 96e9,
                energy_per_byte: 3.5e-12,
            };
        }
        if let Some(nv) = &mut memory.nvram {
            nv.bandwidth = 25e9;
            nv.capacity = 8e12;
        }
        Machine {
            nodes,
            node: Node {
                peak_flops_f32: 60e12,
                f64_ratio: 0.25,
                f16_ratio: 8.0,
                int8_ratio: 16.0,
                efficiency: 0.45,
                energy_per_flop: 4e-12,
                idle_power: 150.0,
                memory,
            },
            fabric: Fabric {
                latency: 0.7e-6,
                bandwidth: 50e9,
                per_hop_latency: 5e-8,
                topology: crate::fabric::Topology::Dragonfly,
                energy_per_byte: 10e-12,
            },
            name: format!("futuredl-{nodes}"),
        }
    }

    /// Copy with a different node count.
    pub fn scaled_to(&self, nodes: usize) -> Self {
        let mut m = self.clone();
        m.nodes = nodes;
        m
    }

    /// Aggregate sustained f32 FLOP/s.
    pub fn aggregate_flops(&self) -> f64 {
        self.nodes as f64 * self.node.flops_at(SimPrecision::F32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_throughput_ordering() {
        let m = Machine::gpu_2017(1);
        let n = &m.node;
        assert!(n.flops_at(SimPrecision::F64) < n.flops_at(SimPrecision::F32));
        assert!(n.flops_at(SimPrecision::F32) < n.flops_at(SimPrecision::F16));
        assert!(n.flops_at(SimPrecision::F16) < n.flops_at(SimPrecision::Int8));
    }

    #[test]
    fn compute_time_inverse_to_throughput() {
        let m = Machine::gpu_2017(1);
        let t32 = m.node.compute_time(1e12, SimPrecision::F32);
        let t16 = m.node.compute_time(1e12, SimPrecision::F16);
        assert!((t32 / t16 - 2.0).abs() < 1e-9, "f16 should be 2x here");
    }

    #[test]
    fn low_precision_saves_energy() {
        let m = Machine::future_dl(1);
        let e32 = m.node.compute_energy(1e12, SimPrecision::F32);
        let e8 = m.node.compute_energy(1e12, SimPrecision::Int8);
        assert!(e8 < e32 / 2.0);
    }

    #[test]
    fn presets_are_ordered_by_era() {
        let cpu = Machine::cpu_cluster(1);
        let gpu = Machine::gpu_2017(1);
        let fut = Machine::future_dl(1);
        assert!(cpu.aggregate_flops() < gpu.aggregate_flops());
        assert!(gpu.aggregate_flops() < fut.aggregate_flops());
    }

    #[test]
    fn scaled_to_changes_only_node_count() {
        let m = Machine::gpu_2017(4).scaled_to(128);
        assert_eq!(m.nodes, 128);
        assert_eq!(m.node, Machine::gpu_2017(4).node);
        assert!((m.aggregate_flops() / Machine::gpu_2017(4).aggregate_flops() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_cluster_lacks_hbm_and_nvram() {
        let m = Machine::cpu_cluster(1);
        assert!(m.node.memory.hbm.is_none());
        assert!(m.node.memory.nvram.is_none());
    }

    #[test]
    fn machine_serde_roundtrip() {
        // Machines are serializable so experiment configs can be persisted
        // alongside results.
        for m in [Machine::gpu_2017(8), Machine::cpu_cluster(4), Machine::future_dl(2)] {
            let json = serde_json::to_string(&m).unwrap();
            let back: Machine = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m);
        }
    }
}
