//! Training-data staging models (experiment E5 — "large quantities of
//! training data to be made available or generated at each node, thus
//! providing opportunities for NVRAM").

use crate::memory::{MemoryHierarchy, Tier};
use serde::{Deserialize, Serialize};

/// How a node provisions its shard of the training set across epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Staging {
    /// Re-read the shard from the parallel filesystem every epoch.
    StreamPfs,
    /// Epoch 0: read from PFS while writing through to NVRAM; later epochs
    /// read from NVRAM.
    StageNvram,
    /// Stage once into DRAM (DDR); only valid when the shard fits.
    StageDram,
    /// Generate the data in situ at `gen_rate` bytes/second equivalents
    /// (the "or generated at each node" path); costs compute, not I/O.
    GenerateOnNode,
}

impl Staging {
    /// All strategies, for sweeps.
    pub const ALL: [Staging; 4] =
        [Staging::StreamPfs, Staging::StageNvram, Staging::StageDram, Staging::GenerateOnNode];

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Staging::StreamPfs => "stream-pfs",
            Staging::StageNvram => "stage-nvram",
            Staging::StageDram => "stage-dram",
            Staging::GenerateOnNode => "generate",
        }
    }
}

/// Per-epoch I/O time report.
#[derive(Debug, Clone, PartialEq)]
pub struct IoReport {
    /// Time of the first epoch (includes staging cost).
    pub first_epoch: f64,
    /// Time of each subsequent epoch.
    pub steady_epoch: f64,
    /// Total I/O time across `epochs`.
    pub total: f64,
    /// Whether the strategy was feasible (capacity-wise); infeasible
    /// strategies fall back to PFS streaming and set this false.
    pub feasible: bool,
}

/// On-node data generation rate used by [`Staging::GenerateOnNode`]
/// (bytes of training data synthesized per second).
pub const GENERATE_RATE: f64 = 2e9;

/// I/O time for one node reading (or producing) its `shard_bytes` of
/// training data every epoch for `epochs` epochs.
pub fn epoch_io(
    memory: &MemoryHierarchy,
    staging: Staging,
    shard_bytes: f64,
    epochs: usize,
) -> IoReport {
    assert!(shard_bytes >= 0.0, "negative shard size");
    assert!(epochs >= 1, "need at least one epoch");
    let Some(pfs) = memory.tier(Tier::Pfs) else { unreachable!("every hierarchy has a PFS") };
    let stream = pfs.transfer_time(shard_bytes);
    match staging {
        Staging::StreamPfs => IoReport {
            first_epoch: stream,
            steady_epoch: stream,
            total: stream * epochs as f64,
            feasible: true,
        },
        Staging::StageNvram => match memory.tier(Tier::Nvram) {
            Some(nv) if shard_bytes <= nv.capacity => {
                // Write-through staging overlaps with the PFS read; the
                // first epoch is bounded by the slower of the two streams.
                let first = stream.max(nv.transfer_time(shard_bytes));
                let steady = nv.transfer_time(shard_bytes);
                IoReport {
                    first_epoch: first,
                    steady_epoch: steady,
                    total: first + steady * (epochs - 1) as f64,
                    feasible: true,
                }
            }
            _ => {
                let fallback = epoch_io(memory, Staging::StreamPfs, shard_bytes, epochs);
                IoReport { feasible: false, ..fallback }
            }
        },
        Staging::StageDram => {
            let ddr = &memory.ddr;
            if shard_bytes <= ddr.capacity {
                let first = stream.max(ddr.transfer_time(shard_bytes));
                let steady = ddr.transfer_time(shard_bytes);
                IoReport {
                    first_epoch: first,
                    steady_epoch: steady,
                    total: first + steady * (epochs - 1) as f64,
                    feasible: true,
                }
            } else {
                let fallback = epoch_io(memory, Staging::StreamPfs, shard_bytes, epochs);
                IoReport { feasible: false, ..fallback }
            }
        }
        Staging::GenerateOnNode => {
            // Generate once, keep in the fastest tier that holds it; steady
            // epochs read from that tier.
            let gen = shard_bytes / GENERATE_RATE;
            let tier = memory.placement_for(shard_bytes);
            let Some(spec) = memory.tier(tier) else {
                unreachable!("placement returns an existing tier")
            };
            let steady = spec.transfer_time(shard_bytes);
            IoReport {
                first_epoch: gen.max(steady),
                steady_epoch: steady,
                total: gen.max(steady) + steady * (epochs - 1) as f64,
                feasible: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::accelerator_node_2017;

    #[test]
    fn nvram_staging_beats_pfs_streaming_over_epochs() {
        let mem = accelerator_node_2017();
        let shard = 200e9; // 200 GB/node: too big for DRAM, fits NVRAM
        let pfs = epoch_io(&mem, Staging::StreamPfs, shard, 50);
        let nvram = epoch_io(&mem, Staging::StageNvram, shard, 50);
        assert!(nvram.feasible);
        assert!(nvram.total < pfs.total / 3.0, "nvram {} vs pfs {}", nvram.total, pfs.total);
        // But the first epoch is no faster (bounded by the PFS read).
        assert!(nvram.first_epoch >= pfs.first_epoch * 0.99);
    }

    #[test]
    fn dram_staging_fastest_when_it_fits() {
        let mem = accelerator_node_2017();
        let shard = 50e9;
        let dram = epoch_io(&mem, Staging::StageDram, shard, 20);
        let nvram = epoch_io(&mem, Staging::StageNvram, shard, 20);
        assert!(dram.feasible);
        assert!(dram.steady_epoch < nvram.steady_epoch);
    }

    #[test]
    fn oversized_dram_falls_back_to_pfs() {
        let mem = accelerator_node_2017();
        let shard = 1e12; // 1 TB > 256 GB DDR
        let r = epoch_io(&mem, Staging::StageDram, shard, 10);
        assert!(!r.feasible);
        let pfs = epoch_io(&mem, Staging::StreamPfs, shard, 10);
        assert_eq!(r.total, pfs.total);
    }

    #[test]
    fn oversized_nvram_falls_back_to_pfs() {
        let mem = accelerator_node_2017();
        let shard = 10e12;
        let r = epoch_io(&mem, Staging::StageNvram, shard, 10);
        assert!(!r.feasible);
    }

    #[test]
    fn node_without_nvram_cannot_stage() {
        let mut mem = accelerator_node_2017();
        mem.nvram = None;
        let r = epoch_io(&mem, Staging::StageNvram, 1e9, 5);
        assert!(!r.feasible);
    }

    #[test]
    fn generation_amortizes_like_staging() {
        let mem = accelerator_node_2017();
        let shard = 100e9;
        let gen = epoch_io(&mem, Staging::GenerateOnNode, shard, 30);
        let pfs = epoch_io(&mem, Staging::StreamPfs, shard, 30);
        assert!(gen.total < pfs.total, "gen {} pfs {}", gen.total, pfs.total);
        assert!(gen.steady_epoch <= gen.first_epoch);
    }

    #[test]
    fn single_epoch_staging_has_no_advantage() {
        let mem = accelerator_node_2017();
        let shard = 200e9;
        let pfs = epoch_io(&mem, Staging::StreamPfs, shard, 1);
        let nvram = epoch_io(&mem, Staging::StageNvram, shard, 1);
        assert!(nvram.total >= pfs.total * 0.99);
    }
}
