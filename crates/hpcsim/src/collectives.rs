//! Analytical cost models for the collectives distributed training uses.
//!
//! Standard alpha-beta models (Thakur et al.): `alpha` is per-message
//! startup, `beta` seconds/byte, `gamma` seconds/byte of local reduction
//! arithmetic (taken as negligible here, folded into beta where relevant).

use crate::fabric::Fabric;
use serde::{Deserialize, Serialize};

/// Allreduce algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllreduceAlgo {
    /// Ring: bandwidth-optimal, latency grows linearly in p.
    Ring,
    /// Recursive doubling: latency-optimal (log p rounds), sends the full
    /// buffer each round.
    RecursiveDoubling,
    /// Reduce-scatter + allgather (Rabenseifner): bandwidth-optimal with
    /// log p latency.
    Rabenseifner,
    /// Pick the cheapest of the above for the given size and scale.
    Auto,
}

impl AllreduceAlgo {
    /// All concrete algorithms (excludes `Auto`).
    pub const CONCRETE: [AllreduceAlgo; 3] =
        [AllreduceAlgo::Ring, AllreduceAlgo::RecursiveDoubling, AllreduceAlgo::Rabenseifner];
}

/// Time for an allreduce of `bytes` over `p` ranks.
pub fn allreduce_time(fabric: &Fabric, algo: AllreduceAlgo, bytes: f64, p: usize) -> f64 {
    assert!(bytes >= 0.0, "negative buffer size");
    assert!(p >= 1, "need at least one rank");
    if p == 1 || bytes == 0.0 {
        return 0.0;
    }
    let alpha = fabric.alpha(p);
    let beta = fabric.beta();
    let pf = p as f64;
    let lg = (p as f64).log2().ceil();
    match algo {
        AllreduceAlgo::Ring => {
            // 2(p-1) steps, each moving bytes/p.
            2.0 * (pf - 1.0) * (alpha + (bytes / pf) * beta)
        }
        AllreduceAlgo::RecursiveDoubling => lg * (alpha + bytes * beta),
        AllreduceAlgo::Rabenseifner => 2.0 * lg * alpha + 2.0 * ((pf - 1.0) / pf) * bytes * beta,
        AllreduceAlgo::Auto => AllreduceAlgo::CONCRETE
            .iter()
            .map(|&a| allreduce_time(fabric, a, bytes, p))
            .fold(f64::INFINITY, f64::min),
    }
}

/// Time for a broadcast of `bytes` from one root to `p` ranks
/// (binomial tree).
pub fn broadcast_time(fabric: &Fabric, bytes: f64, p: usize) -> f64 {
    if p <= 1 || bytes == 0.0 {
        return 0.0;
    }
    (p as f64).log2().ceil() * (fabric.alpha(p) + bytes * fabric.beta())
}

/// Time for an allgather where each rank contributes `bytes_per_rank`
/// (ring algorithm).
pub fn allgather_time(fabric: &Fabric, bytes_per_rank: f64, p: usize) -> f64 {
    if p <= 1 || bytes_per_rank == 0.0 {
        return 0.0;
    }
    let pf = p as f64;
    (pf - 1.0) * (fabric.alpha(p) + bytes_per_rank * fabric.beta())
}

/// Time for a point-to-point exchange of activation slabs between pipeline
/// or model-parallel neighbours.
pub fn neighbor_exchange_time(fabric: &Fabric, bytes: f64, p: usize) -> f64 {
    fabric.ptp_time(bytes, p)
}

/// Fabric energy consumed by an allreduce (total bytes crossing links).
pub fn allreduce_energy(fabric: &Fabric, algo: AllreduceAlgo, bytes: f64, p: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let pf = p as f64;
    let total_bytes = match algo {
        AllreduceAlgo::Ring | AllreduceAlgo::Rabenseifner | AllreduceAlgo::Auto => {
            // Bandwidth-optimal algorithms move ~2 bytes per element per rank.
            2.0 * ((pf - 1.0) / pf) * bytes * pf
        }
        AllreduceAlgo::RecursiveDoubling => (pf).log2().ceil() * bytes * pf,
    };
    fabric.energy(total_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::infiniband_2017()
    }

    #[test]
    fn single_rank_is_free() {
        for algo in AllreduceAlgo::CONCRETE {
            assert_eq!(allreduce_time(&fabric(), algo, 1e9, 1), 0.0);
        }
        assert_eq!(broadcast_time(&fabric(), 1e6, 1), 0.0);
    }

    #[test]
    fn ring_is_bandwidth_optimal_for_large_buffers() {
        let f = fabric();
        let bytes = 1e9;
        let p = 64;
        let ring = allreduce_time(&f, AllreduceAlgo::Ring, bytes, p);
        let rd = allreduce_time(&f, AllreduceAlgo::RecursiveDoubling, bytes, p);
        assert!(ring < rd, "ring {ring} vs recursive doubling {rd}");
    }

    #[test]
    fn recursive_doubling_wins_small_messages_at_scale() {
        let f = fabric();
        let bytes = 64.0;
        let p = 1024;
        let ring = allreduce_time(&f, AllreduceAlgo::Ring, bytes, p);
        let rd = allreduce_time(&f, AllreduceAlgo::RecursiveDoubling, bytes, p);
        assert!(rd < ring, "rd {rd} vs ring {ring}");
    }

    #[test]
    fn auto_picks_minimum() {
        let f = fabric();
        for &(bytes, p) in &[(64.0, 1024usize), (1e9, 64), (1e6, 8)] {
            let auto = allreduce_time(&f, AllreduceAlgo::Auto, bytes, p);
            let best = AllreduceAlgo::CONCRETE
                .iter()
                .map(|&a| allreduce_time(&f, a, bytes, p))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(auto, best);
        }
    }

    #[test]
    fn allreduce_grows_with_scale_for_fixed_bytes() {
        let f = fabric();
        let t8 = allreduce_time(&f, AllreduceAlgo::Auto, 1e8, 8);
        let t512 = allreduce_time(&f, AllreduceAlgo::Auto, 1e8, 512);
        assert!(t512 > t8, "cost must grow with p: {t8} vs {t512}");
        // But sub-linearly for bandwidth-optimal algorithms.
        assert!(t512 < t8 * 64.0);
    }

    #[test]
    fn rabenseifner_bandwidth_term_matches_ring() {
        // For huge buffers the bandwidth terms dominate and agree.
        let f = fabric();
        let bytes = 1e11;
        let p = 32;
        let ring = allreduce_time(&f, AllreduceAlgo::Ring, bytes, p);
        let rab = allreduce_time(&f, AllreduceAlgo::Rabenseifner, bytes, p);
        assert!((ring - rab).abs() / ring < 0.01, "ring {ring} rab {rab}");
    }

    #[test]
    fn broadcast_and_allgather_scale() {
        let f = fabric();
        assert!(broadcast_time(&f, 1e6, 64) > broadcast_time(&f, 1e6, 4));
        assert!(allgather_time(&f, 1e6, 64) > allgather_time(&f, 1e6, 4));
    }

    #[test]
    fn energy_positive_and_scales_with_bytes() {
        let f = fabric();
        let e1 = allreduce_energy(&f, AllreduceAlgo::Ring, 1e6, 16);
        let e2 = allreduce_energy(&f, AllreduceAlgo::Ring, 2e6, 16);
        assert!(e1 > 0.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}
