//! Interconnect fabric model.
//!
//! The abstract calls for "a high-bandwidth communication fabric between
//! (perhaps modest scale) groups of processors to support network model
//! parallelism". The fabric model is an alpha-beta (latency-bandwidth) cost
//! with a topology-dependent hop factor, which is all the collective and
//! model-parallel cost models need.

use serde::{Deserialize, Serialize};

/// Network topology; affects the average hop count between ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Full-bisection fat tree: hop count treated as constant.
    FatTree,
    /// 3-D torus: average hops grow with the cube root of the node count.
    Torus3d,
    /// Dragonfly: at most one global hop, modelled as a small constant.
    Dragonfly,
}

impl Topology {
    /// Mean hop count between two random ranks in a machine of `nodes`.
    pub fn mean_hops(self, nodes: usize) -> f64 {
        let n = nodes.max(1) as f64;
        match self {
            Topology::FatTree => 3.0,
            Topology::Torus3d => 0.75 * n.cbrt().max(1.0),
            Topology::Dragonfly => 2.0,
        }
    }
}

/// Fabric parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fabric {
    /// Zero-byte message latency in seconds (per hop base cost included).
    pub latency: f64,
    /// Per-link bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-hop additional latency in seconds.
    pub per_hop_latency: f64,
    /// Topology.
    pub topology: Topology,
    /// Energy per byte traversing the fabric (joules/byte).
    pub energy_per_byte: f64,
}

impl Fabric {
    /// 2017-era EDR InfiniBand-class fat tree.
    pub fn infiniband_2017() -> Self {
        Fabric {
            latency: 1.0e-6,
            bandwidth: 12.5e9,
            per_hop_latency: 1.0e-7,
            topology: Topology::FatTree,
            energy_per_byte: 30e-12,
        }
    }

    /// Gemini/Aries-class torus for a Titan-era machine.
    pub fn torus_2013() -> Self {
        Fabric {
            latency: 1.5e-6,
            bandwidth: 8e9,
            per_hop_latency: 2.0e-7,
            topology: Topology::Torus3d,
            energy_per_byte: 40e-12,
        }
    }

    /// Copy with a different bandwidth (used by the E3 bandwidth sweep).
    pub fn with_bandwidth(mut self, bandwidth: f64) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Point-to-point time for one message of `bytes` in a machine of
    /// `nodes` (alpha-beta with topology hops).
    pub fn ptp_time(&self, bytes: f64, nodes: usize) -> f64 {
        assert!(bytes >= 0.0, "negative message size");
        let hops = self.topology.mean_hops(nodes);
        self.latency + hops * self.per_hop_latency + bytes / self.bandwidth
    }

    /// Effective alpha (startup) cost for collectives in a machine of
    /// `nodes`.
    pub fn alpha(&self, nodes: usize) -> f64 {
        self.latency + self.topology.mean_hops(nodes) * self.per_hop_latency
    }

    /// Beta: seconds per byte.
    pub fn beta(&self) -> f64 {
        1.0 / self.bandwidth
    }

    /// Energy for moving `bytes` once across the fabric.
    pub fn energy(&self, bytes: f64) -> f64 {
        bytes.max(0.0) * self.energy_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptp_monotone_in_size() {
        let f = Fabric::infiniband_2017();
        let t1 = f.ptp_time(1e3, 64);
        let t2 = f.ptp_time(1e6, 64);
        let t3 = f.ptp_time(1e9, 64);
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let f = Fabric::infiniband_2017();
        let t = f.ptp_time(8.0, 64);
        // An 8-byte message is essentially pure latency.
        assert!((t - f.alpha(64)) / t < 0.01);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let f = Fabric::infiniband_2017();
        let t = f.ptp_time(1e9, 64);
        let pure_bw = 1e9 / f.bandwidth;
        assert!((t - pure_bw) / t < 0.01);
    }

    #[test]
    fn torus_hops_grow_with_machine() {
        let small = Topology::Torus3d.mean_hops(8);
        let large = Topology::Torus3d.mean_hops(32768);
        assert!(large > 3.0 * small);
        // Fat tree is flat.
        assert_eq!(Topology::FatTree.mean_hops(8), Topology::FatTree.mean_hops(32768));
    }

    #[test]
    fn with_bandwidth_preserves_latency() {
        let f = Fabric::infiniband_2017().with_bandwidth(100e9);
        assert_eq!(f.bandwidth, 100e9);
        assert_eq!(f.latency, Fabric::infiniband_2017().latency);
    }
}
