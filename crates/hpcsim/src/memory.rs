//! Memory and storage tier models.
//!
//! The abstract: "power efficient DNNs require high-bandwidth memory be
//! physically close to arithmetic units to reduce costs of data motion" and
//! "training data to be made available or generated at each node, thus
//! providing opportunities for NVRAM". Tiers are parameterized by bandwidth,
//! latency, capacity and energy per byte so experiments E4/E5 can sweep
//! placement.

use serde::{Deserialize, Serialize};

/// A memory or storage tier in the per-node hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// On-package high-bandwidth memory (HBM/MCDRAM-class).
    Hbm,
    /// Off-package DDR DRAM.
    Ddr,
    /// Node-local non-volatile memory (3D-XPoint/flash-class).
    Nvram,
    /// Remote parallel filesystem (Lustre/GPFS-class), shared by all nodes.
    Pfs,
}

impl Tier {
    /// All tiers, fastest first.
    pub const ALL: [Tier; 4] = [Tier::Hbm, Tier::Ddr, Tier::Nvram, Tier::Pfs];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Hbm => "HBM",
            Tier::Ddr => "DDR",
            Tier::Nvram => "NVRAM",
            Tier::Pfs => "PFS",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Performance/energy parameters of one tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Access latency in seconds (per request).
    pub latency: f64,
    /// Capacity in bytes (per node; PFS capacity is aggregate).
    pub capacity: f64,
    /// Energy cost in joules per byte moved.
    pub energy_per_byte: f64,
}

impl TierSpec {
    /// Time to move `bytes` as one streaming transfer.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "negative transfer size");
        if bytes == 0.0 {
            return 0.0;
        }
        self.latency + bytes / self.bandwidth
    }

    /// Energy to move `bytes`.
    pub fn transfer_energy(&self, bytes: f64) -> f64 {
        bytes.max(0.0) * self.energy_per_byte
    }
}

/// A node's full memory hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    /// HBM spec (None when the node has no HBM).
    pub hbm: Option<TierSpec>,
    /// DDR spec.
    pub ddr: TierSpec,
    /// NVRAM spec (None when the node has no NVRAM).
    pub nvram: Option<TierSpec>,
    /// PFS spec as observed from one node (shared bandwidth already divided
    /// by expected concurrency is the caller's job; this is the per-node
    /// achievable stream rate).
    pub pfs: TierSpec,
}

impl MemoryHierarchy {
    /// Look up a tier's spec; `None` when the node lacks that tier.
    pub fn tier(&self, tier: Tier) -> Option<&TierSpec> {
        match tier {
            Tier::Hbm => self.hbm.as_ref(),
            Tier::Ddr => Some(&self.ddr),
            Tier::Nvram => self.nvram.as_ref(),
            Tier::Pfs => Some(&self.pfs),
        }
    }

    /// Fastest tier that can hold `bytes` (falls through the hierarchy).
    pub fn placement_for(&self, bytes: f64) -> Tier {
        for tier in Tier::ALL {
            if let Some(spec) = self.tier(tier) {
                if bytes <= spec.capacity {
                    return tier;
                }
            }
        }
        Tier::Pfs
    }
}

/// 2017-era accelerator-node hierarchy (P100-class HBM + DDR + NVMe burst
/// buffer + Lustre).
pub fn accelerator_node_2017() -> MemoryHierarchy {
    MemoryHierarchy {
        hbm: Some(TierSpec {
            bandwidth: 720e9,
            latency: 2e-7,
            capacity: 16e9,
            energy_per_byte: 7e-12,
        }),
        ddr: TierSpec { bandwidth: 120e9, latency: 1e-7, capacity: 256e9, energy_per_byte: 20e-12 },
        nvram: Some(TierSpec {
            bandwidth: 6e9,
            latency: 2e-5,
            capacity: 1.6e12,
            energy_per_byte: 60e-12,
        }),
        pfs: TierSpec { bandwidth: 1e9, latency: 5e-3, capacity: 1e15, energy_per_byte: 200e-12 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let spec =
            TierSpec { bandwidth: 100.0, latency: 1.0, capacity: 1e9, energy_per_byte: 1e-9 };
        assert_eq!(spec.transfer_time(0.0), 0.0);
        assert!((spec.transfer_time(200.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_ordering_is_sane() {
        let h = accelerator_node_2017();
        let hbm = h.tier(Tier::Hbm).unwrap();
        let ddr = h.tier(Tier::Ddr).unwrap();
        let nvram = h.tier(Tier::Nvram).unwrap();
        let pfs = h.tier(Tier::Pfs).unwrap();
        assert!(hbm.bandwidth > ddr.bandwidth);
        assert!(ddr.bandwidth > nvram.bandwidth);
        assert!(nvram.bandwidth > pfs.bandwidth);
        assert!(hbm.capacity < ddr.capacity);
        assert!(ddr.capacity < nvram.capacity);
        assert!(hbm.energy_per_byte < ddr.energy_per_byte);
    }

    #[test]
    fn placement_falls_through_by_capacity() {
        let h = accelerator_node_2017();
        assert_eq!(h.placement_for(1e9), Tier::Hbm);
        assert_eq!(h.placement_for(100e9), Tier::Ddr);
        assert_eq!(h.placement_for(1e12), Tier::Nvram);
        assert_eq!(h.placement_for(1e14), Tier::Pfs);
    }

    #[test]
    fn node_without_hbm_places_in_ddr() {
        let mut h = accelerator_node_2017();
        h.hbm = None;
        assert_eq!(h.placement_for(1e9), Tier::Ddr);
        assert!(h.tier(Tier::Hbm).is_none());
    }

    #[test]
    fn energy_scales_linearly() {
        let spec = TierSpec { bandwidth: 1.0, latency: 0.0, capacity: 1.0, energy_per_byte: 2.0 };
        assert_eq!(spec.transfer_energy(3.0), 6.0);
    }
}
