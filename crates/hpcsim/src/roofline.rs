//! Roofline model: attainable throughput as a function of arithmetic
//! intensity and the memory tier feeding the arithmetic units (experiment
//! E4 — "high-bandwidth memory physically close to arithmetic units").

use crate::machine::{Node, SimPrecision};
use crate::memory::Tier;

/// Attainable FLOP/s for a kernel with arithmetic intensity `ai`
/// (FLOPs per byte moved) when operands stream from `tier`.
pub fn attainable_flops(node: &Node, tier: Tier, ai: f64, p: SimPrecision) -> f64 {
    assert!(ai > 0.0, "arithmetic intensity must be positive");
    let peak = node.flops_at(p);
    let bw = node.memory.tier(tier).map(|t| t.bandwidth).unwrap_or(node.memory.ddr.bandwidth);
    peak.min(ai * bw)
}

/// The ridge point: the arithmetic intensity at which a kernel becomes
/// compute-bound on this tier.
pub fn ridge_intensity(node: &Node, tier: Tier, p: SimPrecision) -> f64 {
    let peak = node.flops_at(p);
    let bw = node.memory.tier(tier).map(|t| t.bandwidth).unwrap_or(node.memory.ddr.bandwidth);
    peak / bw
}

/// Arithmetic intensity of an `m×k · k×n` matmul with `bytes_per_elem`-wide
/// operands, counting compulsory traffic only (each operand read once,
/// result written once).
pub fn matmul_intensity(m: usize, k: usize, n: usize, bytes_per_elem: f64) -> f64 {
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let bytes = bytes_per_elem * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
    flops / bytes
}

/// Time and energy to execute a kernel of `flops` at intensity `ai` from a
/// given tier; the data-motion share of the energy is reported separately,
/// making the "cost of data motion" visible.
pub struct KernelCost {
    /// Execution time in seconds.
    pub time: f64,
    /// Compute (arithmetic) energy in joules.
    pub compute_energy: f64,
    /// Data-motion energy in joules.
    pub memory_energy: f64,
}

/// Cost a kernel on a node/tier pair.
pub fn kernel_cost(node: &Node, tier: Tier, flops: f64, ai: f64, p: SimPrecision) -> KernelCost {
    let rate = attainable_flops(node, tier, ai, p);
    let bytes = flops / ai;
    let e_byte = node
        .memory
        .tier(tier)
        .map(|t| t.energy_per_byte)
        .unwrap_or(node.memory.ddr.energy_per_byte);
    KernelCost {
        time: flops / rate,
        compute_energy: node.compute_energy(flops, p),
        memory_energy: bytes * e_byte,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn low_intensity_is_bandwidth_bound() {
        let node = Machine::gpu_2017(1).node;
        let ai = 0.5;
        let got = attainable_flops(&node, Tier::Hbm, ai, SimPrecision::F32);
        let hbm_bw = node.memory.hbm.unwrap().bandwidth;
        assert!((got - ai * hbm_bw).abs() / got < 1e-9);
        assert!(got < node.flops_at(SimPrecision::F32));
    }

    #[test]
    fn high_intensity_is_compute_bound() {
        let node = Machine::gpu_2017(1).node;
        let got = attainable_flops(&node, Tier::Hbm, 1e6, SimPrecision::F32);
        assert_eq!(got, node.flops_at(SimPrecision::F32));
    }

    #[test]
    fn hbm_beats_ddr_in_bandwidth_bound_regime() {
        let node = Machine::gpu_2017(1).node;
        let ai = 1.0;
        let hbm = attainable_flops(&node, Tier::Hbm, ai, SimPrecision::F32);
        let ddr = attainable_flops(&node, Tier::Ddr, ai, SimPrecision::F32);
        assert!(hbm > 3.0 * ddr, "hbm {hbm} vs ddr {ddr}");
    }

    #[test]
    fn ridge_moves_right_for_lower_precision() {
        // Faster arithmetic needs more intensity to stay compute-bound.
        let node = Machine::gpu_2017(1).node;
        let r32 = ridge_intensity(&node, Tier::Hbm, SimPrecision::F32);
        let r8 = ridge_intensity(&node, Tier::Hbm, SimPrecision::Int8);
        assert!(r8 > r32);
    }

    #[test]
    fn matmul_intensity_grows_with_size() {
        let small = matmul_intensity(32, 32, 32, 4.0);
        let large = matmul_intensity(2048, 2048, 2048, 4.0);
        assert!(large > 10.0 * small);
        // Square n×n matmul intensity ≈ n / (6 bytes-ratio): check exact.
        let n = 512;
        let want = 2.0 * (n as f64).powi(3) / (4.0 * 3.0 * (n as f64).powi(2));
        assert!((matmul_intensity(n, n, n, 4.0) - want).abs() < 1e-9);
    }

    #[test]
    fn kernel_cost_memory_energy_dominates_at_low_intensity() {
        let node = Machine::gpu_2017(1).node;
        let cost = kernel_cost(&node, Tier::Ddr, 1e9, 0.25, SimPrecision::F32);
        assert!(cost.memory_energy > cost.compute_energy);
        let cost_hi = kernel_cost(&node, Tier::Hbm, 1e9, 1000.0, SimPrecision::F32);
        assert!(cost_hi.compute_energy > cost_hi.memory_energy);
    }
}
