//! # dd-hpcsim — HPC architecture cost-model simulator
//!
//! The paper argues for specific architectural features (low-precision
//! units, HBM near ALUs, high-bandwidth fabric for model parallelism, NVRAM
//! for per-node training data). We do not have that hardware; this crate
//! substitutes a calibrated analytical simulator so every claim becomes a
//! measurable experiment:
//!
//! * [`machine`] — node compute models with per-precision throughput and
//!   energy, plus machine presets (`gpu_2017`, `cpu_cluster`, `future_dl`).
//! * [`memory`] — HBM/DDR/NVRAM/PFS tier specs (bandwidth, latency,
//!   capacity, energy/byte).
//! * [`fabric`] — alpha-beta interconnect with topology hop models.
//! * [`collectives`] — ring / recursive-doubling / Rabenseifner allreduce,
//!   broadcast, allgather cost models.
//! * [`roofline`] — attainable-FLOPs model quantifying the HBM-proximity
//!   claim (E4).
//! * [`storage`] — epoch I/O under PFS streaming vs NVRAM/DRAM staging vs
//!   on-node generation (E5).
//! * [`trainsim`] — one-step time/energy under data, model and hybrid
//!   parallelism (E2, E3, E7).
//! * [`failure`] — node MTBF model, tiered checkpoint costs, Young/Daly
//!   optimal intervals and a deterministic checkpointed-run simulator
//!   (E11).
//!
//! All quantities are f64 seconds/joules/bytes. The simulator is
//! deliberately numerics-free (no dependency on `dd-tensor`): `dd-parallel`
//! bridges real trained models into [`trainsim::TrainJob`] descriptions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod fabric;
pub mod failure;
pub mod machine;
pub mod memory;
pub mod roofline;
pub mod storage;
pub mod trace;
pub mod trainsim;

pub use collectives::{allgather_time, allreduce_time, broadcast_time, AllreduceAlgo};
pub use fabric::{Fabric, Topology};
pub use failure::{
    checkpoint_cost, expected_runtime, mean_simulated_runtime, simulate_checkpointed_run,
    young_daly_interval, CheckpointCost, FailureModel, RunOutcome,
};
pub use machine::{Machine, Node, SimPrecision};
pub use memory::{MemoryHierarchy, Tier, TierSpec};
pub use storage::{epoch_io, IoReport, Staging};
pub use trace::{trace_training_run, Phase, Span, Trace};
pub use trainsim::{step_time, StepBreakdown, Strategy, TrainJob};
