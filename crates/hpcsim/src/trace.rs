//! Execution traces for simulated training runs.
//!
//! A [`Trace`] records timestamped phase intervals (compute / communication
//! / I/O / checkpoint) for a simulated job, supports utilization accounting,
//! and renders a text timeline — the "where does the time go" view that
//! motivates each of the abstract's architecture asks.
//!
//! The phase vocabulary is shared with the real instrumentation in `dd-obs`
//! (re-exported here as [`Phase`]), so a modeled trace and a measured
//! profile break time down into the same four buckets and can be compared
//! row for row (experiment E12).

use crate::machine::{Machine, SimPrecision};
use crate::storage::Staging;
use crate::trainsim::{step_time, Strategy, TrainJob};
use serde::{Deserialize, Serialize};

pub use dd_obs::Phase;

/// One recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Phase kind.
    pub phase: Phase,
    /// Start time (seconds since run start).
    pub start: f64,
    /// End time.
    pub end: f64,
}

impl Span {
    /// Interval length.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// An append-only trace of simulated phases.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    spans: Vec<Span>,
    cursor: f64,
}

impl Trace {
    /// Empty trace at t = 0.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append a phase of the given duration at the current cursor.
    pub fn push(&mut self, phase: Phase, duration: f64) {
        assert!(duration >= 0.0, "negative duration");
        if duration == 0.0 {
            return;
        }
        let span = Span { phase, start: self.cursor, end: self.cursor + duration };
        self.cursor = span.end;
        self.spans.push(span);
    }

    /// All spans in order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total simulated time.
    pub fn total(&self) -> f64 {
        self.cursor
    }

    /// Time spent in one phase.
    pub fn time_in(&self, phase: Phase) -> f64 {
        self.spans.iter().filter(|s| s.phase == phase).map(Span::duration).sum()
    }

    /// Fraction of total time spent in a phase (0 when the trace is empty).
    pub fn utilization(&self, phase: Phase) -> f64 {
        if self.cursor <= 0.0 {
            return 0.0;
        }
        self.time_in(phase) / self.cursor
    }

    /// Render a fixed-width text timeline (`#` compute, `~` comm, `.` I/O,
    /// `+` checkpoint).
    pub fn timeline(&self, width: usize) -> String {
        assert!(width >= 1, "need at least one column");
        if self.cursor <= 0.0 {
            return String::new();
        }
        let mut out: Vec<char> = vec![' '; width];
        for span in &self.spans {
            // dd-lint: allow(lossy-cast/float-to-int) -- ASCII timeline column: fraction of the row width, floored and clamped to the row
            let lo = ((span.start / self.cursor) * width as f64).floor() as usize;
            // dd-lint: allow(lossy-cast/float-to-int) -- ASCII timeline column: fraction of the row width, ceil'd and clamped to the row
            let hi = (((span.end / self.cursor) * width as f64).ceil() as usize).min(width);
            for c in out.iter_mut().take(hi).skip(lo.min(width)) {
                *c = span.phase.glyph();
            }
        }
        out.into_iter().collect()
    }

    /// One-line utilization summary. The checkpoint share is appended only
    /// when nonzero, keeping the common no-checkpoint output stable.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "total {:.3}s | compute {:.1}% | comm {:.1}% | io {:.1}%",
            self.total(),
            100.0 * self.utilization(Phase::Compute),
            100.0 * self.utilization(Phase::Comm),
            100.0 * self.utilization(Phase::Io),
        );
        let ckpt = self.utilization(Phase::Checkpoint);
        if ckpt > 0.0 {
            line.push_str(&format!(" | checkpoint {:.1}%", 100.0 * ckpt));
        }
        line
    }
}

/// Simulate a whole training run — initial staging I/O plus `steps` training
/// steps — and return its trace. Per-step compute and (exposed) comm come
/// from [`step_time`]; epoch boundaries insert steady-state I/O from the
/// staging model.
#[allow(clippy::too_many_arguments)]
pub fn trace_training_run(
    machine: &Machine,
    job: &TrainJob,
    strategy: Strategy,
    precision: SimPrecision,
    staging: Staging,
    shard_bytes: f64,
    steps: usize,
    steps_per_epoch: usize,
) -> Trace {
    assert!(steps_per_epoch >= 1, "steps per epoch must be >= 1");
    let breakdown = step_time(machine, job, strategy, precision);
    let epochs = steps.div_ceil(steps_per_epoch).max(1);
    let io = crate::storage::epoch_io(&machine.node.memory, staging, shard_bytes, epochs.max(2));
    let mut trace = Trace::new();
    trace.push(Phase::Io, io.first_epoch);
    for step in 0..steps {
        if step > 0 && step % steps_per_epoch == 0 {
            trace.push(Phase::Io, io.steady_epoch);
        }
        trace.push(Phase::Compute, breakdown.compute);
        trace.push(Phase::Comm, breakdown.comm);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::AllreduceAlgo;

    #[test]
    fn push_and_accounting() {
        let mut t = Trace::new();
        t.push(Phase::Compute, 2.0);
        t.push(Phase::Comm, 1.0);
        t.push(Phase::Compute, 1.0);
        t.push(Phase::Io, 0.0); // dropped
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.total(), 4.0);
        assert_eq!(t.time_in(Phase::Compute), 3.0);
        assert!((t.utilization(Phase::Comm) - 0.25).abs() < 1e-12);
        assert_eq!(t.utilization(Phase::Io), 0.0);
    }

    #[test]
    fn spans_are_contiguous_and_ordered() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(if i % 2 == 0 { Phase::Compute } else { Phase::Comm }, 0.5);
        }
        for w in t.spans().windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
    }

    #[test]
    fn timeline_renders_proportions() {
        let mut t = Trace::new();
        t.push(Phase::Compute, 3.0);
        t.push(Phase::Comm, 1.0);
        let line = t.timeline(40);
        assert_eq!(line.len(), 40);
        let hashes = line.chars().filter(|&c| c == '#').count();
        let tildes = line.chars().filter(|&c| c == '~').count();
        assert!((28..=32).contains(&hashes), "compute cells {hashes}");
        assert!((8..=12).contains(&tildes), "comm cells {tildes}");
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert_eq!(t.timeline(10), "");
        assert_eq!(t.utilization(Phase::Compute), 0.0);
        assert!(t.summary().contains("0.000"));
    }

    #[test]
    fn checkpoint_share_appears_only_when_present() {
        let mut t = Trace::new();
        t.push(Phase::Compute, 3.0);
        assert!(!t.summary().contains("checkpoint"));
        t.push(Phase::Checkpoint, 1.0);
        let s = t.summary();
        assert!(s.contains("checkpoint 25.0%"), "summary: {s}");
        assert_eq!(t.timeline(4).chars().filter(|&c| c == '+').count(), 1);
    }

    #[test]
    fn training_run_trace_shape() {
        let machine = Machine::gpu_2017(64);
        let job = TrainJob::from_dense_net(50e6, 1000, 4096, 8);
        let trace = trace_training_run(
            &machine,
            &job,
            Strategy::Data { nodes: 64, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
            Staging::StageNvram,
            64e9,
            20,
            10,
        );
        // 20 steps × (compute [+ comm]) + initial I/O + 1 epoch-boundary I/O.
        assert!(trace.time_in(Phase::Io) > 0.0);
        assert!(trace.time_in(Phase::Compute) > 0.0);
        let covered =
            trace.time_in(Phase::Compute) + trace.time_in(Phase::Comm) + trace.time_in(Phase::Io);
        assert!((covered - trace.total()).abs() < 1e-9);
    }

    #[test]
    fn comm_share_in_trace_matches_breakdown() {
        let machine = Machine::gpu_2017(256);
        let job = TrainJob::from_dense_net(50e6, 1000, 4096, 8);
        let strategy = Strategy::Data { nodes: 256, algo: AllreduceAlgo::Auto };
        let b = step_time(&machine, &job, strategy, SimPrecision::F32);
        // Without I/O, trace utilization reduces to the step breakdown.
        let trace = trace_training_run(
            &machine,
            &job,
            strategy,
            SimPrecision::F32,
            Staging::StageDram,
            0.0,
            50,
            1000,
        );
        let want = b.comm / (b.comm + b.compute);
        let got = trace.utilization(Phase::Comm);
        assert!((got - want).abs() < 1e-6, "trace {got} vs breakdown {want}");
    }
}
