//! Property-based tests for the cost models: monotonicity, positivity, and
//! algebraic consistency over randomized machine parameters.

use dd_hpcsim::{
    allreduce_time, broadcast_time, epoch_io, AllreduceAlgo, Fabric, Machine, SimPrecision,
    Staging, Strategy as SimStrategy, TrainJob,
};
use proptest::prelude::*;

fn fabric() -> impl Strategy<Value = Fabric> {
    (1e8f64..1e12, 1e-7f64..1e-5).prop_map(|(bandwidth, latency)| Fabric {
        latency,
        bandwidth,
        per_hop_latency: latency / 10.0,
        topology: dd_hpcsim::Topology::FatTree,
        energy_per_byte: 30e-12,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allreduce_nonnegative_and_monotone_in_bytes(
        f in fabric(),
        bytes in 1.0f64..1e10,
        p in 2usize..4096,
    ) {
        for algo in AllreduceAlgo::CONCRETE {
            let t1 = allreduce_time(&f, algo, bytes, p);
            let t2 = allreduce_time(&f, algo, bytes * 2.0, p);
            prop_assert!(t1 > 0.0);
            prop_assert!(t2 >= t1, "{algo:?}: doubling bytes reduced time");
        }
    }

    #[test]
    fn auto_never_worse_than_any_algorithm(
        f in fabric(),
        bytes in 1.0f64..1e10,
        p in 2usize..2048,
    ) {
        let auto = allreduce_time(&f, AllreduceAlgo::Auto, bytes, p);
        for algo in AllreduceAlgo::CONCRETE {
            prop_assert!(auto <= allreduce_time(&f, algo, bytes, p) + 1e-15);
        }
    }

    #[test]
    fn broadcast_scales_logarithmically(f in fabric(), bytes in 1e3f64..1e8) {
        let t64 = broadcast_time(&f, bytes, 64);
        let t4096 = broadcast_time(&f, bytes, 4096);
        // log2(4096)/log2(64) = 2: cost at most doubles per 64x nodes.
        prop_assert!(t4096 <= 2.0 * t64 + 1e-12);
    }

    #[test]
    fn step_time_positive_and_additive(
        params in 1e6f64..1e9,
        batch in 64usize..8192,
        nodes_pow in 0u32..8,
    ) {
        let nodes = 1usize << nodes_pow;
        let machine = Machine::gpu_2017(nodes);
        let job = TrainJob::from_dense_net(params, 1000, batch, 8);
        let b = dd_hpcsim::step_time(
            &machine,
            &job,
            SimStrategy::Data { nodes, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
        prop_assert!(b.compute > 0.0);
        prop_assert!(b.comm >= 0.0);
        prop_assert!((b.step - (b.compute + b.comm)).abs() < 1e-12);
        prop_assert!(b.energy > 0.0);
    }

    #[test]
    fn more_nodes_never_slow_down_weak_scaled_compute(
        params in 1e6f64..1e8,
        nodes_pow in 1u32..10,
    ) {
        // Strong scaling: per-step compute time must not increase with nodes.
        let nodes = 1usize << nodes_pow;
        let machine = Machine::gpu_2017(nodes);
        let job = TrainJob::from_dense_net(params, 1000, 8192, 8);
        let one = dd_hpcsim::step_time(
            &machine, &job,
            SimStrategy::Data { nodes: 1, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
        let many = dd_hpcsim::step_time(
            &machine, &job,
            SimStrategy::Data { nodes, algo: AllreduceAlgo::Auto },
            SimPrecision::F32,
        );
        prop_assert!(many.compute <= one.compute + 1e-12);
    }

    #[test]
    fn lower_precision_never_slower(params in 1e6f64..1e9, batch in 64usize..4096) {
        let machine = Machine::gpu_2017(4);
        let job = TrainJob::from_dense_net(params, 500, batch, 8);
        let strategy = SimStrategy::Data { nodes: 4, algo: AllreduceAlgo::Auto };
        let t64 = dd_hpcsim::step_time(&machine, &job, strategy, SimPrecision::F64).step;
        let t32 = dd_hpcsim::step_time(&machine, &job, strategy, SimPrecision::F32).step;
        let t16 = dd_hpcsim::step_time(&machine, &job, strategy, SimPrecision::F16).step;
        let t8 = dd_hpcsim::step_time(&machine, &job, strategy, SimPrecision::Int8).step;
        prop_assert!(t32 <= t64 && t16 <= t32 && t8 <= t16);
    }

    #[test]
    fn staging_totals_scale_with_epochs(shard in 1e8f64..1e12, epochs in 2usize..100) {
        let mem = dd_hpcsim::memory::accelerator_node_2017();
        for staging in Staging::ALL {
            let short = epoch_io(&mem, staging, shard, 1);
            let long = epoch_io(&mem, staging, shard, epochs);
            prop_assert!(long.total >= short.total);
            // Steady-state epoch cost never exceeds the first epoch.
            prop_assert!(long.steady_epoch <= long.first_epoch + 1e-9);
        }
    }

    #[test]
    fn pfs_streaming_cost_is_linear_in_epochs(shard in 1e8f64..1e12, epochs in 1usize..100) {
        let mem = dd_hpcsim::memory::accelerator_node_2017();
        let r = epoch_io(&mem, Staging::StreamPfs, shard, epochs);
        prop_assert!((r.total - r.steady_epoch * epochs as f64).abs() < 1e-6 * r.total);
    }

    #[test]
    fn roofline_below_both_roofs(ai in 0.01f64..1e5) {
        let node = Machine::gpu_2017(1).node;
        let got = dd_hpcsim::roofline::attainable_flops(
            &node,
            dd_hpcsim::Tier::Hbm,
            ai,
            SimPrecision::F32,
        );
        let peak = node.flops_at(SimPrecision::F32);
        let bw = node.memory.hbm.unwrap().bandwidth;
        prop_assert!(got <= peak + 1e-6);
        prop_assert!(got <= ai * bw + 1e-6);
        prop_assert!(got > 0.0);
    }
}
