//! Property-based tests for the search-space algebra and the search driver.

use dd_hypersearch::searchers::RandomSearch;
use dd_hypersearch::{run_search, Config, SearchSpace};
use dd_tensor::Rng64;
use proptest::prelude::*;

fn space() -> SearchSpace {
    SearchSpace::new()
        .log_float("lr", 1e-6, 1.0)
        .float("momentum", 0.0, 0.99)
        .int("layers", 1, 12)
        .choice("act", &["relu", "tanh", "gelu", "sigmoid"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decode_encode_is_projection(enc in proptest::collection::vec(-2.0f64..3.0, 4)) {
        // decode clamps/rounds; encoding the result and decoding again must
        // be a fixed point.
        let s = space();
        let c1 = s.decode(&enc);
        let c2 = s.decode(&s.encode(&c1));
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn samples_always_validly_encoded(seed in any::<u64>()) {
        let s = space();
        let mut rng = Rng64::new(seed);
        let c = s.sample(&mut rng);
        let e = s.encode(&c);
        prop_assert!(e.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn mutation_preserves_validity(seed in any::<u64>(), rate in 0.0f64..1.0) {
        let s = space();
        let mut rng = Rng64::new(seed);
        let c = s.sample(&mut rng);
        let m = s.mutate(&c, rate, &mut rng);
        let lr = m.f64("lr");
        prop_assert!((1e-6..=1.0).contains(&lr));
        prop_assert!((1..=12).contains(&m.usize("layers")));
    }

    #[test]
    fn crossover_gene_values_come_from_parents(seed in any::<u64>()) {
        let s = SearchSpace::new().int("a", 0, 1000).int("b", 0, 1000);
        let mut rng = Rng64::new(seed);
        let pa = s.sample(&mut rng);
        let pb = s.sample(&mut rng);
        let child = s.crossover(&pa, &pb, &mut rng);
        for key in ["a", "b"] {
            let v = child.usize(key);
            prop_assert!(v == pa.usize(key) || v == pb.usize(key));
        }
    }

    #[test]
    fn run_search_cost_accounting_exact(cost in 1.0f64..40.0, par in 1usize..8, seed in any::<u64>()) {
        let s = SearchSpace::new().float("x", 0.0, 1.0);
        let obj = |c: &Config, _b: f64, _s: u64| c.f64("x");
        let mut searcher = RandomSearch::new();
        let h = run_search(&mut searcher, &s, &obj, cost, par, seed);
        // Random search proposes unit-budget trials; the driver runs whole
        // trials while spent < cost, so the total is exactly ceil(cost).
        prop_assert!((h.total_cost() - cost.ceil()).abs() < 1e-9,
            "total {} for cost {}", h.total_cost(), cost);
        // Incumbent curve is monotone non-increasing in value.
        let curve = h.incumbent_curve();
        for w in curve.windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
            prop_assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn grid_has_no_duplicates(levels in 2usize..5) {
        let s = SearchSpace::new().float("x", 0.0, 1.0).int("k", 0, 3);
        let g = s.grid(levels, 10_000);
        let mut descs: Vec<String> = g.iter().map(Config::describe).collect();
        let n = descs.len();
        descs.sort();
        descs.dedup();
        prop_assert_eq!(descs.len(), n);
        prop_assert_eq!(n, levels * 4);
    }
}
