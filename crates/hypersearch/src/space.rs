//! Hyperparameter search-space definition.
//!
//! A [`SearchSpace`] is an ordered list of named parameters (log/linear
//! floats, integer ranges, categorical choices). Configurations encode to a
//! normalized `[0,1]^d` vector, which is the representation the surrogate,
//! evolutionary and generative searchers operate on.

use dd_tensor::Rng64;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One parameter's domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamSpec {
    /// Continuous value in `[lo, hi]`; `log` samples uniformly in log space.
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Sample in log space (requires positive bounds).
        log: bool,
    },
    /// Integer in `[lo, hi]` inclusive.
    Int {
        /// Lower bound.
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// One of a fixed set of options.
    Choice(Vec<String>),
}

impl ParamSpec {
    fn validate(&self, name: &str) {
        match self {
            ParamSpec::Float { lo, hi, log } => {
                assert!(lo < hi, "{name}: float lo must be < hi");
                if *log {
                    assert!(*lo > 0.0, "{name}: log scale requires positive bounds");
                }
            }
            ParamSpec::Int { lo, hi } => assert!(lo <= hi, "{name}: int lo must be <= hi"),
            ParamSpec::Choice(opts) => {
                assert!(!opts.is_empty(), "{name}: choice needs at least one option")
            }
        }
    }

    /// Number of distinct values (`None` for continuous).
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            ParamSpec::Float { .. } => None,
            ParamSpec::Int { lo, hi } => Some((hi - lo + 1) as u64),
            ParamSpec::Choice(opts) => Some(opts.len() as u64),
        }
    }
}

/// A concrete parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Continuous value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// Categorical option.
    Choice(String),
}

/// A full configuration: one value per parameter.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Config(pub BTreeMap<String, Value>);

impl Config {
    /// Float accessor; panics on missing key or wrong type.
    pub fn f64(&self, key: &str) -> f64 {
        match self.0.get(key) {
            Some(Value::Float(v)) => *v,
            Some(Value::Int(v)) => *v as f64,
            // dd-lint: allow(error-policy/panic) -- documented panicking accessor: a wrong key or type is a caller bug, per the doc comment
            other => panic!("config key '{key}' is not a float: {other:?}"),
        }
    }

    /// Integer accessor (usize).
    pub fn usize(&self, key: &str) -> usize {
        match self.0.get(key) {
            // dd-lint: allow(error-policy/expect) -- documented panicking accessor: a wrong key or type is a caller bug, per the doc comment
            Some(Value::Int(v)) => usize::try_from(*v).expect("negative int for usize accessor"),
            // dd-lint: allow(error-policy/panic) -- documented panicking accessor: a wrong key or type is a caller bug, per the doc comment
            other => panic!("config key '{key}' is not an int: {other:?}"),
        }
    }

    /// Categorical accessor.
    pub fn choice(&self, key: &str) -> &str {
        match self.0.get(key) {
            Some(Value::Choice(s)) => s,
            // dd-lint: allow(error-policy/panic) -- documented panicking accessor: a wrong key or type is a caller bug, per the doc comment
            other => panic!("config key '{key}' is not a choice: {other:?}"),
        }
    }

    /// Stable short description for logs.
    pub fn describe(&self) -> String {
        self.0
            .iter()
            .map(|(k, v)| match v {
                Value::Float(f) => format!("{k}={f:.4}"),
                Value::Int(i) => format!("{k}={i}"),
                Value::Choice(c) => format!("{k}={c}"),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// An ordered, named collection of parameter domains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    params: Vec<(String, ParamSpec)>,
}

impl SearchSpace {
    /// Empty space (builder entry point).
    pub fn new() -> Self {
        SearchSpace { params: Vec::new() }
    }

    /// Add a parameter (builder style). Panics on duplicate names or
    /// invalid domains.
    pub fn add(mut self, name: &str, spec: ParamSpec) -> Self {
        spec.validate(name);
        assert!(self.params.iter().all(|(n, _)| n != name), "duplicate parameter '{name}'");
        self.params.push((name.to_string(), spec));
        self
    }

    /// Linear float shorthand.
    pub fn float(self, name: &str, lo: f64, hi: f64) -> Self {
        self.add(name, ParamSpec::Float { lo, hi, log: false })
    }

    /// Log-scale float shorthand.
    pub fn log_float(self, name: &str, lo: f64, hi: f64) -> Self {
        self.add(name, ParamSpec::Float { lo, hi, log: true })
    }

    /// Integer shorthand.
    pub fn int(self, name: &str, lo: i64, hi: i64) -> Self {
        self.add(name, ParamSpec::Int { lo, hi })
    }

    /// Categorical shorthand.
    pub fn choice(self, name: &str, options: &[&str]) -> Self {
        self.add(name, ParamSpec::Choice(options.iter().map(|s| s.to_string()).collect()))
    }

    /// Number of parameters (= encoding dimensionality).
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameter list.
    pub fn params(&self) -> &[(String, ParamSpec)] {
        &self.params
    }

    /// Total number of discrete configurations, treating each continuous
    /// parameter as `continuous_levels` values (the abstract's "tens of
    /// thousands of model configurations" is this number).
    pub fn cardinality(&self, continuous_levels: u64) -> u64 {
        self.params.iter().map(|(_, s)| s.cardinality().unwrap_or(continuous_levels)).product()
    }

    /// Uniform random configuration.
    pub fn sample(&self, rng: &mut Rng64) -> Config {
        let mut cfg = BTreeMap::new();
        for (name, spec) in &self.params {
            let v = match spec {
                ParamSpec::Float { lo, hi, log } => {
                    if *log {
                        Value::Float((rng.range(lo.ln(), hi.ln())).exp())
                    } else {
                        Value::Float(rng.range(*lo, *hi))
                    }
                }
                ParamSpec::Int { lo, hi } => {
                    Value::Int(lo + rng.below((hi - lo + 1) as usize) as i64)
                }
                ParamSpec::Choice(opts) => Value::Choice(opts[rng.below(opts.len())].clone()),
            };
            cfg.insert(name.clone(), v);
        }
        Config(cfg)
    }

    /// Encode a configuration to `[0,1]^d` (order = parameter order).
    pub fn encode(&self, config: &Config) -> Vec<f64> {
        self.params
            .iter()
            .map(|(name, spec)| {
                // dd-lint: allow(error-policy/panic) -- encode contract: configs come from this space; a missing key is a caller bug
                let v = config.0.get(name).unwrap_or_else(|| panic!("missing key '{name}'"));
                match (spec, v) {
                    (ParamSpec::Float { lo, hi, log }, Value::Float(f)) => {
                        if *log {
                            (f.ln() - lo.ln()) / (hi.ln() - lo.ln())
                        } else {
                            (f - lo) / (hi - lo)
                        }
                    }
                    (ParamSpec::Int { lo, hi }, Value::Int(i)) => {
                        if lo == hi {
                            0.5
                        } else {
                            (i - lo) as f64 / (hi - lo) as f64
                        }
                    }
                    (ParamSpec::Choice(opts), Value::Choice(c)) => {
                        // dd-lint: allow(error-policy/expect) -- encode contract: configs come from this space; an unknown choice is a caller bug
                        let idx = opts.iter().position(|o| o == c).expect("unknown choice");
                        if opts.len() == 1 {
                            0.5
                        } else {
                            idx as f64 / (opts.len() - 1) as f64
                        }
                    }
                    // dd-lint: allow(error-policy/panic) -- encode contract: configs come from this space; a type mismatch is a caller bug
                    _ => panic!("type mismatch for '{name}'"),
                }
            })
            .collect()
    }

    /// Decode a `[0,1]^d` vector back to the nearest valid configuration
    /// (values clamped; ints and choices rounded).
    pub fn decode(&self, encoded: &[f64]) -> Config {
        assert_eq!(encoded.len(), self.dim(), "encoded length mismatch");
        let mut cfg = BTreeMap::new();
        for ((name, spec), &u) in self.params.iter().zip(encoded) {
            let u = u.clamp(0.0, 1.0);
            let v = match spec {
                ParamSpec::Float { lo, hi, log } => {
                    let raw = if *log {
                        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
                    } else {
                        lo + u * (hi - lo)
                    };
                    // exp/ln round-tripping can exceed the bounds by an ulp.
                    Value::Float(raw.clamp(*lo, *hi))
                }
                ParamSpec::Int { lo, hi } => {
                    // dd-lint: allow(lossy-cast/float-to-int) -- decode maps u in [0, 1] onto the inclusive integer range by rounding
                    Value::Int(lo + ((u * (hi - lo) as f64).round() as i64))
                }
                ParamSpec::Choice(opts) => {
                    // dd-lint: allow(lossy-cast/float-to-int) -- decode maps u in [0, 1] onto the choice indices by rounding
                    let idx = (u * (opts.len() - 1) as f64).round() as usize;
                    Value::Choice(opts[idx].clone())
                }
            };
            cfg.insert(name.clone(), v);
        }
        Config(cfg)
    }

    /// Mutate one configuration: each parameter resampled with probability
    /// `rate`, floats also jittered by a Gaussian in encoded space.
    pub fn mutate(&self, config: &Config, rate: f64, rng: &mut Rng64) -> Config {
        let mut enc = self.encode(config);
        for u in enc.iter_mut() {
            if rng.bernoulli(rate) {
                *u = (*u + rng.normal(0.0, 0.15)).clamp(0.0, 1.0);
            }
        }
        // Occasionally resample one coordinate entirely (escape hatch).
        if rng.bernoulli(rate) {
            let i = rng.below(enc.len().max(1));
            enc[i] = rng.uniform();
        }
        self.decode(&enc)
    }

    /// Uniform crossover of two parents in encoded space.
    pub fn crossover(&self, a: &Config, b: &Config, rng: &mut Rng64) -> Config {
        let ea = self.encode(a);
        let eb = self.encode(b);
        let child: Vec<f64> =
            ea.iter().zip(&eb).map(|(&x, &y)| if rng.bernoulli(0.5) { x } else { y }).collect();
        self.decode(&child)
    }

    /// Full-factorial grid with `levels` points per continuous parameter
    /// (discrete parameters enumerate their actual values). Order is
    /// deterministic. Panics if the grid would exceed `max_configs`.
    pub fn grid(&self, levels: usize, max_configs: usize) -> Vec<Config> {
        assert!(levels >= 1, "need at least one level");
        let axes: Vec<Vec<f64>> = self
            .params
            .iter()
            .map(|(_, spec)| {
                let n = spec.cardinality().map(|c| c as usize).unwrap_or(levels).min(match spec {
                    ParamSpec::Float { .. } => levels,
                    _ => usize::MAX,
                });
                if n == 1 {
                    vec![0.5]
                } else {
                    (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
                }
            })
            .collect();
        let total: usize = axes.iter().map(Vec::len).product();
        assert!(total <= max_configs, "grid of {total} configs exceeds cap {max_configs}");
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; axes.len()];
        loop {
            let enc: Vec<f64> = idx.iter().zip(&axes).map(|(&i, ax)| ax[i]).collect();
            out.push(self.decode(&enc));
            // Odometer increment.
            let mut d = 0;
            loop {
                if d == axes.len() {
                    return out;
                }
                idx[d] += 1;
                if idx[d] < axes[d].len() {
                    break;
                }
                idx[d] = 0;
                d += 1;
            }
        }
    }
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .log_float("lr", 1e-5, 1e-1)
            .float("dropout", 0.0, 0.8)
            .int("layers", 1, 4)
            .choice("act", &["relu", "tanh", "gelu"])
    }

    #[test]
    fn sample_respects_bounds() {
        let s = space();
        let mut rng = Rng64::new(1);
        for _ in 0..500 {
            let c = s.sample(&mut rng);
            let lr = c.f64("lr");
            assert!((1e-5..=1e-1).contains(&lr));
            assert!((0.0..=0.8).contains(&c.f64("dropout")));
            assert!((1..=4).contains(&c.usize("layers")));
            assert!(["relu", "tanh", "gelu"].contains(&c.choice("act")));
        }
    }

    #[test]
    fn log_sampling_covers_orders_of_magnitude() {
        let s = SearchSpace::new().log_float("lr", 1e-5, 1e-1);
        let mut rng = Rng64::new(2);
        let mut tiny = 0;
        for _ in 0..2000 {
            if s.sample(&mut rng).f64("lr") < 1e-4 {
                tiny += 1;
            }
        }
        // Log-uniform: [1e-5, 1e-4] is a quarter of the log range.
        assert!((tiny as f64 / 2000.0 - 0.25).abs() < 0.05, "tiny fraction {tiny}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = space();
        let mut rng = Rng64::new(3);
        for _ in 0..100 {
            let c = s.sample(&mut rng);
            let back = s.decode(&s.encode(&c));
            assert_eq!(back.usize("layers"), c.usize("layers"));
            assert_eq!(back.choice("act"), c.choice("act"));
            assert!((back.f64("lr") / c.f64("lr") - 1.0).abs() < 1e-9);
            assert!((back.f64("dropout") - c.f64("dropout")).abs() < 1e-9);
        }
    }

    #[test]
    fn encoding_is_unit_box() {
        let s = space();
        let mut rng = Rng64::new(4);
        for _ in 0..100 {
            let e = s.encode(&s.sample(&mut rng));
            assert_eq!(e.len(), 4);
            assert!(e.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn decode_clamps_out_of_range() {
        let s = space();
        let c = s.decode(&[-5.0, 99.0, 2.0, 0.5]);
        assert!((c.f64("lr") - 1e-5).abs() < 1e-12);
        assert_eq!(c.f64("dropout"), 0.8);
        assert_eq!(c.usize("layers"), 4);
    }

    #[test]
    fn cardinality_counts() {
        let s = space();
        // 3 choices × 4 ints × levels² for the two floats.
        assert_eq!(s.cardinality(10), 3 * 4 * 100);
    }

    #[test]
    fn grid_is_full_factorial() {
        let s = SearchSpace::new().float("a", 0.0, 1.0).int("b", 0, 2).choice("c", &["x", "y"]);
        let g = s.grid(3, 1000);
        assert_eq!(g.len(), 3 * 3 * 2);
        // All unique.
        let mut descs: Vec<String> = g.iter().map(Config::describe).collect();
        descs.sort();
        descs.dedup();
        assert_eq!(descs.len(), 18);
    }

    #[test]
    #[should_panic(expected = "exceeds cap")]
    fn oversized_grid_panics() {
        let _ = space().grid(100, 1000);
    }

    #[test]
    fn mutation_stays_valid_and_changes_something() {
        let s = space();
        let mut rng = Rng64::new(5);
        let c = s.sample(&mut rng);
        let mut changed = 0;
        for _ in 0..50 {
            let m = s.mutate(&c, 0.5, &mut rng);
            if m != c {
                changed += 1;
            }
            let lr = m.f64("lr");
            assert!((1e-5..=1e-1).contains(&lr));
        }
        assert!(changed > 30, "mutation too timid: {changed}");
    }

    #[test]
    fn crossover_mixes_parents() {
        let s = SearchSpace::new().int("a", 0, 100).int("b", 0, 100);
        let mut rng = Rng64::new(6);
        let pa = s.decode(&[0.0, 0.0]);
        let pb = s.decode(&[1.0, 1.0]);
        let mut saw_mix = false;
        for _ in 0..50 {
            let child = s.crossover(&pa, &pb, &mut rng);
            let (a, b) = (child.usize("a"), child.usize("b"));
            assert!(a == 0 || a == 100);
            assert!(b == 0 || b == 100);
            if a != b {
                saw_mix = true;
            }
        }
        assert!(saw_mix, "crossover never mixed genes");
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_panic() {
        let _ = SearchSpace::new().float("x", 0.0, 1.0).int("x", 0, 1);
    }
}
