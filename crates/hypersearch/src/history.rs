//! Trial records and search trajectories.

use crate::space::Config;
use serde::{Deserialize, Serialize};

/// One completed evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Monotone trial id (assignment order).
    pub id: usize,
    /// The evaluated configuration.
    pub config: Config,
    /// Fidelity in `(0, 1]` (fraction of a full training run).
    pub budget: f64,
    /// Objective value (lower is better).
    pub value: f64,
}

/// A full search run: every trial in completion order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchHistory {
    /// Searcher label.
    pub searcher: String,
    /// Trials in completion order.
    pub trials: Vec<Trial>,
    /// Extra evaluation attempts consumed by retries of failed (panicked or
    /// non-finite) evaluations.
    #[serde(default)]
    pub retries: usize,
    /// Trials whose every attempt failed; they are recorded with
    /// `value = +inf` so searchers steer away from them.
    #[serde(default)]
    pub failed_trials: usize,
}

impl SearchHistory {
    /// Total cost in full-budget-equivalent evaluations.
    pub fn total_cost(&self) -> f64 {
        self.trials.iter().map(|t| t.budget).sum()
    }

    /// Best (lowest) value among *full-budget* trials, or any trial if none
    /// ran at full budget.
    pub fn best_value(&self) -> Option<f64> {
        let full: Vec<f64> =
            self.trials.iter().filter(|t| t.budget >= 1.0 - 1e-9).map(|t| t.value).collect();
        let pool: Box<dyn Iterator<Item = f64>> = if full.is_empty() {
            Box::new(self.trials.iter().map(|t| t.value))
        } else {
            Box::new(full.into_iter())
        };
        pool.fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.min(v))))
    }

    /// Best trial overall (any fidelity).
    pub fn best_trial(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .min_by(|a, b| a.value.partial_cmp(&b.value).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Incumbent curve: `(cumulative cost, best value so far)` after each
    /// trial — the series experiment E6 plots.
    pub fn incumbent_curve(&self) -> Vec<(f64, f64)> {
        let mut cost = 0.0;
        let mut best = f64::INFINITY;
        self.trials
            .iter()
            .map(|t| {
                cost += t.budget;
                if t.value < best {
                    best = t.value;
                }
                (cost, best)
            })
            .collect()
    }

    /// Best value once cumulative cost reaches `cost` (linear scan).
    pub fn best_at_cost(&self, cost: f64) -> Option<f64> {
        let mut acc = 0.0;
        let mut best: Option<f64> = None;
        for t in &self.trials {
            acc += t.budget;
            if acc > cost + 1e-9 {
                break;
            }
            best = Some(best.map_or(t.value, |b: f64| b.min(t.value)));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(id: usize, value: f64, budget: f64) -> Trial {
        Trial { id, config: Config::default(), budget, value }
    }

    #[test]
    fn incumbent_curve_monotone() {
        let h = SearchHistory {
            searcher: "t".into(),
            trials: vec![trial(0, 5.0, 1.0), trial(1, 7.0, 1.0), trial(2, 2.0, 1.0)],
            ..SearchHistory::default()
        };
        let curve = h.incumbent_curve();
        assert_eq!(curve, vec![(1.0, 5.0), (2.0, 5.0), (3.0, 2.0)]);
        assert_eq!(h.total_cost(), 3.0);
        assert_eq!(h.best_value(), Some(2.0));
    }

    #[test]
    fn best_value_prefers_full_budget() {
        let h = SearchHistory {
            searcher: "t".into(),
            trials: vec![trial(0, 0.1, 0.25), trial(1, 3.0, 1.0)],
            ..SearchHistory::default()
        };
        // The low-fidelity 0.1 is not trusted; the full-budget 3.0 wins.
        assert_eq!(h.best_value(), Some(3.0));
    }

    #[test]
    fn best_at_cost_respects_budget_boundary() {
        let h = SearchHistory {
            searcher: "t".into(),
            trials: vec![trial(0, 5.0, 1.0), trial(1, 1.0, 1.0)],
            ..SearchHistory::default()
        };
        assert_eq!(h.best_at_cost(1.0), Some(5.0));
        assert_eq!(h.best_at_cost(2.0), Some(1.0));
        assert_eq!(h.best_at_cost(0.5), None);
    }

    #[test]
    fn empty_history() {
        let h = SearchHistory::default();
        assert_eq!(h.best_value(), None);
        assert!(h.incumbent_curve().is_empty());
        assert_eq!(h.total_cost(), 0.0);
    }
}
