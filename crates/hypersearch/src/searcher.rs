//! The ask/tell searcher interface and the parallel evaluation driver.
//!
//! Searchers *propose* batches of `(config, budget)` pairs and *observe*
//! completed trials; the driver evaluates each batch concurrently with
//! Rayon — the "search parallelism" axis of the abstract, running for real
//! on threads here and costed at machine scale by `dd-parallel::planner`.

use crate::history::{SearchHistory, Trial};
use crate::space::{Config, SearchSpace};
use dd_tensor::Rng64;
use rayon::prelude::*;

/// An objective to minimize.
///
/// `budget` in `(0, 1]` is the fidelity (fraction of a full training run);
/// multi-fidelity searchers (successive halving, Hyperband) exploit cheap
/// low-budget evaluations. `seed` makes stochastic objectives reproducible.
pub trait Objective: Sync {
    /// Evaluate one configuration at the given fidelity.
    fn evaluate(&self, config: &Config, budget: f64, seed: u64) -> f64;
}

/// Blanket impl so closures work as objectives.
impl<F> Objective for F
where
    F: Fn(&Config, f64, u64) -> f64 + Sync,
{
    fn evaluate(&self, config: &Config, budget: f64, seed: u64) -> f64 {
        self(config, budget, seed)
    }
}

/// A proposal: evaluate `config` at fidelity `budget`.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    /// Configuration to run.
    pub config: Config,
    /// Fidelity in `(0, 1]`.
    pub budget: f64,
}

/// Retry policy for failed trial evaluations.
///
/// An evaluation *fails* when the objective panics (a crashed trial) or
/// returns a non-finite value (a diverged one). Failed evaluations are
/// requeued up to `max_attempts` total attempts with exponential backoff
/// and a fresh attempt-derived seed; a trial whose every attempt fails is
/// recorded with `value = +inf` rather than aborting the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total evaluation attempts per trial (clamped to >= 1).
    pub max_attempts: usize,
    /// Backoff before retry `k` is `backoff_millis << (k - 1)` (capped).
    pub backoff_millis: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff_millis: 1 }
    }
}

impl RetryPolicy {
    /// Evaluate exactly once; failures are still caught and recorded as
    /// `+inf` instead of unwinding through the driver.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, backoff_millis: 0 }
    }
}

/// Evaluate one proposal under a retry policy. Returns
/// `(value, retries_used, failed)`. The first attempt uses the same seed
/// the non-retrying driver always used, so clean objectives reproduce
/// historical results bit-for-bit; retry attempts perturb the seed
/// deterministically.
fn evaluate_with_retries(
    objective: &dyn Objective,
    proposal: &Proposal,
    id: usize,
    seed: u64,
    retry: RetryPolicy,
) -> (f64, usize, bool) {
    let base_seed = seed ^ (id as u64) << 1;
    let max_attempts = retry.max_attempts.max(1);
    let mut retries = 0usize;
    for attempt in 0..max_attempts {
        let attempt_seed = if attempt == 0 {
            base_seed
        } else {
            base_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64)
        };
        if attempt > 0 {
            retries += 1;
            let backoff =
                retry.backoff_millis.saturating_mul(1u64 << ((attempt - 1).min(6) as u32));
            if backoff > 0 {
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            objective.evaluate(&proposal.config, proposal.budget, attempt_seed)
        }));
        if let Ok(value) = outcome {
            if value.is_finite() {
                return (value, retries, false);
            }
        }
    }
    (f64::INFINITY, retries, true)
}

/// Ask/tell search strategy.
pub trait Searcher: Send {
    /// Human-readable name for tables.
    fn name(&self) -> &'static str;

    /// Propose up to `n` evaluations. Returning fewer (even zero) is allowed
    /// when the strategy is blocked on observations or exhausted; the driver
    /// calls again after delivering results.
    fn propose(&mut self, n: usize, space: &SearchSpace, rng: &mut Rng64) -> Vec<Proposal>;

    /// Receive completed trials (in the order proposed).
    fn observe(&mut self, trials: &[Trial]);
}

/// Drive a searcher until `total_cost` full-budget-equivalent evaluations
/// are spent, evaluating up to `parallelism` proposals concurrently.
/// Failed evaluations are retried under [`RetryPolicy::default`].
///
/// Determinism: proposal order, seeds, and observation order are all fixed
/// by `seed` regardless of thread scheduling.
pub fn run_search(
    searcher: &mut dyn Searcher,
    space: &SearchSpace,
    objective: &dyn Objective,
    total_cost: f64,
    parallelism: usize,
    seed: u64,
) -> SearchHistory {
    run_search_with_retries(
        searcher,
        space,
        objective,
        total_cost,
        parallelism,
        seed,
        RetryPolicy::default(),
    )
}

/// [`run_search`] with an explicit retry policy for failed evaluations.
pub fn run_search_with_retries(
    searcher: &mut dyn Searcher,
    space: &SearchSpace,
    objective: &dyn Objective,
    total_cost: f64,
    parallelism: usize,
    seed: u64,
    retry: RetryPolicy,
) -> SearchHistory {
    assert!(total_cost > 0.0, "total cost must be positive");
    assert!(parallelism >= 1, "parallelism must be >= 1");
    let mut rng = Rng64::new(seed);
    let mut history = SearchHistory {
        searcher: searcher.name().to_string(),
        trials: Vec::new(),
        ..SearchHistory::default()
    };
    let mut spent = 0.0;
    let mut next_id = 0usize;
    let mut stalls = 0;
    while spent < total_cost {
        let ask = parallelism.min(64);
        let proposals = searcher.propose(ask, space, &mut rng);
        if proposals.is_empty() {
            stalls += 1;
            if stalls > 2 {
                break; // searcher exhausted (e.g. finite grid)
            }
            continue;
        }
        stalls = 0;
        // Trim proposals that would overshoot the budget, always keeping at
        // least one so progress is guaranteed.
        let mut batch = Vec::new();
        for p in proposals {
            assert!(p.budget > 0.0 && p.budget <= 1.0, "budget {} out of (0,1]", p.budget);
            if !batch.is_empty() && spent + p.budget > total_cost + 1e-9 {
                break;
            }
            spent += p.budget;
            batch.push(p);
        }
        let base_id = next_id;
        next_id += batch.len();
        let outcomes: Vec<(Trial, usize, bool)> = batch
            .into_par_iter()
            .enumerate()
            .map(|(i, p)| {
                let id = base_id + i;
                let trial_span = dd_obs::span("trial");
                let (value, retries, failed) =
                    evaluate_with_retries(objective, &p, id, seed, retry);
                dd_obs::hist_record("trial_seconds", trial_span.finish());
                dd_obs::counter_add("trials_total", 1);
                if failed {
                    dd_obs::counter_add("trials_failed", 1);
                }
                (Trial { id, config: p.config, budget: p.budget, value }, retries, failed)
            })
            .collect();
        let mut trials = Vec::with_capacity(outcomes.len());
        for (trial, retries, failed) in outcomes {
            history.retries += retries;
            history.failed_trials += usize::from(failed);
            trials.push(trial);
        }
        searcher.observe(&trials);
        history.trials.extend(trials);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searchers::RandomSearch;
    use crate::testfunc::bowl;

    fn space() -> SearchSpace {
        SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0)
    }

    #[test]
    fn run_search_respects_budget() {
        let mut s = RandomSearch::new();
        let h = run_search(&mut s, &space(), &bowl(), 20.0, 4, 1);
        assert!((h.total_cost() - 20.0).abs() < 1e-6);
        assert_eq!(h.trials.len(), 20);
    }

    #[test]
    fn trial_ids_are_sequential() {
        let mut s = RandomSearch::new();
        let h = run_search(&mut s, &space(), &bowl(), 10.0, 3, 2);
        for (i, t) in h.trials.iter().enumerate() {
            assert_eq!(t.id, i);
        }
    }

    #[test]
    fn deterministic_regardless_of_parallelism() {
        let run = |par: usize| {
            let mut s = RandomSearch::new();
            run_search(&mut s, &space(), &bowl(), 16.0, par, 3)
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.trials.len(), b.trials.len());
        for (ta, tb) in a.trials.iter().zip(&b.trials) {
            assert_eq!(ta.config, tb.config);
            assert_eq!(ta.value, tb.value);
        }
    }

    #[test]
    fn closure_objective_works() {
        let mut s = RandomSearch::new();
        let obj = |c: &Config, _b: f64, _s: u64| c.f64("x");
        let h = run_search(&mut s, &space(), &obj, 5.0, 2, 4);
        assert_eq!(h.trials.len(), 5);
    }

    #[test]
    #[should_panic(expected = "total cost")]
    fn zero_budget_panics() {
        let mut s = RandomSearch::new();
        let _ = run_search(&mut s, &space(), &bowl(), 0.0, 1, 1);
    }

    #[test]
    fn clean_objectives_spend_no_retries() {
        let mut s = RandomSearch::new();
        let h = run_search(&mut s, &space(), &bowl(), 8.0, 4, 9);
        assert_eq!(h.retries, 0);
        assert_eq!(h.failed_trials, 0);
    }

    #[test]
    fn always_failing_objective_is_bounded_and_recorded() {
        let mut s = RandomSearch::new();
        let obj = |_c: &Config, _b: f64, _s: u64| -> f64 { panic!("injected trial crash") };
        let h = run_search_with_retries(
            &mut s,
            &space(),
            &obj,
            3.0,
            1,
            5,
            RetryPolicy { max_attempts: 2, backoff_millis: 0 },
        );
        // The search finishes; every trial burned its attempt budget and was
        // recorded as +inf instead of aborting the run.
        assert_eq!(h.trials.len(), 3);
        assert!(h.trials.iter().all(|t| t.value.is_infinite()));
        assert_eq!(h.failed_trials, 3);
        assert_eq!(h.retries, 3);
    }

    #[test]
    fn flaky_objective_recovers_with_a_fresh_seed() {
        let mut s = RandomSearch::new();
        // First-attempt seeds are odd here (driver seed 1, even id offsets);
        // retry seeds flip parity, so every trial diverges once and then
        // succeeds on its requeued attempt.
        let obj = |c: &Config, _b: f64, sd: u64| -> f64 {
            if sd % 2 == 1 {
                f64::NAN
            } else {
                c.f64("x")
            }
        };
        let h = run_search_with_retries(
            &mut s,
            &space(),
            &obj,
            4.0,
            2,
            1,
            RetryPolicy { max_attempts: 3, backoff_millis: 0 },
        );
        assert_eq!(h.trials.len(), 4);
        assert!(h.trials.iter().all(|t| t.value.is_finite()));
        assert_eq!(h.failed_trials, 0);
        assert_eq!(h.retries, 4);
    }
}
