//! Uniform random search — the stronger of the two naïve baselines.

use crate::history::Trial;
use crate::searcher::{Proposal, Searcher};
use crate::space::SearchSpace;
use dd_tensor::Rng64;

/// Samples configurations uniformly at full budget, forever.
#[derive(Debug, Default)]
pub struct RandomSearch;

impl RandomSearch {
    /// New random searcher.
    pub fn new() -> Self {
        RandomSearch
    }
}

impl Searcher for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&mut self, n: usize, space: &SearchSpace, rng: &mut Rng64) -> Vec<Proposal> {
        (0..n).map(|_| Proposal { config: space.sample(rng), budget: 1.0 }).collect()
    }

    fn observe(&mut self, _trials: &[Trial]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::run_search;
    use crate::testfunc::bowl;

    #[test]
    fn converges_slowly_but_surely() {
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let mut s = RandomSearch::new();
        let h = run_search(&mut s, &space, &bowl(), 200.0, 8, 1);
        assert!(h.best_value().unwrap() < 0.02, "best {:?}", h.best_value());
    }

    #[test]
    fn proposals_are_distinct() {
        let space = SearchSpace::new().float("x", 0.0, 1.0);
        let mut s = RandomSearch::new();
        let mut rng = Rng64::new(1);
        let p = s.propose(10, &space, &mut rng);
        let mut xs: Vec<f64> = p.iter().map(|p| p.config.f64("x")).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        assert_eq!(xs.len(), 10);
    }
}
