//! Population-based evolutionary search.

use crate::history::Trial;
use crate::searcher::{Proposal, Searcher};
use crate::space::{Config, SearchSpace};
use dd_tensor::Rng64;

/// Steady-state evolutionary search: tournament-select parents from the
/// best-so-far population, produce children by crossover + mutation.
pub struct EvolutionarySearch {
    population_size: usize,
    mutation_rate: f64,
    tournament: usize,
    /// Fraction of children replaced by uniform "random immigrants",
    /// preventing irreversible convergence to a deceptive basin.
    immigrant_rate: f64,
    /// Evaluated members: (config, value).
    population: Vec<(Config, f64)>,
}

impl EvolutionarySearch {
    /// New searcher with a population of `population_size`.
    pub fn new(population_size: usize, mutation_rate: f64) -> Self {
        assert!(population_size >= 4, "population too small to select from");
        assert!((0.0..=1.0).contains(&mutation_rate), "mutation rate in [0,1]");
        EvolutionarySearch {
            population_size,
            mutation_rate,
            tournament: 3,
            immigrant_rate: 0.1,
            population: Vec::new(),
        }
    }

    fn tournament_pick<'a>(&'a self, rng: &mut Rng64) -> &'a Config {
        let mut best: Option<&(Config, f64)> = None;
        for _ in 0..self.tournament {
            let cand = &self.population[rng.below(self.population.len())];
            if best.map(|b| cand.1 < b.1).unwrap_or(true) {
                best = Some(cand);
            }
        }
        let Some(best) = best else { unreachable!("non-empty population") };
        &best.0
    }
}

impl Searcher for EvolutionarySearch {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn propose(&mut self, n: usize, space: &SearchSpace, rng: &mut Rng64) -> Vec<Proposal> {
        (0..n)
            .map(|_| {
                let config = if self.population.len() < self.population_size
                    || rng.bernoulli(self.immigrant_rate)
                {
                    // Seeding phase or random immigrant: uniform exploration.
                    space.sample(rng)
                } else {
                    let a = self.tournament_pick(rng).clone();
                    let b = self.tournament_pick(rng).clone();
                    let child = space.crossover(&a, &b, rng);
                    space.mutate(&child, self.mutation_rate, rng)
                };
                Proposal { config, budget: 1.0 }
            })
            .collect()
    }

    fn observe(&mut self, trials: &[Trial]) {
        for t in trials {
            self.population.push((t.config.clone(), t.value));
        }
        // Keep the best `population_size` members (elitist truncation).
        if self.population.len() > self.population_size {
            self.population
                .sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            self.population.truncate(self.population_size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::run_search;
    use crate::searchers::RandomSearch;
    use crate::testfunc::{bowl, Deceptive};

    #[test]
    fn converges_on_smooth_bowl() {
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let mut s = EvolutionarySearch::new(16, 0.3);
        let h = run_search(&mut s, &space, &bowl(), 150.0, 8, 1);
        assert!(h.best_value().unwrap() < 0.005, "best {:?}", h.best_value());
    }

    #[test]
    fn beats_random_on_smooth_landscape() {
        // Exploitation pays on smooth objectives: with the same budget, the
        // population refines the basin that random merely brushes.
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let mut evo_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..6 {
            let mut evo = EvolutionarySearch::new(16, 0.3);
            evo_total += run_search(&mut evo, &space, &bowl(), 80.0, 8, seed).best_value().unwrap();
            let mut rnd = RandomSearch::new();
            rnd_total += run_search(&mut rnd, &space, &bowl(), 80.0, 8, seed).best_value().unwrap();
        }
        assert!(evo_total < rnd_total, "evolutionary {evo_total} vs random {rnd_total}");
    }

    #[test]
    fn survives_deceptive_landscape() {
        // Deceptive functions are the hard case for greedy exploitation: the
        // guarantee is not finding the hidden well but at least optimizing
        // the broad basin (value ≤ its floor of 0.5) instead of diverging.
        let space =
            SearchSpace::new().float("x0", 0.0, 1.0).float("x1", 0.0, 1.0).float("x2", 0.0, 1.0);
        let obj = Deceptive::new(3);
        let mut evo = EvolutionarySearch::new(24, 0.4);
        let h = run_search(&mut evo, &space, &obj, 300.0, 8, 1);
        assert!(h.best_value().unwrap() < 0.52, "best {:?}", h.best_value());
    }

    #[test]
    fn population_stays_bounded() {
        let space = SearchSpace::new().float("x", 0.0, 1.0);
        let mut s = EvolutionarySearch::new(8, 0.2);
        let _ = run_search(&mut s, &space, &bowl2(), 100.0, 4, 2);
        assert!(s.population.len() <= 8);
        // Population is sorted best-first after truncation.
        for w in s.population.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    fn bowl2() -> impl crate::searcher::Objective {
        |c: &Config, _b: f64, _s: u64| (c.f64("x") - 0.5).powi(2)
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn tiny_population_rejected() {
        let _ = EvolutionarySearch::new(2, 0.3);
    }
}
