//! Full-factorial grid search — the naïve exhaustive baseline.

use crate::history::Trial;
use crate::searcher::{Proposal, Searcher};
use crate::space::{Config, SearchSpace};
use dd_tensor::Rng64;

/// Enumerates a full-factorial grid once, in deterministic order, then
/// stops proposing.
pub struct GridSearch {
    levels: usize,
    queue: Option<std::vec::IntoIter<Config>>,
}

impl GridSearch {
    /// Grid with `levels` points per continuous axis.
    pub fn new(levels: usize) -> Self {
        assert!(levels >= 2, "a one-level grid cannot search anything");
        GridSearch { levels, queue: None }
    }
}

impl Searcher for GridSearch {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn propose(&mut self, n: usize, space: &SearchSpace, _rng: &mut Rng64) -> Vec<Proposal> {
        let queue =
            self.queue.get_or_insert_with(|| space.grid(self.levels, 1_000_000).into_iter());
        queue.by_ref().take(n).map(|config| Proposal { config, budget: 1.0 }).collect()
    }

    fn observe(&mut self, _trials: &[Trial]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::run_search;
    use crate::testfunc::bowl;

    #[test]
    fn exhausts_grid_then_stops() {
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let mut s = GridSearch::new(5);
        // Generous budget: searcher must stop at 25 trials, not exhaust it.
        let h = run_search(&mut s, &space, &bowl(), 1000.0, 4, 1);
        assert_eq!(h.trials.len(), 25);
    }

    #[test]
    fn finds_near_optimum_with_enough_levels() {
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let mut s = GridSearch::new(11);
        let h = run_search(&mut s, &space, &bowl(), 1000.0, 8, 1);
        assert!(h.best_value().unwrap() < 0.01, "best {:?}", h.best_value());
    }

    #[test]
    fn grid_wastes_budget_on_redundant_axes() {
        // The classic grid pathology: with one dummy dimension, an n-level
        // grid spends n× the budget for the same coverage of `x`.
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("dummy", 0.0, 1.0);
        let obj = |c: &Config, _b: f64, _s: u64| (c.f64("x") - 0.33).powi(2);
        let mut g = GridSearch::new(5);
        let h = run_search(&mut g, &space, &obj, 1000.0, 4, 1);
        let distinct_x: std::collections::BTreeSet<u64> =
            h.trials.iter().map(|t| (t.config.f64("x") * 1e6) as u64).collect();
        assert_eq!(h.trials.len(), 25);
        assert_eq!(distinct_x.len(), 5, "only 5 unique x values in 25 trials");
    }
}
