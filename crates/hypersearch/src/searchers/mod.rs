//! Concrete search strategies.
//!
//! The abstract: "Naïve searches are outperformed by various intelligent
//! searching strategies, including new approaches that use generative neural
//! networks to manage the search space." The naïve set is [`RandomSearch`],
//! [`GridSearch`] and the space-filling [`LatinHypercube`]; the intelligent set is [`SuccessiveHalving`],
//! [`Hyperband`], [`EvolutionarySearch`], the forest-surrogate
//! [`SurrogateSearch`], and the neural [`GenerativeSearch`].

mod evolutionary;
mod generative;
mod grid;
mod lhs;
mod random;
mod sha;
mod surrogate;

pub use evolutionary::EvolutionarySearch;
pub use generative::GenerativeSearch;
pub use grid::GridSearch;
pub use lhs::LatinHypercube;
pub use random::RandomSearch;
pub use sha::{Hyperband, SuccessiveHalving};
pub use surrogate::SurrogateSearch;
