//! Successive halving and Hyperband — multi-fidelity "intelligent" search.
//!
//! Both exploit the fact that a quarter-budget training run ranks
//! configurations well enough to discard most of them cheaply: start many
//! configs at low fidelity, promote the top `1/eta` fraction to `eta×` the
//! budget, repeat until survivors run at full fidelity.

use crate::history::Trial;
use crate::searcher::{Proposal, Searcher};
use crate::space::{Config, SearchSpace};
use dd_tensor::Rng64;

/// One successive-halving bracket, restarted indefinitely.
pub struct SuccessiveHalving {
    eta: usize,
    min_budget: f64,
    n0: usize,
    /// Configs waiting to be proposed at `current_budget`.
    pending: Vec<Config>,
    /// Number proposed but not yet observed.
    outstanding: usize,
    /// Results observed at the current rung.
    rung_results: Vec<(Config, f64)>,
    current_budget: f64,
}

impl SuccessiveHalving {
    /// `n0` starting configs at `min_budget`, culling by `eta` each rung.
    pub fn new(n0: usize, min_budget: f64, eta: usize) -> Self {
        assert!(eta >= 2, "eta must be >= 2");
        assert!(n0 >= eta, "n0 must be at least eta");
        assert!(min_budget > 0.0 && min_budget <= 1.0, "min budget must be in (0, 1]");
        SuccessiveHalving {
            eta,
            min_budget,
            n0,
            pending: Vec::new(),
            outstanding: 0,
            rung_results: Vec::new(),
            current_budget: min_budget,
        }
    }

    fn start_bracket(&mut self, space: &SearchSpace, rng: &mut Rng64) {
        self.current_budget = self.min_budget;
        self.pending = (0..self.n0).map(|_| space.sample(rng)).collect();
        self.rung_results.clear();
    }

    fn advance_rung(&mut self, space: &SearchSpace, rng: &mut Rng64) {
        if self.rung_results.is_empty() {
            self.start_bracket(space, rng);
            return;
        }
        let survivors = (self.rung_results.len() / self.eta).max(1);
        if self.current_budget >= 1.0 - 1e-9 || survivors == self.rung_results.len() {
            // Bracket finished (ran at full budget or cannot cull further).
            self.start_bracket(space, rng);
            return;
        }
        let mut results = std::mem::take(&mut self.rung_results);
        results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        results.truncate(survivors);
        self.current_budget = (self.current_budget * self.eta as f64).min(1.0);
        self.pending = results.into_iter().map(|(c, _)| c).collect();
    }
}

impl Searcher for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "successive-halving"
    }

    fn propose(&mut self, n: usize, space: &SearchSpace, rng: &mut Rng64) -> Vec<Proposal> {
        if self.pending.is_empty() && self.outstanding == 0 {
            self.advance_rung(space, rng);
        }
        if self.pending.is_empty() {
            return Vec::new(); // waiting on observations
        }
        let take = n.min(self.pending.len());
        let batch: Vec<Proposal> = self
            .pending
            .drain(..take)
            .map(|config| Proposal { config, budget: self.current_budget })
            .collect();
        self.outstanding += batch.len();
        batch
    }

    fn observe(&mut self, trials: &[Trial]) {
        for t in trials {
            self.rung_results.push((t.config.clone(), t.value));
        }
        self.outstanding = self.outstanding.saturating_sub(trials.len());
    }
}

/// Hyperband: cycles successive-halving brackets with different
/// aggressiveness, hedging against workloads where low-fidelity rankings
/// mislead.
pub struct Hyperband {
    eta: usize,
    max_rungs: usize,
    /// Current bracket index (s = max_rungs .. 0, cycling).
    s: usize,
    inner: SuccessiveHalving,
}

impl Hyperband {
    /// Standard Hyperband over budgets `eta^-max_rungs .. 1`.
    pub fn new(eta: usize, max_rungs: usize) -> Self {
        assert!(eta >= 2 && max_rungs >= 1);
        let s = max_rungs;
        Hyperband { eta, max_rungs, s, inner: Self::bracket(eta, max_rungs, s) }
    }

    fn bracket(eta: usize, max_rungs: usize, s: usize) -> SuccessiveHalving {
        let _ = max_rungs;
        let n0 = (eta.pow(s as u32)).max(eta);
        let min_budget = (eta as f64).powi(-(s as i32)).max(1e-3);
        SuccessiveHalving::new(n0, min_budget, eta)
    }

    fn bracket_complete(&self) -> bool {
        // A bracket is "complete" when its inner SHA is about to restart:
        // no pending work, nothing outstanding, and the rung either ran at
        // full budget or cannot cull further.
        self.inner.pending.is_empty()
            && self.inner.outstanding == 0
            && !self.inner.rung_results.is_empty()
            && (self.inner.current_budget >= 1.0 - 1e-9
                || self.inner.rung_results.len() < self.inner.eta)
    }
}

impl Searcher for Hyperband {
    fn name(&self) -> &'static str {
        "hyperband"
    }

    fn propose(&mut self, n: usize, space: &SearchSpace, rng: &mut Rng64) -> Vec<Proposal> {
        if self.bracket_complete() {
            self.s = if self.s == 0 { self.max_rungs } else { self.s - 1 };
            self.inner = Self::bracket(self.eta, self.max_rungs, self.s);
        }
        self.inner.propose(n, space, rng)
    }

    fn observe(&mut self, trials: &[Trial]) {
        self.inner.observe(trials);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::run_search;
    use crate::searchers::RandomSearch;
    use crate::testfunc::bowl;

    fn space() -> SearchSpace {
        SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0)
    }

    #[test]
    fn sha_promotes_to_full_budget() {
        let mut s = SuccessiveHalving::new(27, 1.0 / 27.0, 3);
        let h = run_search(&mut s, &space(), &bowl(), 15.0, 8, 1);
        // Budgets should include the minimum and reach 1.0.
        let max_b = h.trials.iter().map(|t| t.budget).fold(0.0, f64::max);
        let min_b = h.trials.iter().map(|t| t.budget).fold(1.0, f64::min);
        assert!((min_b - 1.0 / 27.0).abs() < 1e-9);
        assert!((max_b - 1.0).abs() < 1e-9, "never reached full budget: {max_b}");
    }

    #[test]
    fn sha_rung_sizes_shrink() {
        let mut s = SuccessiveHalving::new(9, 1.0 / 9.0, 3);
        let h = run_search(&mut s, &space(), &bowl(), 6.0, 4, 2);
        let count_at = |b: f64| h.trials.iter().filter(|t| (t.budget - b).abs() < 1e-9).count();
        let r0 = count_at(1.0 / 9.0);
        let r1 = count_at(1.0 / 3.0);
        let r2 = count_at(1.0);
        assert!(r0 >= 9, "first rung {r0}");
        assert!(r1 >= 3 && r1 < r0);
        assert!(r2 >= 1 && r2 < r1);
    }

    #[test]
    fn sha_beats_random_at_equal_cost() {
        // Average over seeds to avoid flakiness.
        let cost = 12.0;
        let mut sha_best = 0.0;
        let mut rnd_best = 0.0;
        for seed in 0..8 {
            let mut sha = SuccessiveHalving::new(27, 1.0 / 9.0, 3);
            sha_best +=
                run_search(&mut sha, &space(), &bowl(), cost, 8, seed).best_value().unwrap();
            let mut rnd = RandomSearch::new();
            rnd_best +=
                run_search(&mut rnd, &space(), &bowl(), cost, 8, seed).best_value().unwrap();
        }
        assert!(sha_best < rnd_best, "SHA {sha_best} should beat random {rnd_best} at cost {cost}");
    }

    #[test]
    fn sha_restarts_brackets_under_large_budget() {
        let mut s = SuccessiveHalving::new(9, 1.0 / 3.0, 3);
        let h = run_search(&mut s, &space(), &bowl(), 50.0, 4, 3);
        // One bracket costs 9/3 + 3 + 1(ish); 50 units forces restarts.
        let low_budget_count =
            h.trials.iter().filter(|t| (t.budget - 1.0 / 3.0).abs() < 1e-9).count();
        assert!(low_budget_count > 9, "brackets restarted: {low_budget_count}");
    }

    #[test]
    fn hyperband_cycles_brackets() {
        let mut hb = Hyperband::new(3, 3);
        let h = run_search(&mut hb, &space(), &bowl(), 60.0, 8, 4);
        // Hyperband must run trials at several distinct budgets, including
        // a full-budget-first bracket (s=0 starts at budget 1).
        let budgets: std::collections::BTreeSet<u64> =
            h.trials.iter().map(|t| (t.budget * 1e6) as u64).collect();
        assert!(budgets.len() >= 3, "distinct budgets: {budgets:?}");
        assert!(h.best_value().unwrap() < 0.05);
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn eta_one_rejected() {
        let _ = SuccessiveHalving::new(9, 0.1, 1);
    }
}
