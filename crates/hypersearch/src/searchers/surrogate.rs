//! Surrogate-model (sequential model-based) search.
//!
//! A bagged random-forest regressor (built from scratch) models
//! `encoded config → objective`; candidates are sampled uniformly, scored by
//! a lower-confidence-bound acquisition (mean − κ·std across trees), and the
//! most promising are evaluated for real. This is the classic SMAC-style
//! "intelligent search" the abstract contrasts with naïve methods.

use crate::history::Trial;
use crate::searcher::{Proposal, Searcher};
use crate::space::SearchSpace;
use dd_tensor::Rng64;

/// A regression tree node (indices into the training arrays).
enum TreeNode {
    Leaf { mean: f64 },
    Split { feature: usize, threshold: f64, left: Box<TreeNode>, right: Box<TreeNode> },
}

impl TreeNode {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            TreeNode::Leaf { mean } => *mean,
            TreeNode::Split { feature, threshold, left, right } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

fn mean(ys: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len().max(1) as f64
}

fn sse(ys: &[f64], idx: &[usize]) -> f64 {
    let m = mean(ys, idx);
    idx.iter().map(|&i| (ys[i] - m).powi(2)).sum()
}

/// Build one tree on a bootstrap sample with random feature subsetting.
fn build_tree(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: Vec<usize>,
    depth: usize,
    min_leaf: usize,
    rng: &mut Rng64,
) -> TreeNode {
    if depth == 0 || idx.len() < 2 * min_leaf {
        return TreeNode::Leaf { mean: mean(ys, &idx) };
    }
    let d = xs[0].len();
    // Try a random subset of ~sqrt(d) features (at least 1).
    // dd-lint: allow(lossy-cast/float-to-int) -- feature subsample: ceil(sqrt(d)), at least 1
    let n_try = ((d as f64).sqrt().ceil() as usize).max(1);
    let features = rng.sample_indices(d, n_try.min(d));
    let parent_sse = sse(ys, &idx);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for &f in &features {
        // Candidate thresholds: midpoints of sorted unique values.
        let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let thr = (w[0] + w[1]) / 2.0;
            let (l, r): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| xs[i][f] <= thr);
            if l.len() < min_leaf || r.len() < min_leaf {
                continue;
            }
            let gain = parent_sse - sse(ys, &l) - sse(ys, &r);
            if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-12) {
                best = Some((f, thr, gain));
            }
        }
    }
    match best {
        None => TreeNode::Leaf { mean: mean(ys, &idx) },
        Some((feature, threshold, _)) => {
            let (l, r): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| xs[i][feature] <= threshold);
            TreeNode::Split {
                feature,
                threshold,
                left: Box::new(build_tree(xs, ys, l, depth - 1, min_leaf, rng)),
                right: Box::new(build_tree(xs, ys, r, depth - 1, min_leaf, rng)),
            }
        }
    }
}

/// Bagged regression forest.
pub struct Forest {
    trees: Vec<TreeNode>,
}

impl Forest {
    /// Fit `n_trees` on bootstrap resamples.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, rng: &mut Rng64) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit a forest on no data");
        let n = xs.len();
        let trees = (0..n_trees)
            .map(|t| {
                let mut tree_rng = rng.split(t as u64);
                let idx: Vec<usize> = (0..n).map(|_| tree_rng.below(n)).collect();
                build_tree(xs, ys, idx, 8, 2, &mut tree_rng)
            })
            .collect();
        Forest { trees }
    }

    /// Predicted mean and standard deviation across trees.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let m = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - m).powi(2)).sum::<f64>() / preds.len() as f64;
        (m, var.sqrt())
    }
}

/// SMBO searcher with a forest surrogate and LCB acquisition.
pub struct SurrogateSearch {
    warmup: usize,
    candidates_per_proposal: usize,
    kappa: f64,
    n_trees: usize,
    observed: Vec<(Vec<f64>, f64)>,
    /// Trials received but not yet encoded (encoding needs the space, which
    /// `observe` does not receive; they drain at the next `propose`).
    pending_trials: Vec<Trial>,
}

impl SurrogateSearch {
    /// `warmup` random evaluations before the surrogate takes over.
    pub fn new(warmup: usize) -> Self {
        assert!(warmup >= 4, "surrogate needs a few warmup points");
        SurrogateSearch {
            warmup,
            candidates_per_proposal: 256,
            kappa: 1.0,
            n_trees: 24,
            observed: Vec::new(),
            pending_trials: Vec::new(),
        }
    }

    fn drain_pending(&mut self, space: &SearchSpace) {
        let pending = std::mem::take(&mut self.pending_trials);
        for t in pending {
            self.observed.push((space.encode(&t.config), t.value));
        }
    }
}

impl Searcher for SurrogateSearch {
    fn name(&self) -> &'static str {
        "surrogate-forest"
    }

    fn propose(&mut self, n: usize, space: &SearchSpace, rng: &mut Rng64) -> Vec<Proposal> {
        self.drain_pending(space);
        if self.observed.len() < self.warmup {
            return (0..n).map(|_| Proposal { config: space.sample(rng), budget: 1.0 }).collect();
        }
        let xs: Vec<Vec<f64>> = self.observed.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = self.observed.iter().map(|(_, y)| *y).collect();
        let forest = Forest::fit(&xs, &ys, self.n_trees, rng);
        // Score a candidate pool by LCB and take the n best (with one
        // fresh random config per batch to keep exploring).
        let mut scored: Vec<(f64, crate::space::Config)> = (0..self.candidates_per_proposal)
            .map(|_| {
                let c = space.sample(rng);
                let (m, s) = forest.predict(&space.encode(&c));
                (m - self.kappa * s, c)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut out: Vec<Proposal> = scored
            .into_iter()
            .take(n.saturating_sub(1).max(1))
            .map(|(_, config)| Proposal { config, budget: 1.0 })
            .collect();
        if out.len() < n {
            out.push(Proposal { config: space.sample(rng), budget: 1.0 });
        }
        out
    }

    fn observe(&mut self, trials: &[Trial]) {
        self.pending_trials.extend_from_slice(trials);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::run_search;
    use crate::searchers::RandomSearch;
    use crate::testfunc::bowl;

    #[test]
    fn forest_fits_quadratic() {
        let mut rng = Rng64::new(1);
        let xs: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.uniform(), rng.uniform()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.5).powi(2) + x[1]).collect();
        let forest = Forest::fit(&xs, &ys, 20, &mut rng);
        // Prediction error small relative to the response range (~1.25).
        let mut total_err = 0.0;
        for _ in 0..100 {
            let x = vec![rng.uniform(), rng.uniform()];
            let truth = (x[0] - 0.5).powi(2) + x[1];
            let (m, _) = forest.predict(&x);
            total_err += (m - truth).abs();
        }
        assert!(total_err / 100.0 < 0.12, "mean error {}", total_err / 100.0);
    }

    #[test]
    fn forest_predictions_bounded_and_uncertainty_sane() {
        let mut rng = Rng64::new(2);
        let xs: Vec<Vec<f64>> = (0..150).map(|_| vec![rng.uniform()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin() * 3.0 + x[0] * 5.0).collect();
        let (y_min, y_max) = ys
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| (lo.min(y), hi.max(y)));
        let forest = Forest::fit(&xs, &ys, 30, &mut rng);
        let mut any_uncertain = false;
        for i in 0..50 {
            let x = vec![i as f64 / 49.0];
            let (m, s) = forest.predict(&x);
            // Tree means are convex combinations of training targets.
            assert!(m >= y_min - 1e-9 && m <= y_max + 1e-9, "mean {m} out of range");
            assert!(s >= 0.0);
            if s > 1e-6 {
                any_uncertain = true;
            }
        }
        assert!(any_uncertain, "bagging should disagree somewhere");
    }

    #[test]
    fn surrogate_beats_random_on_bowl() {
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let mut sur_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..5 {
            let mut sur = SurrogateSearch::new(10);
            sur_total += run_search(&mut sur, &space, &bowl(), 60.0, 4, seed).best_value().unwrap();
            let mut rnd = RandomSearch::new();
            rnd_total += run_search(&mut rnd, &space, &bowl(), 60.0, 4, seed).best_value().unwrap();
        }
        assert!(sur_total < rnd_total, "surrogate {sur_total} vs random {rnd_total}");
    }

    #[test]
    fn warmup_phase_is_random() {
        let space = SearchSpace::new().float("x", 0.0, 1.0);
        let mut s = SurrogateSearch::new(5);
        let mut rng = Rng64::new(3);
        let p = s.propose(3, &space, &mut rng);
        assert_eq!(p.len(), 3);
        assert!(s.observed.is_empty());
    }
}
