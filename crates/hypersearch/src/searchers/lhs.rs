//! Latin hypercube sampling — the strongest *non-adaptive* baseline.
//!
//! A Latin hypercube design stratifies every dimension into `n` equal bins
//! and places exactly one sample in each bin per dimension: grid-quality
//! marginal coverage at random-search cost, with none of grid's redundant-
//! axis pathology. Still naïve in the abstract's sense (no adaptation), so
//! it sharpens the E6 comparison: intelligent searchers must beat *this*,
//! not just uniform sampling.

use crate::history::Trial;
use crate::searcher::{Proposal, Searcher};
use crate::space::SearchSpace;
use dd_tensor::Rng64;

/// Generates successive Latin hypercube designs of `block` points each.
pub struct LatinHypercube {
    block: usize,
    queue: Vec<Vec<f64>>,
}

impl LatinHypercube {
    /// New sampler emitting designs of `block` stratified points.
    pub fn new(block: usize) -> Self {
        assert!(block >= 2, "a 1-point design cannot stratify");
        LatinHypercube { block, queue: Vec::new() }
    }

    fn refill(&mut self, dim: usize, rng: &mut Rng64) {
        let n = self.block;
        // One random permutation of strata per dimension; jitter within the
        // stratum keeps continuous parameters space-filling.
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(dim);
        for _ in 0..dim {
            let mut strata: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut strata);
            columns
                .push(strata.into_iter().map(|s| (s as f64 + rng.uniform()) / n as f64).collect());
        }
        self.queue = (0..n).map(|i| columns.iter().map(|c| c[i]).collect()).collect();
        // Emit in reverse so pop() preserves design order.
        self.queue.reverse();
    }
}

impl Searcher for LatinHypercube {
    fn name(&self) -> &'static str {
        "latin-hypercube"
    }

    fn propose(&mut self, n: usize, space: &SearchSpace, rng: &mut Rng64) -> Vec<Proposal> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if self.queue.is_empty() {
                self.refill(space.dim(), rng);
            }
            let Some(encoded) = self.queue.pop() else { unreachable!("refilled above") };
            out.push(Proposal { config: space.decode(&encoded), budget: 1.0 });
        }
        out
    }

    fn observe(&mut self, _trials: &[Trial]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::run_search;
    use crate::testfunc::bowl;

    #[test]
    fn design_stratifies_every_dimension() {
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let mut lhs = LatinHypercube::new(10);
        let mut rng = Rng64::new(1);
        let proposals = lhs.propose(10, &space, &mut rng);
        for key in ["x", "y"] {
            let mut bins = [false; 10];
            for p in &proposals {
                let v = p.config.f64(key);
                bins[((v * 10.0).floor() as usize).min(9)] = true;
            }
            assert!(bins.iter().all(|&b| b), "{key} strata not covered: {bins:?}");
        }
    }

    #[test]
    fn successive_designs_differ() {
        let space = SearchSpace::new().float("x", 0.0, 1.0);
        let mut lhs = LatinHypercube::new(5);
        let mut rng = Rng64::new(2);
        let a: Vec<f64> =
            lhs.propose(5, &space, &mut rng).iter().map(|p| p.config.f64("x")).collect();
        let b: Vec<f64> =
            lhs.propose(5, &space, &mut rng).iter().map(|p| p.config.f64("x")).collect();
        assert_ne!(a, b, "designs should be re-randomized");
    }

    #[test]
    fn covers_bowl_reliably() {
        let space = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let mut lhs = LatinHypercube::new(16);
        let h = run_search(&mut lhs, &space, &bowl(), 64.0, 8, 3);
        assert!(h.best_value().unwrap() < 0.05, "best {:?}", h.best_value());
    }

    #[test]
    fn handles_mixed_types() {
        let space = SearchSpace::new()
            .log_float("lr", 1e-4, 1e-1)
            .int("layers", 1, 8)
            .choice("act", &["a", "b", "c"]);
        let mut lhs = LatinHypercube::new(12);
        let mut rng = Rng64::new(4);
        let proposals = lhs.propose(12, &space, &mut rng);
        assert_eq!(proposals.len(), 12);
        // Integer dimension gets broad coverage from the stratification.
        let distinct: std::collections::BTreeSet<usize> =
            proposals.iter().map(|p| p.config.usize("layers")).collect();
        assert!(distinct.len() >= 5, "layers coverage {distinct:?}");
    }

    #[test]
    #[should_panic(expected = "stratify")]
    fn single_point_block_rejected() {
        let _ = LatinHypercube::new(1);
    }
}
