//! Synthetic objectives for testing and benchmarking searchers.

use crate::searcher::Objective;
use crate::space::Config;
use dd_tensor::Rng64;

/// Smooth quadratic bowl over `x`/`y` with minimum 0 at (0.3, 0.7); a mild
/// noise floor shrinks with budget, modelling partial training runs being
/// noisier than full ones.
pub struct Bowl;

impl Objective for Bowl {
    fn evaluate(&self, config: &Config, budget: f64, seed: u64) -> f64 {
        let x = config.f64("x");
        let y = config.f64("y");
        let clean = (x - 0.3).powi(2) + (y - 0.7).powi(2);
        let noise_scale = 0.02 * (1.0 - budget).max(0.0);
        let mut rng = Rng64::new(seed);
        clean + noise_scale * rng.gaussian().abs()
    }
}

/// Convenience constructor.
pub fn bowl() -> Bowl {
    Bowl
}

/// A deceptive multimodal function in `[0,1]^d` (generalized): a broad poor
/// basin plus a narrow good one — punishes naive grid/random, rewards
/// model-based and evolutionary exploitation.
pub struct Deceptive {
    /// Narrow-basin center per dimension.
    pub center: Vec<f64>,
    /// Narrow-basin width.
    pub width: f64,
}

impl Deceptive {
    /// Standard instance over the keys `x0..x{d-1}`.
    pub fn new(d: usize) -> Self {
        Deceptive { center: (0..d).map(|i| 0.15 + 0.1 * (i as f64 % 3.0)).collect(), width: 0.15 }
    }

    fn keys(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.center.len()).map(|i| format!("x{i}"))
    }
}

impl Objective for Deceptive {
    fn evaluate(&self, config: &Config, budget: f64, seed: u64) -> f64 {
        let xs: Vec<f64> = self.keys().map(|k| config.f64(&k)).collect();
        // Broad basin: shallow quadratic around 0.8 with floor 0.5.
        let broad: f64 = 0.5 + xs.iter().map(|&x| 0.2 * (x - 0.8).powi(2)).sum::<f64>();
        // Narrow basin: deep gaussian well around the hidden center.
        let dist_sq: f64 = xs.iter().zip(&self.center).map(|(&x, &c)| (x - c).powi(2)).sum();
        let narrow = 0.5 * (-dist_sq / (2.0 * self.width * self.width)).exp();
        let clean = broad - narrow;
        let mut rng = Rng64::new(seed);
        clean + 0.01 * (1.0 - budget).max(0.0) * rng.gaussian().abs()
    }
}

/// Mixed-type objective exercising ints and categoricals: best value
/// requires layers=3 and act="gelu" along with lr near 1e-3.
pub struct MixedTypes;

impl Objective for MixedTypes {
    fn evaluate(&self, config: &Config, _budget: f64, _seed: u64) -> f64 {
        let lr = config.f64("lr");
        let layers = config.usize("layers") as f64;
        let act_penalty = match config.choice("act") {
            "gelu" => 0.0,
            "relu" => 0.1,
            _ => 0.25,
        };
        (lr.log10() + 3.0).powi(2) * 0.2 + (layers - 3.0).powi(2) * 0.05 + act_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    #[test]
    fn bowl_minimum_location() {
        let s = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let best = s.decode(&[0.3, 0.7]);
        let off = s.decode(&[0.9, 0.1]);
        assert!(Bowl.evaluate(&best, 1.0, 1) < 1e-9);
        assert!(Bowl.evaluate(&off, 1.0, 1) > 0.3);
    }

    #[test]
    fn bowl_noise_shrinks_with_budget() {
        let s = SearchSpace::new().float("x", 0.0, 1.0).float("y", 0.0, 1.0);
        let c = s.decode(&[0.3, 0.7]);
        let noisy = Bowl.evaluate(&c, 0.1, 7);
        let clean = Bowl.evaluate(&c, 1.0, 7);
        assert!(noisy >= clean);
        assert_eq!(clean, 0.0);
    }

    #[test]
    fn deceptive_narrow_basin_is_global_minimum() {
        let d = Deceptive::new(2);
        let s = SearchSpace::new().float("x0", 0.0, 1.0).float("x1", 0.0, 1.0);
        let at_center = s.decode(&[d.center[0], d.center[1]]);
        let at_broad = s.decode(&[0.8, 0.8]);
        let vc = d.evaluate(&at_center, 1.0, 1);
        let vb = d.evaluate(&at_broad, 1.0, 1);
        assert!(vc < vb, "center {vc} must beat broad basin {vb}");
        assert!(vc < 0.2);
    }

    #[test]
    fn mixed_types_optimum() {
        let s = SearchSpace::new()
            .log_float("lr", 1e-5, 1e-1)
            .int("layers", 1, 5)
            .choice("act", &["relu", "tanh", "gelu"]);
        let mut best = s.decode(&[0.5, 0.5, 1.0]);
        best.0.insert("lr".into(), crate::space::Value::Float(1e-3));
        best.0.insert("layers".into(), crate::space::Value::Int(3));
        assert!(MixedTypes.evaluate(&best, 1.0, 1) < 1e-6);
    }
}
