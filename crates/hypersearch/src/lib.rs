//! # dd-hypersearch — large-scale hyperparameter search
//!
//! The abstract: "Discovering optimal deep learning models often involves a
//! large-scale search of hyperparameters. It's not uncommon to search a
//! space of tens of thousands of model configurations. Naïve searches are
//! outperformed by various intelligent searching strategies, including new
//! approaches that use generative neural networks to manage the search
//! space."
//!
//! This crate implements that whole spectrum behind one ask/tell interface
//! ([`Searcher`]), driven by a Rayon-parallel evaluation loop
//! ([`run_search`]) — real search parallelism on threads, and the unit of
//! "search parallelism" that `dd-parallel::planner` maps onto simulated
//! machines:
//!
//! | searcher | class |
//! |---|---|
//! | [`searchers::GridSearch`], [`searchers::RandomSearch`] | naïve |
//! | [`searchers::SuccessiveHalving`], [`searchers::Hyperband`] | multi-fidelity |
//! | [`searchers::SurrogateSearch`] | model-based (random-forest surrogate) |
//! | [`searchers::EvolutionarySearch`] | population-based |
//! | [`searchers::GenerativeSearch`] | generative neural network |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod searcher;
pub mod searchers;
pub mod space;
pub mod testfunc;

pub use history::{SearchHistory, Trial};
pub use searcher::{
    run_search, run_search_with_retries, Objective, Proposal, RetryPolicy, Searcher,
};
pub use space::{Config, ParamSpec, SearchSpace, Value};
