//! W1 — tumor type classification ("diagnose and classify tumors"): a 1-D
//! CNN over expression profiles (NT3-style) versus one-vs-rest logistic
//! regression.

use super::Outcome;
use crate::report::Scale;
use dd_datagen::baselines::{ovr_scores, Logistic};
use dd_datagen::expression::ExpressionModel;
use dd_datagen::tumor::{self, TumorConfig};
use dd_nn::{
    metrics, Activation, Init, InputShape, LayerSpec, Loss, LrSchedule, ModelSpec, TrainConfig,
    Trainer,
};
use dd_tensor::Precision;

/// Generator + model configuration for one run.
pub struct Setup {
    /// Data generator parameters.
    pub data: TumorConfig,
    /// Training epochs.
    pub epochs: usize,
}

/// Scale presets.
pub fn setup(scale: Scale) -> Setup {
    match scale {
        Scale::Smoke => Setup {
            data: TumorConfig {
                samples: 600,
                types: 4,
                signature_genes: 12,
                signature_strength: 1.4,
                position_jitter: 0,
                expression: ExpressionModel { genes: 128, pathways: 8, ..Default::default() },
            },
            epochs: 12,
        },
        // Full scale uses positionally jittered signatures: the regime where
        // the convolutional model's translation equivariance earns its keep
        // over position-fixed linear baselines.
        Scale::Full => Setup {
            data: TumorConfig {
                samples: 4000,
                types: 6,
                signature_genes: 16,
                signature_strength: 1.0,
                position_jitter: 48,
                expression: ExpressionModel { genes: 512, pathways: 16, ..Default::default() },
            },
            epochs: 30,
        },
    }
}

/// The NT3-style 1-D CNN over the gene axis.
pub fn cnn_spec(genes: usize, classes: usize) -> ModelSpec {
    ModelSpec::new(InputShape::Signal { channels: 1, len: genes })
        .push(LayerSpec::Conv1d { out_ch: 8, kernel: 7, stride: 2, init: Init::He })
        .push(LayerSpec::Activation(Activation::Relu))
        .push(LayerSpec::MaxPool1d { pool: 2 })
        .push(LayerSpec::Conv1d { out_ch: 16, kernel: 5, stride: 2, init: Init::He })
        .push(LayerSpec::Activation(Activation::Relu))
        .push(LayerSpec::MaxPool1d { pool: 2 })
        .push(LayerSpec::Dense { out: 64, init: Init::He })
        .push(LayerSpec::Activation(Activation::Relu))
        .push(LayerSpec::Dropout { p: 0.2 })
        .push(LayerSpec::Dense { out: classes, init: Init::Xavier })
}

/// Run the W1 comparison.
pub fn run(scale: Scale, seed: u64) -> Outcome {
    // Single-clock policy: wall time comes from the dd-obs span so the
    // reported seconds and the trace agree on one clock.
    let run_span = dd_obs::span("w1_tumor");
    let s = setup(scale);
    let data = tumor::generate(&s.data, seed);
    let split = data.dataset.split(0.15, 0.15, seed ^ 0xA5, true);

    let classes = s.data.types;
    let spec = cnn_spec(s.data.expression.genes, classes);
    let mut model = spec.build(seed ^ 0x5A, Precision::F32).expect("valid CNN spec");
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 32,
        epochs: s.epochs,
        optimizer: dd_nn::OptimizerConfig::adam(1e-3),
        schedule: LrSchedule::Cosine { total: s.epochs, floor: 0.1 },
        loss: Loss::SoftmaxCrossEntropy,
        patience: Some(6),
        grad_clip: Some(5.0),
        seed,
    });
    let y_train = split.train.y.to_matrix();
    let y_val = split.val.y.to_matrix();
    trainer
        .fit(&mut model, &split.train.x, &y_train, Some((&split.val.x, &y_val)))
        .expect("training converged");

    let test_labels = split.test.y.labels().expect("classification labels");
    let dnn_acc = metrics::accuracy(&model.predict(&split.test.x), test_labels);

    let train_labels = split.train.y.labels().unwrap();
    let logi = Logistic::fit_multiclass(&split.train.x, train_labels, classes, 1e-4, 150, 0.5);
    let base_acc = metrics::accuracy(&ovr_scores(&logi, &split.test.x), test_labels);

    Outcome {
        name: "W1 tumor-type".into(),
        metric: "test accuracy".into(),
        dnn: dnn_acc,
        baseline: base_acc,
        baseline_name: "logistic (OvR)".into(),
        higher_is_better: true,
        seconds: run_span.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_learns_signal() {
        let o = run(Scale::Smoke, 1);
        // 4 balanced classes: chance = 0.25. Both models must clear it well.
        assert!(o.dnn > 0.6, "CNN accuracy {}", o.dnn);
        assert!(o.baseline > 0.4, "logistic accuracy {}", o.baseline);
        // CNN should be competitive with the linear baseline.
        assert!(o.dnn > o.baseline - 0.1, "dnn {} vs baseline {}", o.dnn, o.baseline);
    }

    #[test]
    fn cnn_spec_is_valid_for_both_scales() {
        for scale in [Scale::Smoke, Scale::Full] {
            let s = setup(scale);
            let spec = cnn_spec(s.data.expression.genes, s.data.types);
            assert_eq!(spec.output_dim().unwrap(), s.data.types);
        }
    }

    #[test]
    fn knn_also_clears_chance_on_fixed_signatures() {
        // Cross-check a second classical baseline: with fixed scattered
        // signatures, k-NN in standardized expression space works too.
        use dd_datagen::baselines::Knn;
        let s = setup(Scale::Smoke);
        let data = tumor::generate(&s.data, 31);
        let split = data.dataset.split(0.0, 0.2, 31, true);
        let knn = Knn::fit(
            split.train.x.clone(),
            split.train.y.labels().unwrap().to_vec(),
            s.data.types,
            7,
        );
        let preds = knn.predict(&split.test.x);
        let labels = split.test.y.labels().unwrap();
        let acc =
            preds.iter().zip(labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        assert!(acc > 0.5, "kNN accuracy {acc} (chance = 0.25)");
    }

    #[test]
    fn cnn_beats_logistic_on_jittered_signatures() {
        // The translation-variance regime: a smoke-sized version of the
        // full-scale task where the linear baseline cannot align positions.
        let start = std::time::Instant::now();
        let data = tumor::generate(
            &TumorConfig {
                samples: 900,
                types: 3,
                signature_genes: 10,
                signature_strength: 1.6,
                position_jitter: 24,
                expression: ExpressionModel { genes: 128, pathways: 6, ..Default::default() },
            },
            21,
        );
        let split = data.dataset.split(0.15, 0.2, 21, true);
        let mut model = cnn_spec(128, 3).build(22, Precision::F32).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            batch_size: 32,
            epochs: 18,
            optimizer: dd_nn::OptimizerConfig::adam(1e-3),
            loss: Loss::SoftmaxCrossEntropy,
            seed: 21,
            ..TrainConfig::default()
        });
        let y = split.train.y.to_matrix();
        trainer.fit(&mut model, &split.train.x, &y, None).expect("training converged");
        let labels = split.test.y.labels().unwrap();
        let cnn_acc = metrics::accuracy(&model.predict(&split.test.x), labels);
        let logi = Logistic::fit_multiclass(
            &split.train.x,
            split.train.y.labels().unwrap(),
            3,
            1e-4,
            150,
            0.5,
        );
        let base_acc = metrics::accuracy(&ovr_scores(&logi, &split.test.x), labels);
        assert!(
            cnn_acc > base_acc + 0.05,
            "CNN {cnn_acc} should clearly beat logistic {base_acc} under jitter ({}s)",
            start.elapsed().as_secs()
        );
    }
}
