//! W6 — antibiotic resistance ("predict antibiotic resistance and identify
//! novel antibiotic resistance mechanisms").
//!
//! Two deliverables: (1) resistance prediction AUC, DNN vs logistic; and
//! (2) *mechanism discovery* — rank candidate k-mer pairs by a second-order
//! occlusion interaction score on the trained DNN and check whether the
//! planted epistatic pair (invisible to any additive model) surfaces.

use super::Outcome;
use crate::report::Scale;
use dd_datagen::amr::{self, AmrConfig};
use dd_datagen::baselines::Logistic;
use dd_nn::{
    metrics, Activation, Loss, ModelSpec, OptimizerConfig, Sequential, TrainConfig, Trainer,
};
use dd_tensor::{Matrix, Precision};

/// Scale presets.
pub fn config(scale: Scale) -> (AmrConfig, usize) {
    match scale {
        Scale::Smoke => (
            AmrConfig {
                genomes: 3000,
                kmers: 120,
                additive_kmers: 5,
                additive_effect: 3.0,
                epistasis_effect: 5.0,
                ..Default::default()
            },
            20,
        ),
        Scale::Full => (
            AmrConfig {
                genomes: 15000,
                kmers: 600,
                additive_kmers: 10,
                additive_effect: 2.0,
                epistasis_effect: 5.0,
                ..Default::default()
            },
            45,
        ),
    }
}

/// Mean model output over probe genomes with features `on` set to 1 and
/// `off` set to 0 (other positions keep the probe values).
fn mean_with(model: &mut Sequential, probes: &Matrix, on: &[usize], off: &[usize]) -> f64 {
    let mut x = probes.clone();
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        for &k in on {
            row[k] = 1.0;
        }
        for &k in off {
            row[k] = 0.0;
        }
    }
    let out = model.predict(&x);
    out.as_slice().iter().map(|&v| v as f64).sum::<f64>() / out.len() as f64
}

/// Second-order occlusion interaction score:
/// `f(i=1,j=1) − f(i=1,j=0) − f(i=0,j=1) + f(i=0,j=0)`, averaged over probe
/// genomes. Purely additive effects cancel; epistasis survives.
pub fn interaction_score(model: &mut Sequential, probes: &Matrix, i: usize, j: usize) -> f64 {
    mean_with(model, probes, &[i, j], &[])
        - mean_with(model, probes, &[i], &[j])
        - mean_with(model, probes, &[j], &[i])
        + mean_with(model, probes, &[], &[i, j])
}

/// Rank the top interacting pairs among the `top_singles` features with the
/// largest single-feature occlusion effect.
pub fn discover_mechanisms(
    model: &mut Sequential,
    probes: &Matrix,
    top_singles: usize,
) -> Vec<((usize, usize), f64)> {
    let d = probes.cols();
    // Single-feature effect: f(k=1) − f(k=0).
    let mut singles: Vec<(usize, f64)> = (0..d)
        .map(|k| {
            let eff = mean_with(model, probes, &[k], &[]) - mean_with(model, probes, &[], &[k]);
            (k, eff.abs())
        })
        .collect();
    singles.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let cand: Vec<usize> = singles.iter().take(top_singles).map(|&(k, _)| k).collect();
    let mut pairs = Vec::new();
    for (ai, &a) in cand.iter().enumerate() {
        for &b in &cand[ai + 1..] {
            let s = interaction_score(model, probes, a, b);
            pairs.push(((a.min(b), a.max(b)), s.abs()));
        }
    }
    pairs.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
    pairs
}

/// Train the W6 DNN and return it along with the split (used by both `run`
/// and the mechanism-discovery experiment).
pub fn train_model(
    scale: Scale,
    seed: u64,
) -> (Sequential, dd_datagen::dataset::Split, amr::AmrData, usize) {
    let (cfg, epochs) = config(scale);
    let data = amr::generate(&cfg, seed);
    let split = data.dataset.split(0.15, 0.15, seed ^ 0xF6, false);
    let Ok(mut model) = ModelSpec::new(dd_nn::InputShape::Flat(cfg.kmers))
        .push(dd_nn::LayerSpec::Dense { out: 192, init: dd_nn::Init::He })
        .push(dd_nn::LayerSpec::Activation(Activation::Relu))
        .push(dd_nn::LayerSpec::Dropout { p: 0.1 })
        .push(dd_nn::LayerSpec::Dense { out: 64, init: dd_nn::Init::He })
        .push(dd_nn::LayerSpec::Activation(Activation::Relu))
        .push(dd_nn::LayerSpec::Dense { out: 1, init: dd_nn::Init::Xavier })
        .build(seed ^ 0x6F, Precision::F32)
    else {
        unreachable!("the W6 spec is fixed-width, statically valid");
    };
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        schedule: dd_nn::LrSchedule::Cosine { total: epochs, floor: 0.05 },
        loss: Loss::BinaryCrossEntropy,
        seed,
        ..TrainConfig::default()
    });
    let Some(tl) = split.train.y.labels() else {
        unreachable!("W6 is a classification workload; targets are labels");
    };
    let y_train = Matrix::from_vec(tl.len(), 1, tl.iter().map(|&l| l as f32).collect());
    let Ok(_history) = trainer.fit(&mut model, &split.train.x, &y_train, None) else {
        unreachable!("W6 training is finite and shape-checked above");
    };
    (model, split, data, epochs)
}

/// Run the W6 prediction comparison.
pub fn run(scale: Scale, seed: u64) -> Outcome {
    // Single-clock policy: wall time comes from the dd-obs span so the
    // reported seconds and the trace agree on one clock.
    let run_span = dd_obs::span("w6_amr");
    let (mut model, split, _data, _) = train_model(scale, seed);
    let Some(raw_test_labels) = split.test.y.labels() else {
        unreachable!("W6 is a classification workload; targets are labels");
    };
    let test_labels: Vec<f32> = raw_test_labels.iter().map(|&l| l as f32).collect();
    let dnn_scores = model.predict(&split.test.x).as_slice().to_vec();
    let dnn_auc = metrics::roc_auc(&dnn_scores, &test_labels);

    let Some(train_labels) = split.train.y.labels() else {
        unreachable!("W6 is a classification workload; targets are labels");
    };
    let logi = Logistic::fit(&split.train.x, train_labels, 1e-4, 200, 0.5);
    let base_auc = metrics::roc_auc(&logi.predict_proba(&split.test.x), &test_labels);

    Outcome {
        name: "W6 amr-prediction".into(),
        metric: "test ROC-AUC".into(),
        dnn: dnn_auc,
        baseline: base_auc,
        baseline_name: "logistic".into(),
        higher_is_better: true,
        seconds: run_span.finish(),
    }
}

/// Rank (1-based) of the planted epistatic pair in the discovered list, or
/// `None` when it was not in the candidate set at all.
pub fn planted_pair_rank(scale: Scale, seed: u64) -> Option<usize> {
    let (mut model, split, data, _) = train_model(scale, seed);
    let probes = split.train.x.slice_rows(0, split.train.x.rows().min(64));
    let ranked = discover_mechanisms(&mut model, &probes, 16);
    let planted = (
        data.epistatic_pair.0.min(data.epistatic_pair.1),
        data.epistatic_pair.0.max(data.epistatic_pair.1),
    );
    ranked.iter().position(|&(p, _)| p == planted).map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_prediction_quality() {
        let o = run(Scale::Smoke, 7);
        assert!(o.dnn > 0.8, "DNN AUC {}", o.dnn);
        assert!(o.dnn >= o.baseline - 0.03, "DNN {} vs logistic {}", o.dnn, o.baseline);
    }

    #[test]
    fn discovers_planted_epistatic_pair() {
        // The novel-mechanism experiment: the planted pair should surface
        // near the top of the interaction ranking.
        let rank = planted_pair_rank(Scale::Smoke, 8);
        match rank {
            Some(r) => assert!(r <= 10, "planted pair ranked {r}"),
            None => panic!("planted pair not found among candidates"),
        }
    }

    #[test]
    fn interaction_score_zero_for_additive_model() {
        // A purely linear model has exactly zero second-order occlusion.
        let spec = ModelSpec::mlp(6, &[], 1, Activation::Identity);
        let mut model = spec.build(9, Precision::F32).unwrap();
        let probes = Matrix::from_fn(8, 6, |i, j| ((i + j) % 2) as f32);
        let s = interaction_score(&mut model, &probes, 0, 3);
        assert!(s.abs() < 1e-5, "linear interaction {s}");
    }
}
