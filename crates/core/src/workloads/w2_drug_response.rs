//! W2 — drug response prediction ("predict patient response to cancer
//! treatments"): a wide dense regression network (P1B3-style) versus ridge
//! regression. The generative model's cell×drug interaction is exactly what
//! the linear baseline cannot represent.

use super::Outcome;
use crate::report::Scale;
use dd_datagen::baselines::Ridge;
use dd_datagen::drug_response::{self, DrugResponseConfig};
use dd_datagen::expression::ExpressionModel;
use dd_datagen::Target;
use dd_nn::{
    Activation, Loss, LrSchedule, ModelSpec, OptimizerConfig, TrainConfig, TrainError, Trainer,
};
use dd_tensor::{r2_score, Precision};

/// Scale presets.
pub fn config(scale: Scale) -> (DrugResponseConfig, usize) {
    match scale {
        Scale::Smoke => (
            DrugResponseConfig {
                cell_lines: 30,
                drugs: 40,
                measurements: 2500,
                descriptor_dim: 32,
                noise: 0.03,
                expression: ExpressionModel { genes: 96, pathways: 8, ..Default::default() },
            },
            18,
        ),
        Scale::Full => (
            DrugResponseConfig {
                cell_lines: 60,
                drugs: 100,
                measurements: 20000,
                descriptor_dim: 64,
                noise: 0.05,
                expression: ExpressionModel { genes: 256, pathways: 12, ..Default::default() },
            },
            40,
        ),
    }
}

/// The P1B3-style dense regression network.
pub fn net_spec(input_dim: usize) -> ModelSpec {
    ModelSpec::mlp(input_dim, &[256, 128, 32], 1, Activation::Relu)
}

/// Run the W2 comparison. `Err` propagates a training divergence (the one
/// failure a caller can meaningfully report or retry with another seed).
pub fn run(scale: Scale, seed: u64) -> Result<Outcome, TrainError> {
    // Single-clock policy: wall time comes from the dd-obs span so the
    // reported seconds and the trace agree on one clock.
    let run_span = dd_obs::span("w2_drug_response");
    let (cfg, epochs) = config(scale);
    let data = drug_response::generate(&cfg, seed);
    let split = data.dataset.split(0.15, 0.15, seed ^ 0xB7, true);

    let Ok(mut model) = net_spec(split.train.dim()).build(seed ^ 0x7B, Precision::F32) else {
        unreachable!("net_spec builds a fixed-width MLP, statically valid");
    };
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        schedule: LrSchedule::Cosine { total: epochs, floor: 0.05 },
        loss: Loss::Mse,
        patience: Some(8),
        grad_clip: Some(5.0),
        seed,
    });
    let (y_train, y_val, y_test) = match (&split.train.y, &split.val.y, &split.test.y) {
        (Target::Regression(a), Target::Regression(b), Target::Regression(c)) => (a, b, c),
        _ => unreachable!("regression workload"),
    };
    trainer.fit(&mut model, &split.train.x, y_train, Some((&split.val.x, y_val)))?;
    let dnn_pred = model.predict(&split.test.x);
    let dnn_r2 = r2_score(y_test.as_slice(), dnn_pred.as_slice());

    let ridge = Ridge::fit(&split.train.x, y_train.as_slice(), 1.0);
    let ridge_pred = ridge.predict(&split.test.x);
    let ridge_r2 = r2_score(y_test.as_slice(), &ridge_pred);

    Ok(Outcome {
        name: "W2 drug-response".into(),
        metric: "test R^2".into(),
        dnn: dnn_r2,
        baseline: ridge_r2,
        baseline_name: "ridge".into(),
        higher_is_better: true,
        seconds: run_span.finish(),
    })
}

/// Estimate log10 IC50 for a (cell, drug) pair from a trained response
/// model by scanning the dose axis for the 50%-growth crossing — the
/// virtual dose-response assay a screening pipeline would run.
pub fn estimate_log_ic50(
    model: &mut dd_nn::Sequential,
    scaler: &dd_tensor::Standardizer,
    data: &drug_response::DrugResponseData,
    cell: usize,
    drug: usize,
    genes: usize,
    descriptor_dim: usize,
) -> f64 {
    let feat_dim = genes + descriptor_dim + 1;
    let grid = 61;
    let mut x = dd_tensor::Matrix::zeros(grid, feat_dim);
    let mut log_doses = Vec::with_capacity(grid);
    for (g, row_i) in (0..grid).enumerate() {
        let log_dose = -2.0 + 4.0 * g as f32 / (grid - 1) as f32;
        let row = x.row_mut(row_i);
        row[..genes].copy_from_slice(data.cell_expression.row(cell));
        row[genes..genes + descriptor_dim].copy_from_slice(data.drug_descriptors.row(drug));
        row[feat_dim - 1] = log_dose;
        log_doses.push(log_dose);
    }
    scaler.transform(&mut x);
    let pred = model.predict(&x);
    // First crossing below 0.5 (predictions are ~monotone in dose).
    for (i, &dose) in log_doses.iter().enumerate().take(grid) {
        if pred.get(i, 0) < 0.5 {
            return f64::from(dose);
        }
    }
    let Some(last) = log_doses.last() else {
        unreachable!("grid is a non-zero constant, log_doses is non-empty");
    };
    f64::from(*last)
}

/// Train the W2 model and correlate its estimated log-IC50s with the
/// generator's ground truth over random (cell, drug) pairs. Returns the
/// Pearson correlation.
pub fn ic50_recovery(scale: Scale, seed: u64) -> Result<f64, TrainError> {
    let (cfg, epochs) = config(scale);
    let data = drug_response::generate(&cfg, seed);
    let split = data.dataset.split(0.1, 0.0, seed ^ 0xB7, true);
    let Some(scaler) = split.scaler.as_ref().cloned() else {
        unreachable!("split(.., standardize=true) always carries a scaler");
    };
    let Ok(mut model) = net_spec(split.train.dim()).build(seed ^ 0x7B, Precision::F32) else {
        unreachable!("net_spec builds a fixed-width MLP, statically valid");
    };
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::Mse,
        seed,
        ..TrainConfig::default()
    });
    let y_train = match &split.train.y {
        Target::Regression(m) => m.clone(),
        _ => unreachable!(),
    };
    trainer.fit(&mut model, &split.train.x, &y_train, None)?;

    let mut rng = dd_tensor::Rng64::new(seed ^ 0x1C50);
    let n_pairs = 80;
    let mut est = Vec::with_capacity(n_pairs);
    let mut truth = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let c = rng.below(cfg.cell_lines);
        let d = rng.below(cfg.drugs);
        est.push(estimate_log_ic50(
            &mut model,
            &scaler,
            &data,
            c,
            d,
            cfg.expression.genes,
            cfg.descriptor_dim,
        ) as f32);
        truth.push(data.true_log_ic50(c, d));
    }
    Ok(dd_tensor::pearson(&est, &truth))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_dnn_beats_ridge_on_interactions() {
        let o = run(Scale::Smoke, 2).expect("smoke training converges");
        assert!(o.dnn > 0.5, "DNN R² {}", o.dnn);
        assert!(
            o.dnn > o.baseline + 0.05,
            "DNN {} should beat ridge {} (interaction structure)",
            o.dnn,
            o.baseline
        );
    }

    #[test]
    fn ic50_recovery_correlates_with_truth() {
        let r = ic50_recovery(Scale::Smoke, 5).expect("smoke training converges");
        assert!(r > 0.5, "estimated-vs-true log IC50 correlation {r}");
    }

    #[test]
    fn ridge_captures_dose_main_effect() {
        // The log-dose column alone explains a chunk of variance, so ridge
        // must land clearly above zero.
        let o = run(Scale::Smoke, 3).expect("smoke training converges");
        assert!(o.baseline > 0.1, "ridge R² {}", o.baseline);
    }
}
