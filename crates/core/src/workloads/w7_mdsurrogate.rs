//! W7 — ML-supervised multi-resolution molecular dynamics ("supervise
//! large-scale multi-resolution molecular dynamics simulations").
//!
//! The "DNN" here is the surrogate-supervised run; the "baseline" is the
//! always-fine run. The comparison metric is compute cost (force
//! evaluations) at comparable fidelity — the surrogate's job is to deliver
//! near-fine accuracy cheaper, so *lower is better*.

use super::Outcome;
use crate::report::Scale;
use dd_mdsim::{run_supervised, LjSystem, Policy, RunReport, SurrogateController};

/// Scale presets: (lattice side, macro steps, dt, lattice spacing).
///
/// The full configuration keeps the coarse integrator in the "sloppy but
/// stable" regime (wider spacing, smaller dt): a coarse step that simply
/// explodes teaches the surrogate nothing except "always refine".
pub fn config(scale: Scale) -> (usize, usize, f64, f64) {
    match scale {
        Scale::Smoke => (5, 60, 0.04, 1.3),
        Scale::Full => (8, 300, 0.025, 1.4),
    }
}

/// Run all four policies and return their reports.
pub fn run_policies(scale: Scale, seed: u64) -> Vec<RunReport> {
    let (side, steps, dt, spacing) = config(scale);
    let system = || LjSystem::lattice(side, spacing, 0.4, seed);
    let mut probe = system();
    let force_threshold = probe.max_force();
    vec![
        run_supervised(system(), Policy::AlwaysCoarse, steps, dt),
        run_supervised(system(), Policy::AlwaysFine, steps, dt),
        run_supervised(system(), Policy::ForceHeuristic { threshold: force_threshold }, steps, dt),
        run_supervised(
            system(),
            Policy::Surrogate(SurrogateController::new(5e-3, seed ^ 0x77)),
            steps,
            dt,
        ),
    ]
}

/// Run the W7 comparison (metric: force evaluations; lower is better,
/// subject to the fidelity gate asserted in tests and recorded in E9).
pub fn run(scale: Scale, seed: u64) -> Outcome {
    // Single-clock policy: wall time comes from the dd-obs span so the
    // reported seconds and the trace agree on one clock.
    let run_span = dd_obs::span("w7_mdsurrogate");
    let reports = run_policies(scale, seed);
    let Some(fine) = reports.iter().find(|r| r.policy == "fine") else {
        unreachable!("run_policies always includes the fine policy");
    };
    let Some(surrogate) = reports.iter().find(|r| r.policy == "dnn-surrogate") else {
        unreachable!("run_policies always includes the surrogate policy");
    };
    Outcome {
        name: "W7 md-surrogate".into(),
        metric: "force evaluations".into(),
        dnn: surrogate.force_evals as f64,
        baseline: fine.force_evals as f64,
        baseline_name: "always-fine MD".into(),
        higher_is_better: false,
        seconds: run_span.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_surrogate_saves_compute() {
        let o = run(Scale::Smoke, 10);
        assert!(o.dnn < o.baseline, "surrogate {} evals vs fine {}", o.dnn, o.baseline);
    }

    #[test]
    fn policy_reports_cover_all_four() {
        let reports = run_policies(Scale::Smoke, 11);
        let names: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(names, vec!["coarse", "fine", "force-heuristic", "dnn-surrogate"]);
        // Fidelity ordering: coarse drifts most from the fine trajectory.
        let coarse = &reports[0];
        let sur = &reports[3];
        assert!(sur.rmsd_vs_fine <= coarse.rmsd_vs_fine + 1e-12);
    }
}
