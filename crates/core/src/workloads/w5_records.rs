//! W5 — medical-records treatment strategy ("interpret millions of medical
//! records to identify optimal treatment strategies").
//!
//! Both models learn outcome prediction from logged (biased) data; the
//! deliverable is the *extracted policy*: for each patient, the treatment
//! whose predicted success is highest. The metric is the policy's true
//! expected success rate under the generative model — where the DNN's
//! ability to represent treatment × biomarker interactions lets it
//! personalize, while logistic regression (no interaction terms) collapses
//! toward a one-size-fits-all arm.

use super::Outcome;
use crate::report::Scale;
use dd_datagen::baselines::Logistic;
use dd_datagen::records::{self, policy_value, RecordsConfig, RecordsData};
use dd_nn::{Activation, Loss, ModelSpec, OptimizerConfig, Sequential, TrainConfig, Trainer};
use dd_tensor::{Matrix, Precision};

/// Scale presets.
pub fn config(scale: Scale) -> (RecordsConfig, usize) {
    match scale {
        Scale::Smoke => (RecordsConfig { patients: 3000, ..Default::default() }, 15),
        Scale::Full => (RecordsConfig { patients: 20000, treatments: 4, ..Default::default() }, 35),
    }
}

/// Replace the treatment one-hot block of each row with treatment `t`.
fn with_treatment(x: &Matrix, cov_dim: usize, treatments: usize, t: usize) -> Matrix {
    let mut out = x.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        for v in &mut row[cov_dim..cov_dim + treatments] {
            *v = 0.0;
        }
        row[cov_dim + t] = 1.0;
    }
    out
}

/// Extract a policy from any scorer: pick the argmax-treatment per patient.
fn extract_policy(
    score: &mut dyn FnMut(&Matrix) -> Vec<f32>,
    x: &Matrix,
    cov_dim: usize,
    treatments: usize,
) -> Vec<usize> {
    let mut best_score = vec![f32::NEG_INFINITY; x.rows()];
    let mut best_t = vec![0usize; x.rows()];
    for t in 0..treatments {
        let xt = with_treatment(x, cov_dim, treatments, t);
        for (i, s) in score(&xt).into_iter().enumerate() {
            if s > best_score[i] {
                best_score[i] = s;
                best_t[i] = t;
            }
        }
    }
    best_t
}

/// Run the W5 comparison (metric: true expected success of the extracted
/// policy over all patients).
pub fn run(scale: Scale, seed: u64) -> Outcome {
    // Single-clock policy: wall time comes from the dd-obs span so the
    // reported seconds and the trace agree on one clock.
    let run_span = dd_obs::span("w5_records");
    let (cfg, epochs) = config(scale);
    let data: RecordsData = records::generate(&cfg, seed);
    let x = &data.dataset.x;
    let labels = data.dataset.y.labels().unwrap();
    let y = Matrix::from_vec(labels.len(), 1, labels.iter().map(|&l| l as f32).collect());

    // DNN outcome model.
    let mut model: Sequential = ModelSpec::mlp(x.cols(), &[64, 32], 1, Activation::Relu)
        .build(seed ^ 0xE5, Precision::F32)
        .expect("valid spec");
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::BinaryCrossEntropy,
        seed,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, x, &y, None).expect("training converged");
    let mut dnn_score = |xt: &Matrix| model.predict(xt).as_slice().to_vec();
    let dnn_policy = extract_policy(&mut dnn_score, x, data.covariate_dim, cfg.treatments);
    let dnn_value = policy_value(&data, &dnn_policy);

    // Logistic outcome model.
    let logi = Logistic::fit(x, labels, 1e-4, 200, 0.5);
    let mut base_score = |xt: &Matrix| logi.predict_proba(xt);
    let base_policy = extract_policy(&mut base_score, x, data.covariate_dim, cfg.treatments);
    let base_value = policy_value(&data, &base_policy);

    Outcome {
        name: "W5 treatment-policy".into(),
        metric: "policy expected success".into(),
        dnn: dnn_value,
        baseline: base_value,
        baseline_name: "logistic".into(),
        higher_is_better: true,
        seconds: run_span.finish(),
    }
}

/// Reference points for the policy metric: (logged, optimal) values.
pub fn reference_values(scale: Scale, seed: u64) -> (f64, f64) {
    let (cfg, _) = config(scale);
    let data = records::generate(&cfg, seed);
    (policy_value(&data, &data.logged_treatment), policy_value(&data, &data.optimal_treatment))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_dnn_policy_personalizes_better() {
        let o = run(Scale::Smoke, 6);
        let (logged, optimal) = reference_values(Scale::Smoke, 6);
        assert!(o.dnn > o.baseline, "DNN policy {} vs logistic policy {}", o.dnn, o.baseline);
        // The DNN policy should recover most of the optimal-vs-logged gap.
        let recovered = (o.dnn - logged) / (optimal - logged);
        assert!(recovered > 0.3, "recovered only {recovered:.2} of the policy gap");
        assert!(o.dnn <= optimal + 1e-9, "cannot beat the oracle");
    }

    #[test]
    fn treatment_swap_helper() {
        let x = Matrix::from_rows(&[&[0.5, 1.0, 0.0, 0.0]]);
        let swapped = with_treatment(&x, 1, 3, 2);
        assert_eq!(swapped.row(0), &[0.5, 0.0, 0.0, 1.0]);
    }
}
