//! W3 — anti-cancer compound screening ("screen for new anti-cancer
//! compounds"): a dense classifier over fingerprints versus logistic
//! regression, scored by ROC-AUC (screens rank compounds, they don't
//! threshold them).

use super::Outcome;
use crate::report::Scale;
use dd_datagen::baselines::Logistic;
use dd_datagen::compound::{self, CompoundConfig};
use dd_nn::{
    metrics, Activation, Loss, ModelSpec, OptimizerConfig, TrainConfig, TrainError, Trainer,
};
use dd_tensor::{Matrix, Precision};

/// Scale presets.
pub fn config(scale: Scale) -> (CompoundConfig, usize) {
    match scale {
        Scale::Smoke => (CompoundConfig { samples: 2000, bits: 128, ..Default::default() }, 15),
        Scale::Full => (CompoundConfig { samples: 12000, bits: 512, ..Default::default() }, 35),
    }
}

/// Labels as an `n × 1` 0/1 matrix for BCE training.
fn label_matrix(labels: &[usize]) -> Matrix {
    Matrix::from_vec(labels.len(), 1, labels.iter().map(|&l| l as f32).collect())
}

/// Run the W3 comparison. `Err` propagates a training divergence (the one
/// failure a caller can meaningfully report or retry with another seed).
pub fn run(scale: Scale, seed: u64) -> Result<Outcome, TrainError> {
    // Single-clock policy: wall time comes from the dd-obs span so the
    // reported seconds and the trace agree on one clock.
    let run_span = dd_obs::span("w3_compound");
    let (cfg, epochs) = config(scale);
    let data = compound::generate(&cfg, seed);
    // Binary features: skip standardization, keep sparsity.
    let split = data.dataset.split(0.15, 0.15, seed ^ 0xC1, false);

    let Ok(mut model) = ModelSpec::mlp(cfg.bits, &[128, 32], 1, Activation::Relu)
        .build(seed ^ 0x1C, Precision::F32)
    else {
        unreachable!("fixed-width MLP spec is statically valid");
    };
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::BinaryCrossEntropy,
        patience: Some(6),
        seed,
        ..TrainConfig::default()
    });
    let (Some(train_labels), Some(val_labels), Some(test_labels)) =
        (split.train.y.labels(), split.val.y.labels(), split.test.y.labels())
    else {
        unreachable!("compound targets are classification labels");
    };
    let y_train = label_matrix(train_labels);
    let y_val = label_matrix(val_labels);
    trainer.fit(&mut model, &split.train.x, &y_train, Some((&split.val.x, &y_val)))?;

    let test_labels: Vec<f32> = test_labels.iter().map(|&l| l as f32).collect();
    let dnn_scores: Vec<f32> = model.predict(&split.test.x).as_slice().to_vec();
    let dnn_auc = metrics::roc_auc(&dnn_scores, &test_labels);

    let logi = Logistic::fit(&split.train.x, train_labels, 1e-4, 200, 0.5);
    let base_scores = logi.predict_proba(&split.test.x);
    let base_auc = metrics::roc_auc(&base_scores, &test_labels);

    Ok(Outcome {
        name: "W3 compound-screen".into(),
        metric: "test ROC-AUC".into(),
        dnn: dnn_auc,
        baseline: base_auc,
        baseline_name: "logistic".into(),
        higher_is_better: true,
        seconds: run_span.finish(),
    })
}

/// Screening-specific view: enrichment factor at `alpha` for the DNN and
/// the logistic baseline — the metric medicinal chemists actually act on
/// ("how many more actives are in the slice of the library we can afford to
/// assay?").
pub fn enrichment(scale: Scale, seed: u64, alpha: f64) -> Result<(f64, f64), TrainError> {
    let (cfg, epochs) = config(scale);
    let data = compound::generate(&cfg, seed);
    let split = data.dataset.split(0.15, 0.15, seed ^ 0xC1, false);
    let Ok(mut model) = ModelSpec::mlp(cfg.bits, &[128, 32], 1, Activation::Relu)
        .build(seed ^ 0x1C, Precision::F32)
    else {
        unreachable!("fixed-width MLP spec is statically valid");
    };
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::BinaryCrossEntropy,
        seed,
        ..TrainConfig::default()
    });
    let (Some(train_labels), Some(test_labels)) = (split.train.y.labels(), split.test.y.labels())
    else {
        unreachable!("compound targets are classification labels");
    };
    let y_train = label_matrix(train_labels);
    trainer.fit(&mut model, &split.train.x, &y_train, None)?;
    let test_labels: Vec<f32> = test_labels.iter().map(|&l| l as f32).collect();
    let dnn_scores = model.predict(&split.test.x).as_slice().to_vec();
    let dnn_ef = metrics::enrichment_factor(&dnn_scores, &test_labels, alpha);
    let logi = Logistic::fit(&split.train.x, train_labels, 1e-4, 200, 0.5);
    let base_ef =
        metrics::enrichment_factor(&logi.predict_proba(&split.test.x), &test_labels, alpha);
    Ok((dnn_ef, base_ef))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_dnn_ranks_actives_well() {
        let o = run(Scale::Smoke, 4).expect("smoke training converges");
        assert!(o.dnn > 0.8, "DNN AUC {}", o.dnn);
        // The conjunctive pattern gives the nonlinear model an edge.
        assert!(o.dnn >= o.baseline - 0.02, "DNN {} vs logistic {}", o.dnn, o.baseline);
    }

    #[test]
    fn enrichment_at_10pct_far_above_random() {
        let (dnn_ef, base_ef) =
            enrichment(Scale::Smoke, 4, 0.10).expect("smoke training converges");
        assert!(dnn_ef > 2.0, "DNN EF10% {dnn_ef}");
        assert!(base_ef > 1.0, "logistic EF10% {base_ef}");
    }
}
