//! The seven driver workloads (W1–W7) from DESIGN.md: each binds a synthetic
//! dataset to a reference DNN and a classical baseline, and reports a
//! comparable quality metric — the material for experiment E8.

pub mod w1_tumor;
pub mod w2_drug_response;
pub mod w3_compound;
pub mod w4_autoencoder;
pub mod w5_records;
pub mod w6_amr;
pub mod w7_mdsurrogate;

use crate::report::Scale;
use dd_nn::TrainError;
use serde::{Deserialize, Serialize};

/// Quality comparison between the workload's DNN and its classical baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// Workload id, e.g. "W1 tumor-type".
    pub name: String,
    /// Metric name, e.g. "test accuracy".
    pub metric: String,
    /// DNN score.
    pub dnn: f64,
    /// Classical baseline score.
    pub baseline: f64,
    /// Baseline label, e.g. "logistic".
    pub baseline_name: String,
    /// True when larger metric values are better.
    pub higher_is_better: bool,
    /// Wall-clock seconds spent.
    pub seconds: f64,
}

impl Outcome {
    /// Signed advantage of the DNN over the baseline, oriented so positive
    /// always means "DNN better".
    pub fn dnn_advantage(&self) -> f64 {
        if self.higher_is_better {
            self.dnn - self.baseline
        } else {
            self.baseline - self.dnn
        }
    }
}

/// Run every workload's comparison at a scale. The first training
/// divergence aborts the sweep: a partial comparison table would silently
/// misrepresent the claim the workloads exist to check.
pub fn run_all(scale: Scale, seed: u64) -> Result<Vec<Outcome>, TrainError> {
    Ok(vec![
        w1_tumor::run(scale, seed),
        w2_drug_response::run(scale, seed)?,
        w3_compound::run(scale, seed)?,
        w4_autoencoder::run(scale, seed),
        w5_records::run(scale, seed),
        w6_amr::run(scale, seed),
        w7_mdsurrogate::run(scale, seed),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_orientation() {
        let hi = Outcome {
            name: "t".into(),
            metric: "acc".into(),
            dnn: 0.9,
            baseline: 0.8,
            baseline_name: "b".into(),
            higher_is_better: true,
            seconds: 0.0,
        };
        assert!((hi.dnn_advantage() - 0.1).abs() < 1e-12);
        let lo = Outcome { higher_is_better: false, ..hi.clone() };
        assert!((lo.dnn_advantage() + 0.1).abs() < 1e-12);
    }
}
