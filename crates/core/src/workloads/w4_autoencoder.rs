//! W4 — expression autoencoder (CANDLE P1B1-style): compress expression
//! profiles through a bottleneck and reconstruct, versus PCA at the same
//! latent dimensionality.
//!
//! The synthetic expression model is linear-Gaussian, for which PCA is the
//! *optimal* linear compressor — the honest expectation (recorded in
//! EXPERIMENTS.md) is therefore "autoencoder ≈ PCA", demonstrating the DNN
//! matches classical best-in-class on this substrate rather than beating it.

use super::Outcome;
use crate::report::Scale;
use dd_datagen::baselines::Pca;
use dd_datagen::expression::{ExpressionModel, ExpressionSampler};
use dd_nn::{Activation, Loss, ModelSpec, OptimizerConfig, TrainConfig, Trainer};
use dd_tensor::{Matrix, Precision, Rng64};

/// Scale presets: (expression model, samples, latent dim, epochs).
pub fn config(scale: Scale) -> (ExpressionModel, usize, usize, usize) {
    match scale {
        Scale::Smoke => (
            ExpressionModel { genes: 96, pathways: 6, noise: 0.2, loading_density: 0.25 },
            800,
            6,
            40,
        ),
        Scale::Full => (
            ExpressionModel { genes: 512, pathways: 12, noise: 0.3, loading_density: 0.15 },
            6000,
            12,
            60,
        ),
    }
}

/// Autoencoder spec with a *linear* `latent` bottleneck (activations only on
/// the wide hidden layers — a saturating nonlinearity on the bottleneck
/// needlessly handicaps the network on near-linear factor data).
pub fn ae_spec(genes: usize, latent: usize) -> ModelSpec {
    use dd_nn::{Init, InputShape, LayerSpec};
    ModelSpec::new(InputShape::Flat(genes))
        .push(LayerSpec::Dense { out: 128, init: Init::He })
        .push(LayerSpec::Activation(Activation::Relu))
        .push(LayerSpec::Dense { out: latent, init: Init::Xavier })
        .push(LayerSpec::Dense { out: 128, init: Init::He })
        .push(LayerSpec::Activation(Activation::Relu))
        .push(LayerSpec::Dense { out: genes, init: Init::Xavier })
}

/// Mean squared reconstruction error.
fn recon_mse(original: &Matrix, reconstructed: &Matrix) -> f64 {
    original.zip_map(reconstructed, |a, b| (a - b) * (a - b)).mean() as f64
}

/// Run the W4 comparison (metric: reconstruction MSE; lower is better).
pub fn run(scale: Scale, seed: u64) -> Outcome {
    // Single-clock policy: wall time comes from the dd-obs span so the
    // reported seconds and the trace agree on one clock.
    let run_span = dd_obs::span("w4_autoencoder");
    let (expr, samples, latent, epochs) = config(scale);
    let mut rng = Rng64::new(seed);
    let sampler = ExpressionSampler::new(expr.clone(), &mut rng);
    let (x_all, _) = sampler.sample(samples, &mut rng);
    let n_test = samples / 5;
    let x_train = x_all.slice_rows(0, samples - n_test);
    let x_test = x_all.slice_rows(samples - n_test, samples);

    let mut model =
        ae_spec(expr.genes, latent).build(seed ^ 0xD3, Precision::F32).expect("valid AE spec");
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::Mse,
        seed,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, &x_train, &x_train, None).expect("training converged");
    let dnn_mse = recon_mse(&x_test, &model.predict(&x_test));

    let pca = Pca::fit(&x_train, latent, 40, seed ^ 0x3D);
    let pca_mse = recon_mse(&x_test, &pca.reconstruct(&x_test));

    Outcome {
        name: "W4 expression-AE".into(),
        metric: "test reconstruction MSE".into(),
        dnn: dnn_mse,
        baseline: pca_mse,
        baseline_name: format!("PCA(k={latent})"),
        higher_is_better: false,
        seconds: run_span.finish(),
    }
}

/// Bottleneck activations of a trained autoencoder for a batch: forward
/// through the encoder half (dense→relu→dense-latent, layers 0..3).
pub fn latent_codes(model: &mut dd_nn::Sequential, x: &Matrix) -> Matrix {
    let mut h = x.clone();
    for layer in &mut model.layers_mut()[..3] {
        h = layer.forward(&h, false, Precision::F32);
    }
    h
}

/// Train the W4 autoencoder and measure how much of each true pathway
/// factor is linearly decodable from the bottleneck (mean R² across
/// factors) — "the learned representation captures the biology".
pub fn latent_recovery(scale: Scale, seed: u64) -> f64 {
    let (expr, samples, latent, epochs) = config(scale);
    let mut rng = Rng64::new(seed);
    let sampler = ExpressionSampler::new(expr.clone(), &mut rng);
    let (x_all, z_all) = sampler.sample(samples, &mut rng);
    let n_test = samples / 5;
    let x_train = x_all.slice_rows(0, samples - n_test);
    let x_test = x_all.slice_rows(samples - n_test, samples);
    let z_test = z_all.slice_rows(samples - n_test, samples);

    let mut model =
        ae_spec(expr.genes, latent).build(seed ^ 0xD3, Precision::F32).expect("valid AE spec");
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::Mse,
        seed,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, &x_train, &x_train, None).expect("training converged");

    let codes = latent_codes(&mut model, &x_test);
    // Linearly decode each true factor from the codes with ridge.
    let mut total_r2 = 0.0;
    for p in 0..expr.pathways {
        let target: Vec<f32> = (0..z_test.rows()).map(|i| z_test.get(i, p)).collect();
        let ridge = dd_datagen::baselines::Ridge::fit(&codes, &target, 1e-2);
        let pred = ridge.predict(&codes);
        total_r2 += dd_tensor::r2_score(&target, &pred);
    }
    total_r2 / expr.pathways as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latent_space_recovers_pathway_factors() {
        let r2 = latent_recovery(Scale::Smoke, 6);
        assert!(r2 > 0.6, "mean factor-decoding R² {r2} — bottleneck should capture the pathways");
    }

    #[test]
    fn smoke_both_compress_well() {
        let o = run(Scale::Smoke, 5);
        // Total variance per gene is O(1); a working compressor should get
        // reconstruction error near the noise floor (0.2² = 0.04).
        assert!(o.baseline < 0.15, "PCA MSE {}", o.baseline);
        assert!(o.dnn < 0.3, "AE MSE {}", o.dnn);
        // AE within 4x of the optimal linear compressor on linear data.
        assert!(o.dnn < 4.0 * o.baseline, "AE {} vs PCA {}", o.dnn, o.baseline);
    }

    #[test]
    fn ae_spec_shape() {
        let spec = ae_spec(96, 6);
        assert_eq!(spec.output_dim().unwrap(), 96);
    }
}
