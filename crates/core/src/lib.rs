//! # deepdriver-core — driver workloads and the experiment harness
//!
//! The integrative layer of the reproduction: the seven biomedical driver
//! workloads the talk describes ([`workloads`], W1–W7) and the experiments
//! that turn each architectural claim of the abstract into a regenerable
//! table ([`experiments`], E1–E12). DESIGN.md maps every claim to its
//! experiment; EXPERIMENTS.md records expectation vs measurement.
//!
//! Each experiment ships as a binary (`exp-1-precision` …
//! `exp-11-faults`, `exp-profile`, plus `report-all`) taking
//! `[smoke|full] [seed]` and writing both an aligned text table and
//! `results/<slug>.csv`; the [`claims`] module (and the `verify-claims`
//! binary) re-checks every claim verdict programmatically. Every binary
//! honours `DD_TRACE=<path>` / `DD_METRICS=<path>`: set either and the run
//! is recorded by `dd-obs`, exporting a Chrome trace / JSONL metrics file
//! on exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claims;
pub mod experiments;
pub mod report;
pub mod workloads;

pub use report::{Scale, Table};
