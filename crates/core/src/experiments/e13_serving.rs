//! E13 — batched inference serving: the latency/throughput trade.
//!
//! Training is only half of the paper's pipeline picture: screened compound
//! rankings and drug-response predictions are *served*, and serving stresses
//! latency under open-loop load rather than sustained training FLOPs. This
//! experiment sweeps the dd-serve dynamic batcher — `max_batch` ×
//! `max_wait` × offered Poisson load — over a drug-response-sized MLP and
//! measures, per configuration, what was admitted, shed, and completed,
//! plus the queue-wait/service/end-to-end latency quantiles from dd-obs
//! histograms.
//!
//! The sweep runs dd-serve's virtual-time simulator (the deterministic twin
//! of the threaded server, sharing its batching decision core), so the CSV
//! is byte-identical across same-seed runs. Two shapes are asserted:
//!
//! * the *batching knee* — at saturating load, batch-64 throughput is
//!   several times batch-1 throughput, because the fixed per-dispatch
//!   overhead amortizes across coalesced rows;
//! * the *overload cliff is a shelf, not a spiral* — past saturation the
//!   bounded admission queue rejects and the deadline sheds, so the p99 of
//!   what **is** served stays bounded instead of growing with the backlog.

use crate::report::{fnum, Scale, Table};
use dd_nn::{Activation, ModelSpec};
use dd_serve::{
    poisson_arrivals, simulate, BatchPolicy, LoadConfig, ServiceModel, SimConfig, SimReport,
};
use dd_tensor::Precision;

/// Batch-size grid.
pub const BATCH_GRID: [usize; 4] = [1, 4, 16, 64];
/// Coalescing-window grid, milliseconds.
pub const WAIT_GRID_MS: [f64; 2] = [0.5, 2.0];
/// Offered load as a multiple of the batch-16 saturation throughput.
pub const LOAD_FACTORS: [f64; 4] = [0.5, 0.9, 1.2, 2.0];

/// Per-request deadline, seconds.
pub const DEADLINE_S: f64 = 0.05;
/// Admission-queue capacity.
pub const QUEUE_CAPACITY: usize = 256;
/// Serving workers.
pub const WORKERS: usize = 2;
/// Sustained device rate pricing one row's forward pass (a host core tile,
/// not an accelerator — serving is the latency-bound corner).
const DEVICE_FLOPS_PER_S: f64 = 5.0e10;
/// Fixed per-dispatch overhead (queue handoff, snapshot resolve, kernel
/// launch in spirit), seconds.
const BASE_OVERHEAD_S: f64 = 200e-6;

/// The drug-response-sized serving model: W2's descriptor width into a
/// two-layer MLP scorer.
pub fn serving_spec() -> ModelSpec {
    ModelSpec::mlp(60, &[256, 128], 1, Activation::Relu)
}

/// The batch cost model: forward FLOPs of [`serving_spec`] at
/// [`DEVICE_FLOPS_PER_S`] plus [`BASE_OVERHEAD_S`] per dispatch.
pub fn service_model() -> ServiceModel {
    let Ok(model) = serving_spec().build(1, Precision::F32) else {
        unreachable!("static MLP spec is always buildable")
    };
    ServiceModel::from_flops(model.forward_flops(1), DEVICE_FLOPS_PER_S, BASE_OVERHEAD_S)
}

/// One (max_batch, max_wait, offered load) point of the sweep.
pub struct ServeRow {
    /// Batcher's maximum coalesced batch.
    pub max_batch: usize,
    /// Batcher's coalescing window, milliseconds.
    pub wait_ms: f64,
    /// Offered Poisson load, requests per second.
    pub offered_rps: f64,
    /// Everything the simulation measured at this point.
    pub report: SimReport,
}

/// Run the sweep. The arrival process is shared across policies at each
/// offered load, so policy columns are compared on identical workloads.
pub fn sweep(scale: Scale, seed: u64) -> Vec<ServeRow> {
    let requests = match scale {
        Scale::Smoke => 3000,
        Scale::Full => 20_000,
    };
    let service = service_model();
    let reference_rps = service.saturation_rps(16, WORKERS);
    let mut rows = Vec::new();
    for (li, &factor) in LOAD_FACTORS.iter().enumerate() {
        let offered_rps = factor * reference_rps;
        let arrivals = poisson_arrivals(&LoadConfig {
            rate_per_s: offered_rps,
            requests,
            seed: seed.wrapping_add(li as u64),
        });
        for &max_batch in BATCH_GRID.iter() {
            for &wait_ms in WAIT_GRID_MS.iter() {
                let cfg = SimConfig {
                    policy: BatchPolicy::new(max_batch, wait_ms * 1e-3, DEADLINE_S),
                    queue_capacity: QUEUE_CAPACITY,
                    workers: WORKERS,
                    service,
                    arrivals: arrivals.clone(),
                };
                rows.push(ServeRow { max_batch, wait_ms, offered_rps, report: simulate(&cfg) });
            }
        }
    }
    rows
}

/// The batching knee: at the highest offered load, batch-64 throughput
/// must more than double batch-1 throughput in every coalescing window.
pub fn batching_knee(rows: &[ServeRow]) -> bool {
    let top = rows.iter().map(|r| r.offered_rps).fold(0.0, f64::max);
    WAIT_GRID_MS.iter().all(|&w| {
        let throughput = |b: usize| {
            rows.iter()
                .find(|r| r.offered_rps == top && r.wait_ms == w && r.max_batch == b)
                .map_or(0.0, |r| r.report.throughput_rps)
        };
        throughput(64) > 2.0 * throughput(1)
    })
}

/// The overload shelf: wherever offered load exceeds a policy's saturation
/// throughput, the server must shed (reject or expire) *and* keep the p99
/// of served requests under deadline + one max-batch service time (with
/// log-bucket quantile slack).
pub fn overload_is_bounded(rows: &[ServeRow], service: &ServiceModel) -> bool {
    rows.iter().filter(|r| r.offered_rps > 1.1 * service.saturation_rps(r.max_batch, WORKERS)).all(
        |r| {
            r.report.rejected + r.report.shed > 0
                && r.report.e2e.p99 < 1.25 * (DEADLINE_S + service.seconds(r.max_batch))
        },
    )
}

/// Render the E13 table.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E13: batched inference serving (60-feature MLP scorer, 2 workers, 50 ms deadline)",
        &[
            "max_batch",
            "wait_ms",
            "offered_rps",
            "requests",
            "admitted",
            "rejected",
            "shed",
            "completed",
            "throughput_rps",
            "mean_batch",
            "qwait_p50_ms",
            "svc_p50_ms",
            "e2e_p50_ms",
            "e2e_p95_ms",
            "e2e_p99_ms",
        ],
    );
    for r in sweep(scale, seed) {
        let rep = &r.report;
        table.push_row(vec![
            r.max_batch.to_string(),
            fnum(r.wait_ms),
            fnum(r.offered_rps),
            rep.offered.to_string(),
            rep.admitted.to_string(),
            rep.rejected.to_string(),
            rep.shed.to_string(),
            rep.completed.to_string(),
            fnum(rep.throughput_rps),
            fnum(rep.mean_batch),
            fnum(rep.queue_wait.p50 * 1e3),
            fnum(rep.service.p50 * 1e3),
            fnum(rep.e2e.p50 * 1e3),
            fnum(rep.e2e.p95 * 1e3),
            fnum(rep.e2e.p99 * 1e3),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_conserves_requests() {
        let a = run(Scale::Smoke, 2017).to_csv();
        let b = run(Scale::Smoke, 2017).to_csv();
        assert_eq!(a, b, "same seed must give a byte-identical table");
        let rows = sweep(Scale::Smoke, 2017);
        assert_eq!(rows.len(), LOAD_FACTORS.len() * BATCH_GRID.len() * WAIT_GRID_MS.len());
        for r in &rows {
            assert_eq!(r.report.offered, r.report.admitted + r.report.rejected);
            assert_eq!(r.report.admitted, r.report.completed + r.report.shed);
        }
    }

    #[test]
    fn knee_and_overload_shapes_hold() {
        let rows = sweep(Scale::Smoke, 2017);
        let service = service_model();
        assert!(batching_knee(&rows), "batch-64 should dwarf batch-1 at peak load");
        assert!(overload_is_bounded(&rows, &service), "overload must shed with bounded p99");
        // Underload is polite: at 0.5x reference load with the full batch
        // budget, nothing is rejected or shed.
        let light = rows
            .iter()
            .filter(|r| r.max_batch == 64)
            .min_by(|a, b| a.offered_rps.total_cmp(&b.offered_rps));
        match light {
            Some(r) => assert_eq!(r.report.rejected + r.report.shed, 0),
            None => panic!("sweep produced no batch-64 rows"),
        }
    }
}
