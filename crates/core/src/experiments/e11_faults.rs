//! E11 — fault tolerance: checkpoint interval vs failure rate.
//!
//! At the paper's target scale the synchronous training job sees a system
//! MTBF of minutes, not days (`M_sys = M_node / n`), and the checkpoint
//! interval becomes a first-order performance knob. This experiment sweeps
//! the interval for a 500M-parameter training state (weights + Adam
//! moments, ~6 GB) checkpointed to either the node-local burst buffer
//! (NVRAM) or the parallel filesystem, at several node counts, and compares
//! three views of the expected day-long run:
//!
//! * the *analytic* first-order model `T = W(1 + δ/τ)/(1 − (R + τ/2)/M)`;
//! * the *measured* mean wall-clock of `dd-hpcsim`'s deterministic
//!   checkpointed-run simulator over many failure samples;
//! * the Young/Daly prediction `τ* = sqrt(2 δ M)`.
//!
//! The headline result (asserted in the test and in claim C11): the
//! empirically best interval on the sweep grid lands within one grid step
//! of Young/Daly for every (nodes, tier) combination — and the burst
//! buffer's ~6x cheaper checkpoints buy a ~2.4x shorter optimal interval,
//! the NVRAM argument of the paper in failure-domain terms.

use crate::report::{fnum, Scale, Table};
use dd_hpcsim::failure::{
    checkpoint_cost, expected_runtime, mean_simulated_runtime, young_daly_interval, FailureModel,
};
use dd_hpcsim::memory::accelerator_node_2017;
use dd_hpcsim::Tier;

/// Checkpoint intervals swept, in seconds (geometric, factor 2).
pub const INTERVAL_GRID: [f64; 8] = [15.0, 30.0, 60.0, 120.0, 240.0, 480.0, 960.0, 1920.0];

/// Useful work in the job, seconds (one day of training).
const WORK_SECONDS: f64 = 86_400.0;
/// Per-node MTBF, seconds (~5.8 days — commodity-accelerator territory).
const NODE_MTBF: f64 = 5.0e5;
/// Checkpointed state: 500M f32 parameters plus two Adam moments.
const STATE_BYTES: f64 = 6e9;
/// Restart overhead beyond re-reading the checkpoint (reschedule, rebuild).
const RESTART_BASE: f64 = 30.0;

/// One (nodes, tier, interval) point of the sweep.
pub struct FaultRow {
    /// Nodes in the synchronous job.
    pub nodes: usize,
    /// Tier holding the checkpoints.
    pub tier: Tier,
    /// System MTBF seen by the job.
    pub system_mtbf: f64,
    /// Checkpoint write cost δ on this tier.
    pub checkpoint_seconds: f64,
    /// Checkpoint interval τ for this row.
    pub interval: f64,
    /// First-order analytic expected wall-clock (infinite when the waste
    /// per MTBF exceeds one — the job thrashes).
    pub analytic_seconds: f64,
    /// Mean simulated wall-clock over the seed ensemble.
    pub simulated_seconds: f64,
    /// Young/Daly prediction `sqrt(2 δ M)` for this (nodes, tier).
    pub young_daly: f64,
}

/// Run the sweep. Rows are grouped: all grid intervals for one
/// (nodes, tier) are contiguous.
pub fn sweep(scale: Scale, seed: u64) -> Vec<FaultRow> {
    let (node_counts, seeds_per_point): (&[usize], u64) = match scale {
        Scale::Smoke => (&[64, 1024], 24),
        Scale::Full => (&[64, 256, 1024], 96),
    };
    let memory = accelerator_node_2017();
    let model = FailureModel::new(NODE_MTBF);
    let mut rows = Vec::new();
    for &nodes in node_counts {
        let mtbf = model.system_mtbf(nodes);
        for tier in [Tier::Nvram, Tier::Pfs] {
            let Some(cost) = checkpoint_cost(&memory, tier, STATE_BYTES) else {
                unreachable!("the 2017 accelerator node models both checkpoint tiers")
            };
            let delta = cost.write_seconds;
            let restart = RESTART_BASE + cost.read_seconds;
            let tau = young_daly_interval(delta, mtbf);
            for &interval in INTERVAL_GRID.iter() {
                rows.push(FaultRow {
                    nodes,
                    tier,
                    system_mtbf: mtbf,
                    checkpoint_seconds: delta,
                    interval,
                    analytic_seconds: expected_runtime(
                        WORK_SECONDS,
                        interval,
                        delta,
                        restart,
                        mtbf,
                    ),
                    simulated_seconds: mean_simulated_runtime(
                        WORK_SECONDS,
                        interval,
                        delta,
                        restart,
                        mtbf,
                        seed..seed + seeds_per_point,
                    ),
                    young_daly: tau,
                });
            }
        }
    }
    rows
}

/// Does the empirically best interval land within one grid step of the
/// Young/Daly prediction in *every* (nodes, tier) group?
pub fn empirical_tracks_young_daly(rows: &[FaultRow]) -> bool {
    rows.chunks(INTERVAL_GRID.len()).all(|group| {
        let Some(tau) = group.first().map(|r| r.young_daly) else {
            return false;
        };
        let best = group
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.simulated_seconds.total_cmp(&b.1.simulated_seconds))
            .map(|(i, _)| i);
        let nearest = group
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1.interval - tau).abs().total_cmp(&(b.1.interval - tau).abs()))
            .map(|(i, _)| i);
        match (best, nearest) {
            (Some(best), Some(nearest)) => best.abs_diff(nearest) <= 1,
            _ => false,
        }
    })
}

/// Render the E11 table.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E11: checkpoint interval vs failure rate (500M-param state, 1-day job, node MTBF 5.8d)",
        &[
            "nodes",
            "tier",
            "sys MTBF s",
            "ckpt s",
            "interval s",
            "analytic h",
            "sim h",
            "Young/Daly s",
        ],
    );
    for r in sweep(scale, seed) {
        table.push_row(vec![
            r.nodes.to_string(),
            r.tier.name().to_string(),
            fnum(r.system_mtbf),
            fnum(r.checkpoint_seconds),
            fnum(r.interval),
            if r.analytic_seconds.is_finite() {
                fnum(r.analytic_seconds / 3600.0)
            } else {
                "thrash".to_string()
            },
            fnum(r.simulated_seconds / 3600.0),
            fnum(r.young_daly),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_optimum_tracks_young_daly() {
        let rows = sweep(Scale::Smoke, 3);
        assert_eq!(rows.len(), 2 * 2 * INTERVAL_GRID.len());
        assert!(empirical_tracks_young_daly(&rows), "optimum drifted from Young/Daly");
        // At the Young/Daly grid point the sampled mean agrees with the
        // first-order analytic model.
        for group in rows.chunks(INTERVAL_GRID.len()) {
            let tau = group[0].young_daly;
            let near = group
                .iter()
                .min_by(|a, b| {
                    (a.interval - tau).abs().partial_cmp(&(b.interval - tau).abs()).unwrap()
                })
                .unwrap();
            let ratio = near.simulated_seconds / near.analytic_seconds;
            assert!((0.9..1.1).contains(&ratio), "sim/analytic ratio {ratio:.3} at tau {tau:.0}");
        }
    }

    #[test]
    fn burst_buffer_shortens_the_optimal_interval() {
        let rows = sweep(Scale::Smoke, 3);
        // Groups alternate NVRAM then PFS per node count.
        let nvram = &rows[0];
        let pfs = &rows[INTERVAL_GRID.len()];
        assert_eq!(nvram.nodes, pfs.nodes);
        assert!(nvram.checkpoint_seconds * 4.0 < pfs.checkpoint_seconds);
        assert!(nvram.young_daly < 0.5 * pfs.young_daly);
    }
}
