//! E3 — "a high-bandwidth communication fabric … to support network model
//! parallelism".
//!
//! Sweeps fabric bandwidth and compares pure data, pure model and hybrid
//! parallelism for a large model at fixed node count: model parallelism is
//! the strategy whose step time moves with fabric bandwidth, and the
//! data/model crossover shifts with it.

use crate::report::{fnum, ftime, Scale, Table};
use dd_hpcsim::{AllreduceAlgo, Machine, SimPrecision, Strategy, TrainJob};

/// The model sized so one node's memory is uncomfortable: 400M parameters.
pub fn big_job(global_batch: usize) -> TrainJob {
    TrainJob::from_dense_net(400e6, 4000, global_batch, 16)
}

/// Rows: `(bandwidth GB/s, t_data, t_model8, t_hybrid, winner)`.
///
/// Global batch is deliberately small (512): the regime where the gradient
/// allreduce cannot hide behind compute and the strategy choice genuinely
/// depends on the fabric.
pub fn sweep(scale: Scale) -> Vec<(f64, f64, f64, f64, &'static str)> {
    let nodes = 64;
    let job = big_job(512);
    let bandwidths: Vec<f64> = match scale {
        Scale::Smoke => vec![1e9, 12.5e9, 100e9, 400e9],
        Scale::Full => vec![1e9, 4e9, 12.5e9, 25e9, 50e9, 100e9, 200e9, 400e9],
    };
    bandwidths
        .into_iter()
        .map(|bw| {
            let mut machine = Machine::gpu_2017(nodes);
            machine.fabric = machine.fabric.with_bandwidth(bw);
            let t_data = dd_hpcsim::step_time(
                &machine,
                &job,
                Strategy::Data { nodes, algo: AllreduceAlgo::Auto },
                SimPrecision::F32,
            )
            .step;
            let t_model = dd_hpcsim::step_time(
                &machine,
                &job,
                Strategy::Model { parts: 8 },
                SimPrecision::F32,
            )
            .step;
            let t_hybrid = dd_hpcsim::step_time(
                &machine,
                &job,
                Strategy::Hybrid { data_ways: 8, model_ways: 8, algo: AllreduceAlgo::Auto },
                SimPrecision::F32,
            )
            .step;
            let winner = if t_data <= t_model && t_data <= t_hybrid {
                "data"
            } else if t_model <= t_hybrid {
                "model"
            } else {
                "hybrid"
            };
            (bw, t_data, t_model, t_hybrid, winner)
        })
        .collect()
}

/// Render the E3 table.
pub fn run(scale: Scale, _seed: u64) -> Table {
    let mut table = Table::new(
        "E3: parallelism strategy vs fabric bandwidth (64 nodes, 400M-param net)",
        &["fabric GB/s", "data (64w)", "model (8w)", "hybrid (8x8)", "winner"],
    );
    for (bw, d, m, h, w) in sweep(scale) {
        table.push_row(vec![fnum(bw / 1e9), ftime(d), ftime(m), ftime(h), w.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_parallelism_needs_bandwidth() {
        // The claim: model parallelism's serialized activation exchanges put
        // fabric bandwidth on the critical path. Its communication share
        // must fall from dominant on a slow fabric to minor on a fast one.
        let nodes = 64;
        let job = big_job(512);
        let share = |bw: f64| {
            let mut machine = Machine::gpu_2017(nodes);
            machine.fabric = machine.fabric.with_bandwidth(bw);
            let b = dd_hpcsim::step_time(
                &machine,
                &job,
                Strategy::Model { parts: 8 },
                SimPrecision::F32,
            );
            b.comm / b.step
        };
        let slow = share(1e9);
        let fast = share(400e9);
        assert!(slow > 0.5, "slow-fabric comm share {slow}");
        assert!(fast < 0.1, "fast-fabric comm share {fast}");
    }

    #[test]
    fn slow_fabric_dethrones_pure_data_parallelism() {
        // At 1 GB/s the 1.6 GB gradient allreduce swamps data parallelism;
        // a model-parallel or hybrid plan must win.
        let rows = sweep(Scale::Smoke);
        let slowest = &rows[0];
        assert_ne!(slowest.4, "data", "data parallel should lose at {} GB/s", slowest.0 / 1e9);
        assert!(slowest.1 > slowest.2.min(slowest.3));
    }

    #[test]
    fn step_times_decrease_with_bandwidth() {
        let rows = sweep(Scale::Smoke);
        for pair in rows.windows(2) {
            assert!(pair[1].2 <= pair[0].2 + 1e-12, "model time must fall with bw");
            assert!(pair[1].1 <= pair[0].1 + 1e-12, "data time must fall with bw");
        }
    }

    #[test]
    fn table_renders() {
        let t = run(Scale::Smoke, 0);
        assert_eq!(t.rows.len(), 4);
    }
}
