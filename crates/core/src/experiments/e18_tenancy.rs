//! E18 — multi-tenant serving: weighted-fair admission vs global FIFO.
//!
//! E13–E15 grew one serving queue into a resilient, observable engine; this
//! experiment asks what happens when the *same* fleet is shared. CANDLE's
//! serving consumers are not one workload: a clinician scoring one
//! patient's drug panel (interactive, deadline-bound) shares replicas with
//! a compound-screening pipeline draining millions of rows (batch,
//! throughput-bound). The sweep drives the dd-serve multi-tenant simulator
//! — the deterministic twin of the tenanted threaded server, sharing its
//! `DrrScheduler`/`plan_fair`/`Autoscaler` decision core — over tenant
//! mixes and burst patterns, and compares two admission policies on
//! identical per-tenant arrival processes:
//!
//! * **fifo** — the pre-E18 shape: one global arrival-ordered queue.
//!   Per-tenant quotas still gate admission, so the only difference under
//!   test is the *ordering* policy.
//! * **fair** — strict [`dd_serve::PriorityClass`] precedence, then
//!   deficit-round-robin weighted fairness between tenants of a class,
//!   with a queue-depth autoscaler growing the active pool inside its
//!   provisioned band.
//!
//! Two shapes are asserted (claim C18): the *interactive guarantee* — when
//! a batch tenant bursts past the provisioned pool's saturation rate,
//! weighted-fair admission keeps the interactive tenant's p99 inside its
//! deadline with (almost) no sheds, where FIFO queues the clinician behind
//! the flood and blows the deadline — and the *soak guarantee* — with the
//! interactive tenant idle, fair batch throughput is >= 90% of FIFO's, so
//! the guarantee is not bought by starving the batch tier.

use crate::report::{fnum, Scale, Table};
use dd_serve::{
    AutoscalePolicy, BatchPolicy, PriorityClass, ServiceModel, TenantDirectory, TenantLoad,
    TenantSimConfig, TenantSimReport, TenantSpec,
};

/// Batcher's maximum coalesced batch.
pub const MAX_BATCH: usize = 16;
/// Batcher's coalescing window, seconds.
pub const MAX_WAIT_S: f64 = 0.002;
/// Per-request deadline, seconds.
pub const DEADLINE_S: f64 = 0.25;
/// Autoscaler band: replicas kept warm at idle.
pub const MIN_REPLICAS: usize = 1;
/// Autoscaler band: provisioned pool ceiling.
pub const MAX_REPLICAS: usize = 4;
/// Queue depth above which the autoscaler grows the pool.
pub const SCALE_HIGH: usize = 64;
/// Queue depth below which it shrinks.
pub const SCALE_LOW: usize = 8;
/// Seconds between autoscaler actions (hysteresis).
pub const SCALE_COOLDOWN_S: f64 = 0.25;

/// The batch cost model (same as E14): 2 ms dispatch overhead plus 0.5 ms
/// per row, so one replica saturates at 1600 rps with full batches.
pub fn service_model() -> ServiceModel {
    ServiceModel::new(2e-3, 0.5e-3)
}

fn scale_policy() -> AutoscalePolicy {
    AutoscalePolicy::new(MIN_REPLICAS, MAX_REPLICAS, SCALE_HIGH, SCALE_LOW, SCALE_COOLDOWN_S)
}

/// One tenant population under test.
pub struct Mix {
    /// Mix id (CSV key).
    pub name: &'static str,
    /// Tenant specs, directory order.
    pub tenants: Vec<TenantSpec>,
}

/// The tenant mixes the sweep covers: a two-tenant clinic/screening split,
/// and a three-tenant mix adding weighted fairness *within* the batch
/// class (screen-a carries 3x screen-b's weight).
pub fn mixes() -> Vec<Mix> {
    vec![
        Mix {
            name: "clinic+screen",
            tenants: vec![
                TenantSpec::new("clinic", PriorityClass::Interactive, 1, 256, "m-clinic"),
                TenantSpec::new("screen", PriorityClass::Batch, 2, 4096, "m-screen"),
            ],
        },
        Mix {
            name: "weighted3",
            tenants: vec![
                TenantSpec::new("clinic", PriorityClass::Interactive, 1, 256, "m-clinic"),
                TenantSpec::new("screen-a", PriorityClass::Batch, 3, 2048, "m-screen"),
                TenantSpec::new("screen-b", PriorityClass::Batch, 1, 2048, "m-screen"),
            ],
        },
    ]
}

/// Burst patterns swept per mix.
pub const PATTERNS: [&str; 3] = ["steady", "burst", "idle"];

/// Per-tenant request counts at each scale: (interactive, per-batch-tenant).
fn volumes(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Smoke => (1500, 4500),
        Scale::Full => (10_000, 30_000),
    }
}

/// Build the per-tenant loads for a (mix, pattern) grid point. The batch
/// burst runs at 1.5x the *provisioned* pool's saturation rate, so even a
/// fully grown pool cannot absorb it — the policies differ in who pays.
fn loads(mix: &Mix, pattern: &str, scale: Scale) -> Vec<TenantLoad> {
    let service = service_model();
    let max_sat = service.saturation_rps(MAX_BATCH, MAX_REPLICAS);
    let (n_inter, n_batch) = volumes(scale);
    let burst_rps = 1.5 * max_sat;
    let batch_tenants = mix.tenants.iter().filter(|t| t.class != PriorityClass::Interactive);
    let n_batch_tenants = batch_tenants.count().max(1);
    mix.tenants
        .iter()
        .map(|t| {
            let interactive = t.class == PriorityClass::Interactive;
            match pattern {
                // Aggregate ~1.5x the warm single replica: the autoscaler
                // grows, nobody is overloaded for long.
                "steady" => {
                    if interactive {
                        TenantLoad::steady(0.25 * max_sat / MAX_REPLICAS as f64, n_inter)
                    } else {
                        TenantLoad::steady(
                            1.25 * max_sat / (MAX_REPLICAS * n_batch_tenants) as f64,
                            n_batch,
                        )
                    }
                }
                // The batch tier bursts past full-pool saturation while
                // the clinic keeps its steady trickle. The burst window
                // covers a fixed 60% of the clinic's stream and the batch
                // volume is sized to sustain it, so the FIFO miss *rate*
                // the claim gates on is scale-invariant.
                "burst" => {
                    let clinic_rate = 0.25 * max_sat / MAX_REPLICAS as f64;
                    if interactive {
                        TenantLoad::steady(clinic_rate, n_inter)
                    } else {
                        let base = 0.5 * max_sat / (MAX_REPLICAS * n_batch_tenants) as f64;
                        let burst = burst_rps / n_batch_tenants as f64;
                        let burst_len_s = 0.6 * n_inter as f64 / clinic_rate;
                        // dd-lint: allow(lossy-cast/float-to-int) -- rate×duration rounds up to a request count; always positive and far below usize::MAX
                        let requests = (base + burst * burst_len_s).ceil() as usize;
                        TenantLoad::with_burst(base, requests, burst, 1.0, burst_len_s)
                    }
                }
                // The clinic offers nothing: whatever fair "costs" the
                // batch tier with spare capacity shows up here.
                "idle" => {
                    if interactive {
                        TenantLoad::steady(1.0, 0)
                    } else {
                        TenantLoad::steady(0.9 * max_sat / n_batch_tenants as f64, 2 * n_batch)
                    }
                }
                other => unreachable!("unknown pattern {other}"),
            }
        })
        .collect()
}

/// One (mix, pattern, policy) point of the sweep.
pub struct TenancyRow {
    /// Tenant-mix id.
    pub mix: &'static str,
    /// Burst-pattern id.
    pub pattern: &'static str,
    /// `true` for weighted-fair DRR, `false` for the global-FIFO baseline.
    pub fair: bool,
    /// Everything the multi-tenant simulation measured at this point.
    pub report: TenantSimReport,
}

/// Run the sweep. Both policies at a grid point consume identical
/// per-tenant arrival streams (the seed depends only on the grid point),
/// so every per-tenant delta is attributable to the ordering policy alone.
pub fn sweep(scale: Scale, seed: u64) -> Vec<TenancyRow> {
    let mut rows = Vec::new();
    for (mi, mix) in mixes().iter().enumerate() {
        for (pi, &pattern) in PATTERNS.iter().enumerate() {
            let point_seed = seed.wrapping_add((mi * PATTERNS.len() + pi) as u64);
            for fair in [false, true] {
                let directory = TenantDirectory::new(mix.tenants.clone())
                    .unwrap_or_else(|e| unreachable!("static mix {} invalid: {e}", mix.name));
                let cfg = TenantSimConfig {
                    directory,
                    loads: loads(mix, pattern, scale),
                    policy: BatchPolicy::new(MAX_BATCH, MAX_WAIT_S, DEADLINE_S),
                    service: service_model(),
                    scale: scale_policy(),
                    fair,
                    seed: point_seed,
                    telemetry: true,
                };
                rows.push(TenancyRow {
                    mix: mix.name,
                    pattern,
                    fair,
                    report: dd_serve::simulate_tenants(&cfg),
                });
            }
        }
    }
    rows
}

fn at<'a>(rows: &'a [TenancyRow], mix: &str, pattern: &str, fair: bool) -> Option<&'a TenancyRow> {
    rows.iter().find(|r| r.mix == mix && r.pattern == pattern && r.fair == fair)
}

/// Fraction of an interactive tenant's offered requests that missed their
/// deadline (shed before service, or answered late).
fn interactive_miss_rate(report: &TenantSimReport) -> f64 {
    let mut offered = 0usize;
    let mut missed = 0usize;
    for t in &report.tenants {
        if t.class == PriorityClass::Interactive {
            offered += t.offered;
            missed += t.shed + t.deadline_viol + t.rejected;
        }
    }
    if offered == 0 {
        0.0
    } else {
        missed as f64 / offered as f64
    }
}

fn interactive_p99_s(report: &TenantSimReport) -> f64 {
    report
        .tenants
        .iter()
        .filter(|t| t.class == PriorityClass::Interactive)
        .map(|t| t.e2e.p99)
        .fold(0.0, f64::max)
}

fn batch_throughput_rps(report: &TenantSimReport) -> f64 {
    report
        .tenants
        .iter()
        .filter(|t| t.class != PriorityClass::Interactive)
        .map(|t| t.throughput_rps)
        .sum()
}

/// The interactive guarantee: in every mix, at the burst pattern, FIFO
/// lets the batch flood blow the interactive deadline (>10% of the
/// clinic's requests miss), while weighted-fair admission on the identical
/// arrivals keeps the miss rate under 1% and the clinic's p99 inside the
/// deadline.
pub fn interactive_protected(rows: &[TenancyRow]) -> bool {
    mixes().iter().all(|mix| {
        let (Some(fifo), Some(fair)) =
            (at(rows, mix.name, "burst", false), at(rows, mix.name, "burst", true))
        else {
            return false;
        };
        interactive_miss_rate(&fifo.report) > 0.10
            && interactive_miss_rate(&fair.report) < 0.01
            && interactive_p99_s(&fair.report) <= DEADLINE_S
    })
}

/// The soak guarantee: in every mix, with the interactive tenant idle,
/// fair batch throughput stays within 10% of the FIFO baseline — priority
/// classes do not tax the batch tier when there is nothing to protect.
pub fn batch_soaks_spare_capacity(rows: &[TenancyRow]) -> bool {
    mixes().iter().all(|mix| {
        let (Some(fifo), Some(fair)) =
            (at(rows, mix.name, "idle", false), at(rows, mix.name, "idle", true))
        else {
            return false;
        };
        batch_throughput_rps(&fair.report) >= 0.90 * batch_throughput_rps(&fifo.report)
    })
}

/// The autoscaler shape: every burst run grows the pool to its ceiling,
/// and every idle-pattern run stays inside the provisioned band.
pub fn autoscaler_tracks_bursts(rows: &[TenancyRow]) -> bool {
    rows.iter().all(|r| {
        let within = r.report.max_active >= MIN_REPLICAS && r.report.max_active <= MAX_REPLICAS;
        let grows =
            r.pattern != "burst" || (r.report.scale_ups > 0 && r.report.max_active == MAX_REPLICAS);
        within && grows
    })
}

/// Render the E18 table: one row per (mix, pattern, policy, tenant).
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E18: multi-tenant serving (weighted-fair DRR + priority classes + autoscaler vs global FIFO)",
        &[
            "mix",
            "pattern",
            "policy",
            "tenant",
            "class",
            "offered",
            "admitted",
            "rejected",
            "shed",
            "completed",
            "viol",
            "e2e_p50_ms",
            "e2e_p99_ms",
            "tput_rps",
            "scale_ups",
            "scale_downs",
            "max_active",
        ],
    );
    for r in sweep(scale, seed) {
        for t in &r.report.tenants {
            table.push_row(vec![
                r.mix.to_string(),
                r.pattern.to_string(),
                if r.fair { "fair" } else { "fifo" }.to_string(),
                t.name.clone(),
                t.class.label().to_string(),
                t.offered.to_string(),
                t.admitted.to_string(),
                t.rejected.to_string(),
                t.shed.to_string(),
                t.completed.to_string(),
                t.deadline_viol.to_string(),
                fnum(t.e2e.p50 * 1e3),
                fnum(t.e2e.p99 * 1e3),
                fnum(t.throughput_rps),
                r.report.scale_ups.to_string(),
                r.report.scale_downs.to_string(),
                r.report.max_active.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_conserves_requests() {
        let a = run(Scale::Smoke, 2017).to_csv();
        let b = run(Scale::Smoke, 2017).to_csv();
        assert_eq!(a, b, "same seed must give a byte-identical table");
        let rows = sweep(Scale::Smoke, 2017);
        assert_eq!(rows.len(), 2 * mixes().len() * PATTERNS.len());
        for r in &rows {
            for t in &r.report.tenants {
                assert_eq!(t.offered, t.admitted + t.rejected, "{}/{}", r.mix, t.name);
                assert_eq!(t.admitted, t.completed + t.shed, "{}/{}", r.mix, t.name);
            }
        }
    }

    #[test]
    fn c18_shapes_hold() {
        let rows = sweep(Scale::Smoke, 2017);
        assert!(interactive_protected(&rows), "fair must protect the clinic through the burst");
        assert!(batch_soaks_spare_capacity(&rows), "fair must not tax an uncontended batch tier");
        assert!(autoscaler_tracks_bursts(&rows), "autoscaler must grow under burst, stay in band");
    }

    #[test]
    fn weighted_share_favors_the_heavier_batch_tenant() {
        // In the weighted3 mix under burst contention, screen-a (weight 3)
        // and screen-b (weight 1) see statistically identical arrival
        // processes, so DRR's deficit ratio must show up as screen-a
        // answering more of its requests and shedding fewer.
        let rows = sweep(Scale::Smoke, 2017);
        let Some(fair) = at(&rows, "weighted3", "burst", true) else {
            panic!("weighted3 burst fair row missing");
        };
        let stat = |name: &str| {
            fair.report.tenant(name).map_or((0, usize::MAX), |t| (t.completed, t.shed))
        };
        let (a_done, a_shed) = stat("screen-a");
        let (b_done, b_shed) = stat("screen-b");
        assert!(
            a_done > b_done && a_shed < b_shed,
            "weight 3 should beat weight 1 under contention: completed {a_done} vs {b_done}, shed {a_shed} vs {b_shed}"
        );
    }
}
