//! E15 — streaming telemetry: burn-rate detection latency vs window shape.
//!
//! E14 showed the resilience machinery surviving chaos; this experiment
//! asks how fast an *operator* finds out. The dd-serve telemetry bundle
//! watches the chaos simulator through sliding windows and multi-window
//! burn-rate SLO monitors, and the sweep measures the two numbers any
//! alerting design trades between:
//!
//! * **detection latency** — chaos (2.5× overload plus an E14-style
//!   per-replica crash schedule) switches on at a known virtual time
//!   [`ONSET_S`]; the latency is the gap between that onset and the first
//!   `Fired` alert edge.
//! * **false positives** — the same serving stack at a clean 0.6×
//!   saturation steady state must fire nothing at all.
//!
//! The grid sweeps the fast SLO window (slow window fixed at
//! [`SLOW_FACTOR`]× fast). The claimed shape (C15): every window config
//! detects the onset within [`DETECTION_WINDOWS`] fast-window lengths,
//! with zero false positives at steady state — i.e. the multi-window
//! design buys blip-immunity without giving up bounded detection. Each
//! chaos run also exercises the flight recorder: breaker trips and
//! evictions dump per-replica event rings, and the binary persists the
//! first dump as `results/e15_flight_recorder.json`.
//!
//! Everything is pure `f64` virtual-time arithmetic over seeded draws, so
//! the table is byte-identical across runs and thread counts.

use super::e14_chaos::{
    service_model, DEADLINE_S, MAX_BATCH, MAX_WAIT_S, QUEUE_CAPACITY, REPLICAS,
};
use crate::report::{fnum, Scale, Table};
use dd_serve::{
    poisson_arrivals, simulate_chaos_telemetry, BatchPolicy, ChaosConfig, ChaosReport, FaultSpec,
    LoadConfig, ResilPolicy, TelemetryConfig, TelemetryReport, SLO_AVAILABILITY, SLO_LATENCY,
};

/// Steady-state offered load as a fraction of pool saturation.
pub const STEADY_LOAD_FACTOR: f64 = 0.6;
/// Overload factor (vs saturation) once chaos begins.
pub const OVERLOAD_FACTOR: f64 = 2.5;
/// Virtual time at which overload and the crash schedule switch on.
pub const ONSET_S: f64 = 0.75;
/// Per-replica crash MTBF during the chaos segment, seconds.
pub const CHAOS_MTBF_S: f64 = 0.05;
/// Replica out-of-service time after a crash, seconds.
pub const RESPAWN_S: f64 = 0.08;
/// Fast-window grid, seconds.
pub const FAST_GRID_S: [f64; 3] = [0.1, 0.2, 0.4];
/// Slow window as a multiple of the fast window.
pub const SLOW_FACTOR: f64 = 4.0;
/// Claimed detection bound, in fast-window lengths.
pub const DETECTION_WINDOWS: f64 = 2.0;

/// Telemetry bundle shape for one grid point.
pub fn telemetry_config(fast_window_s: f64) -> TelemetryConfig {
    TelemetryConfig::standard(DEADLINE_S).with_windows(fast_window_s, SLOW_FACTOR * fast_window_s)
}

fn serving_policy() -> BatchPolicy {
    BatchPolicy::new(MAX_BATCH, MAX_WAIT_S, DEADLINE_S)
}

fn chaos_config(arrivals: Vec<f64>, crash_mtbf_s: f64, fault_seed: u64) -> ChaosConfig {
    ChaosConfig {
        policy: serving_policy(),
        queue_capacity: QUEUE_CAPACITY,
        replicas: REPLICAS,
        service: service_model(),
        arrivals,
        resil: ResilPolicy::standard(),
        faults: FaultSpec { respawn_s: RESPAWN_S, seed: fault_seed, ..FaultSpec::none() },
        crash_mtbf_s,
        fallback: true,
    }
}

/// Clean steady-state arrival process at 0.6× saturation.
fn steady_arrivals(scale: Scale, seed: u64) -> Vec<f64> {
    let rate = STEADY_LOAD_FACTOR * service_model().saturation_rps(MAX_BATCH, REPLICAS);
    let requests = match scale {
        Scale::Smoke => 6000,
        Scale::Full => 24_000,
    };
    poisson_arrivals(&LoadConfig { rate_per_s: rate, requests, seed })
}

/// Piecewise arrival process: 0.6× saturation until [`ONSET_S`], then
/// [`OVERLOAD_FACTOR`]× saturation. The steady segment draws enough
/// arrivals to certainly span the onset and truncates there, so the
/// overload step lands at a known virtual time.
fn onset_arrivals(scale: Scale, seed: u64) -> Vec<f64> {
    let sat = service_model().saturation_rps(MAX_BATCH, REPLICAS);
    let steady_rate = STEADY_LOAD_FACTOR * sat;
    // dd-lint: allow(lossy-cast/float-to-int) -- arrival budget: 1.5x the expected count over the onset span; small positive by construction
    let steady_budget = (steady_rate * ONSET_S * 1.5) as usize;
    let steady =
        poisson_arrivals(&LoadConfig { rate_per_s: steady_rate, requests: steady_budget, seed })
            .into_iter()
            .filter(|&t| t < ONSET_S);
    let overload_requests = match scale {
        Scale::Smoke => 5000,
        Scale::Full => 20_000,
    };
    let overload = poisson_arrivals(&LoadConfig {
        rate_per_s: OVERLOAD_FACTOR * sat,
        requests: overload_requests,
        seed: seed ^ 0x9E37_79B9,
    })
    .into_iter()
    .map(|t| t + ONSET_S);
    steady.chain(overload).collect()
}

/// One fast-window grid point: the same serving stack observed through one
/// telemetry shape, in a clean steady-state scenario and a chaos-onset
/// scenario.
pub struct TelemetryRow {
    /// Fast SLO window, seconds.
    pub fast_window_s: f64,
    /// Slow SLO window, seconds.
    pub slow_window_s: f64,
    /// Steady-state scenario (no faults, 0.6× load).
    pub steady: (ChaosReport, TelemetryReport),
    /// Chaos scenario (overload + crash schedule from [`ONSET_S`]).
    pub chaos: (ChaosReport, TelemetryReport),
}

impl TelemetryRow {
    /// `Fired` edges in the steady-state scenario — every one is a false
    /// positive.
    pub fn false_positives(&self) -> usize {
        self.steady.1.fired_count()
    }

    /// Seconds from the chaos onset to the first `Fired` edge of either
    /// SLO monitor (`None` if nothing ever fired).
    pub fn detection_latency_s(&self) -> Option<f64> {
        let first = [SLO_AVAILABILITY, SLO_LATENCY]
            .iter()
            .filter_map(|slo| self.chaos.1.first_fired_at(slo))
            .fold(f64::INFINITY, f64::min);
        first.is_finite().then_some(first - ONSET_S)
    }

    /// The C15 bound for this row: [`DETECTION_WINDOWS`] fast windows.
    pub fn detection_bound_s(&self) -> f64 {
        DETECTION_WINDOWS * self.fast_window_s
    }
}

/// Run the sweep: each fast-window config observes the identical steady
/// and chaos event streams (same arrival vectors, same fault seeds), so
/// detection differences are attributable to the window shape alone.
pub fn sweep(scale: Scale, seed: u64) -> Vec<TelemetryRow> {
    let steady = steady_arrivals(scale, seed);
    let onset = onset_arrivals(scale, seed);
    FAST_GRID_S
        .iter()
        .map(|&fast_window_s| {
            let tcfg = telemetry_config(fast_window_s);
            let steady_cfg = chaos_config(steady.clone(), 0.0, seed.wrapping_mul(2));
            let chaos_cfg =
                chaos_config(onset.clone(), CHAOS_MTBF_S, seed.wrapping_mul(2).wrapping_add(1));
            TelemetryRow {
                fast_window_s,
                slow_window_s: SLOW_FACTOR * fast_window_s,
                steady: simulate_chaos_telemetry(&steady_cfg, &tcfg, 0.0),
                chaos: simulate_chaos_telemetry(&chaos_cfg, &tcfg, ONSET_S),
            }
        })
        .collect()
}

/// C15, first half: no window config fires at steady state.
pub fn zero_false_positives(rows: &[TelemetryRow]) -> bool {
    !rows.is_empty() && rows.iter().all(|r| r.false_positives() == 0)
}

/// C15, second half: every window config detects the chaos onset after it
/// happened and within [`DETECTION_WINDOWS`] fast-window lengths.
pub fn detection_bounded(rows: &[TelemetryRow]) -> bool {
    !rows.is_empty()
        && rows
            .iter()
            .all(|r| r.detection_latency_s().is_some_and(|d| d > 0.0 && d <= r.detection_bound_s()))
}

/// Render the E15 table.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E15: burn-rate alerting vs window shape (0.6x steady state, 2.5x overload + crashes at onset)",
        &[
            "fast_s",
            "slow_s",
            "steady_fired",
            "detect_s",
            "bound_s",
            "chaos_fired",
            "completed",
            "failed",
            "shed",
            "rejected",
            "evictions",
            "breaker_opens",
            "traces_kept",
            "recorder_events",
            "dumps",
            "availability",
        ],
    );
    for r in sweep(scale, seed) {
        let (rep, tel) = (&r.chaos.0, &r.chaos.1);
        table.push_row(vec![
            fnum(r.fast_window_s),
            fnum(r.slow_window_s),
            r.false_positives().to_string(),
            fnum(r.detection_latency_s().unwrap_or(-1.0)),
            fnum(r.detection_bound_s()),
            tel.fired_count().to_string(),
            rep.completed.to_string(),
            rep.failed.to_string(),
            rep.shed.to_string(),
            rep.rejected.to_string(),
            rep.evictions.to_string(),
            rep.breaker_opens.to_string(),
            tel.traces_kept.to_string(),
            tel.recorder_events.to_string(),
            tel.dump_total.to_string(),
            fnum(rep.availability),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic() {
        let a = run(Scale::Smoke, 2017).to_csv();
        let b = run(Scale::Smoke, 2017).to_csv();
        assert_eq!(a, b, "same seed must give a byte-identical table");
    }

    #[test]
    fn detection_and_false_positive_shapes_hold() {
        let rows = sweep(Scale::Smoke, 2017);
        assert_eq!(rows.len(), FAST_GRID_S.len());
        assert!(zero_false_positives(&rows), "steady state must not alert");
        assert!(detection_bounded(&rows), "every config must detect within two fast windows");
        for r in &rows {
            let d = r.detection_latency_s().unwrap_or(-1.0);
            assert!(
                d > 0.0 && d <= r.detection_bound_s(),
                "fast={} detected at {d}s, bound {}s",
                r.fast_window_s,
                r.detection_bound_s()
            );
            // The chaos scenario genuinely exercises the recorder: crashes
            // evict replicas and trip breakers, each dumping the rings.
            assert!(r.chaos.0.evictions > 0, "crash schedule must evict");
            assert!(r.chaos.1.dump_total > 0, "evictions/breakers must dump the recorder");
            let Some(dump) = r.chaos.1.dumps.first() else {
                panic!("at least the first dump must be retained");
            };
            assert!(
                dump.json.starts_with('{') && dump.json.ends_with('}'),
                "dump must be a JSON object"
            );
            assert!(dump.at_s >= ONSET_S, "nothing dumps before the onset");
            // Tail sampling keeps only trouble: at steady state nothing is
            // kept, under chaos the shed/error tail is.
            assert_eq!(r.steady.1.traces_kept, 0, "clean steady state keeps no traces");
            assert!(r.chaos.1.traces_kept > 0, "chaos must keep tail traces");
        }
    }
}
