//! E1 — "they rarely require 64bit or even 32bits of precision".
//!
//! Train the same W2 drug-response network end to end under each emulated
//! precision and report test quality next to the *simulated* step time and
//! energy on the 2017 GPU machine (where low precision actually pays; the
//! emulation itself is software and proves only the numerics).

use crate::report::{fnum, ftime, Scale, Table};
use crate::workloads::w2_drug_response;
use dd_datagen::drug_response;
use dd_datagen::Target;
use dd_hpcsim::{AllreduceAlgo, Machine, Strategy, TrainJob};
use dd_nn::{Loss, OptimizerConfig, TrainConfig, Trainer};
use dd_parallel::sim_precision;
use dd_tensor::{r2_score, Precision};

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct PrecisionRow {
    /// Numeric format.
    pub precision: Precision,
    /// Test R² after training fully in this precision.
    pub test_r2: f64,
    /// Simulated single-node step time on `gpu_2017`.
    pub sim_step: f64,
    /// Simulated step energy (joules).
    pub sim_energy: f64,
}

/// Run the sweep.
pub fn sweep(scale: Scale, seed: u64) -> Vec<PrecisionRow> {
    let (cfg, epochs) = w2_drug_response::config(scale);
    let data = drug_response::generate(&cfg, seed);
    let split = data.dataset.split(0.15, 0.15, seed ^ 0x11, true);
    let (y_train, y_test) = match (&split.train.y, &split.test.y) {
        (Target::Regression(a), Target::Regression(b)) => (a, b),
        _ => unreachable!(),
    };

    let machine = Machine::gpu_2017(1);
    Precision::ALL
        .iter()
        .map(|&precision| {
            let mut model = w2_drug_response::net_spec(split.train.dim())
                .build(seed ^ 0x22, precision)
                .expect("valid spec");
            let mut trainer = Trainer::new(TrainConfig {
                batch_size: 64,
                epochs,
                optimizer: OptimizerConfig::adam(1e-3),
                loss: Loss::Mse,
                seed,
                ..TrainConfig::default()
            });
            let _ = trainer.fit(&mut model, &split.train.x, y_train, None);
            let pred = model.predict(&split.test.x);
            let test_r2 = r2_score(y_test.as_slice(), pred.as_slice());

            let job =
                TrainJob::from_dense_net(model.param_count() as f64, model.input_dim(), 64, 4);
            let b = dd_hpcsim::step_time(
                &machine,
                &job,
                Strategy::Data { nodes: 1, algo: AllreduceAlgo::Auto },
                sim_precision(precision),
            );
            PrecisionRow { precision, test_r2, sim_step: b.step, sim_energy: b.energy }
        })
        .collect()
}

/// Render the sweep as the E1 table.
pub fn run(scale: Scale, seed: u64) -> Table {
    let rows = sweep(scale, seed);
    let f64_r2 =
        rows.iter().find(|r| r.precision == Precision::F64).map(|r| r.test_r2).unwrap_or(f64::NAN);
    let f32_step =
        rows.iter().find(|r| r.precision == Precision::F32).map(|r| r.sim_step).unwrap_or(f64::NAN);
    let mut table = Table::new(
        "E1: training precision vs model quality and simulated cost (gpu2017)",
        &["precision", "test R^2", "dR^2 vs f64", "sim step", "speedup vs f32", "sim energy (J)"],
    );
    for r in &rows {
        table.push_row(vec![
            r.precision.to_string(),
            fnum(r.test_r2),
            fnum(r.test_r2 - f64_r2),
            ftime(r.sim_step),
            fnum(f32_step / r.sim_step),
            fnum(r.sim_energy),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_shape_holds() {
        let rows = sweep(Scale::Smoke, 1);
        assert_eq!(rows.len(), 5);
        let get = |p: Precision| rows.iter().find(|r| r.precision == p).unwrap();
        let f64r = get(Precision::F64);
        let f32r = get(Precision::F32);
        let bf16 = get(Precision::Bf16);
        let f16 = get(Precision::F16);
        let int8 = get(Precision::Int8);
        // Claim: 32-bit and 16-bit match 64-bit within noise.
        assert!((f32r.test_r2 - f64r.test_r2).abs() < 0.05, "f32 {f32r:?} vs f64 {f64r:?}");
        assert!(f64r.test_r2 > 0.5, "f64 reference should learn: {}", f64r.test_r2);
        assert!(bf16.test_r2 > f64r.test_r2 - 0.15, "bf16 degraded: {}", bf16.test_r2);
        assert!(f16.test_r2 > f64r.test_r2 - 0.15, "f16 degraded: {}", f16.test_r2);
        // int8 training is the hard case: allowed to degrade but not collapse.
        assert!(int8.test_r2 > 0.0, "int8 collapsed: {}", int8.test_r2);
        // Simulated cost ordering follows hardware rates.
        assert!(f16.sim_step < f32r.sim_step);
        assert!(int8.sim_step < f16.sim_step);
        assert!(f64r.sim_step > f32r.sim_step);
        assert!(int8.sim_energy < f32r.sim_energy);
    }

    #[test]
    fn table_renders_all_precisions() {
        let t = run(Scale::Smoke, 2);
        assert_eq!(t.rows.len(), 5);
        assert!(t.render().contains("bf16"));
    }
}
