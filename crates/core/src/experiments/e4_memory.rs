//! E4 — "power efficient DNNs require high-bandwidth memory be physically
//! close to arithmetic units to reduce costs of data motion".
//!
//! Roofline sweep: the same DNN kernels (matmuls at the arithmetic
//! intensities that batch sizes induce) fed from HBM versus DDR, reporting
//! attainable throughput, time and the compute/data-motion energy split.

use crate::report::{fnum, Scale, Table};
use dd_hpcsim::roofline::{attainable_flops, kernel_cost, matmul_intensity};
use dd_hpcsim::{Machine, SimPrecision, Tier};

/// Rows: `(batch, intensity, tier, attainable GFLOP/s, time, mem energy
/// share)`.
pub struct MemoryRow {
    /// Batch dimension of the matmul (m).
    pub batch: usize,
    /// Arithmetic intensity (FLOPs/byte).
    pub intensity: f64,
    /// Feeding tier.
    pub tier: Tier,
    /// Attainable rate.
    pub gflops: f64,
    /// Kernel time.
    pub time: f64,
    /// Data-motion fraction of total energy.
    pub mem_energy_share: f64,
}

/// Run the sweep over batch sizes (which set intensity) and tiers.
pub fn sweep(scale: Scale) -> Vec<MemoryRow> {
    let node = Machine::gpu_2017(1).node;
    // A hidden layer of the W2 net: k=2000 inputs, n=256 outputs.
    let (k, n) = (2000usize, 256usize);
    let batches: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 16, 256, 4096],
        Scale::Full => vec![1, 4, 16, 64, 256, 1024, 4096, 16384],
    };
    let mut rows = Vec::new();
    for &batch in &batches {
        let ai = matmul_intensity(batch, k, n, 4.0);
        let flops = 2.0 * batch as f64 * k as f64 * n as f64;
        for tier in [Tier::Hbm, Tier::Ddr] {
            let rate = attainable_flops(&node, tier, ai, SimPrecision::F32);
            let cost = kernel_cost(&node, tier, flops, ai, SimPrecision::F32);
            rows.push(MemoryRow {
                batch,
                intensity: ai,
                tier,
                gflops: rate / 1e9,
                time: cost.time,
                mem_energy_share: cost.memory_energy / (cost.memory_energy + cost.compute_energy),
            });
        }
    }
    rows
}

/// Render the E4 table.
pub fn run(scale: Scale, _seed: u64) -> Table {
    let mut table = Table::new(
        "E4: roofline — HBM vs DDR feeding a dense layer (k=2000, n=256), f32",
        &["batch", "AI (flop/B)", "tier", "GFLOP/s", "time (s)", "mem energy share"],
    );
    for r in sweep(scale) {
        table.push_row(vec![
            r.batch.to_string(),
            fnum(r.intensity),
            r.tier.to_string(),
            fnum(r.gflops),
            fnum(r.time),
            fnum(r.mem_energy_share),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_dominates_at_small_batch() {
        let rows = sweep(Scale::Smoke);
        let hbm1 = rows.iter().find(|r| r.batch == 1 && r.tier == Tier::Hbm).unwrap();
        let ddr1 = rows.iter().find(|r| r.batch == 1 && r.tier == Tier::Ddr).unwrap();
        assert!(hbm1.gflops > 3.0 * ddr1.gflops, "hbm {} vs ddr {}", hbm1.gflops, ddr1.gflops);
    }

    #[test]
    fn large_batch_converges_to_compute_bound() {
        let rows = sweep(Scale::Smoke);
        let hbm = rows.iter().find(|r| r.batch == 4096 && r.tier == Tier::Hbm).unwrap();
        let ddr = rows.iter().find(|r| r.batch == 4096 && r.tier == Tier::Ddr).unwrap();
        // At batch 4096 intensity is high enough that HBM hits the compute
        // roof; DDR may still lag but far less than at batch 1.
        assert!(hbm.gflops / ddr.gflops < 7.0);
        let node = Machine::gpu_2017(1).node;
        assert!(hbm.gflops * 1e9 >= 0.99 * node.flops_at(SimPrecision::F32));
    }

    #[test]
    fn memory_energy_share_falls_with_intensity() {
        let rows = sweep(Scale::Smoke);
        let hbm_rows: Vec<&MemoryRow> = rows.iter().filter(|r| r.tier == Tier::Hbm).collect();
        assert!(
            hbm_rows.first().unwrap().mem_energy_share > hbm_rows.last().unwrap().mem_energy_share
        );
    }
}
