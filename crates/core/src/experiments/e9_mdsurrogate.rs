//! E9 — ML-supervised multi-resolution MD: fidelity vs compute cost for the
//! four resolution policies.

use crate::report::{fnum, Scale, Table};
use crate::workloads::w7_mdsurrogate;
use dd_mdsim::RunReport;

/// Run the four policies.
pub fn sweep(scale: Scale, seed: u64) -> Vec<RunReport> {
    w7_mdsurrogate::run_policies(scale, seed)
}

/// Render the E9 table.
pub fn run(scale: Scale, seed: u64) -> Table {
    let reports = sweep(scale, seed);
    let fine_evals = reports
        .iter()
        .find(|r| r.policy == "fine")
        .map(|r| r.force_evals as f64)
        .unwrap_or(f64::NAN);
    let mut table = Table::new(
        "E9: multi-resolution MD supervision — fidelity vs force evaluations",
        &["policy", "refine frac", "force evals", "cost vs fine", "energy drift", "rmsd vs fine"],
    );
    for r in &reports {
        table.push_row(vec![
            r.policy.clone(),
            fnum(r.refine_fraction),
            r.force_evals.to_string(),
            fnum(r.force_evals as f64 / fine_evals),
            fnum(r.energy_drift),
            fnum(r.rmsd_vs_fine),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_pareto_dominates_coarse() {
        let reports = sweep(Scale::Smoke, 13);
        let by = |name: &str| reports.iter().find(|r| r.policy == name).unwrap();
        let coarse = by("coarse");
        let fine = by("fine");
        let sur = by("dnn-surrogate");
        // Cheaper than fine…
        assert!(sur.force_evals < fine.force_evals);
        // …and at least as faithful as coarse.
        assert!(sur.rmsd_vs_fine <= coarse.rmsd_vs_fine + 1e-12);
    }

    #[test]
    fn table_has_four_policies() {
        let t = run(Scale::Smoke, 14);
        assert_eq!(t.rows.len(), 4);
    }
}
