//! E8 — "automated systems are routinely outperforming" classical practice:
//! every driver workload's DNN against its classical baseline.

use crate::report::{fnum, Scale, Table};
use crate::workloads::{self, Outcome};

/// Run all workload comparisons.
pub fn sweep(scale: Scale, seed: u64) -> Vec<Outcome> {
    workloads::run_all(scale, seed)
}

/// Render the E8 table.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E8: driver workloads — DNN vs classical baseline",
        &["workload", "metric", "DNN", "baseline", "baseline model", "DNN advantage", "seconds"],
    );
    for o in sweep(scale, seed) {
        table.push_row(vec![
            o.name.clone(),
            o.metric.clone(),
            fnum(o.dnn),
            fnum(o.baseline),
            o.baseline_name.clone(),
            fnum(o.dnn_advantage()),
            fnum(o.seconds),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_workloads_report() {
        // The workloads' own crates test quality thresholds; here we only
        // assert the sweep wiring (each workload present exactly once).
        let t = run(Scale::Smoke, 42);
        assert_eq!(t.rows.len(), 7);
        let names: Vec<&String> = t.rows.iter().map(|r| &r[0]).collect();
        for w in ["W1", "W2", "W3", "W4", "W5", "W6", "W7"] {
            assert!(names.iter().any(|n| n.starts_with(w)), "{w} missing");
        }
    }
}
