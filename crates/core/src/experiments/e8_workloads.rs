//! E8 — "automated systems are routinely outperforming" classical practice:
//! every driver workload's DNN against its classical baseline.

use crate::report::{fnum, Scale, Table};
use crate::workloads::{self, Outcome};
use dd_nn::TrainError;

/// Run all workload comparisons.
pub fn sweep(scale: Scale, seed: u64) -> Result<Vec<Outcome>, TrainError> {
    workloads::run_all(scale, seed)
}

/// Render the E8 table. A training divergence becomes an explicit error row
/// rather than a panic: the report binary renders every experiment, and one
/// bad seed must not take the rest of the report down with it.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E8: driver workloads — DNN vs classical baseline",
        &["workload", "metric", "DNN", "baseline", "baseline model", "DNN advantage", "seconds"],
    );
    match sweep(scale, seed) {
        Ok(outcomes) => {
            for o in outcomes {
                table.push_row(vec![
                    o.name.clone(),
                    o.metric.clone(),
                    fnum(o.dnn),
                    fnum(o.baseline),
                    o.baseline_name.clone(),
                    fnum(o.dnn_advantage()),
                    fnum(o.seconds),
                ]);
            }
        }
        Err(e) => {
            table.push_row(vec![
                "sweep aborted".into(),
                format!("{e}"),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_workloads_report() {
        // The workloads' own crates test quality thresholds; here we only
        // assert the sweep wiring (each workload present exactly once).
        let t = run(Scale::Smoke, 42);
        assert_eq!(t.rows.len(), 7);
        let names: Vec<&String> = t.rows.iter().map(|r| &r[0]).collect();
        for w in ["W1", "W2", "W3", "W4", "W5", "W6", "W7"] {
            assert!(names.iter().any(|n| n.starts_with(w)), "{w} missing");
        }
    }
}
