//! E6 — "Naïve searches are outperformed by various intelligent searching
//! strategies, including new approaches that use generative neural networks
//! to manage the search space."
//!
//! All eight searchers tune the same four-dimensional space (learning rate,
//! width, dropout, activation — ~10⁴ discrete configurations at modest
//! resolution, matching the abstract's "tens of thousands") on a real
//! neural-network objective: validation loss of a tumor-type MLP trained
//! for `budget × max_epochs` epochs. Reported: best validation loss reached
//! at fixed evaluation-cost milestones.

use crate::report::{fnum, Scale, Table};
use dd_datagen::expression::ExpressionModel;
use dd_datagen::tumor::{self, TumorConfig};
use dd_hypersearch::searchers::{
    EvolutionarySearch, GenerativeSearch, GridSearch, Hyperband, LatinHypercube, RandomSearch,
    SuccessiveHalving, SurrogateSearch,
};
use dd_hypersearch::{run_search, Config, Objective, SearchHistory, SearchSpace, Searcher};
use dd_nn::{Activation, Loss, ModelSpec, OptimizerConfig, TrainConfig, Trainer};
use dd_tensor::{Matrix, Precision};

/// The tuned search space (~3·10⁴ configs at 16 levels per float).
pub fn space() -> SearchSpace {
    SearchSpace::new()
        .log_float("lr", 1e-4, 1e-1)
        .int("width", 8, 96)
        .float("dropout", 0.0, 0.6)
        .choice("act", &["relu", "tanh", "gelu"])
}

/// The real NN-training objective.
pub struct TumorTuning {
    x_train: Matrix,
    y_train: Matrix,
    x_val: Matrix,
    y_val: Matrix,
    input_dim: usize,
    classes: usize,
    max_epochs: usize,
}

impl TumorTuning {
    /// Build the fixed dataset the whole search shares.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (samples, genes, max_epochs) = match scale {
            Scale::Smoke => (300, 48, 5),
            Scale::Full => (900, 128, 12),
        };
        // Deliberately hard: weak signatures buried in strong pathway noise,
        // so validation loss actually discriminates between configurations
        // instead of every reasonable config reaching zero.
        let cfg = TumorConfig {
            samples,
            types: 4,
            signature_genes: 5,
            signature_strength: 0.45,
            position_jitter: 0,
            expression: ExpressionModel { genes, pathways: 10, noise: 0.6, ..Default::default() },
        };
        let data = tumor::generate(&cfg, seed);
        let split = data.dataset.split(0.25, 0.0, seed ^ 0x66, true);
        TumorTuning {
            x_train: split.train.x.clone(),
            y_train: split.train.y.to_matrix(),
            x_val: split.val.x.clone(),
            y_val: split.val.y.to_matrix(),
            input_dim: genes,
            classes: 4,
            max_epochs,
        }
    }
}

impl Objective for TumorTuning {
    fn evaluate(&self, config: &Config, budget: f64, seed: u64) -> f64 {
        let width = config.usize("width");
        let act: Activation = config.choice("act").parse().expect("valid activation");
        let spec = ModelSpec::new(dd_nn::InputShape::Flat(self.input_dim))
            .push(dd_nn::LayerSpec::Dense { out: width, init: dd_nn::Init::He })
            .push(dd_nn::LayerSpec::Activation(act))
            .push(dd_nn::LayerSpec::Dropout { p: config.f64("dropout") as f32 })
            .push(dd_nn::LayerSpec::Dense { out: self.classes, init: dd_nn::Init::Xavier });
        // dd-lint: allow(lossy-cast/float-to-int) -- epoch budget: rounded fraction of max_epochs, floored at 1
        let epochs = ((self.max_epochs as f64 * budget).round() as usize).max(1);
        let mut model = spec.build(seed, Precision::F32).expect("valid spec");
        let mut trainer = Trainer::new(TrainConfig {
            batch_size: 32,
            epochs,
            optimizer: OptimizerConfig::adam(config.f64("lr") as f32),
            loss: Loss::SoftmaxCrossEntropy,
            seed,
            ..TrainConfig::default()
        });
        if trainer.fit(&mut model, &self.x_train, &self.y_train, None).is_err() {
            // Diverged trial: report +inf so the driver retries or discards it.
            return f64::INFINITY;
        }
        let pred = model.forward(&self.x_val, false);
        Loss::SoftmaxCrossEntropy.compute(&pred, &self.y_val).0
    }
}

/// Build the searcher roster.
pub fn roster() -> Vec<Box<dyn Searcher>> {
    vec![
        Box::new(GridSearch::new(3)),
        Box::new(RandomSearch::new()),
        Box::new(LatinHypercube::new(16)),
        Box::new(SuccessiveHalving::new(9, 1.0 / 3.0, 3)),
        Box::new(Hyperband::new(3, 2)),
        Box::new(EvolutionarySearch::new(12, 0.3)),
        Box::new(SurrogateSearch::new(8)),
        Box::new(GenerativeSearch::new(10)),
    ]
}

/// Run every searcher for `total_cost` full-budget-equivalents; returns
/// per-searcher histories.
pub fn compare(scale: Scale, seed: u64) -> Vec<SearchHistory> {
    let objective = TumorTuning::new(scale, seed);
    let total_cost = match scale {
        Scale::Smoke => 16.0,
        Scale::Full => 60.0,
    };
    let sp = space();
    roster()
        .into_iter()
        .map(|mut searcher| run_search(searcher.as_mut(), &sp, &objective, total_cost, 4, seed))
        .collect()
}

/// Render the E6 table: best value at cost milestones.
pub fn run(scale: Scale, seed: u64) -> Table {
    let histories = compare(scale, seed);
    let milestones: Vec<f64> = match scale {
        Scale::Smoke => vec![4.0, 8.0, 16.0],
        Scale::Full => vec![10.0, 20.0, 40.0, 60.0],
    };
    let mut headers: Vec<String> = vec!["searcher".into()];
    headers.extend(milestones.iter().map(|m| format!("best@{m}")));
    headers.push("trials".into());
    let mut table = Table::new(
        format!(
            "E6: hyperparameter search on tumor-MLP tuning (space ~{} configs)",
            space().cardinality(16)
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for h in &histories {
        let mut row = vec![h.searcher.clone()];
        for &m in &milestones {
            row.push(h.best_at_cost(m).map(fnum).unwrap_or_else(|| "-".into()));
        }
        row.push(h.trials.len().to_string());
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_improves_with_budget() {
        let obj = TumorTuning::new(Scale::Smoke, 1);
        let sp = space();
        let good = sp.decode(&[0.5, 0.8, 0.1, 0.0]); // lr ~3e-3, wide, low dropout
        let tiny = obj.evaluate(&good, 0.2, 7);
        let full = obj.evaluate(&good, 1.0, 7);
        assert!(full < tiny, "more epochs should reduce loss: {tiny} -> {full}");
    }

    #[test]
    fn compare_produces_all_searchers() {
        let histories = compare(Scale::Smoke, 2);
        assert_eq!(histories.len(), 8);
        let names: Vec<&str> = histories.iter().map(|h| h.searcher.as_str()).collect();
        assert!(names.contains(&"generative-nn"));
        assert!(names.contains(&"hyperband"));
        for h in &histories {
            assert!(h.best_value().is_some(), "{} found nothing", h.searcher);
        }
    }

    #[test]
    fn some_intelligent_searcher_beats_naive() {
        // The headline claim, asserted loosely (one seed, smoke scale): the
        // best intelligent searcher must beat the best naïve searcher.
        let histories = compare(Scale::Smoke, 3);
        let value = |name: &str| {
            histories
                .iter()
                .find(|h| h.searcher == name)
                .and_then(SearchHistory::best_value)
                .unwrap_or(f64::INFINITY)
        };
        let naive = value("random").min(value("grid")).min(value("latin-hypercube"));
        let intelligent = value("successive-halving")
            .min(value("hyperband"))
            .min(value("evolutionary"))
            .min(value("surrogate-forest"))
            .min(value("generative-nn"));
        assert!(intelligent <= naive + 0.02, "intelligent {intelligent} vs naive {naive}");
    }
}
