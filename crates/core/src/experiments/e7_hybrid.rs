//! E7 — "to fully exploit large-scale parallelism they rely on a
//! combination of model, data and search parallelism" + "HPC architectures
//! that can support these large-scale intelligent search methods as well as
//! efficient model training are needed".
//!
//! Sweeps the search-parallelism axis on a simulated 4096-node machine:
//! split the machine into islands (one hyperparameter trial each), plan the
//! best (data × model) strategy inside each island, and report campaign
//! throughput in trials/hour — the composition of all three parallelism
//! axes.

use crate::report::{fnum, ftime, Scale, Table};
use dd_hpcsim::{Machine, SimPrecision, Strategy, TrainJob};
use dd_parallel::planner::plan_campaign;

/// Machine size used for the campaign sweep.
pub fn machine(scale: Scale) -> Machine {
    match scale {
        Scale::Smoke => Machine::gpu_2017(512),
        Scale::Full => Machine::gpu_2017(4096),
    }
}

/// The trained model per trial.
pub fn job() -> TrainJob {
    TrainJob::from_dense_net(100e6, 2000, 4096, 16)
}

/// Rows: `(islands, nodes/island, island strategy, step time, trials/hour)`.
pub fn sweep(scale: Scale) -> Vec<(usize, usize, String, f64, f64)> {
    let m = machine(scale);
    let j = job();
    let steps = 2000;
    let mut rows = Vec::new();
    let mut trials = 1usize;
    while trials <= m.nodes {
        let c = plan_campaign(&m, &j, trials, steps, SimPrecision::F32);
        let label = match c.island_plan.strategy {
            Strategy::Data { nodes, .. } => format!("data x{nodes}"),
            Strategy::Model { parts } => format!("model x{parts}"),
            Strategy::Hybrid { data_ways, model_ways, .. } => {
                format!("hybrid {data_ways}x{model_ways}")
            }
            Strategy::Pipeline { stages, microbatches } => {
                format!("pipeline {stages}s/{microbatches}mb")
            }
        };
        rows.push((
            c.concurrent_trials,
            c.nodes_per_trial,
            label,
            c.island_plan.breakdown.step,
            c.trials_per_hour,
        ));
        trials *= 4;
    }
    rows
}

/// Render the E7 table.
pub fn run(scale: Scale, _seed: u64) -> Table {
    let m = machine(scale);
    let mut table = Table::new(
        format!(
            "E7: search parallelism campaign on {} ({} nodes), 100M-param trials",
            m.name, m.nodes
        ),
        &["islands", "nodes/island", "island strategy", "step time", "trials/hour"],
    );
    for (islands, nodes, label, step, tph) in sweep(scale) {
        table.push_row(vec![islands.to_string(), nodes.to_string(), label, ftime(step), fnum(tph)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_with_islands() {
        let rows = sweep(Scale::Smoke);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last.4 > 3.0 * first.4,
            "islands {} -> {} trials/hour vs {} -> {}",
            first.0,
            first.4,
            last.0,
            last.4
        );
    }

    #[test]
    fn single_island_uses_many_nodes() {
        let rows = sweep(Scale::Smoke);
        let first = rows.first().unwrap();
        assert_eq!(first.0, 1);
        assert_eq!(first.1, machine(Scale::Smoke).nodes);
    }

    #[test]
    fn best_plan_consistency() {
        // The island plan chosen by the campaign equals best_plan directly.
        let m = machine(Scale::Smoke);
        let j = job();
        let c = plan_campaign(&m, &j, 8, 100, SimPrecision::F32);
        let direct = dd_parallel::planner::best_plan(&m, &j, m.nodes / 8, SimPrecision::F32);
        assert_eq!(c.island_plan.strategy, direct.strategy);
    }
}
