//! E10 (ablation) — "future DNNs may rely less on dense communication
//! patterns": lossy gradient exchange in *real* data-parallel training.
//!
//! The same drug-response network is trained with dense f32 gradients,
//! int8-quantized gradients and top-k sparsified gradients (with error
//! feedback); reported are the final loss, the wire volume, and the
//! resulting allreduce time on the simulated 2017 fabric at 64 nodes —
//! quantifying how much accuracy buys how much communication.

use crate::report::{fnum, ftime, Scale, Table};
use dd_datagen::drug_response::{self, DrugResponseConfig};
use dd_datagen::expression::ExpressionModel;
use dd_datagen::Target;
use dd_hpcsim::{allreduce_time, AllreduceAlgo, Machine};
use dd_nn::{Activation, Loss, ModelSpec, OptimizerConfig};
use dd_parallel::{train_data_parallel, DataParallelConfig, GradCompression};

/// One ablation row.
pub struct CompressionRow {
    /// Compression scheme.
    pub scheme: GradCompression,
    /// Final training loss.
    pub final_loss: f64,
    /// Total gradient wire bytes per rank for the run.
    pub wire_bytes: usize,
    /// Compression ratio vs dense.
    pub ratio: f64,
    /// Simulated per-step allreduce time at 64 nodes (12.5 GB/s fabric),
    /// scaling the dense gradient volume by the measured ratio.
    pub sim_allreduce: f64,
}

/// Schemes compared.
pub fn schemes() -> Vec<GradCompression> {
    vec![
        GradCompression::None,
        GradCompression::Int8,
        GradCompression::TopK { fraction: 0.1 },
        GradCompression::TopK { fraction: 0.01 },
    ]
}

/// Run the ablation.
pub fn sweep(scale: Scale, seed: u64) -> Vec<CompressionRow> {
    let (measurements, epochs) = match scale {
        Scale::Smoke => (1200, 12),
        Scale::Full => (6000, 15),
    };
    let cfg = DrugResponseConfig {
        cell_lines: 30,
        drugs: 40,
        measurements,
        descriptor_dim: 32,
        noise: 0.03,
        expression: ExpressionModel { genes: 96, pathways: 8, ..Default::default() },
    };
    let data = drug_response::generate(&cfg, seed);
    let split = data.dataset.split(0.0, 0.0, seed, true);
    let y = match &split.train.y {
        Target::Regression(m) => m.clone(),
        _ => unreachable!(),
    };
    let spec = ModelSpec::mlp(split.train.dim(), &[128, 32], 1, Activation::Relu);

    let machine = Machine::gpu_2017(64);
    let mut dense_bytes = 0usize;
    let mut rows = Vec::new();
    for scheme in schemes() {
        let report = train_data_parallel(
            &spec,
            &split.train.x,
            &y,
            &DataParallelConfig {
                world: 4,
                global_batch: 64,
                epochs,
                optimizer: OptimizerConfig::adam(1e-3),
                loss: Loss::Mse,
                seed,
                compression: scheme,
                ..Default::default()
            },
        )
        .expect("data-parallel run succeeds");
        if matches!(scheme, GradCompression::None) {
            dense_bytes = report.compressed_wire_bytes;
        }
        let ratio = dense_bytes as f64 / report.compressed_wire_bytes.max(1) as f64;
        // Grad volume per step for a 50M-param reference model, shrunk by
        // the measured ratio, priced on the simulated fabric.
        let ref_bytes = 50e6 * 4.0 / ratio;
        let sim = allreduce_time(&machine.fabric, AllreduceAlgo::Auto, ref_bytes, 64);
        rows.push(CompressionRow {
            scheme,
            final_loss: *report.epoch_losses.last().unwrap(),
            wire_bytes: report.compressed_wire_bytes,
            ratio,
            sim_allreduce: sim,
        });
    }
    rows
}

/// Render the E10 table.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E10 (ablation): gradient compression in real data-parallel training",
        &["scheme", "final loss", "wire MB/rank", "ratio", "sim allreduce@64 (50M params)"],
    );
    for r in sweep(scale, seed) {
        table.push_row(vec![
            r.scheme.name(),
            fnum(r.final_loss),
            fnum(r.wire_bytes as f64 / 1e6),
            fnum(r.ratio),
            ftime(r.sim_allreduce),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_trades_bytes_for_loss_gracefully() {
        let rows = sweep(Scale::Smoke, 3);
        assert_eq!(rows.len(), 4);
        let dense = &rows[0];
        let int8 = &rows[1];
        let top1pct = &rows[3];
        // Ratios are substantial.
        assert!(int8.ratio > 3.0, "int8 ratio {}", int8.ratio);
        assert!(top1pct.ratio > 20.0, "top-1% ratio {}", top1pct.ratio);
        // Compressed runs still train (loss within 3x of dense).
        assert!(dense.final_loss < 0.06, "dense failed to train: {}", dense.final_loss);
        assert!(int8.final_loss < 3.0 * dense.final_loss + 0.01);
        // Simulated allreduce shrinks with the ratio.
        assert!(int8.sim_allreduce < dense.sim_allreduce);
        assert!(top1pct.sim_allreduce < int8.sim_allreduce);
    }
}
