//! E12 — measured vs modeled time breakdown: where does the time go?
//!
//! Every preceding experiment trusts `dd-hpcsim`'s analytic phase split
//! (compute / comm / io / checkpoint). This experiment closes the loop: it
//! runs a *real* instrumented workload mix under `dd-obs` — the W1 tumor
//! CNN trained single-node, the W2 dense net trained data-parallel, a
//! checkpoint round trip, and in-situ data generation standing in for shard
//! staging — snapshots the registry, and prints the measured breakdown
//! beside a modeled `trace_training_run` of a comparable job.
//!
//! Absolute seconds are not comparable (the model prices a 2017 GPU node,
//! the measurement is whatever workstation runs the binary; measured phase
//! time also sums *per-thread* leaf spans, i.e. rank-seconds under data
//! parallelism). The comparable quantity — and the point of the table — is
//! the *share* column: both sides bucket time into the same four-phase
//! vocabulary ([`Phase`], shared between `dd-obs` and `dd-hpcsim`), so the
//! rows line up one for one.

use crate::report::{fnum, Scale, Table};
use crate::workloads::{w1_tumor, w2_drug_response};
use dd_datagen::{drug_response, tumor, Target};
use dd_hpcsim::{
    checkpoint_cost, trace_training_run, AllreduceAlgo, Machine, Phase, SimPrecision, Staging,
    Strategy, Tier, Trace, TrainJob,
};
use dd_nn::{checkpoint, Loss, OptimizerConfig, TrainConfig, Trainer};
use dd_obs::Snapshot;
use dd_parallel::data_parallel::{train_data_parallel, DataParallelConfig};
use dd_tensor::Precision;

/// Run the instrumented workload mix and return the registry snapshot.
///
/// Enables the global `dd-obs` registry for the duration (restoring the
/// previous enabled state on exit, even when a workload fails) and resets
/// it first, so the snapshot contains exactly this run.
pub fn measure(scale: Scale, seed: u64) -> Result<Snapshot, String> {
    let was_enabled = dd_obs::is_enabled();
    dd_obs::reset();
    dd_obs::enable();
    let result = measure_inner(scale, seed);
    if !was_enabled {
        dd_obs::disable();
    }
    result
}

/// The workload mix itself, with the registry already enabled. Split out so
/// `?` propagation cannot skip the enabled-state restore in [`measure`].
fn measure_inner(scale: Scale, seed: u64) -> Result<Snapshot, String> {
    // Data generation stands in for shard staging I/O: it is the paper's
    // "generate in situ" staging mode made literal.
    let io_span = dd_obs::span_phase("datagen", Phase::Io);
    let w1 = w1_tumor::setup(scale);
    let w1_data = tumor::generate(&w1.data, seed);
    let (w2_cfg, _) = w2_drug_response::config(scale);
    let w2_data = drug_response::generate(&w2_cfg, seed ^ 0xE12);
    io_span.finish();

    // W1: the 1-D CNN trained single-node — compute-dominated.
    let split = w1_data.dataset.split(0.15, 0.15, seed ^ 0xA5, true);
    let spec = w1_tumor::cnn_spec(w1.data.expression.genes, w1.data.types);
    let mut model = spec
        .build(seed ^ 0x5A, Precision::F32)
        .map_err(|e| format!("W1 CNN spec failed to build: {e}"))?;
    let epochs = match scale {
        Scale::Smoke => 4,
        Scale::Full => w1.epochs,
    };
    let mut trainer = Trainer::new(TrainConfig {
        batch_size: 32,
        epochs,
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::SoftmaxCrossEntropy,
        seed,
        ..TrainConfig::default()
    });
    let y_train = split.train.y.to_matrix();
    let y_val = split.val.y.to_matrix();
    trainer
        .fit(&mut model, &split.train.x, &y_train, Some((&split.val.x, &y_val)))
        .map_err(|e| format!("W1 training failed: {e}"))?;

    // Checkpoint round trip at the end of training.
    let blob =
        checkpoint::save(&spec, &mut model).map_err(|e| format!("checkpoint save failed: {e}"))?;
    checkpoint::load(&blob).map_err(|e| format!("checkpoint round trip failed: {e}"))?;

    // W2: the dense regression net trained synchronously data-parallel —
    // this is where comm (allreduce) time comes from.
    let w2_split = w2_data.dataset.split(0.0, 0.2, seed ^ 0xB7, true);
    let w2_y = match &w2_split.train.y {
        Target::Regression(m) => m.clone(),
        _ => unreachable!("regression workload"),
    };
    let dp = DataParallelConfig {
        world: 2,
        global_batch: 64,
        epochs: match scale {
            Scale::Smoke => 2,
            Scale::Full => 6,
        },
        optimizer: OptimizerConfig::adam(1e-3),
        loss: Loss::Mse,
        seed,
        ..DataParallelConfig::default()
    };
    let w2_spec = w2_drug_response::net_spec(w2_split.train.dim());
    train_data_parallel(&w2_spec, &w2_split.train.x, &w2_y, &dp)
        .map_err(|e| format!("W2 data-parallel training failed: {e}"))?;

    Ok(dd_obs::snapshot())
}

/// The modeled counterpart: `dd-hpcsim`'s trace of a comparable small
/// data-parallel job, with the measured run's per-epoch checkpoints
/// mirrored as explicit checkpoint spans.
pub fn modeled(scale: Scale) -> Trace {
    let nodes = 4;
    let machine = Machine::gpu_2017(nodes);
    let (steps, steps_per_epoch) = match scale {
        Scale::Smoke => (48, 12),
        Scale::Full => (360, 30),
    };
    let job = TrainJob::from_dense_net(2.0e6, 512, 128, 8);
    let mut trace = trace_training_run(
        &machine,
        &job,
        Strategy::Data { nodes, algo: AllreduceAlgo::Auto },
        SimPrecision::F32,
        Staging::StageNvram,
        2e9,
        steps,
        steps_per_epoch,
    );
    // Weights + two Adam moments in f32, written to the burst buffer once
    // per epoch — the same cadence the measured supervisor uses. gpu_2017
    // always prices an NVRAM tier; should a machine without one ever be
    // modeled here, the trace simply omits its checkpoint spans.
    let state_bytes = 3.0 * job.params * 4.0;
    if let Some(cost) = checkpoint_cost(&machine.node.memory, Tier::Nvram, state_bytes) {
        for _ in 0..steps.div_ceil(steps_per_epoch) {
            trace.push(Phase::Checkpoint, cost.write_seconds);
        }
    }
    trace
}

fn pct(v: f64, total: f64) -> String {
    if total <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * v / total)
    }
}

/// Lay the measured and modeled breakdowns side by side, one row per phase.
pub fn table(measured: &Snapshot, modeled: &Trace) -> Table {
    let mut t = Table::new(
        "E12: measured phase breakdown (dd-obs instrumented run) vs dd-hpcsim modeled trace",
        &["phase", "measured s", "measured %", "modeled s", "modeled %"],
    );
    let m_total: f64 = Phase::ALL.iter().map(|&p| measured.time_in(p)).sum();
    let s_total: f64 = Phase::ALL.iter().map(|&p| modeled.time_in(p)).sum();
    for &phase in Phase::ALL.iter() {
        let m = measured.time_in(phase);
        let s = modeled.time_in(phase);
        t.push_row(vec![
            phase.name().to_string(),
            fnum(m),
            pct(m, m_total),
            fnum(s),
            pct(s, s_total),
        ]);
    }
    t
}

/// Render the E12 table (instrumented run + model). A failed instrumented
/// run degrades to an empty measured column (shares render as dashes) with
/// a warning, so the suite's remaining tables still regenerate.
pub fn run(scale: Scale, seed: u64) -> Table {
    match measure(scale, seed) {
        Ok(snap) => table(&snap, &modeled(scale)),
        Err(why) => {
            eprintln!("[warn] E12 instrumented run failed: {why}");
            table(&Snapshot::default(), &modeled(scale))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_obs::SpanRecord;

    // `measure` drives the process-global registry, so the unit tests here
    // are structure-only; the end-to-end path runs in the own-process
    // integration test `tests/observability.rs` and the exp-profile binary.

    #[test]
    fn table_has_one_row_per_phase_with_aligned_shares() {
        let mut snap = Snapshot::default();
        snap.spans.push(SpanRecord {
            name: "forward".into(),
            phase: Some(Phase::Compute),
            tid: 1,
            depth: 1,
            start_us: 0.0,
            dur_us: 3e6,
        });
        snap.spans.push(SpanRecord {
            name: "gather".into(),
            phase: Some(Phase::Io),
            tid: 1,
            depth: 1,
            start_us: 3e6,
            dur_us: 1e6,
        });
        let mut trace = Trace::new();
        trace.push(Phase::Compute, 6.0);
        trace.push(Phase::Comm, 2.0);
        let t = table(&snap, &trace);
        assert_eq!(t.rows.len(), Phase::ALL.len());
        let compute = &t.rows[0];
        assert_eq!(compute[0], "compute");
        assert_eq!(compute[2], "75.0%");
        assert_eq!(compute[4], "75.0%");
        let io = &t.rows[2];
        assert_eq!(io[2], "25.0%");
        assert_eq!(io[3], "0");
    }

    #[test]
    fn empty_measurement_renders_dashes_not_nans() {
        let t = table(&Snapshot::default(), &Trace::new());
        for row in &t.rows {
            assert_eq!(row[2], "-");
            assert_eq!(row[4], "-");
        }
    }

    #[test]
    fn modeled_trace_covers_all_four_phases() {
        let trace = modeled(Scale::Smoke);
        for &phase in Phase::ALL.iter() {
            assert!(trace.time_in(phase) > 0.0, "{phase} missing from modeled trace");
        }
        let covered: f64 = Phase::ALL.iter().map(|&p| trace.time_in(p)).sum();
        assert!((covered - trace.total()).abs() < 1e-9);
    }
}
