//! E5 — "large quantities of training data to be made available or
//! generated at each node, thus providing opportunities for NVRAM".
//!
//! Epoch I/O time per node as the per-node training shard grows, under PFS
//! streaming, NVRAM staging, DRAM staging and on-node generation.

use crate::report::{fnum, ftime, Scale, Table};
use dd_hpcsim::{epoch_io, memory, Staging};

/// Rows: `(shard GB, staging, first epoch, steady epoch, total, feasible)`.
pub struct NvramRow {
    /// Per-node shard size in bytes.
    pub shard_bytes: f64,
    /// Strategy.
    pub staging: Staging,
    /// First-epoch I/O time.
    pub first: f64,
    /// Steady-state epoch I/O time.
    pub steady: f64,
    /// Total over the run.
    pub total: f64,
    /// Whether the strategy fit in its tier.
    pub feasible: bool,
}

/// Epochs modelled for the total column.
pub const EPOCHS: usize = 50;

/// Run the sweep.
pub fn sweep(scale: Scale) -> Vec<NvramRow> {
    let mem = memory::accelerator_node_2017();
    let shards_gb: Vec<f64> = match scale {
        Scale::Smoke => vec![1.0, 64.0, 512.0],
        Scale::Full => vec![1.0, 8.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0],
    };
    let mut rows = Vec::new();
    for &gb in &shards_gb {
        let shard = gb * 1e9;
        for staging in Staging::ALL {
            let r = epoch_io(&mem, staging, shard, EPOCHS);
            rows.push(NvramRow {
                shard_bytes: shard,
                staging,
                first: r.first_epoch,
                steady: r.steady_epoch,
                total: r.total,
                feasible: r.feasible,
            });
        }
    }
    rows
}

/// Render the E5 table.
pub fn run(scale: Scale, _seed: u64) -> Table {
    let mut table = Table::new(
        format!("E5: per-node training-data I/O over {EPOCHS} epochs (2017 accelerator node)"),
        &["shard GB", "staging", "first epoch", "steady epoch", "total", "feasible"],
    );
    for r in sweep(scale) {
        table.push_row(vec![
            fnum(r.shard_bytes / 1e9),
            r.staging.name().to_string(),
            ftime(r.first),
            ftime(r.steady),
            ftime(r.total),
            r.feasible.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvram_wins_at_bigger_than_dram_shards() {
        let rows = sweep(Scale::Smoke);
        let at = |gb: f64, s: Staging| {
            rows.iter().find(|r| (r.shard_bytes - gb * 1e9).abs() < 1.0 && r.staging == s).unwrap()
        };
        // 512 GB: too big for 256 GB DRAM, fits 1.6 TB NVRAM.
        let pfs = at(512.0, Staging::StreamPfs);
        let nvram = at(512.0, Staging::StageNvram);
        let dram = at(512.0, Staging::StageDram);
        assert!(nvram.feasible && !dram.feasible);
        assert!(nvram.total < pfs.total / 3.0, "nvram {} pfs {}", nvram.total, pfs.total);
    }

    #[test]
    fn dram_wins_small_shards_among_io_strategies() {
        let rows = sweep(Scale::Smoke);
        let small: Vec<&NvramRow> =
            rows.iter().filter(|r| (r.shard_bytes - 1e9).abs() < 1.0).collect();
        // Among strategies that *read* the data, DRAM staging is best…
        let best_io = small
            .iter()
            .filter(|r| r.feasible && r.staging != Staging::GenerateOnNode)
            .min_by(|a, b| a.total.partial_cmp(&b.total).unwrap())
            .unwrap();
        assert_eq!(best_io.staging, Staging::StageDram);
        // …and on-node generation beats even that for small shards (the
        // abstract's "or generated at each node" observation).
        let gen = small.iter().find(|r| r.staging == Staging::GenerateOnNode).unwrap();
        assert!(gen.total <= best_io.total);
    }

    #[test]
    fn table_covers_all_strategies() {
        let t = run(Scale::Smoke, 0);
        assert_eq!(t.rows.len(), 3 * 4);
    }
}
