//! E14 — fault-tolerant replicated serving under deterministic chaos.
//!
//! E13 established the batching/admission-control shape of serving; this
//! experiment asks what happens when the serving fleet itself misbehaves.
//! At pre-exascale node counts failure is the common case (the E11 claim),
//! and an inference fleet inherits that arithmetic: replicas crash on an
//! MTBF schedule, straggle, and occasionally emit corrupt outputs. The
//! sweep drives the dd-serve chaos simulator — the deterministic twin of
//! the threaded server, sharing its `ResilientCall` decision core — over a
//! per-replica crash-MTBF grid, and compares two policies on identical
//! arrival processes and identical fault draws:
//!
//! * **baseline** — one attempt per request, no hedging, breakers never
//!   trip, no health eviction. Crashed replicas keep receiving traffic
//!   until they respawn (zombie routing), so every batch routed at a down
//!   replica fails.
//! * **resilient** — [`ResilPolicy::standard`]: capped-backoff retries
//!   with jitter, one auto-delay hedge against stragglers, per-replica
//!   circuit breakers, and health-check eviction of observed-crashed
//!   replicas.
//!
//! Two shapes are asserted: the *baseline cliff* — at the mid MTBF point
//! the no-retry baseline's availability drops below 90% — and the
//! *resilient floor* — at the same point, with the same faults, retries +
//! hedging + breakers hold availability at 99%+ while the served p99 stays
//! inside the analytic deadline-plus-retry-chain envelope (bounded, not
//! growing with the backlog).

use crate::report::{fnum, Scale, Table};
use dd_serve::{
    poisson_arrivals, simulate_chaos, BatchPolicy, ChaosConfig, ChaosReport, FaultSpec, LoadConfig,
    ResilPolicy, ServiceModel,
};

/// Replica pool size.
pub const REPLICAS: usize = 4;
/// Batcher's maximum coalesced batch.
pub const MAX_BATCH: usize = 16;
/// Batcher's coalescing window, seconds.
pub const MAX_WAIT_S: f64 = 0.002;
/// Per-request deadline, seconds.
pub const DEADLINE_S: f64 = 0.25;
/// Admission-queue capacity.
pub const QUEUE_CAPACITY: usize = 512;
/// Offered load as a fraction of the pool's max-batch saturation rate.
pub const LOAD_FACTOR: f64 = 0.7;
/// Per-replica crash MTBF grid, seconds; `0` is the fault-free reference
/// row (no crash schedule) the p99 bound is measured against.
pub const MTBF_GRID_S: [f64; 6] = [0.0, 1.6, 0.8, 0.4, 0.2, 0.1];
/// Physical (and believed) replica out-of-service time after a crash.
pub const RESPAWN_S: f64 = 0.04;

/// Per-attempt straggler probability.
const STRAGGLE_P: f64 = 0.02;
/// Mean injected straggler delay, seconds (4x a full-batch service time).
const STRAGGLE_S: f64 = 0.04;
/// Per-attempt corrupt-output probability.
const CORRUPT_P: f64 = 0.01;

/// The batch cost model: 2 ms fixed dispatch overhead plus 0.5 ms per row,
/// so a full batch of [`MAX_BATCH`] takes 10 ms.
pub fn service_model() -> ServiceModel {
    ServiceModel::new(2e-3, 0.5e-3)
}

/// The mid MTBF point the claim predicates are evaluated at.
pub fn mid_mtbf_s() -> f64 {
    MTBF_GRID_S[3]
}

/// One (MTBF, policy) point of the sweep.
pub struct ChaosRow {
    /// Per-replica crash MTBF, seconds (`0` = fault-free reference).
    pub mtbf_s: f64,
    /// `true` for [`ResilPolicy::standard`], `false` for the baseline.
    pub resilient: bool,
    /// Everything the chaos simulation measured at this point.
    pub report: ChaosReport,
}

/// Run the sweep. At each MTBF both policies see the identical arrival
/// process and the identical seeded fault draws, so the availability gap
/// is attributable to the policy alone.
pub fn sweep(scale: Scale, seed: u64) -> Vec<ChaosRow> {
    let requests = match scale {
        Scale::Smoke => 4000,
        Scale::Full => 20_000,
    };
    let service = service_model();
    let offered_rps = LOAD_FACTOR * service.saturation_rps(MAX_BATCH, REPLICAS);
    let mut rows = Vec::new();
    for (mi, &mtbf_s) in MTBF_GRID_S.iter().enumerate() {
        let arrivals = poisson_arrivals(&LoadConfig {
            rate_per_s: offered_rps,
            requests,
            seed: seed.wrapping_add(mi as u64),
        });
        for resilient in [false, true] {
            let cfg = ChaosConfig {
                policy: BatchPolicy::new(MAX_BATCH, MAX_WAIT_S, DEADLINE_S),
                queue_capacity: QUEUE_CAPACITY,
                replicas: REPLICAS,
                service,
                arrivals: arrivals.clone(),
                resil: if resilient { ResilPolicy::standard() } else { ResilPolicy::disabled() },
                faults: FaultSpec {
                    straggle_p: STRAGGLE_P,
                    straggle_s: STRAGGLE_S,
                    corrupt_p: CORRUPT_P,
                    respawn_s: RESPAWN_S,
                    seed: seed.wrapping_mul(2).wrapping_add(mi as u64),
                    ..FaultSpec::none()
                },
                crash_mtbf_s: mtbf_s,
                fallback: true,
            };
            rows.push(ChaosRow { mtbf_s, resilient, report: simulate_chaos(&cfg) });
        }
    }
    rows
}

fn at(rows: &[ChaosRow], mtbf_s: f64, resilient: bool) -> Option<&ChaosRow> {
    rows.iter().find(|r| r.mtbf_s == mtbf_s && r.resilient == resilient)
}

/// The baseline cliff: at the mid MTBF point, zombie routing drags the
/// no-retry baseline's availability below 90%.
pub fn baseline_cliff(rows: &[ChaosRow]) -> bool {
    at(rows, mid_mtbf_s(), false).is_some_and(|r| r.report.availability < 0.90)
}

/// The analytic envelope one served request can cost under the standard
/// policy: the admission deadline (front-shed caps queue wait there) plus
/// the worst-case resilient call chain — every attempt running a full
/// batch with a worst-case straggle, plus every capped backoff. A serving
/// system in backlog collapse has a served p99 that grows with the run
/// length; a bounded one stays inside this envelope no matter the MTBF.
pub fn p99_bound_s() -> f64 {
    let policy = ResilPolicy::standard();
    let attempt_s = service_model().seconds(MAX_BATCH) + 1.5 * STRAGGLE_S;
    let mut backoffs = 0.0;
    for failures in 1..policy.retry.max_attempts {
        let exp = (failures - 1).min(52);
        backoffs +=
            (policy.retry.base_backoff_s * (1u64 << exp) as f64).min(policy.retry.max_backoff_s);
    }
    DEADLINE_S + policy.retry.max_attempts as f64 * attempt_s + backoffs
}

/// The resilient floor: at the same mid MTBF point, on the same faults,
/// the standard policy holds availability at >= 99% while the served p99
/// stays inside the analytic [`p99_bound_s`] envelope (bounded, not
/// collapsing with the backlog).
pub fn resilient_floor(rows: &[ChaosRow]) -> bool {
    at(rows, mid_mtbf_s(), true)
        .is_some_and(|mid| mid.report.availability >= 0.99 && mid.report.e2e.p99 <= p99_bound_s())
}

/// Render the E14 table.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E14: serving under chaos (4 replicas, MTBF crash schedule, stragglers, corrupt outputs)",
        &[
            "mtbf_s",
            "policy",
            "offered",
            "admitted",
            "rejected",
            "shed",
            "completed",
            "failed",
            "degraded",
            "retries",
            "hedges",
            "evictions",
            "respawns",
            "breaker_opens",
            "availability",
            "e2e_p50_ms",
            "e2e_p99_ms",
        ],
    );
    for r in sweep(scale, seed) {
        let rep = &r.report;
        table.push_row(vec![
            fnum(r.mtbf_s),
            if r.resilient { "resil" } else { "baseline" }.to_string(),
            rep.offered.to_string(),
            rep.admitted.to_string(),
            rep.rejected.to_string(),
            rep.shed.to_string(),
            rep.completed.to_string(),
            rep.failed.to_string(),
            rep.degraded.to_string(),
            rep.retries.to_string(),
            rep.hedges.to_string(),
            rep.evictions.to_string(),
            rep.respawns.to_string(),
            rep.breaker_opens.to_string(),
            fnum(rep.availability),
            fnum(rep.e2e.p50 * 1e3),
            fnum(rep.e2e.p99 * 1e3),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_conserves_requests() {
        let a = run(Scale::Smoke, 2017).to_csv();
        let b = run(Scale::Smoke, 2017).to_csv();
        assert_eq!(a, b, "same seed must give a byte-identical table");
        let rows = sweep(Scale::Smoke, 2017);
        assert_eq!(rows.len(), 2 * MTBF_GRID_S.len());
        for r in &rows {
            assert_eq!(r.report.offered, r.report.admitted + r.report.rejected);
            assert_eq!(r.report.admitted, r.report.completed + r.report.failed + r.report.shed);
        }
    }

    #[test]
    fn cliff_and_floor_shapes_hold() {
        let rows = sweep(Scale::Smoke, 2017);
        assert!(baseline_cliff(&rows), "baseline availability should crater at mid MTBF");
        assert!(resilient_floor(&rows), "standard policy should hold availability and p99");
        // The resilience machinery actually engaged: retries, hedges, and
        // eviction/respawn cycles are all non-zero at the mid point.
        let Some(mid) = rows.iter().find(|r| r.mtbf_s == mid_mtbf_s() && r.resilient) else {
            panic!("mid MTBF resilient row missing");
        };
        assert!(mid.report.retries > 0, "crashes must consume retries");
        assert!(mid.report.hedges > 0, "stragglers must trigger hedges");
        assert!(mid.report.evictions > 0 && mid.report.respawns > 0, "eviction cycle must run");
        // The fault-free reference row is genuinely crash-free: even with
        // health eviction armed, nothing gets evicted at MTBF 0.
        let Some(clean) = rows.iter().find(|r| r.mtbf_s == 0.0 && r.resilient) else {
            panic!("fault-free resilient row missing");
        };
        assert_eq!(clean.report.evictions, 0, "no crashes at MTBF 0");
    }
}
