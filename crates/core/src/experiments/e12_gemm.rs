//! E12 (GEMM addendum) — achieved fraction of the compute roofline for the
//! matmul kernel, before and after the blocked rewrite.
//!
//! E12 proper compares a measured phase breakdown against the modeled one.
//! This table closes the loop one level lower: how close does each matmul
//! implementation come to what the host's arithmetic units can actually
//! sustain? The roof is *calibrated, not assumed*: we time the register-
//! blocked microkernel on one L1-resident packed tile
//! ([`dd_tensor::kernel::calibrate_mk_f32`]), so the denominator is the
//! FMA rate this machine really delivers, not a spec-sheet number. Each
//! kernel variant then runs the full GEMM — packing, blocking, writeback
//! and all — and its sustained GFLOP/s is reported as a fraction of that
//! roof:
//!
//! * `seed_naive_f32` — the pre-PR-10 i-k-j AXPY kernel
//!   ([`dd_tensor::matmul::seed`]), the "before" row;
//! * `blocked_scalar_f32` / `blocked_simd_f32` — the cache-blocked packed
//!   kernel with the scalar and AVX2+FMA microkernels;
//! * `fused_int8` — the fused quantize → i32-GEMM → dequantize path,
//!   measured against its own integer roof (its ops are int8
//!   multiply-accumulates, so comparing against the f32 roof would
//!   understate the speedup the paper's low-precision claim is about).
//!
//! Timing uses `dd_obs` spans (the workspace's single clock); the registry
//! stays disabled, so spans only measure and record nothing.

use crate::report::{fnum, Scale, Table};
use dd_tensor::kernel::{self, Backend};
use dd_tensor::matmul::seed;
use dd_tensor::{matmul_prec, Matrix, Precision, Rng64};

/// Time one closure call, repeating until the measurement window is at
/// least `min_time` seconds; returns seconds per call.
fn time_call(mut f: impl FnMut(), min_time: f64) -> f64 {
    f(); // warm caches and the Rayon pool before measuring
    let mut reps = 1usize;
    loop {
        let span = dd_obs::span("e12_gemm_bench");
        for _ in 0..reps {
            f();
        }
        let t = span.finish();
        if t >= min_time || reps >= 1 << 20 {
            return t / reps as f64;
        }
        reps *= 2;
    }
}

/// Calibrate a compute roof in GFLOP/s from a microkernel FLOP counter.
fn calibrate_roof(bench: impl Fn(usize) -> u64, min_time: f64) -> f64 {
    let mut iters = 1024usize;
    loop {
        let span = dd_obs::span("e12_gemm_roof");
        let flops = bench(iters);
        let t = span.finish();
        if t >= min_time || iters >= 1 << 28 {
            return flops as f64 / t / 1e9;
        }
        iters *= 4;
    }
}

/// One measured kernel variant at one size.
pub struct GemmRate {
    /// Variant label (`seed_naive_f32`, `blocked_simd_f32`, ...).
    pub kernel: &'static str,
    /// Cube dimension (`size³` GEMM).
    pub size: usize,
    /// Sustained throughput over the whole GEMM, GFLOP/s (2·n³ ops).
    pub gflops: f64,
    /// The calibrated compute roof this variant is measured against.
    pub roof_gflops: f64,
    /// Speedup over the seed kernel at the same size.
    pub vs_seed: f64,
}

impl GemmRate {
    /// Achieved fraction of the calibrated roof.
    pub fn fraction(&self) -> f64 {
        if self.roof_gflops > 0.0 {
            self.gflops / self.roof_gflops
        } else {
            0.0
        }
    }
}

/// Measure every kernel variant at the given cube sizes. `min_time` is the
/// smallest timing window per measurement (seconds).
pub fn measure(sizes: &[usize], min_time: f64, seed_val: u64) -> Vec<GemmRate> {
    // The f32 roof is the best microkernel this host has; scalar-only hosts
    // calibrate the scalar microkernel (the downgrade is inside dd-tensor).
    let roof_f32 = calibrate_roof(|i| kernel::calibrate_mk_f32(Backend::Simd, i), min_time);
    let roof_i8 = calibrate_roof(|i| kernel::calibrate_mk_i8(Backend::Simd, i), min_time);

    let mut rng = Rng64::new(seed_val);
    let mut out = Vec::new();
    for &n in sizes {
        let a = Matrix::randn(n, n, 0.0, 1.0, &mut rng);
        let b = Matrix::randn(n, n, 0.0, 1.0, &mut rng);
        let flops = 2.0 * (n as f64).powi(3);
        let gf = |t: f64| flops / t / 1e9;

        let t_seed = time_call(|| std::mem::drop(seed::naive_f32(&a, &b)), min_time);
        let t_scalar = time_call(
            || {
                std::mem::drop(kernel::gemm_prec(
                    &a,
                    &b,
                    kernel::Orient::Nn,
                    Precision::F32,
                    Backend::Scalar,
                ))
            },
            min_time,
        );
        let t_simd = time_call(
            || {
                std::mem::drop(kernel::gemm_prec(
                    &a,
                    &b,
                    kernel::Orient::Nn,
                    Precision::F32,
                    Backend::Simd,
                ))
            },
            min_time,
        );
        let t_i8 = time_call(|| std::mem::drop(matmul_prec(&a, &b, Precision::Int8)), min_time);

        let seed_gf = gf(t_seed);
        let mut push = |kernel, t: f64, roof| {
            out.push(GemmRate {
                kernel,
                size: n,
                gflops: gf(t),
                roof_gflops: roof,
                vs_seed: t_seed / t,
            });
        };
        push("seed_naive_f32", t_seed, roof_f32);
        push("blocked_scalar_f32", t_scalar, roof_f32);
        push("blocked_simd_f32", t_simd, roof_f32);
        push("fused_int8", t_i8, roof_i8);
        let _ = seed_gf;
    }
    out
}

/// Render the measurement as the E12 addendum table.
pub fn table(rates: &[GemmRate]) -> Table {
    let simd = if kernel::simd_available() { "avx2+fma" } else { "scalar-only host" };
    let mut t = Table::new(
        format!("E12b: GEMM achieved fraction of host compute roofline ({simd})"),
        &["kernel", "size", "gflops", "roof_gflops", "roof_fraction", "speedup_vs_seed"],
    );
    for r in rates {
        t.push_row(vec![
            r.kernel.to_string(),
            r.size.to_string(),
            fnum(r.gflops),
            fnum(r.roof_gflops),
            format!("{:.3}", r.fraction()),
            format!("{:.2}", r.vs_seed),
        ]);
    }
    t
}

/// Standard entry point: cube sizes 64/256/512 at both scales; smoke just
/// uses a shorter timing window (the 512³ sizes are what the perf gate
/// reads, so they run at either scale).
pub fn run(scale: Scale, seed_val: u64) -> Table {
    let min_time = match scale {
        Scale::Smoke => 0.05,
        Scale::Full => 0.25,
    };
    table(&measure(&[64, 256, 512], min_time, seed_val))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_every_variant_per_size() {
        let rates = measure(&[16, 24], 1e-4, 7);
        assert_eq!(rates.len(), 8);
        for r in &rates {
            assert!(r.gflops > 0.0, "{} at {} produced no rate", r.kernel, r.size);
            assert!(r.roof_gflops > 0.0);
            assert!(r.fraction() > 0.0);
        }
        // The seed row's speedup-vs-seed is 1 by construction.
        assert!(rates.iter().filter(|r| r.kernel == "seed_naive_f32").all(|r| r.vs_seed == 1.0));
    }

    #[test]
    fn table_shape_matches_measurement() {
        let rates = measure(&[16], 1e-4, 7);
        let t = table(&rates);
        assert_eq!(t.rows.len(), rates.len());
        assert_eq!(t.headers.len(), 6);
    }
}
