//! Experiments E1–E18: one module per claim in the abstract (see DESIGN.md's
//! experiment index). Every module exposes `run(scale, seed) -> Table`; the
//! `exp-*` binaries print the table and write a CSV under `results/`.

pub mod e10_compression;
pub mod e11_faults;
pub mod e12_gemm;
pub mod e12_profile;
pub mod e13_serving;
pub mod e14_chaos;
pub mod e15_telemetry;
pub mod e18_tenancy;
pub mod e1_precision;
pub mod e2_scaling;
pub mod e3_parallelism;
pub mod e4_memory;
pub mod e5_nvram;
pub mod e6_search;
pub mod e7_hybrid;
pub mod e8_workloads;
pub mod e9_mdsurrogate;

use crate::report::Table;
use std::path::PathBuf;

/// Print a table and persist its CSV under `results/` (best effort — the
/// experiment result is the stdout table; CSV failures only warn).
pub fn emit(table: &Table, slug: &str) -> Option<PathBuf> {
    println!("{}", table.render());
    let dir = std::path::Path::new("results");
    match table.write_csv(dir, slug) {
        Ok(path) => {
            println!("[csv] {}", path.display());
            Some(path)
        }
        Err(err) => {
            eprintln!("[warn] could not write {slug}.csv: {err}");
            None
        }
    }
}
