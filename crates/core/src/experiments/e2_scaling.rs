//! E2 — "DNNs in general do not have good strong scaling behavior".
//!
//! Two views of the same claim: (a) simulated strong/weak scaling of
//! synchronous data-parallel training on the 2017 GPU machine across three
//! decades of node counts, and (b) *measured* multi-threaded data-parallel
//! training in this process (dd-parallel's real ring allreduce), which
//! shows the same efficiency cliff at small scale.

use crate::report::{fnum, ftime, Scale, Table};
use dd_hpcsim::trainsim::{strong_scaling_efficiency, weak_scaling_efficiency};
use dd_hpcsim::{AllreduceAlgo, Machine, SimPrecision, Strategy, TrainJob};
use dd_nn::{Activation, ModelSpec};
use dd_parallel::{train_data_parallel, DataParallelConfig};
use dd_tensor::{Matrix, Rng64};

/// Simulated strong and weak scaling rows: `(nodes, strong eff, weak eff,
/// step time strong, comm share strong)`.
pub fn simulated_rows(scale: Scale) -> Vec<(usize, f64, f64, f64, f64)> {
    let max_nodes = match scale {
        Scale::Smoke => 256,
        Scale::Full => 4096,
    };
    let machine = Machine::gpu_2017(max_nodes);
    let job = TrainJob::from_dense_net(50e6, 2000, 8192, 8);
    let mut rows = Vec::new();
    let mut nodes = 1;
    while nodes <= max_nodes {
        let strategy = Strategy::Data { nodes, algo: AllreduceAlgo::Auto };
        let strong = strong_scaling_efficiency(&machine, &job, strategy, SimPrecision::F32);
        let weak = weak_scaling_efficiency(
            &machine,
            512,
            &job,
            nodes,
            AllreduceAlgo::Auto,
            SimPrecision::F32,
        );
        let b = dd_hpcsim::step_time(&machine, &job, strategy, SimPrecision::F32);
        rows.push((nodes, strong, weak, b.step, b.comm / b.step));
        nodes *= 4;
    }
    rows
}

/// Measured thread-level data-parallel scaling: `(world, seconds)` for a
/// fixed training problem.
pub fn measured_rows(scale: Scale, seed: u64) -> Vec<(usize, f64)> {
    let (n, epochs) = match scale {
        Scale::Smoke => (512, 3),
        Scale::Full => (4096, 8),
    };
    let mut rng = Rng64::new(seed);
    let x = Matrix::randn(n, 64, 0.0, 1.0, &mut rng);
    let y = Matrix::from_fn(n, 1, |i, _| x.row(i).iter().sum::<f32>().tanh());
    let spec = ModelSpec::mlp(64, &[128, 64], 1, Activation::Relu);
    let worlds = [1usize, 2, 4, 8];
    worlds
        .iter()
        .map(|&world| {
            let report = train_data_parallel(
                &spec,
                &x,
                &y,
                &DataParallelConfig {
                    world,
                    global_batch: 128,
                    epochs,
                    seed,
                    ..Default::default()
                },
            )
            .expect("data-parallel run succeeds");
            (world, report.seconds)
        })
        .collect()
}

/// Render both views.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(
        "E2: data-parallel scaling (sim: gpu2017, 50M-param net, batch 8192; measured: threads)",
        &[
            "nodes",
            "strong eff",
            "weak eff",
            "sim step",
            "comm share",
            "measured threads",
            "measured s",
        ],
    );
    let sim = simulated_rows(scale);
    let measured = measured_rows(scale, seed);
    let rows = sim.len().max(measured.len());
    for i in 0..rows {
        let (a, b, c, d, e) = sim
            .get(i)
            .map(|&(n, s, w, t, cs)| (n.to_string(), fnum(s), fnum(w), ftime(t), fnum(cs)))
            .unwrap_or_default();
        let (f, g) = measured.get(i).map(|&(w, s)| (w.to_string(), ftime(s))).unwrap_or_default();
        table.push_row(vec![a, b, c, d, e, f, g]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_strong_scaling_collapses() {
        let rows = simulated_rows(Scale::Smoke);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert_eq!(first.0, 1);
        assert!((first.1 - 1.0).abs() < 1e-9, "single node strong eff is 1");
        assert!(last.1 < 0.6, "strong eff at {} nodes is {}", last.0, last.1);
        // Weak scaling holds up much better.
        assert!(last.2 > last.1, "weak {} vs strong {}", last.2, last.1);
        // Comm share grows monotonically-ish.
        assert!(last.4 > first.4);
    }

    #[test]
    fn measured_rows_cover_worlds() {
        let m = measured_rows(Scale::Smoke, 1);
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|&(_, s)| s > 0.0));
    }

    #[test]
    fn table_renders() {
        let t = run(Scale::Smoke, 2);
        assert!(t.rows.len() >= 4);
    }
}
