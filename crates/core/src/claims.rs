//! Executable claim verification.
//!
//! EXPERIMENTS.md records a verdict for every architectural claim in the
//! abstract; this module makes those verdicts *executable*: each claim has
//! a programmatic check over the smoke-scale experiment sweeps, so
//! `verify-claims` regenerates the whole reproduction verdict table in one
//! run (and CI-style regressions in any substrate flip a claim to FAIL).

use crate::experiments::{
    e10_compression, e11_faults, e13_serving, e14_chaos, e15_telemetry, e18_tenancy, e1_precision,
    e2_scaling, e3_parallelism, e4_memory, e5_nvram, e6_search, e7_hybrid, e9_mdsurrogate,
};
use crate::report::Scale;
use crate::workloads;
use dd_tensor::Precision;

/// Outcome of one claim check.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Claim id (matches EXPERIMENTS.md sections).
    pub id: &'static str,
    /// The abstract's sentence (abridged).
    pub statement: &'static str,
    /// Whether the measured shape supports the claim.
    pub holds: bool,
    /// One line of measured evidence.
    pub evidence: String,
}

/// A claim whose inputs could not be produced. Recorded as a failed verdict
/// with the reason as evidence — never a panic, because `verify-claims`
/// must always render the complete table even when one substrate regresses.
fn unverifiable(id: &'static str, statement: &'static str, what: &str) -> ClaimResult {
    ClaimResult { id, statement, holds: false, evidence: format!("not verifiable: {what}") }
}

/// Check every claim at the given scale. Smoke scale runs in about a
/// minute; full scale reproduces the EXPERIMENTS.md configuration.
pub fn verify_all(scale: Scale, seed: u64) -> Vec<ClaimResult> {
    let mut results = Vec::new();

    // C1 — low precision suffices.
    {
        let rows = e1_precision::sweep(scale, seed);
        let r2 = |p: Precision| {
            rows.iter().find(|r| r.precision == p).map(|r| r.test_r2).unwrap_or(f64::NAN)
        };
        let f64_r2 = r2(Precision::F64);
        let worst16 = r2(Precision::Bf16).min(r2(Precision::F16));
        let int8 = r2(Precision::Int8);
        results.push(ClaimResult {
            id: "E1",
            statement: "DNNs rarely require 64 or even 32 bits of precision",
            holds: (r2(Precision::F32) - f64_r2).abs() < 0.05
                && worst16 > f64_r2 - 0.15
                && int8 > 0.0,
            evidence: format!(
                "R²: f64 {:.3}, f32 {:.3}, worst 16-bit {:.3}, int8 {:.3}",
                f64_r2,
                r2(Precision::F32),
                worst16,
                int8
            ),
        });
    }

    // C2 — poor strong scaling, healthy weak scaling.
    {
        let statement = "DNNs do not have good strong scaling behavior";
        let rows = e2_scaling::simulated_rows(scale);
        match rows.last() {
            Some(last) => results.push(ClaimResult {
                id: "E2",
                statement,
                holds: last.1 < 0.6 && last.2 > 0.8,
                evidence: format!(
                    "at {} nodes: strong eff {:.3}, weak eff {:.3}, comm share {:.2}",
                    last.0, last.1, last.2, last.4
                ),
            }),
            None => results.push(unverifiable("E2", statement, "scaling sweep returned no rows")),
        }
    }

    // C3 — model parallelism needs a high-bandwidth fabric.
    {
        let statement = "high-bandwidth fabric supports network model parallelism";
        let rows = e3_parallelism::sweep(scale);
        match (rows.first(), rows.last()) {
            (Some(slow), Some(fast)) => results.push(ClaimResult {
                id: "E3",
                statement,
                holds: slow.4 != "data" && fast.2 < slow.2,
                evidence: format!(
                    "winner at {:.0} GB/s: {}; model step {:.0} ms -> {:.0} ms",
                    slow.0 / 1e9,
                    slow.4,
                    slow.2 * 1e3,
                    fast.2 * 1e3
                ),
            }),
            _ => results.push(unverifiable("E3", statement, "fabric sweep returned no rows")),
        }
    }

    // C4 — HBM close to ALUs.
    {
        let rows = e4_memory::sweep(scale);
        let statement = "high-bandwidth memory close to arithmetic units reduces data-motion cost";
        let hbm1 = rows.iter().find(|r| r.batch == 1 && r.tier == dd_hpcsim::Tier::Hbm);
        let ddr1 = rows.iter().find(|r| r.batch == 1 && r.tier == dd_hpcsim::Tier::Ddr);
        match (hbm1, ddr1) {
            (Some(h), Some(d)) => results.push(ClaimResult {
                id: "E4",
                statement,
                holds: h.gflops > 3.0 * d.gflops && d.mem_energy_share > 0.5,
                evidence: format!(
                    "batch 1: HBM {:.0} vs DDR {:.0} GFLOP/s; DDR mem-energy share {:.2}",
                    h.gflops, d.gflops, d.mem_energy_share
                ),
            }),
            _ => results.push(unverifiable("E4", statement, "batch-1 HBM/DDR rows missing")),
        }
    }

    // C5 — NVRAM opportunity.
    {
        let rows = e5_nvram::sweep(scale);
        let big = rows.iter().filter(|r| r.shard_bytes >= 500e9).collect::<Vec<_>>();
        let statement = "per-node training data provides opportunities for NVRAM";
        let pfs = big.iter().find(|r| r.staging == dd_hpcsim::Staging::StreamPfs);
        let nv = big.iter().find(|r| r.staging == dd_hpcsim::Staging::StageNvram);
        match (pfs, nv) {
            (Some(p), Some(n)) => results.push(ClaimResult {
                id: "E5",
                statement,
                holds: n.feasible && n.total < p.total / 3.0,
                evidence: format!(
                    "{:.0} GB/node, {} epochs: PFS {:.0}s vs NVRAM {:.0}s",
                    p.shard_bytes / 1e9,
                    e5_nvram::EPOCHS,
                    p.total,
                    n.total
                ),
            }),
            _ => results.push(unverifiable("E5", statement, "large-shard staging rows missing")),
        }
    }

    // C6 — intelligent search beats naive. Short smoke searches are noisy,
    // so average the per-class best over three seeds.
    {
        let seeds = [seed, seed ^ 0xA11CE, seed ^ 0xB0B5];
        let mut naive_total = 0.0;
        let mut intelligent_total = 0.0;
        for &s in &seeds {
            let histories = e6_search::compare(scale, s);
            let value = |name: &str| {
                histories
                    .iter()
                    .find(|h| h.searcher == name)
                    .and_then(|h| h.best_value())
                    .unwrap_or(f64::INFINITY)
            };
            // The abstract's "naïve searches" are grid and random; the
            // Latin-hypercube design is this repo's own stronger baseline
            // (compared in EXPERIMENTS.md at full scale).
            naive_total += value("random").min(value("grid"));
            intelligent_total += [
                "successive-halving",
                "hyperband",
                "evolutionary",
                "surrogate-forest",
                "generative-nn",
            ]
            .iter()
            .map(|n| value(n))
            .fold(f64::INFINITY, f64::min);
        }
        let naive = naive_total / seeds.len() as f64;
        let intelligent = intelligent_total / seeds.len() as f64;
        results.push(ClaimResult {
            id: "E6",
            statement:
                "naive searches are outperformed by intelligent strategies (incl. generative NNs)",
            holds: intelligent <= naive + 0.01,
            evidence: format!(
                "mean-of-{} best: naive {naive:.4} vs intelligent {intelligent:.4}",
                seeds.len()
            ),
        });
    }

    // C7 — model+data+search parallelism composes.
    {
        let statement = "large-scale parallelism combines model, data and search parallelism";
        let rows = e7_hybrid::sweep(scale);
        match (rows.first(), rows.last()) {
            (Some(first), Some(last)) => results.push(ClaimResult {
                id: "E7",
                statement,
                holds: last.4 > 3.0 * first.4,
                evidence: format!(
                    "trials/hour: 1 island {:.0} vs {} islands {:.0}",
                    first.4, last.0, last.4
                ),
            }),
            _ => results.push(unverifiable("E7", statement, "hybrid sweep returned no rows")),
        }
    }

    // C8 — DNNs beat classical baselines on nonlinear driver workloads.
    {
        let statement = "automated deep models outperform classical baselines on driver problems";
        let w5 = workloads::w5_records::run(scale, seed);
        match workloads::w2_drug_response::run(scale, seed) {
            Ok(w2) => results.push(ClaimResult {
                id: "E8",
                statement,
                holds: w2.dnn_advantage() > 0.0 && w5.dnn_advantage() > 0.0,
                evidence: format!(
                    "W2 R² +{:.3} over ridge; W5 policy +{:.3} over logistic",
                    w2.dnn_advantage(),
                    w5.dnn_advantage()
                ),
            }),
            Err(e) => {
                results.push(unverifiable("E8", statement, &format!("W2 training failed: {e}")));
            }
        }
    }

    // C9 — ML-supervised multi-resolution MD.
    {
        let statement = "deep learning supervises multi-resolution molecular dynamics";
        let reports = e9_mdsurrogate::sweep(scale, seed);
        let by = |n: &str| reports.iter().find(|r| r.policy == n);
        match (by("fine"), by("coarse"), by("dnn-surrogate")) {
            (Some(fine), Some(coarse), Some(sur)) => results.push(ClaimResult {
                id: "E9",
                statement,
                holds: sur.force_evals < fine.force_evals
                    && sur.energy_drift <= coarse.energy_drift,
                evidence: format!(
                    "surrogate {:.0}% of fine cost, drift {:.1e} (coarse {:.1e})",
                    100.0 * sur.force_evals as f64 / fine.force_evals as f64,
                    sur.energy_drift,
                    coarse.energy_drift
                ),
            }),
            _ => results.push(unverifiable("E9", statement, "MD policy reports missing")),
        }
    }

    // C10 — sparser communication patterns.
    {
        let statement = "future DNNs may rely less on dense communication patterns";
        let rows = e10_compression::sweep(scale, seed);
        match (rows.first(), rows.last()) {
            (Some(dense), Some(sparse)) => results.push(ClaimResult {
                id: "E10",
                statement,
                holds: sparse.ratio > 20.0 && sparse.final_loss < 3.0 * dense.final_loss + 0.01,
                evidence: format!(
                    "top-1%: {:.0}x compression, loss {:.4} vs dense {:.4}",
                    sparse.ratio, sparse.final_loss, dense.final_loss
                ),
            }),
            _ => results.push(unverifiable("E10", statement, "compression sweep empty")),
        }
    }

    // C11 — resilience: failure is the common case at scale.
    {
        let rows = e11_faults::sweep(scale, seed);
        let tracks = e11_faults::empirical_tracks_young_daly(&rows);

        // Measured recovery: a data-parallel run with an injected replica
        // crash must reproduce the fault-free loss curve exactly through
        // checkpoint/restart.
        let mut rng = dd_tensor::Rng64::new(seed);
        let x = dd_tensor::Matrix::randn(96, 3, 0.0, 1.0, &mut rng);
        let y = dd_tensor::Matrix::from_fn(96, 1, |i, _| x.get(i, 0) - x.get(i, 1));
        let spec = dd_nn::ModelSpec::mlp(3, &[8], 1, dd_nn::Activation::Tanh);
        let config = dd_parallel::DataParallelConfig {
            world: 2,
            epochs: 4,
            global_batch: 32,
            seed,
            ..Default::default()
        };
        let statement = "at pre-exascale node counts failure is the common case; checkpoint/restart at the Young/Daly interval keeps training productive";
        let plain = dd_parallel::train_data_parallel(&spec, &x, &y, &config);
        let faulted = dd_parallel::train_data_parallel_ft(
            &spec,
            &x,
            &y,
            &config,
            &dd_parallel::FaultConfig {
                scheduled: vec![dd_parallel::ScheduledFault {
                    attempt: 0,
                    rank: 1,
                    epoch: 2,
                    step: 0,
                    kind: dd_parallel::FaultKind::ReplicaCrash,
                }],
                ..dd_parallel::FaultConfig::none()
            },
        );
        match (plain, faulted) {
            (Ok(plain), Ok(faulted)) => {
                let exact = faulted.report.epoch_losses == plain.epoch_losses
                    && faulted.report.final_params == plain.final_params;
                results.push(ClaimResult {
                    id: "E11",
                    statement,
                    holds: tracks && exact && faulted.restarts == 1,
                    evidence: format!(
                        "optimum within 1 grid step of Young/Daly on {} (nodes, tier) sweeps; injected crash at epoch 2 recovered in {} restart(s) with bitwise-identical losses",
                        rows.len() / e11_faults::INTERVAL_GRID.len(),
                        faulted.restarts
                    ),
                });
            }
            (plain, faulted) => {
                let why = format!(
                    "training run failed: plain {:?}, faulted {:?}",
                    plain.err(),
                    faulted.err()
                );
                results.push(unverifiable("E11", statement, &why));
            }
        }
    }

    // C13 — inference serving: batching amortizes, admission control bounds.
    {
        let rows = e13_serving::sweep(scale, seed);
        let service = e13_serving::service_model();
        let knee = e13_serving::batching_knee(&rows);
        let bounded = e13_serving::overload_is_bounded(&rows, &service);
        let top = rows.iter().map(|r| r.offered_rps).fold(0.0, f64::max);
        let throughput = |b: usize| {
            rows.iter()
                .filter(|r| r.offered_rps == top && r.max_batch == b)
                .map(|r| r.report.throughput_rps)
                .fold(0.0, f64::max)
        };
        results.push(ClaimResult {
            id: "E13",
            statement: "batched inference serving amortizes dispatch overhead while admission control bounds tail latency under overload",
            holds: knee && bounded,
            evidence: format!(
                "at {:.0} rps offered: batch-1 serves {:.0} rps, batch-64 {:.0} rps; every overloaded point sheds and keeps served p99 under deadline + one batch",
                top,
                throughput(1),
                throughput(64)
            ),
        });
    }

    // C14 — serving resilience: retries, hedging, and breakers turn the
    // failure-is-common-case arithmetic into a latency envelope instead of
    // an availability cliff.
    {
        let statement = "replicated serving with retries, hedging and circuit breakers keeps availability through the failure rates at which naive serving collapses";
        let rows = e14_chaos::sweep(scale, seed);
        let cliff = e14_chaos::baseline_cliff(&rows);
        let floor = e14_chaos::resilient_floor(&rows);
        let mid = e14_chaos::mid_mtbf_s();
        let avail = |resilient: bool| {
            rows.iter()
                .find(|r| r.mtbf_s == mid && r.resilient == resilient)
                .map_or(f64::NAN, |r| r.report.availability)
        };
        results.push(ClaimResult {
            id: "E14",
            statement,
            holds: cliff && floor,
            evidence: format!(
                "at {mid} s per-replica MTBF: baseline availability {:.3}, resilient {:.3} with served p99 inside the {:.0} ms deadline+retry envelope",
                avail(false),
                avail(true),
                e14_chaos::p99_bound_s() * 1e3
            ),
        });
    }

    // C15 — streaming telemetry: multi-window burn-rate alerting detects
    // chaos onset quickly without crying wolf at steady state.
    {
        let statement = "sliding-window burn-rate alerts detect chaos onset within two fast-window lengths with zero false positives at steady state";
        let rows = e15_telemetry::sweep(scale, seed);
        let clean = e15_telemetry::zero_false_positives(&rows);
        let bounded = e15_telemetry::detection_bounded(&rows);
        let worst = rows
            .iter()
            .filter_map(e15_telemetry::TelemetryRow::detection_latency_s)
            .fold(0.0f64, f64::max);
        results.push(ClaimResult {
            id: "E15",
            statement,
            holds: clean && bounded,
            evidence: format!(
                "{} window configs: worst detection {:.0} ms after onset (fastest bound {:.0} ms), 0 steady-state alerts: {clean}",
                rows.len(),
                worst * 1e3,
                e15_telemetry::DETECTION_WINDOWS * e15_telemetry::FAST_GRID_S[0] * 1e3
            ),
        });
    }

    // C18 — multi-tenant serving: weighted-fair admission with priority
    // classes protects interactive tenants through batch bursts without
    // taxing the batch tier when capacity is spare.
    {
        let statement = "weighted-fair admission bounds interactive-tenant p99 through batch bursts that blow the deadline under global FIFO, at >= 90% of FIFO batch throughput when the interactive tenant is idle";
        let rows = e18_tenancy::sweep(scale, seed);
        let protected = e18_tenancy::interactive_protected(&rows);
        let soaks = e18_tenancy::batch_soaks_spare_capacity(&rows);
        let scales = e18_tenancy::autoscaler_tracks_bursts(&rows);
        results.push(ClaimResult {
            id: "E18",
            statement,
            holds: protected && soaks && scales,
            evidence: format!(
                "{} (mix, pattern, policy) points: interactive protected through burst {protected}, batch soak within 10% of FIFO {soaks}, autoscaler grows to ceiling under burst and stays in band {scales}",
                rows.len()
            ),
        });
    }

    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_hold_at_smoke_scale() {
        // The reproduction's headline regression test: every claim verdict
        // in EXPERIMENTS.md must be reproducible programmatically.
        let results = verify_all(Scale::Smoke, 2017);
        assert_eq!(results.len(), 15);
        for r in &results {
            assert!(r.holds, "{} failed: {} ({})", r.id, r.statement, r.evidence);
        }
    }
}
