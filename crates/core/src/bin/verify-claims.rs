//! Executable verdict table: re-checks every architectural claim of the
//! abstract against freshly measured experiment sweeps.
//! Usage: `verify-claims [smoke|full] [seed]`.

use deepdriver_core::claims;
use deepdriver_core::report::Scale;

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);
    eprintln!("verifying all claims at {scale:?} scale (seed {seed})...\n");
    let results = claims::verify_all(scale, seed);
    let mut failures = 0;
    for r in &results {
        let mark = if r.holds { "PASS" } else { "FAIL" };
        if !r.holds {
            failures += 1;
        }
        println!("[{mark}] {:>4}  {}", r.id, r.statement);
        println!("             {}", r.evidence);
    }
    println!("\n{} / {} claims hold", results.len() - failures, results.len());
    if failures > 0 {
        std::process::exit(1);
    }
}
