//! Regenerates the E18 multi-tenant serving table and spot-checks the
//! knee on the threaded server. Usage: `exp-18-tenancy [smoke|full|quick]
//! [seed]`.
//!
//! The table comes from the virtual-time simulator twin (deterministic,
//! byte-identical across runs). The threaded confirmation then replays the
//! structural shape on real threads: a batch flood is enqueued ahead of
//! interactive probes, and the FIFO engine answers the probes only after
//! the flood, while the tenanted weighted-fair engine answers them first.
//! Wall-clock numbers are printed for inspection but not persisted — the
//! canonical artifact is the simulator CSV.

use dd_nn::{Activation, ModelSpec};
use dd_serve::{
    AutoscalePolicy, BatchPolicy, ModelRegistry, PriorityClass, ResponseHandle, ServeConfig,
    Server, TenantDirectory, TenantSpec,
};
use dd_tensor::Precision;
use deepdriver_core::experiments::{self, e18_tenancy};
use deepdriver_core::report::Scale;
use std::sync::Arc;

const WIDTH: usize = 8;
const FLOOD: usize = 256;
const PROBES: usize = 16;

fn registry() -> Arc<ModelRegistry> {
    let reg = Arc::new(ModelRegistry::new());
    for (name, seed) in [("m-clinic", 11u64), ("m-screen", 22u64)] {
        let spec = ModelSpec::mlp(WIDTH, &[32, 16], 2, Activation::Tanh);
        let Ok(model) = spec.build(seed, Precision::F32) else {
            unreachable!("static spec builds");
        };
        reg.install(name, spec, model);
    }
    reg
}

fn config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 2 * FLOOD,
        workers: 2,
        policy: BatchPolicy::new(16, 1e-3, 30.0),
        ..ServeConfig::default()
    }
}

/// Mean milliseconds until the probe answers arrive, measured from just
/// after the flood was enqueued. Single-clock policy: probe timestamps
/// come from the same dd-obs monotonic clock the server stamps with.
fn drain(probes: Vec<(f64, ResponseHandle)>, flood: Vec<ResponseHandle>) -> f64 {
    let mut total_ms = 0.0;
    let n = probes.len().max(1);
    for (t0, h) in probes {
        if h.wait().is_ok() {
            total_ms += (dd_obs::monotonic_seconds() - t0) * 1e3;
        }
    }
    for h in flood {
        let _ = h.wait();
    }
    total_ms / n as f64
}

/// FIFO baseline: the untenanted server's single queue answers the flood
/// first, so probe latency includes draining the whole backlog.
fn threaded_fifo_probe_ms() -> f64 {
    let server = Server::start(registry(), config());
    let features = vec![0.1f32; WIDTH];
    let mut flood = Vec::new();
    for _ in 0..FLOOD {
        if let Ok(h) = server.submit("m-screen", features.clone()) {
            flood.push(h);
        }
    }
    let probes: Vec<_> = (0..PROBES)
        .filter_map(|_| {
            server
                .submit("m-clinic", features.clone())
                .ok()
                .map(|h| (dd_obs::monotonic_seconds(), h))
        })
        .collect();
    let ms = drain(probes, flood);
    server.shutdown();
    ms
}

/// Weighted-fair engine: strict priority answers the interactive probes
/// ahead of the already-queued batch flood.
fn threaded_fair_probe_ms() -> f64 {
    let directory = TenantDirectory::new(vec![
        TenantSpec::new("clinic", PriorityClass::Interactive, 1, 64, "m-clinic"),
        TenantSpec::new("screen", PriorityClass::Batch, 2, 2 * FLOOD, "m-screen"),
    ])
    .unwrap_or_else(|e| unreachable!("static directory invalid: {e}"));
    let scale = AutoscalePolicy::new(1, 2, 64, 8, 0.05);
    let server = Server::start_tenanted(registry(), config(), directory, scale);
    let features = vec![0.1f32; WIDTH];
    let mut flood = Vec::new();
    for _ in 0..FLOOD {
        if let Ok(h) = server.submit_as("screen", features.clone()) {
            flood.push(h);
        }
    }
    let probes: Vec<_> = (0..PROBES)
        .filter_map(|_| {
            server
                .submit_as("clinic", features.clone())
                .ok()
                .map(|h| (dd_obs::monotonic_seconds(), h))
        })
        .collect();
    let ms = drain(probes, flood);
    server.shutdown();
    ms
}

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);
    let table = e18_tenancy::run(scale, seed);
    experiments::emit(&table, "e18_tenancy");
    let rows = e18_tenancy::sweep(scale, seed);
    println!(
        "interactive protected through batch burst (fair <1% miss, fifo >10%): {}",
        e18_tenancy::interactive_protected(&rows)
    );
    println!(
        "batch soaks spare capacity (fair >= 90% of fifo throughput, clinic idle): {}",
        e18_tenancy::batch_soaks_spare_capacity(&rows)
    );
    println!(
        "autoscaler grows to ceiling under burst, stays in band: {}",
        e18_tenancy::autoscaler_tracks_bursts(&rows)
    );
    // Threaded knee confirmation (wall clock; printed, not persisted).
    let fifo_ms = threaded_fifo_probe_ms();
    let fair_ms = threaded_fair_probe_ms();
    println!(
        "threaded confirmation: interactive probe behind a {FLOOD}-request batch flood \
         answers in {fair_ms:.1} ms mean (weighted-fair) vs {fifo_ms:.1} ms (FIFO); \
         priority dispatch ahead of the flood: {}",
        fair_ms < fifo_ms
    );
}
