//! Regenerates every experiment table in one run.
//! Usage: `report-all [smoke|full] [seed]` — smoke takes ~a minute, full can
//! take tens of minutes (it retrains every workload).

use deepdriver_core::experiments::{
    self, e10_compression, e11_faults, e12_profile, e13_serving, e14_chaos, e15_telemetry,
    e18_tenancy, e1_precision, e2_scaling, e3_parallelism, e4_memory, e5_nvram, e6_search,
    e7_hybrid, e8_workloads, e9_mdsurrogate,
};
use deepdriver_core::report::Scale;

type ExperimentRun = Box<dyn Fn() -> deepdriver_core::Table>;

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);
    println!("deepdriver experiment suite — scale {scale:?}, seed {seed}\n");

    let experiments: Vec<(&str, ExperimentRun)> = vec![
        ("e1_precision", Box::new(move || e1_precision::run(scale, seed))),
        ("e2_scaling", Box::new(move || e2_scaling::run(scale, seed))),
        ("e3_parallelism", Box::new(move || e3_parallelism::run(scale, seed))),
        ("e4_memory", Box::new(move || e4_memory::run(scale, seed))),
        ("e5_nvram", Box::new(move || e5_nvram::run(scale, seed))),
        ("e6_search", Box::new(move || e6_search::run(scale, seed))),
        ("e7_hybrid", Box::new(move || e7_hybrid::run(scale, seed))),
        ("e8_workloads", Box::new(move || e8_workloads::run(scale, seed))),
        ("e9_mdsurrogate", Box::new(move || e9_mdsurrogate::run(scale, seed))),
        ("e10_compression", Box::new(move || e10_compression::run(scale, seed))),
        ("e11_faults", Box::new(move || e11_faults::run(scale, seed))),
        ("e13_serving", Box::new(move || e13_serving::run(scale, seed))),
        ("e14_chaos", Box::new(move || e14_chaos::run(scale, seed))),
        ("e15_telemetry", Box::new(move || e15_telemetry::run(scale, seed))),
        ("e18_tenancy", Box::new(move || e18_tenancy::run(scale, seed))),
        // Last on purpose: e12 resets the global dd-obs registry before its
        // instrumented run, so a DD_TRACE export captures e12's profile.
        ("e12_profile", Box::new(move || e12_profile::run(scale, seed))),
    ];
    let total = experiments.len();
    for (i, (slug, run)) in experiments.into_iter().enumerate() {
        eprintln!("[{}/{}] {slug}...", i + 1, total);
        // Single-clock policy: the span guard owns the wall clock; finish()
        // reports elapsed seconds even if e12 resets the registry mid-run.
        let span = dd_obs::span("report_experiment");
        let table = run();
        experiments::emit(&table, slug);
        eprintln!("[{}/{}] {slug} done in {:.1}s\n", i + 1, total, span.finish());
    }
}
