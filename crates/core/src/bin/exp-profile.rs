//! Regenerates the E12 measured-vs-modeled profile. Usage:
//! `exp-profile [smoke|full] [seed]`.
//!
//! The instrumented run's Chrome trace goes to `$DD_TRACE` when set
//! (likewise `$DD_METRICS` for the JSONL metrics stream), otherwise to
//! `results/e12_trace.json` — load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use deepdriver_core::experiments::{self, e12_profile};
use deepdriver_core::report::Scale;

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);

    let snapshot = match e12_profile::measure(scale, seed) {
        Ok(snap) => snap,
        Err(why) => {
            eprintln!("E12 instrumented run failed: {why}");
            std::process::exit(1);
        }
    };
    let modeled = e12_profile::modeled(scale);
    let table = e12_profile::table(&snapshot, &modeled);
    experiments::emit(&table, "e12_profile");

    println!("{}", dd_obs::summary_export(&snapshot));
    println!("modeled: {}", modeled.summary());
    println!("modeled: {}", modeled.timeline(72));

    if std::env::var_os("DD_TRACE").is_none() {
        let path = std::path::Path::new("results").join("e12_trace.json");
        match std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(&path, dd_obs::chrome_trace(&snapshot)))
        {
            Ok(()) => println!("[trace] {}", path.display()),
            Err(err) => eprintln!("[warn] could not write {}: {err}", path.display()),
        }
    }
}
