//! Regenerates the E11 fault-tolerance table. Usage: `exp-11-faults [smoke|full] [seed]`.

use deepdriver_core::experiments::{self, e11_faults};
use deepdriver_core::report::Scale;

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);
    let table = e11_faults::run(scale, seed);
    experiments::emit(&table, "e11_faults");
    let rows = e11_faults::sweep(scale, seed);
    println!(
        "empirical optimum tracks Young/Daly on every (nodes, tier): {}",
        e11_faults::empirical_tracks_young_daly(&rows)
    );
}
