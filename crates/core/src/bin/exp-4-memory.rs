//! Regenerates the E4 table. Usage: `exp-4-memory [smoke|full] [seed]`.

use deepdriver_core::experiments::{self, e4_memory};
use deepdriver_core::report::Scale;

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);
    let table = e4_memory::run(scale, seed);
    experiments::emit(&table, "e4_memory");
}
