//! Regenerates the E15 telemetry table and persists the first chaos
//! flight-recorder dump. Usage: `exp-15-telemetry [smoke|full|quick] [seed]`.

use deepdriver_core::experiments::{self, e15_telemetry};
use deepdriver_core::report::Scale;
use std::path::Path;

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);
    let table = e15_telemetry::run(scale, seed);
    experiments::emit(&table, "e15_telemetry");
    let rows = e15_telemetry::sweep(scale, seed);
    println!(
        "zero false positives at {}x-saturation steady state: {}",
        e15_telemetry::STEADY_LOAD_FACTOR,
        e15_telemetry::zero_false_positives(&rows)
    );
    println!(
        "chaos onset detected within {} fast-window lengths: {}",
        e15_telemetry::DETECTION_WINDOWS,
        e15_telemetry::detection_bounded(&rows)
    );
    // Persist the first retained flight-recorder dump of the first grid
    // point — the post-mortem artifact the check.sh gate validates as JSON.
    match rows.first().and_then(|r| r.chaos.1.dumps.first()) {
        Some(dump) => {
            let dir = Path::new("results");
            let path = dir.join("e15_flight_recorder.json");
            let write = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, dump.json.as_bytes()));
            match write {
                Ok(()) => {
                    println!("[json] {} ({} at {:.4}s)", path.display(), dump.reason, dump.at_s)
                }
                Err(err) => eprintln!("[warn] could not write {}: {err}", path.display()),
            }
        }
        None => eprintln!("[warn] chaos run produced no flight-recorder dump"),
    }
}
