//! Regenerates the E12 GEMM-roofline addendum: sustained GFLOP/s and
//! achieved fraction of the host-calibrated compute roof for the seed
//! kernel, the blocked scalar/SIMD kernels, and the fused int8 path.
//! Usage: `exp-gemm [smoke|full] [seed]`.
//!
//! The CSV under `results/e12_gemm.csv` is what the check.sh perf gate
//! parses (blocked f32 must beat the seed kernel at 512³); the timing
//! values themselves are machine-dependent and not byte-reproducible.

use deepdriver_core::experiments::{self, e12_gemm};
use deepdriver_core::report::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);

    let table = e12_gemm::run(scale, seed);
    experiments::emit(&table, "e12_gemm");
}
