//! Regenerates the E13 serving table. Usage: `exp-13-serving [smoke|full|quick] [seed]`.

use deepdriver_core::experiments::{self, e13_serving};
use deepdriver_core::report::Scale;

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);
    let table = e13_serving::run(scale, seed);
    experiments::emit(&table, "e13_serving");
    let rows = e13_serving::sweep(scale, seed);
    let service = e13_serving::service_model();
    println!(
        "batching knee (batch-64 > 2x batch-1 throughput at peak load): {}",
        e13_serving::batching_knee(&rows)
    );
    println!(
        "overload sheds with bounded served p99: {}",
        e13_serving::overload_is_bounded(&rows, &service)
    );
}
