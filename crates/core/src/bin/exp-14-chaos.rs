//! Regenerates the E14 chaos table. Usage: `exp-14-chaos [smoke|full|quick] [seed]`.

use deepdriver_core::experiments::{self, e14_chaos};
use deepdriver_core::report::Scale;

fn main() {
    let _obs = dd_obs::EnvSession::from_env();
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2017);
    let table = e14_chaos::run(scale, seed);
    experiments::emit(&table, "e14_chaos");
    let rows = e14_chaos::sweep(scale, seed);
    println!(
        "baseline cliff (no-retry availability < 90% at {} s MTBF): {}",
        e14_chaos::mid_mtbf_s(),
        e14_chaos::baseline_cliff(&rows)
    );
    println!(
        "resilient floor (availability >= 99%, p99 <= {:.0} ms envelope): {}",
        e14_chaos::p99_bound_s() * 1e3,
        e14_chaos::resilient_floor(&rows)
    );
}
