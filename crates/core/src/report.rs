//! Experiment output: aligned text tables plus CSV files.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// A simple rectangular results table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption (e.g. "E1: precision vs accuracy").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row must match the header width.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics when the width disagrees with the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (quoting cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write the CSV form to `dir/<slug>.csv`, creating the directory.
    pub fn write_csv(&self, dir: &Path, slug: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Format a float compactly for tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(0.001..1000.0).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format seconds at a sensible unit.
pub fn ftime(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} us", seconds * 1e6)
    }
}

/// Experiment scale: smoke for tests/CI, full for the paper-style run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-long configuration used in tests.
    Smoke,
    /// Minutes-long configuration used to generate EXPERIMENTS.md numbers.
    Full,
}

impl Scale {
    /// Parse from a CLI argument.
    pub fn from_arg(arg: Option<&str>) -> Scale {
        match arg {
            Some("full") => Scale::Full,
            _ => Scale::Smoke,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header + rule + 2 rows + title.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only".into()]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("q", &["x"]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrip_simple() {
        let mut t = Table::new("r", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.5), "0.5000");
        assert_eq!(fnum(42.0), "42.00");
        assert!(fnum(1e-9).contains('e'));
        assert!(fnum(12345.0).contains('e'));
    }

    #[test]
    fn ftime_units() {
        assert_eq!(ftime(2.0), "2.000 s");
        assert_eq!(ftime(0.002), "2.000 ms");
        assert_eq!(ftime(2e-6), "2.000 us");
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_arg(Some("full")), Scale::Full);
        assert_eq!(Scale::from_arg(Some("smoke")), Scale::Smoke);
        assert_eq!(Scale::from_arg(None), Scale::Smoke);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("dd-report-test");
        let mut t = Table::new("f", &["a"]);
        t.push_row(vec!["1".into()]);
        let path = t.write_csv(&dir, "demo").unwrap();
        assert!(path.exists());
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
