//! Virtual-time serving simulator — the deterministic twin of the server.
//!
//! The threaded [`crate::server::Server`] is nondeterministic by nature
//! (thread interleavings, wall-clock jitter), so the E13 experiment runs
//! this discrete-event simulator instead: same admission policy, same
//! [`crate::batcher::plan`]-shaped batching rules, same shed-on-expiry,
//! but on simulated time with an analytic [`ServiceModel`] pricing each
//! batch. Everything is pure `f64` arithmetic over a fixed arrival vector,
//! so a given configuration always yields byte-identical results — the
//! determinism contract every experiment in this repo obeys.
//!
//! Latency distributions are accumulated in dd-obs [`Histogram`]s (the
//! same log-bucketed quantile machinery the live server's metrics use) and
//! mirrored into the global registry when recording is enabled, so a
//! `DD_METRICS` run of `exp-13-serving` exports the usual
//! `serve_queue_wait_seconds` / `serve_service_seconds` / `serve_e2e_seconds`
//! series.

use crate::batcher::BatchPolicy;
use dd_obs::{HistSummary, Histogram};
use std::collections::VecDeque;

/// Analytic cost of one batched inference: `base_s + per_row_s · batch`.
///
/// The affine shape is what makes batching pay: the fixed `base_s`
/// (dispatch overhead, cache warmup, kernel launch in spirit) amortizes
/// over the rows of a batch, while `per_row_s` is irreducible arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed per-batch overhead, seconds.
    pub base_s: f64,
    /// Marginal cost per row, seconds.
    pub per_row_s: f64,
}

impl ServiceModel {
    /// New model; knobs must be finite and non-negative with a positive sum.
    pub fn new(base_s: f64, per_row_s: f64) -> Self {
        assert!(base_s.is_finite() && base_s >= 0.0, "base_s must be >= 0");
        assert!(per_row_s.is_finite() && per_row_s >= 0.0, "per_row_s must be >= 0");
        assert!(base_s + per_row_s > 0.0, "service model must cost something");
        ServiceModel { base_s, per_row_s }
    }

    /// Derive the per-row cost from a model's forward FLOPs on a device
    /// sustaining `device_flops_per_s`.
    pub fn from_flops(flops_per_row: u64, device_flops_per_s: f64, base_s: f64) -> Self {
        assert!(device_flops_per_s > 0.0, "device rate must be positive");
        ServiceModel::new(base_s, flops_per_row as f64 / device_flops_per_s)
    }

    /// Service time of one batch of `batch` rows.
    pub fn seconds(&self, batch: usize) -> f64 {
        self.base_s + self.per_row_s * batch as f64
    }

    /// Sustainable throughput (rows/s) when every batch is exactly `batch`
    /// rows across `workers` workers — the knee the E13 sweep measures.
    pub fn saturation_rps(&self, batch: usize, workers: usize) -> f64 {
        workers as f64 * batch as f64 / self.seconds(batch)
    }
}

/// One simulated serving configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Batching policy (shared vocabulary with the live server).
    pub policy: BatchPolicy,
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Parallel workers.
    pub workers: usize,
    /// Batch cost model.
    pub service: ServiceModel,
    /// Sorted arrival times in seconds (e.g. from
    /// [`crate::loadgen::poisson_arrivals`]).
    pub arrivals: Vec<f64>,
}

/// Everything one simulation run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Requests offered (length of the arrival vector).
    pub offered: usize,
    /// Requests admitted past the bounded queue.
    pub admitted: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Admitted requests shed for exceeding their deadline.
    pub shed: usize,
    /// Requests answered with a prediction.
    pub completed: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Mean dispatched batch size (0 when nothing dispatched).
    pub mean_batch: f64,
    /// Seconds from the first arrival to the last completion.
    pub makespan_s: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Queue-wait distribution (admission → dispatch) of completed requests.
    pub queue_wait: HistSummary,
    /// Per-batch service-time distribution.
    pub service: HistSummary,
    /// End-to-end latency distribution (admission → response).
    pub e2e: HistSummary,
}

/// Run the discrete-event simulation.
///
/// Events are arrivals and batch dispatches, processed in time order
/// (arrivals win ties so a dispatch always sees the fullest queue it
/// legally can, mirroring the live batcher's top-up-then-plan loop).
pub fn simulate(cfg: &SimConfig) -> SimReport {
    assert!(cfg.queue_capacity >= 1, "queue_capacity must be >= 1");
    assert!(cfg.workers >= 1, "workers must be >= 1");
    assert!(cfg.arrivals.windows(2).all(|w| w[1] >= w[0]), "arrivals must be sorted");

    let policy = cfg.policy;
    let mut pending: VecDeque<f64> = VecDeque::new();
    let mut free = vec![0.0f64; cfg.workers];
    let mut next = 0usize;
    let (mut rejected, mut shed, mut completed, mut batches) = (0usize, 0usize, 0usize, 0usize);
    let mut queue_wait = Histogram::new();
    let mut service = Histogram::new();
    let mut e2e = Histogram::new();
    let mut last_done = 0.0f64;
    let mut now = 0.0f64;

    loop {
        let next_arrival = cfg.arrivals.get(next).copied();
        let dispatch_at = pending.front().map(|&oldest| {
            // A full batch (or a drained arrival stream) dispatches as soon
            // as a worker frees up; a partial batch waits out max_wait.
            let ready = if pending.len() >= policy.max_batch || next_arrival.is_none() {
                now
            } else {
                oldest + policy.max_wait_s
            };
            let worker = free.iter().copied().fold(f64::INFINITY, f64::min);
            ready.max(worker).max(now)
        });

        // Arrivals win ties so a dispatch always sees the fullest legal queue.
        let take_arrival = match (next_arrival, dispatch_at) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(ta), Some(td)) => ta <= td,
        };
        if take_arrival {
            let ta = next_arrival.unwrap_or(now);
            now = ta;
            next += 1;
            if pending.len() >= cfg.queue_capacity {
                rejected += 1;
            } else {
                pending.push_back(ta);
            }
        } else {
            let td = dispatch_at.unwrap_or(now);
            {
                now = td;
                // Shed from the front: FIFO plus a uniform deadline means
                // the oldest request expires first.
                while let Some(&enq) = pending.front() {
                    if now - enq <= policy.deadline_s {
                        break;
                    }
                    pending.pop_front();
                    shed += 1;
                    dd_obs::counter_add("serve_shed_total", 1);
                }
                // Shedding may have emptied the queue or reset the oldest
                // timestamp; re-plan on the next iteration unless a batch
                // is genuinely due now.
                let due = match pending.front() {
                    None => false,
                    Some(&oldest) => {
                        pending.len() >= policy.max_batch
                            || next_arrival.is_none()
                            || now >= oldest + policy.max_wait_s
                    }
                };
                if !due {
                    continue;
                }
                let n = pending.len().min(policy.max_batch);
                let svc = cfg.service.seconds(n);
                let done = now + svc;
                // Assign to the earliest-free worker (deterministic:
                // lowest index wins ties).
                let mut wi = 0usize;
                for (k, &f) in free.iter().enumerate() {
                    if f < free[wi] {
                        wi = k;
                    }
                }
                free[wi] = done;
                for _ in 0..n {
                    if let Some(enq) = pending.pop_front() {
                        let wait = now - enq;
                        queue_wait.record(wait);
                        e2e.record(done - enq);
                        dd_obs::hist_record("serve_queue_wait_seconds", wait);
                        dd_obs::hist_record("serve_e2e_seconds", done - enq);
                    }
                }
                service.record(svc);
                dd_obs::hist_record("serve_service_seconds", svc);
                dd_obs::hist_record("serve_batch_size", n as f64);
                dd_obs::counter_add("serve_batches_total", 1);
                dd_obs::counter_add("serve_rows_total", n as u64);
                batches += 1;
                completed += n;
                last_done = last_done.max(done);
            }
        }
    }

    let offered = cfg.arrivals.len();
    let admitted = offered - rejected;
    let makespan_s = if completed > 0 { last_done } else { now };
    let throughput_rps = if makespan_s > 0.0 { completed as f64 / makespan_s } else { 0.0 };
    let mean_batch = if batches > 0 { completed as f64 / batches as f64 } else { 0.0 };
    SimReport {
        offered,
        admitted,
        rejected,
        shed,
        completed,
        batches,
        mean_batch,
        makespan_s,
        throughput_rps,
        queue_wait: queue_wait.summary(),
        service: service.summary(),
        e2e: e2e.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{poisson_arrivals, LoadConfig};

    fn arrivals(rate: f64, n: usize, seed: u64) -> Vec<f64> {
        poisson_arrivals(&LoadConfig { rate_per_s: rate, requests: n, seed })
    }

    fn base_cfg(arrivals: Vec<f64>) -> SimConfig {
        SimConfig {
            policy: BatchPolicy::new(16, 0.002, 0.25),
            queue_capacity: 128,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals,
        }
    }

    #[test]
    fn deterministic_runs() {
        let cfg = base_cfg(arrivals(2000.0, 2000, 9));
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a, b, "same config must give identical reports");
    }

    #[test]
    fn light_load_completes_everything() {
        let cfg = base_cfg(arrivals(500.0, 1000, 1));
        let r = simulate(&cfg);
        assert_eq!(r.completed, 1000);
        assert_eq!(r.rejected + r.shed, 0);
        assert_eq!(r.admitted, 1000);
        assert!(r.throughput_rps > 0.0);
        assert_eq!(r.queue_wait.count, 1000);
        assert_eq!(r.e2e.count, 1000);
    }

    #[test]
    fn larger_batches_raise_saturated_throughput() {
        // Offer far more than batch-1 capacity: ~1/(base+per_row) ≈ 4.7k rps
        // per worker. Batching amortizes base_s and must push throughput up.
        let arr = arrivals(40_000.0, 8000, 2);
        let mut small = base_cfg(arr.clone());
        small.policy = BatchPolicy::new(1, 0.0, 0.05);
        let mut big = base_cfg(arr);
        big.policy = BatchPolicy::new(64, 0.002, 0.05);
        let rs = simulate(&small);
        let rb = simulate(&big);
        assert!(
            rb.throughput_rps > 2.0 * rs.throughput_rps,
            "batch-64 {:.0} rps should dwarf batch-1 {:.0} rps",
            rb.throughput_rps,
            rs.throughput_rps
        );
        assert!(rb.mean_batch > 8.0, "saturated batcher should coalesce, got {}", rb.mean_batch);
    }

    #[test]
    fn overload_rejects_and_bounds_latency() {
        // Offered load ~4x capacity: admission + deadlines must engage, and
        // the p99 of what *is* served stays bounded by queue+deadline math
        // instead of growing with the backlog.
        let cfg = SimConfig {
            policy: BatchPolicy::new(16, 0.002, 0.05),
            queue_capacity: 64,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals: arrivals(200_000.0, 20_000, 3),
        };
        let r = simulate(&cfg);
        assert!(r.rejected > 0, "bounded queue must reject under 4x overload");
        assert_eq!(r.offered, r.admitted + r.rejected);
        assert_eq!(r.admitted, r.completed + r.shed);
        // Served latency is bounded: deadline + one max service time, with
        // histogram quantile slack (~7.5% relative error).
        let bound = 1.2 * (cfg.policy.deadline_s + cfg.service.seconds(cfg.policy.max_batch));
        assert!(r.e2e.p99 < bound, "p99 {} exceeds bound {}", r.e2e.p99, bound);
    }

    #[test]
    fn tight_deadline_sheds_instead_of_serving_late() {
        // Deadline far below the full-queue drain time: the front-shed path
        // must engage, and nothing is ever dispatched past its deadline.
        let cfg = SimConfig {
            policy: BatchPolicy::new(1, 0.0, 0.005),
            queue_capacity: 256,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals: arrivals(40_000.0, 5000, 6),
        };
        let r = simulate(&cfg);
        assert!(r.shed > 0, "tight deadline must shed queued requests");
        assert_eq!(r.admitted, r.completed + r.shed);
        assert!(
            r.queue_wait.max <= cfg.policy.deadline_s,
            "served request waited {} past the {}s deadline",
            r.queue_wait.max,
            cfg.policy.deadline_s
        );
        assert!(r.e2e.p99 < 1.2 * (cfg.policy.deadline_s + cfg.service.seconds(1)));
    }

    #[test]
    fn conservation_always_holds() {
        for seed in 0..5u64 {
            let cfg = base_cfg(arrivals(6000.0, 3000, seed));
            let r = simulate(&cfg);
            assert_eq!(r.offered, r.admitted + r.rejected, "seed {seed}");
            assert_eq!(r.admitted, r.completed + r.shed, "seed {seed}");
            assert_eq!(r.queue_wait.count as usize, r.completed, "seed {seed}");
        }
    }

    #[test]
    fn zero_wait_policy_serves_singletons_at_light_load() {
        let mut cfg = base_cfg(arrivals(100.0, 200, 4));
        cfg.policy = BatchPolicy::new(64, 0.0, 0.25);
        let r = simulate(&cfg);
        // At 100 rps with ~0.2 ms service, requests rarely overlap: almost
        // every batch is a singleton dispatched immediately.
        assert!(r.mean_batch < 1.5, "mean batch {}", r.mean_batch);
        assert_eq!(r.completed, 200);
    }
}
