//! Virtual-time serving simulator — the deterministic twin of the server.
//!
//! The threaded [`crate::server::Server`] is nondeterministic by nature
//! (thread interleavings, wall-clock jitter), so the E13 experiment runs
//! this discrete-event simulator instead: same admission policy, same
//! [`crate::batcher::plan`]-shaped batching rules, same shed-on-expiry,
//! but on simulated time with an analytic [`ServiceModel`] pricing each
//! batch. Everything is pure `f64` arithmetic over a fixed arrival vector,
//! so a given configuration always yields byte-identical results — the
//! determinism contract every experiment in this repo obeys.
//!
//! Latency distributions are accumulated in dd-obs [`Histogram`]s (the
//! same log-bucketed quantile machinery the live server's metrics use) and
//! mirrored into the global registry when recording is enabled, so a
//! `DD_METRICS` run of `exp-13-serving` exports the usual
//! `serve_queue_wait_seconds` / `serve_service_seconds` / `serve_e2e_seconds`
//! series.

use crate::batcher::{expired, plan, BatchDecision, BatchPolicy};
use crate::replica::{FaultPlan, FaultSpec, Injected, ReplicaSetState, VersionGuard};
use crate::resil::{Action, AttemptOutcome, ResilPolicy, ResilientCall};
use crate::sched::{
    plan_fair, AutoscalePolicy, Autoscaler, DrrScheduler, QueueView, ScaleDecision, SchedDecision,
};
use crate::telemetry::{ServeTelemetry, TelemetryConfig, TelemetryReport};
use crate::tenant::{PriorityClass, TenantDirectory, TenantId, TenantSpec};
use dd_obs::{HistSummary, Histogram};
use dd_tensor::Rng64;
use std::collections::VecDeque;

/// Analytic cost of one batched inference: `base_s + per_row_s · batch`.
///
/// The affine shape is what makes batching pay: the fixed `base_s`
/// (dispatch overhead, cache warmup, kernel launch in spirit) amortizes
/// over the rows of a batch, while `per_row_s` is irreducible arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed per-batch overhead, seconds.
    pub base_s: f64,
    /// Marginal cost per row, seconds.
    pub per_row_s: f64,
}

impl ServiceModel {
    /// New model; knobs must be finite and non-negative with a positive sum.
    pub fn new(base_s: f64, per_row_s: f64) -> Self {
        assert!(base_s.is_finite() && base_s >= 0.0, "base_s must be >= 0");
        assert!(per_row_s.is_finite() && per_row_s >= 0.0, "per_row_s must be >= 0");
        assert!(base_s + per_row_s > 0.0, "service model must cost something");
        ServiceModel { base_s, per_row_s }
    }

    /// Derive the per-row cost from a model's forward FLOPs on a device
    /// sustaining `device_flops_per_s`.
    pub fn from_flops(flops_per_row: u64, device_flops_per_s: f64, base_s: f64) -> Self {
        assert!(device_flops_per_s > 0.0, "device rate must be positive");
        ServiceModel::new(base_s, flops_per_row as f64 / device_flops_per_s)
    }

    /// Service time of one batch of `batch` rows.
    pub fn seconds(&self, batch: usize) -> f64 {
        self.base_s + self.per_row_s * batch as f64
    }

    /// Sustainable throughput (rows/s) when every batch is exactly `batch`
    /// rows across `workers` workers — the knee the E13 sweep measures.
    pub fn saturation_rps(&self, batch: usize, workers: usize) -> f64 {
        workers as f64 * batch as f64 / self.seconds(batch)
    }
}

/// One simulated serving configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Batching policy (shared vocabulary with the live server).
    pub policy: BatchPolicy,
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Parallel workers.
    pub workers: usize,
    /// Batch cost model.
    pub service: ServiceModel,
    /// Sorted arrival times in seconds (e.g. from
    /// [`crate::loadgen::poisson_arrivals`]).
    pub arrivals: Vec<f64>,
}

/// Everything one simulation run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Requests offered (length of the arrival vector).
    pub offered: usize,
    /// Requests admitted past the bounded queue.
    pub admitted: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Admitted requests shed for exceeding their deadline.
    pub shed: usize,
    /// Requests answered with a prediction.
    pub completed: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Mean dispatched batch size (0 when nothing dispatched).
    pub mean_batch: f64,
    /// Seconds from the first arrival to the last completion.
    pub makespan_s: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Queue-wait distribution (admission → dispatch) of completed requests.
    pub queue_wait: HistSummary,
    /// Per-batch service-time distribution.
    pub service: HistSummary,
    /// End-to-end latency distribution (admission → response).
    pub e2e: HistSummary,
}

/// Run the discrete-event simulation.
///
/// Events are arrivals and batch dispatches, processed in time order
/// (arrivals win ties so a dispatch always sees the fullest queue it
/// legally can, mirroring the live batcher's top-up-then-plan loop).
pub fn simulate(cfg: &SimConfig) -> SimReport {
    assert!(cfg.queue_capacity >= 1, "queue_capacity must be >= 1");
    assert!(cfg.workers >= 1, "workers must be >= 1");
    assert!(cfg.arrivals.windows(2).all(|w| w[1] >= w[0]), "arrivals must be sorted");

    let policy = cfg.policy;
    let mut pending: VecDeque<f64> = VecDeque::new();
    let mut free = vec![0.0f64; cfg.workers];
    let mut next = 0usize;
    let (mut rejected, mut shed, mut completed, mut batches) = (0usize, 0usize, 0usize, 0usize);
    let mut queue_wait = Histogram::new();
    let mut service = Histogram::new();
    let mut e2e = Histogram::new();
    let mut last_done = 0.0f64;
    let mut now = 0.0f64;

    loop {
        let next_arrival = cfg.arrivals.get(next).copied();
        let dispatch_at = pending.front().map(|&oldest| {
            // A full batch (or a drained arrival stream) dispatches as soon
            // as a worker frees up; a partial batch waits out max_wait.
            let ready = if pending.len() >= policy.max_batch || next_arrival.is_none() {
                now
            } else {
                oldest + policy.max_wait_s
            };
            let worker = free.iter().copied().fold(f64::INFINITY, f64::min);
            ready.max(worker).max(now)
        });

        // Arrivals win ties so a dispatch always sees the fullest legal queue.
        let take_arrival = match (next_arrival, dispatch_at) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(ta), Some(td)) => ta <= td,
        };
        if take_arrival {
            let ta = next_arrival.unwrap_or(now);
            now = ta;
            next += 1;
            if pending.len() >= cfg.queue_capacity {
                rejected += 1;
            } else {
                pending.push_back(ta);
            }
        } else {
            let td = dispatch_at.unwrap_or(now);
            {
                now = td;
                // Shed from the front: FIFO plus a uniform deadline means
                // the oldest request expires first.
                while let Some(&enq) = pending.front() {
                    if now - enq <= policy.deadline_s {
                        break;
                    }
                    pending.pop_front();
                    shed += 1;
                    dd_obs::counter_add("serve_shed_total", 1);
                }
                // Shedding may have emptied the queue or reset the oldest
                // timestamp; re-plan on the next iteration unless a batch
                // is genuinely due now.
                let due = match pending.front() {
                    None => false,
                    Some(&oldest) => {
                        pending.len() >= policy.max_batch
                            || next_arrival.is_none()
                            || now >= oldest + policy.max_wait_s
                    }
                };
                if !due {
                    continue;
                }
                let n = pending.len().min(policy.max_batch);
                let svc = cfg.service.seconds(n);
                let done = now + svc;
                // Assign to the earliest-free worker (deterministic:
                // lowest index wins ties).
                let mut wi = 0usize;
                for (k, &f) in free.iter().enumerate() {
                    if f < free[wi] {
                        wi = k;
                    }
                }
                free[wi] = done;
                for _ in 0..n {
                    if let Some(enq) = pending.pop_front() {
                        let wait = now - enq;
                        queue_wait.record(wait);
                        e2e.record(done - enq);
                        dd_obs::hist_record("serve_queue_wait_seconds", wait);
                        dd_obs::hist_record("serve_e2e_seconds", done - enq);
                    }
                }
                service.record(svc);
                dd_obs::hist_record("serve_service_seconds", svc);
                dd_obs::hist_record("serve_batch_size", n as f64);
                dd_obs::counter_add("serve_batches_total", 1);
                dd_obs::counter_add("serve_rows_total", n as u64);
                batches += 1;
                completed += n;
                last_done = last_done.max(done);
            }
        }
    }

    let offered = cfg.arrivals.len();
    let admitted = offered - rejected;
    let makespan_s = if completed > 0 { last_done } else { now };
    let throughput_rps = if makespan_s > 0.0 { completed as f64 / makespan_s } else { 0.0 };
    let mean_batch = if batches > 0 { completed as f64 / batches as f64 } else { 0.0 };
    SimReport {
        offered,
        admitted,
        rejected,
        shed,
        completed,
        batches,
        mean_batch,
        makespan_s,
        throughput_rps,
        queue_wait: queue_wait.summary(),
        service: service.summary(),
        e2e: e2e.summary(),
    }
}

/// One simulated chaos configuration: the plain serving knobs plus a
/// replica pool, a resilience policy, and a deterministic fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Batching policy (shared vocabulary with the live server).
    pub policy: BatchPolicy,
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Replica pool size (each replica serves one batch at a time).
    pub replicas: usize,
    /// Batch cost model.
    pub service: ServiceModel,
    /// Sorted arrival times in seconds.
    pub arrivals: Vec<f64>,
    /// Retry/hedge/breaker policy driving [`ResilientCall`].
    pub resil: ResilPolicy,
    /// Fault-injection knobs (stragglers, corrupt outputs, count-based
    /// crashes, respawn window, seed).
    pub faults: FaultSpec,
    /// Per-replica crash MTBF in seconds; `0` disables scheduled crashes.
    /// Arrivals are drawn from [`dd_hpcsim::FailureModel`] — the same
    /// exponential failure machinery the E11 training sweep uses.
    pub crash_mtbf_s: f64,
    /// Whether an older registry snapshot exists to fall back to when the
    /// current version's breaker opens (degraded mode).
    pub fallback: bool,
}

/// Everything one chaos run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Requests offered.
    pub offered: usize,
    /// Requests admitted past the bounded queue.
    pub admitted: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Admitted requests shed for exceeding their deadline.
    pub shed: usize,
    /// Requests answered with a valid prediction.
    pub completed: usize,
    /// Admitted, non-shed requests answered with an error.
    pub failed: usize,
    /// Completed requests served by the fallback snapshot (degraded mode).
    pub degraded: usize,
    /// Batches dispatched (including ones that ultimately failed).
    pub batches: usize,
    /// Retry attempts consumed across all requests.
    pub retries: u64,
    /// Hedged re-dispatches across all requests.
    pub hedges: u64,
    /// Replica evictions (health-check path).
    pub evictions: u64,
    /// Replica respawns back into rotation.
    pub respawns: u64,
    /// Per-replica breaker trips.
    pub breaker_opens: u64,
    /// Non-shed success fraction: `completed / (completed + failed)`,
    /// `1.0` when nothing was dispatched.
    pub availability: f64,
    /// Seconds from the first arrival to the last completion.
    pub makespan_s: f64,
    /// End-to-end latency distribution of completed requests.
    pub e2e: HistSummary,
}

/// Current-version id the chaos sim serves (the guard's key).
const CHAOS_VERSION: u64 = 1;
/// Version id of the degraded-mode fallback snapshot.
const CHAOS_FALLBACK_VERSION: u64 = 0;

/// Run the discrete-event chaos simulation.
///
/// Identical event structure to [`simulate`] — arrivals win ties,
/// front-shed on deadline, earliest-free replica — but each dispatched
/// batch is driven through the shared [`ResilientCall`] decision core
/// against a seeded [`FaultPlan`]: crashes arrive on an MTBF schedule (or
/// per-dispatch), stragglers get hedged, corrupt outputs burn the retry
/// budget and feed the per-version [`VersionGuard`], and an open guard
/// routes batches to the fallback snapshot when one exists. Attempts
/// resolved on a replica that is mid-batch queue behind it; an abandoned
/// (hedged) straggler keeps its replica busy for the full straggle — wasted
/// capacity is part of what hedging costs. Everything is pure `f64`
/// arithmetic over seeded draws: a given configuration always yields a
/// byte-identical report.
pub fn simulate_chaos(cfg: &ChaosConfig) -> ChaosReport {
    simulate_chaos_inner(cfg, 0.0, None).0
}

/// Run the chaos simulation with streaming telemetry attached and the
/// scheduled-crash plan shifted to start at `chaos_onset_s`.
///
/// The [`ServeTelemetry`] bundle observes every simulated serving event at
/// its virtual time — enqueues, sheds, completions, failures, per-attempt
/// dispatch outcomes, evictions and breaker trips — so the returned
/// [`TelemetryReport`] is the deterministic twin of what the threaded
/// server's bundle would emit for the same event stream. Shifting the
/// crash schedule (rather than the arrival vector) lets the E15 experiment
/// build a clean steady-state segment followed by chaos at a known virtual
/// time, which is what makes "detection latency" a measurable quantity.
///
/// With `chaos_onset_s == 0.0` the serving behavior (and the
/// [`ChaosReport`]) is byte-identical to [`simulate_chaos`]: telemetry
/// only observes, it never feeds back into a decision.
pub fn simulate_chaos_telemetry(
    cfg: &ChaosConfig,
    tcfg: &TelemetryConfig,
    chaos_onset_s: f64,
) -> (ChaosReport, TelemetryReport) {
    assert!(chaos_onset_s >= 0.0 && chaos_onset_s.is_finite(), "bad chaos_onset_s");
    let (report, telemetry) = simulate_chaos_inner(cfg, chaos_onset_s, Some(tcfg));
    let telemetry =
        telemetry.unwrap_or_else(|| ServeTelemetry::new(cfg.replicas, tcfg.clone()).report(0.0));
    (report, telemetry)
}

fn simulate_chaos_inner(
    cfg: &ChaosConfig,
    chaos_onset_s: f64,
    tcfg: Option<&TelemetryConfig>,
) -> (ChaosReport, Option<TelemetryReport>) {
    assert!(cfg.queue_capacity >= 1, "queue_capacity must be >= 1");
    assert!(cfg.replicas >= 1, "replicas must be >= 1");
    assert!(cfg.crash_mtbf_s >= 0.0 && cfg.crash_mtbf_s.is_finite(), "bad crash_mtbf_s");
    assert!(cfg.arrivals.windows(2).all(|w| w[1] >= w[0]), "arrivals must be sorted");

    let policy = cfg.policy;
    // Crash schedule horizon: generously past the last arrival so a run
    // that drags under retries never outlives its fault plan.
    let horizon = cfg.arrivals.last().copied().unwrap_or(0.0) * 2.0 + 60.0;
    let schedule: Vec<Vec<f64>> = if cfg.crash_mtbf_s > 0.0 {
        let fm = dd_hpcsim::FailureModel::new(cfg.crash_mtbf_s);
        (0..cfg.replicas)
            .map(|r| {
                // Shift the whole plan so the first scheduled crash can
                // only land at or after the chaos onset; the pre-onset
                // segment stays fault-free by construction.
                fm.arrivals(horizon, cfg.faults.seed.wrapping_add(1000 + r as u64))
                    .into_iter()
                    .map(|c| c + chaos_onset_s)
                    .collect()
            })
            .collect()
    } else {
        vec![Vec::new(); cfg.replicas]
    };
    let mut faults = FaultPlan::with_crash_schedule(cfg.faults, schedule);
    let mut set = ReplicaSetState::new(cfg.replicas, cfg.resil.breaker, cfg.faults.respawn_s);
    let mut guard = VersionGuard::new(cfg.resil.breaker);
    let mut rng = Rng64::new(cfg.faults.seed).split(u64::from(u32::MAX));
    // Auto hedging resolves against the worst normal batch service time —
    // the analytic stand-in for the live server's observed p99.
    let resil = cfg
        .resil
        .with_hedge(cfg.resil.hedge.resolved(Some(cfg.service.seconds(policy.max_batch)), 1e-4));

    // Requests are tagged with their arrival index so telemetry exemplars
    // and tail-sampled traces carry a stable request id.
    let mut pending: VecDeque<(u64, f64)> = VecDeque::new();
    let mut tel = tcfg.map(|t| ServeTelemetry::new(cfg.replicas, t.clone()));
    let mut free = vec![0.0f64; cfg.replicas];
    let mut next = 0usize;
    let (mut rejected, mut shed, mut completed, mut batches) = (0usize, 0usize, 0usize, 0usize);
    let (mut failed, mut degraded_total) = (0usize, 0usize);
    let (mut retries, mut hedges) = (0u64, 0u64);
    let mut e2e = Histogram::new();
    let mut last_done = 0.0f64;
    let mut now = 0.0f64;

    loop {
        let next_arrival = cfg.arrivals.get(next).copied();
        let dispatch_at = pending.front().map(|&(_, oldest)| {
            let ready = if pending.len() >= policy.max_batch || next_arrival.is_none() {
                now
            } else {
                oldest + policy.max_wait_s
            };
            // Earliest point some replica is both free and believed up.
            let replica = (0..cfg.replicas)
                .map(|r| free[r].max(set.next_up_s(r, now)))
                .fold(f64::INFINITY, f64::min);
            ready.max(replica).max(now)
        });

        let take_arrival = match (next_arrival, dispatch_at) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(ta), Some(td)) => ta <= td,
        };
        if take_arrival {
            let ta = next_arrival.unwrap_or(now);
            now = ta;
            let id = next as u64;
            next += 1;
            if pending.len() >= cfg.queue_capacity {
                rejected += 1;
                if let Some(t) = tel.as_mut() {
                    t.on_reject(ta);
                }
            } else {
                pending.push_back((id, ta));
                if let Some(t) = tel.as_mut() {
                    t.on_enqueue(ta, pending.len());
                }
            }
            continue;
        }
        now = dispatch_at.unwrap_or(now);
        while let Some(&(id, enq)) = pending.front() {
            if now - enq <= policy.deadline_s {
                break;
            }
            pending.pop_front();
            shed += 1;
            if let Some(t) = tel.as_mut() {
                t.on_shed(now, id, enq);
            }
        }
        let due = match pending.front() {
            None => false,
            Some(&(_, oldest)) => {
                pending.len() >= policy.max_batch
                    || next_arrival.is_none()
                    || now >= oldest + policy.max_wait_s
            }
        };
        if !due {
            continue;
        }
        let n = pending.len().min(policy.max_batch);
        batches += 1;

        // Version guard: current snapshot, else degraded fallback, else
        // fail the batch fast.
        let (version, degraded) = if guard.allow(CHAOS_VERSION, now) {
            (CHAOS_VERSION, false)
        } else if cfg.fallback && guard.allow(CHAOS_FALLBACK_VERSION, now) {
            (CHAOS_FALLBACK_VERSION, true)
        } else {
            for _ in 0..n {
                if let Some((id, enq)) = pending.pop_front() {
                    if let Some(t) = tel.as_mut() {
                        t.on_failure(now, id, enq);
                    }
                }
            }
            failed += n;
            continue;
        };

        let svc = cfg.service.seconds(n);
        let mut call = ResilientCall::new(resil);
        let mut t = now;
        let success = loop {
            match call.next(&mut set, t) {
                Action::Wait { seconds } => t += seconds,
                Action::Try { replica, wait_cap_s } => {
                    let start = t.max(free[replica]);
                    let mut inj = faults.inject(replica, start, svc);
                    if degraded && inj == Injected::Corrupt {
                        // Corruption is version-caused; the fallback
                        // snapshot does not exhibit it.
                        inj = Injected::None;
                    }
                    let (outcome, busy) = match inj {
                        Injected::None => {
                            (AttemptOutcome::Done { elapsed_s: (start - t) + svc }, svc)
                        }
                        Injected::Crash { after_s } => {
                            (AttemptOutcome::Crashed { elapsed_s: (start - t) + after_s }, after_s)
                        }
                        Injected::Straggle { delay_s } => {
                            let total = svc + delay_s;
                            if total > wait_cap_s {
                                (
                                    AttemptOutcome::TimedOut {
                                        elapsed_s: (start - t) + wait_cap_s,
                                    },
                                    total,
                                )
                            } else {
                                (AttemptOutcome::Done { elapsed_s: (start - t) + total }, total)
                            }
                        }
                        Injected::Corrupt => {
                            (AttemptOutcome::Corrupt { elapsed_s: (start - t) + svc }, svc)
                        }
                    };
                    free[replica] = start + busy;
                    set.note_busy_until(replica, free[replica]);
                    t += outcome.elapsed_s();
                    let before = (set.evictions(), set.breaker_opens());
                    call.observe(&mut set, replica, outcome, t, &mut rng);
                    if let Some(tm) = tel.as_mut() {
                        tm.on_dispatch(start, replica, n);
                        tm.on_outcome(t, replica, &outcome);
                        if set.evictions() > before.0 {
                            tm.on_eviction(t, replica);
                        }
                        if set.breaker_opens() > before.1 {
                            tm.on_breaker_open(t, replica);
                        }
                    }
                    match outcome {
                        AttemptOutcome::Done { .. } => guard.record_success(version, t),
                        AttemptOutcome::Corrupt { .. } => guard.record_failure(version, t),
                        _ => {}
                    }
                }
                Action::Finish { .. } => break true,
                Action::GiveUp { .. } => break false,
            }
        };
        retries += u64::from(call.retries());
        hedges += u64::from(call.hedges());
        if success {
            completed += n;
            if degraded {
                degraded_total += n;
            }
            for _ in 0..n {
                if let Some((id, enq)) = pending.pop_front() {
                    e2e.record(t - enq);
                    dd_obs::hist_record("serve_e2e_seconds", t - enq);
                    if let Some(tm) = tel.as_mut() {
                        // Queue wait ends at the dispatch decision (`now`);
                        // the request completes at `t`.
                        tm.on_complete(t, id, enq, now - enq);
                    }
                }
            }
            last_done = last_done.max(t);
        } else {
            for _ in 0..n {
                if let Some((id, enq)) = pending.pop_front() {
                    if let Some(tm) = tel.as_mut() {
                        tm.on_failure(t, id, enq);
                    }
                }
            }
            failed += n;
        }
    }

    let offered = cfg.arrivals.len();
    let admitted = offered - rejected;
    let served = completed + failed;
    let availability = if served > 0 { completed as f64 / served as f64 } else { 1.0 };
    dd_obs::counter_add("serve_retries_total", retries);
    dd_obs::counter_add("serve_hedges_total", hedges);
    dd_obs::counter_add("serve_replica_evictions_total", set.evictions());
    dd_obs::counter_add("serve_replica_respawns_total", set.respawns());
    dd_obs::counter_add("serve_breaker_opens_total", set.breaker_opens());
    dd_obs::counter_add("serve_shed_total", shed as u64);
    dd_obs::gauge_set("serve_breaker_open", set.open_breakers(now) as f64);
    let makespan_s = if completed > 0 { last_done } else { now };
    let tel_report = tel.map(|t| t.report(makespan_s.max(now)));
    let report = ChaosReport {
        offered,
        admitted,
        rejected,
        shed,
        completed,
        failed,
        degraded: degraded_total,
        batches,
        retries,
        hedges,
        evictions: set.evictions(),
        respawns: set.respawns(),
        breaker_opens: set.breaker_opens(),
        availability,
        makespan_s,
        e2e: e2e.summary(),
    };
    (report, tel_report)
}

/// Time-varying Poisson load of one tenant: a base rate plus an optional
/// burst window at a different rate. Arrival generation is an exact
/// piecewise-constant-rate Poisson process — the draw restarts at each
/// rate boundary, which the memoryless property makes distribution-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLoad {
    /// Base arrival rate, requests/s (must be positive).
    pub rate_per_s: f64,
    /// Total requests this tenant offers.
    pub requests: usize,
    /// Arrival rate inside the burst window, requests/s.
    pub burst_rate_per_s: f64,
    /// Burst window start, seconds.
    pub burst_start_s: f64,
    /// Burst window length, seconds; `0.0` disables the burst.
    pub burst_len_s: f64,
}

impl TenantLoad {
    /// A steady (burst-free) load.
    pub fn steady(rate_per_s: f64, requests: usize) -> Self {
        TenantLoad {
            rate_per_s,
            requests,
            burst_rate_per_s: rate_per_s,
            burst_start_s: 0.0,
            burst_len_s: 0.0,
        }
    }

    /// A load that switches to `burst_rate_per_s` inside
    /// `[burst_start_s, burst_start_s + burst_len_s)`.
    pub fn with_burst(
        rate_per_s: f64,
        requests: usize,
        burst_rate_per_s: f64,
        burst_start_s: f64,
        burst_len_s: f64,
    ) -> Self {
        TenantLoad { rate_per_s, requests, burst_rate_per_s, burst_start_s, burst_len_s }
    }

    /// Generate the sorted arrival vector for this load from `rng`.
    pub fn arrivals(&self, rng: &mut Rng64) -> Vec<f64> {
        assert!(self.rate_per_s.is_finite() && self.rate_per_s > 0.0, "rate must be positive");
        if self.burst_len_s > 0.0 {
            assert!(
                self.burst_rate_per_s.is_finite() && self.burst_rate_per_s > 0.0,
                "burst rate must be positive"
            );
        }
        let (b0, b1) = (self.burst_start_s, self.burst_start_s + self.burst_len_s);
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(self.requests);
        while out.len() < self.requests {
            let in_burst = self.burst_len_s > 0.0 && t >= b0 && t < b1;
            let rate = if in_burst { self.burst_rate_per_s } else { self.rate_per_s };
            let dt = rng.exponential(rate);
            // Restart the draw at the next rate boundary instead of letting
            // one exponential straddle it (memoryless, so this is exact).
            let boundary = if self.burst_len_s == 0.0 {
                None
            } else if t < b0 {
                Some(b0)
            } else if t < b1 {
                Some(b1)
            } else {
                None
            };
            if let Some(b) = boundary {
                if t + dt >= b {
                    t = b;
                    continue;
                }
            }
            t += dt;
            out.push(t);
        }
        out
    }
}

/// One multi-tenant simulation run: the tenant population, one load per
/// tenant, the shared batching policy and cost model, the autoscaler band,
/// and the admission policy under test (`fair` toggles weighted-fair DRR
/// against the global-FIFO baseline — the E18 comparison axis).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSimConfig {
    /// The validated tenant population.
    pub directory: TenantDirectory,
    /// One load per tenant, in directory order.
    pub loads: Vec<TenantLoad>,
    /// Batching policy shared by every tenant queue.
    pub policy: BatchPolicy,
    /// Batch cost model.
    pub service: ServiceModel,
    /// Queue-depth autoscaler band; `max_replicas` is the provisioned pool.
    pub scale: AutoscalePolicy,
    /// `true`: strict-priority + DRR weighted-fair admission
    /// ([`crate::sched::plan_fair`]). `false`: the pre-E18 global FIFO —
    /// one arrival-ordered queue, dispatching the longest same-tenant
    /// prefix (per-tenant quotas still apply, so only the *ordering*
    /// differs between the two policies).
    pub fair: bool,
    /// Root seed for every tenant's arrival stream.
    pub seed: u64,
    /// Attach a [`ServeTelemetry`] observer (windowed per-class latency,
    /// scaling events) and return its report.
    pub telemetry: bool,
}

/// Per-tenant outcome counters and latency distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant name (directory key).
    pub name: String,
    /// Tenant's scheduling class.
    pub class: PriorityClass,
    /// Requests this tenant offered.
    pub offered: usize,
    /// Requests admitted within the tenant's quota.
    pub admitted: usize,
    /// Requests rejected at admission (quota full).
    pub rejected: usize,
    /// Admitted requests shed for exceeding their deadline.
    pub shed: usize,
    /// Requests answered with a prediction.
    pub completed: usize,
    /// Completed requests whose end-to-end latency still exceeded the
    /// deadline (answered, but late).
    pub deadline_viol: usize,
    /// Queue-wait distribution of completed requests.
    pub queue_wait: HistSummary,
    /// End-to-end latency distribution of completed requests.
    pub e2e: HistSummary,
    /// Completed requests per second of run makespan.
    pub throughput_rps: f64,
}

/// Everything one multi-tenant simulation run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSimReport {
    /// Per-tenant outcomes, in directory order.
    pub tenants: Vec<TenantStats>,
    /// Batches dispatched across all tenants.
    pub batches: usize,
    /// Mean dispatched batch size (0 when nothing dispatched).
    pub mean_batch: f64,
    /// Seconds from time zero to the last completion.
    pub makespan_s: f64,
    /// Autoscaler grow actions taken.
    pub scale_ups: u64,
    /// Autoscaler shrink actions taken.
    pub scale_downs: u64,
    /// Peak concurrently-active replica count.
    pub max_active: usize,
    /// Telemetry report when [`TenantSimConfig::telemetry`] was set.
    pub telemetry: Option<TelemetryReport>,
}

impl TenantSimReport {
    /// Total requests offered across tenants.
    pub fn offered(&self) -> usize {
        self.tenants.iter().map(|t| t.offered).sum()
    }

    /// Total requests admitted across tenants.
    pub fn admitted(&self) -> usize {
        self.tenants.iter().map(|t| t.admitted).sum()
    }

    /// Total requests completed across tenants.
    pub fn completed(&self) -> usize {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Stats of the named tenant.
    pub fn tenant(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

/// Admission entry point of the tenant simulator: enforce the tenant's
/// queue quota and record the outcome in the windowed telemetry.
fn admit_arrival(
    spec: &TenantSpec,
    queue: &mut VecDeque<(u64, f64)>,
    now_s: f64,
    id: u64,
    total_depth: usize,
    tel: Option<&mut ServeTelemetry>,
) -> bool {
    if queue.len() >= spec.queue_capacity {
        if let Some(t) = tel {
            t.on_reject(now_s);
            t.on_reject_class(now_s, spec.class);
        }
        return false;
    }
    queue.push_back((id, now_s));
    if let Some(t) = tel {
        t.on_enqueue(now_s, total_depth + 1);
    }
    true
}

/// Scaling entry point of the tenant simulator: consult the pure
/// [`Autoscaler`] with the observed total queue depth and record any
/// action in the windowed telemetry. Returns the new active-replica count.
fn scale_pool(
    scaler: &mut Autoscaler,
    now_s: f64,
    depth: usize,
    active: usize,
    tel: Option<&mut ServeTelemetry>,
) -> usize {
    match scaler.decide(now_s, depth, active) {
        ScaleDecision::Grow => {
            let grown = active + 1;
            if let Some(t) = tel {
                t.on_scale(now_s, true, grown);
            }
            grown
        }
        ScaleDecision::Shrink => {
            let shrunk = active - 1;
            if let Some(t) = tel {
                t.on_scale(now_s, false, shrunk);
            }
            shrunk
        }
        ScaleDecision::Hold => active,
    }
}

/// Run the discrete-event multi-tenant simulation.
///
/// Identical event structure to [`simulate`] — arrivals win ties,
/// front-shed on deadline, earliest-free worker, lowest index breaking
/// ties — but admission is per-tenant (bounded by each tenant's quota) and
/// dispatch is arbitrated by the shared multi-tenant decision core:
/// [`crate::sched::plan_fair`] (strict priority between classes, DRR
/// weighted fairness within a class) when `fair`, or the pre-E18 global
/// FIFO (longest same-tenant prefix, exactly the threaded server's
/// single-queue `dispatch_prefix` semantics) when not. The active worker
/// count is driven by the queue-depth [`Autoscaler`] sampled at every
/// event. Everything is pure `f64` arithmetic over seeded draws: a given
/// configuration always yields a byte-identical report.
pub fn simulate_tenants(cfg: &TenantSimConfig) -> TenantSimReport {
    let dir = &cfg.directory;
    let nt = dir.len();
    assert_eq!(cfg.loads.len(), nt, "one load per tenant");
    let policy = cfg.policy;

    let arrivals: Vec<Vec<f64>> = cfg
        .loads
        .iter()
        .enumerate()
        .map(|(t, l)| l.arrivals(&mut Rng64::new(cfg.seed).split(t as u64 + 1)))
        .collect();

    let mut queues: Vec<VecDeque<(u64, f64)>> = vec![VecDeque::new(); nt];
    // Global arrival interleaving, maintained only for the FIFO baseline.
    let mut order: VecDeque<TenantId> = VecDeque::new();
    let mut next_i = vec![0usize; nt];
    let mut sched = DrrScheduler::new(dir);
    let mut scaler = Autoscaler::new(cfg.scale);
    let mut active = cfg.scale.min_replicas;
    let mut max_active = active;
    let (mut scale_ups, mut scale_downs) = (0u64, 0u64);
    let mut free = vec![0.0f64; cfg.scale.max_replicas];
    let mut ids = 0u64;
    let mut admitted = vec![0usize; nt];
    let mut rejected = vec![0usize; nt];
    let mut shed = vec![0usize; nt];
    let mut completed = vec![0usize; nt];
    let mut viol = vec![0usize; nt];
    let mut queue_wait: Vec<Histogram> = (0..nt).map(|_| Histogram::new()).collect();
    let mut e2e: Vec<Histogram> = (0..nt).map(|_| Histogram::new()).collect();
    let (mut batches, mut rows) = (0usize, 0usize);
    let mut last_done = 0.0f64;
    let mut now = 0.0f64;
    let mut tel = if cfg.telemetry {
        Some(ServeTelemetry::new(
            cfg.scale.max_replicas,
            TelemetryConfig::standard(policy.deadline_s),
        ))
    } else {
        None
    };

    loop {
        // Next arrival across every tenant stream (ties break to the
        // lowest tenant id — directory order, as everywhere else).
        let mut na: Option<(TenantId, f64)> = None;
        for (t, stream) in arrivals.iter().enumerate() {
            if let Some(&ta) = stream.get(next_i[t]) {
                if na.is_none_or(|(_, best)| ta < best) {
                    na = Some((t, ta));
                }
            }
        }
        let draining = na.is_none();

        let total_pending: usize = queues.iter().map(VecDeque::len).sum();
        let dispatch_at = if total_pending == 0 {
            None
        } else {
            let ready = if cfg.fair {
                // Earliest time any single tenant queue becomes
                // dispatchable under the per-queue batching rule.
                let mut r = f64::INFINITY;
                for q in &queues {
                    if let Some(&(_, oldest)) = q.front() {
                        let rt = if q.len() >= policy.max_batch || draining {
                            now
                        } else {
                            oldest + policy.max_wait_s
                        };
                        r = r.min(rt);
                    }
                }
                r
            } else {
                // The FIFO baseline plans over the aggregate queue.
                let oldest = queues
                    .iter()
                    .filter_map(|q| q.front().map(|&(_, enq)| enq))
                    .fold(f64::INFINITY, f64::min);
                if total_pending >= policy.max_batch || draining {
                    now
                } else {
                    oldest + policy.max_wait_s
                }
            };
            let worker = free[..active].iter().copied().fold(f64::INFINITY, f64::min);
            Some(ready.max(worker).max(now))
        };

        // Arrivals win ties so a dispatch always sees the fullest legal
        // queue state, mirroring the live batcher's top-up-then-plan loop.
        let take_arrival = match (na, dispatch_at) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((_, ta)), Some(td)) => ta <= td,
        };

        if take_arrival {
            let Some((t, ta)) = na else { unreachable!("take_arrival implies an arrival") };
            now = ta;
            next_i[t] += 1;
            let id = ids;
            ids += 1;
            if admit_arrival(dir.spec(t), &mut queues[t], now, id, total_pending, tel.as_mut()) {
                admitted[t] += 1;
                if !cfg.fair {
                    order.push_back(t);
                }
            } else {
                rejected[t] += 1;
            }
        } else {
            let Some(td) = dispatch_at else { unreachable!("!take_arrival implies a dispatch") };
            now = now.max(td);
            // Shed from every queue front: per-tenant FIFO plus a uniform
            // deadline means each tenant's oldest request expires first.
            for t in 0..nt {
                while let Some(&(id, enq)) = queues[t].front() {
                    if !expired(&policy, now, enq) {
                        break;
                    }
                    queues[t].pop_front();
                    shed[t] += 1;
                    dd_obs::counter_add("serve_shed_total", 1);
                    if !cfg.fair {
                        if let Some(pos) = order.iter().position(|&x| x == t) {
                            order.remove(pos);
                        }
                    }
                    if let Some(tl) = tel.as_mut() {
                        tl.on_shed(now, id, enq);
                        tl.on_shed_class(now, dir.spec(t).class);
                    }
                }
            }
            // Shedding may have changed (or emptied) the queues: re-plan,
            // and dispatch only when the decision core says so now.
            let decision = if cfg.fair {
                let views: Vec<QueueView> = queues
                    .iter()
                    .map(|q| match q.front() {
                        Some(&(_, enq)) => QueueView { pending: q.len(), oldest_s: enq },
                        None => QueueView::empty(),
                    })
                    .collect();
                match plan_fair(&policy, &mut sched, now, &views, draining) {
                    SchedDecision::Dispatch { tenant, n } => Some((tenant, n)),
                    SchedDecision::WaitFor(_) | SchedDecision::Idle => None,
                }
            } else {
                match order.front() {
                    None => None,
                    Some(&t0) => {
                        let total: usize = queues.iter().map(VecDeque::len).sum();
                        let oldest = queues[t0].front().map(|&(_, enq)| enq).unwrap_or(now);
                        match plan(&policy, now, oldest, total, draining) {
                            BatchDecision::Dispatch(n) => {
                                // The threaded server's dispatch_prefix
                                // rule: the longest same-tenant prefix of
                                // the global arrival order, capped at n.
                                let prefix = order.iter().take_while(|&&x| x == t0).count();
                                Some((t0, prefix.min(n)))
                            }
                            BatchDecision::WaitFor(_) | BatchDecision::Idle => None,
                        }
                    }
                }
            };
            if let Some((t, n)) = decision {
                let svc = cfg.service.seconds(n);
                let done = now + svc;
                // Earliest-free active worker; lowest index wins ties.
                let mut wi = 0usize;
                for k in 1..active {
                    if free[k] < free[wi] {
                        wi = k;
                    }
                }
                free[wi] = done;
                if let Some(tl) = tel.as_mut() {
                    tl.on_dispatch(now, wi, n);
                }
                for _ in 0..n {
                    let Some((id, enq)) = queues[t].pop_front() else { break };
                    let wait = now - enq;
                    let lat = done - enq;
                    queue_wait[t].record(wait);
                    e2e[t].record(lat);
                    dd_obs::hist_record("serve_queue_wait_seconds", wait);
                    dd_obs::hist_record("serve_e2e_seconds", lat);
                    if lat > policy.deadline_s {
                        viol[t] += 1;
                    }
                    completed[t] += 1;
                    if !cfg.fair {
                        order.pop_front();
                    }
                    if let Some(tl) = tel.as_mut() {
                        tl.on_complete(done, id, enq, wait);
                        tl.on_complete_class(done, dir.spec(t).class, lat, policy.deadline_s);
                    }
                }
                dd_obs::hist_record("serve_service_seconds", svc);
                dd_obs::hist_record("serve_batch_size", n as f64);
                dd_obs::counter_add("serve_batches_total", 1);
                dd_obs::counter_add("serve_rows_total", n as u64);
                batches += 1;
                rows += n;
                last_done = last_done.max(done);
                if cfg.fair {
                    sched.charge(t, n);
                }
            }
        }

        // Autoscale on the depth this event left behind.
        let depth: usize = queues.iter().map(VecDeque::len).sum();
        let next_active = scale_pool(&mut scaler, now, depth, active, tel.as_mut());
        if next_active > active {
            scale_ups += 1;
        } else if next_active < active {
            scale_downs += 1;
        }
        active = next_active;
        max_active = max_active.max(active);
    }

    let total_completed: usize = completed.iter().sum();
    let makespan_s = if total_completed > 0 { last_done } else { now };
    let tenants = dir
        .specs()
        .iter()
        .enumerate()
        .map(|(t, spec)| TenantStats {
            name: spec.name.clone(),
            class: spec.class,
            offered: arrivals[t].len(),
            admitted: admitted[t],
            rejected: rejected[t],
            shed: shed[t],
            completed: completed[t],
            deadline_viol: viol[t],
            queue_wait: queue_wait[t].summary(),
            e2e: e2e[t].summary(),
            throughput_rps: if makespan_s > 0.0 { completed[t] as f64 / makespan_s } else { 0.0 },
        })
        .collect();
    TenantSimReport {
        tenants,
        batches,
        mean_batch: if batches > 0 { rows as f64 / batches as f64 } else { 0.0 },
        makespan_s,
        scale_ups,
        scale_downs,
        max_active,
        telemetry: tel.map(|t| t.report(makespan_s.max(now))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{poisson_arrivals, LoadConfig};
    use crate::resil::HedgePolicy;
    use crate::telemetry::SLO_AVAILABILITY;

    fn arrivals(rate: f64, n: usize, seed: u64) -> Vec<f64> {
        poisson_arrivals(&LoadConfig { rate_per_s: rate, requests: n, seed })
    }

    fn base_cfg(arrivals: Vec<f64>) -> SimConfig {
        SimConfig {
            policy: BatchPolicy::new(16, 0.002, 0.25),
            queue_capacity: 128,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals,
        }
    }

    #[test]
    fn deterministic_runs() {
        let cfg = base_cfg(arrivals(2000.0, 2000, 9));
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a, b, "same config must give identical reports");
    }

    #[test]
    fn light_load_completes_everything() {
        let cfg = base_cfg(arrivals(500.0, 1000, 1));
        let r = simulate(&cfg);
        assert_eq!(r.completed, 1000);
        assert_eq!(r.rejected + r.shed, 0);
        assert_eq!(r.admitted, 1000);
        assert!(r.throughput_rps > 0.0);
        assert_eq!(r.queue_wait.count, 1000);
        assert_eq!(r.e2e.count, 1000);
    }

    #[test]
    fn larger_batches_raise_saturated_throughput() {
        // Offer far more than batch-1 capacity: ~1/(base+per_row) ≈ 4.7k rps
        // per worker. Batching amortizes base_s and must push throughput up.
        let arr = arrivals(40_000.0, 8000, 2);
        let mut small = base_cfg(arr.clone());
        small.policy = BatchPolicy::new(1, 0.0, 0.05);
        let mut big = base_cfg(arr);
        big.policy = BatchPolicy::new(64, 0.002, 0.05);
        let rs = simulate(&small);
        let rb = simulate(&big);
        assert!(
            rb.throughput_rps > 2.0 * rs.throughput_rps,
            "batch-64 {:.0} rps should dwarf batch-1 {:.0} rps",
            rb.throughput_rps,
            rs.throughput_rps
        );
        assert!(rb.mean_batch > 8.0, "saturated batcher should coalesce, got {}", rb.mean_batch);
    }

    #[test]
    fn overload_rejects_and_bounds_latency() {
        // Offered load ~4x capacity: admission + deadlines must engage, and
        // the p99 of what *is* served stays bounded by queue+deadline math
        // instead of growing with the backlog.
        let cfg = SimConfig {
            policy: BatchPolicy::new(16, 0.002, 0.05),
            queue_capacity: 64,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals: arrivals(200_000.0, 20_000, 3),
        };
        let r = simulate(&cfg);
        assert!(r.rejected > 0, "bounded queue must reject under 4x overload");
        assert_eq!(r.offered, r.admitted + r.rejected);
        assert_eq!(r.admitted, r.completed + r.shed);
        // Served latency is bounded: deadline + one max service time, with
        // histogram quantile slack (~7.5% relative error).
        let bound = 1.2 * (cfg.policy.deadline_s + cfg.service.seconds(cfg.policy.max_batch));
        assert!(r.e2e.p99 < bound, "p99 {} exceeds bound {}", r.e2e.p99, bound);
    }

    #[test]
    fn tight_deadline_sheds_instead_of_serving_late() {
        // Deadline far below the full-queue drain time: the front-shed path
        // must engage, and nothing is ever dispatched past its deadline.
        let cfg = SimConfig {
            policy: BatchPolicy::new(1, 0.0, 0.005),
            queue_capacity: 256,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals: arrivals(40_000.0, 5000, 6),
        };
        let r = simulate(&cfg);
        assert!(r.shed > 0, "tight deadline must shed queued requests");
        assert_eq!(r.admitted, r.completed + r.shed);
        assert!(
            r.queue_wait.max <= cfg.policy.deadline_s,
            "served request waited {} past the {}s deadline",
            r.queue_wait.max,
            cfg.policy.deadline_s
        );
        assert!(r.e2e.p99 < 1.2 * (cfg.policy.deadline_s + cfg.service.seconds(1)));
    }

    #[test]
    fn conservation_always_holds() {
        for seed in 0..5u64 {
            let cfg = base_cfg(arrivals(6000.0, 3000, seed));
            let r = simulate(&cfg);
            assert_eq!(r.offered, r.admitted + r.rejected, "seed {seed}");
            assert_eq!(r.admitted, r.completed + r.shed, "seed {seed}");
            assert_eq!(r.queue_wait.count as usize, r.completed, "seed {seed}");
        }
    }

    fn chaos_cfg(arrivals: Vec<f64>) -> ChaosConfig {
        ChaosConfig {
            policy: BatchPolicy::new(16, 0.002, 0.25),
            queue_capacity: 256,
            replicas: 4,
            service: ServiceModel::new(2e-3, 0.5e-3),
            arrivals,
            resil: ResilPolicy::standard(),
            faults: FaultSpec { respawn_s: 0.25, seed: 11, ..FaultSpec::none() },
            crash_mtbf_s: 0.0,
            fallback: true,
        }
    }

    #[test]
    fn chaos_without_faults_completes_everything() {
        let r = simulate_chaos(&chaos_cfg(arrivals(800.0, 2000, 5)));
        assert_eq!(r.completed, 2000);
        assert_eq!(r.failed + r.shed + r.rejected, 0);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.retries + r.hedges, 0);
        assert_eq!(r.evictions, 0);
    }

    #[test]
    fn chaos_is_deterministic() {
        let mut cfg = chaos_cfg(arrivals(2000.0, 4000, 6));
        cfg.crash_mtbf_s = 1.0;
        cfg.faults.straggle_p = 0.02;
        cfg.faults.straggle_s = 0.08;
        cfg.faults.corrupt_p = 0.005;
        let a = simulate_chaos(&cfg);
        let b = simulate_chaos(&cfg);
        assert_eq!(a, b, "same config must give identical chaos reports");
        assert!(a.evictions > 0, "1s MTBF over a multi-second run must crash replicas");
        let mut other = cfg.clone();
        other.faults.seed = 12;
        assert_ne!(simulate_chaos(&other), a, "different seeds should differ");
    }

    #[test]
    fn chaos_conservation_holds_under_heavy_faults() {
        for seed in 0..4u64 {
            let mut cfg = chaos_cfg(arrivals(2500.0, 3000, seed));
            cfg.crash_mtbf_s = 0.5;
            cfg.faults.seed = seed;
            cfg.faults.corrupt_p = 0.01;
            cfg.faults.straggle_p = 0.05;
            cfg.faults.straggle_s = 0.05;
            let r = simulate_chaos(&cfg);
            assert_eq!(r.offered, r.admitted + r.rejected, "seed {seed}");
            assert_eq!(r.admitted, r.completed + r.failed + r.shed, "seed {seed}");
            assert_eq!(r.e2e.count as usize, r.completed, "seed {seed}");
            assert!((0.0..=1.0).contains(&r.availability), "seed {seed}");
        }
    }

    #[test]
    fn resilience_beats_the_no_retry_baseline_under_crashes() {
        let arr = arrivals(2000.0, 6000, 9);
        let mut baseline = chaos_cfg(arr.clone());
        baseline.crash_mtbf_s = 1.0;
        baseline.resil = ResilPolicy::disabled();
        let mut resil = chaos_cfg(arr);
        resil.crash_mtbf_s = 1.0;
        let rb = simulate_chaos(&baseline);
        let rr = simulate_chaos(&resil);
        assert!(
            rb.availability < 0.97,
            "no-retry baseline should bleed requests, got {}",
            rb.availability
        );
        assert!(
            rr.availability > rb.availability && rr.availability > 0.99,
            "resilience must recover availability: {} vs {}",
            rr.availability,
            rb.availability
        );
        assert!(rr.retries > 0, "recovery must come from actual retries");
    }

    #[test]
    fn hedging_cuts_straggler_tail_latency() {
        let arr = arrivals(1000.0, 4000, 10);
        let mut no_hedge = chaos_cfg(arr.clone());
        no_hedge.faults.straggle_p = 0.05;
        no_hedge.faults.straggle_s = 0.2;
        no_hedge.resil.hedge = HedgePolicy::disabled();
        let mut hedged = chaos_cfg(arr);
        hedged.faults.straggle_p = 0.05;
        hedged.faults.straggle_s = 0.2;
        hedged.resil.hedge = HedgePolicy::auto(1);
        let rn = simulate_chaos(&no_hedge);
        let rh = simulate_chaos(&hedged);
        assert!(rh.hedges > 0, "stragglers at 5% must trigger hedges");
        assert!(
            rh.e2e.p99 < 0.5 * rn.e2e.p99,
            "hedged p99 {} should cut unhedged p99 {}",
            rh.e2e.p99,
            rn.e2e.p99
        );
    }

    #[test]
    fn version_guard_falls_back_to_the_older_snapshot() {
        let arr = arrivals(1000.0, 3000, 13);
        let mut bad_version = chaos_cfg(arr.clone());
        bad_version.faults.corrupt_p = 0.8;
        bad_version.fallback = true;
        let with_fb = simulate_chaos(&bad_version);
        assert!(
            with_fb.degraded > with_fb.offered / 2,
            "an 80% corrupt current version must mostly serve degraded, got {}",
            with_fb.degraded
        );
        assert!(with_fb.availability > 0.9, "fallback rescues availability");

        let mut no_fb = bad_version.clone();
        no_fb.fallback = false;
        let without = simulate_chaos(&no_fb);
        assert!(
            without.availability < with_fb.availability,
            "no fallback must be strictly worse: {} vs {}",
            without.availability,
            with_fb.availability
        );
        assert_eq!(without.degraded, 0);
    }

    #[test]
    fn telemetry_observer_never_changes_the_chaos_report() {
        let mut cfg = chaos_cfg(arrivals(2000.0, 4000, 6));
        cfg.crash_mtbf_s = 1.0;
        cfg.faults.straggle_p = 0.02;
        cfg.faults.straggle_s = 0.08;
        cfg.faults.corrupt_p = 0.005;
        let plain = simulate_chaos(&cfg);
        let (observed, tel) =
            simulate_chaos_telemetry(&cfg, &TelemetryConfig::standard(cfg.policy.deadline_s), 0.0);
        assert_eq!(observed, plain, "telemetry must be observe-only");
        assert_eq!(tel.completed as usize, plain.completed);
        assert_eq!(tel.shed as usize, plain.shed);
        assert_eq!(tel.rejected as usize, plain.rejected);
        assert_eq!(tel.enqueued as usize, plain.offered - plain.rejected);
        assert!(tel.recorder_events > 0, "attempts must reach the flight recorder");
    }

    #[test]
    fn telemetry_twin_is_deterministic() {
        let mut cfg = chaos_cfg(arrivals(2000.0, 4000, 7));
        cfg.crash_mtbf_s = 0.5;
        cfg.faults.corrupt_p = 0.01;
        let tcfg = TelemetryConfig::standard(cfg.policy.deadline_s).with_windows(0.2, 0.8);
        let a = simulate_chaos_telemetry(&cfg, &tcfg, 0.5);
        let b = simulate_chaos_telemetry(&cfg, &tcfg, 0.5);
        assert_eq!(a, b, "same config must give identical telemetry");
    }

    #[test]
    fn onset_shifts_scheduled_crashes_past_the_steady_segment() {
        let mut cfg = chaos_cfg(arrivals(2000.0, 6000, 8));
        cfg.crash_mtbf_s = 0.05;
        let onset = 1.0;
        let tcfg = TelemetryConfig::standard(cfg.policy.deadline_s);
        let (report, tel) = simulate_chaos_telemetry(&cfg, &tcfg, onset);
        assert!(report.evictions > 0, "a 50 ms MTBF past onset must crash replicas");
        let first_crash = tel
            .dumps
            .first()
            .map(|d| d.at_s)
            .unwrap_or(f64::INFINITY)
            .min(tel.first_fired_at(SLO_AVAILABILITY).unwrap_or(f64::INFINITY));
        assert!(
            first_crash >= onset,
            "nothing chaotic may happen before the onset: first at {first_crash}"
        );
    }

    #[test]
    fn zero_wait_policy_serves_singletons_at_light_load() {
        let mut cfg = base_cfg(arrivals(100.0, 200, 4));
        cfg.policy = BatchPolicy::new(64, 0.0, 0.25);
        let r = simulate(&cfg);
        // At 100 rps with ~0.2 ms service, requests rarely overlap: almost
        // every batch is a singleton dispatched immediately.
        assert!(r.mean_batch < 1.5, "mean batch {}", r.mean_batch);
        assert_eq!(r.completed, 200);
    }

    use crate::sched::AutoscalePolicy;
    use crate::tenant::{PriorityClass, TenantDirectory, TenantSpec};

    fn tenant_cfg(fair: bool) -> TenantSimConfig {
        // An interactive clinic tenant at a steady trickle, plus a batch
        // screening tenant whose burst floods the shared pool.
        let directory = TenantDirectory::new(vec![
            TenantSpec::new("clinic", PriorityClass::Interactive, 1, 256, "m-clinic"),
            TenantSpec::new("screen", PriorityClass::Batch, 1, 4096, "m-screen"),
        ])
        .unwrap();
        TenantSimConfig {
            directory,
            loads: vec![
                TenantLoad::steady(200.0, 4000),
                TenantLoad::with_burst(500.0, 30_000, 6000.0, 2.0, 4.0),
            ],
            policy: BatchPolicy::new(16, 2e-3, 0.25),
            // ~1 ms/row: one worker sustains ~1 krow/s, so the 6 krps
            // burst genuinely saturates even the fully grown pool.
            service: ServiceModel::new(1e-4, 1e-3),
            scale: AutoscalePolicy::new(1, 4, 64, 8, 0.25),
            fair,
            seed: 2017,
            telemetry: false,
        }
    }

    #[test]
    fn tenant_sim_is_deterministic() {
        let cfg = tenant_cfg(true);
        assert_eq!(simulate_tenants(&cfg), simulate_tenants(&cfg));
        let cfg = tenant_cfg(false);
        assert_eq!(simulate_tenants(&cfg), simulate_tenants(&cfg));
    }

    #[test]
    fn tenant_sim_conserves_requests() {
        for fair in [false, true] {
            let r = simulate_tenants(&tenant_cfg(fair));
            for t in &r.tenants {
                assert_eq!(t.offered, t.admitted + t.rejected, "{} (fair={fair})", t.name);
                assert_eq!(t.admitted, t.completed + t.shed, "{} (fair={fair})", t.name);
            }
        }
    }

    #[test]
    fn burst_load_is_a_genuine_burst() {
        let load = TenantLoad::with_burst(10.0, 2000, 2000.0, 1.0, 0.5);
        let a = load.arrivals(&mut Rng64::new(7));
        assert!(a.windows(2).all(|w| w[1] >= w[0]), "arrivals must be sorted");
        let in_window = a.iter().filter(|&&t| (1.0..1.5).contains(&t)).count();
        // ~1000 arrivals land in the 0.5 s window at 2000 rps vs ~5 per
        // half-second at the 10 rps base rate.
        assert!(in_window > 500, "burst window got {in_window} arrivals");
    }

    #[test]
    fn fair_bounds_interactive_latency_where_fifo_does_not() {
        let fifo = simulate_tenants(&tenant_cfg(false));
        let fair = simulate_tenants(&tenant_cfg(true));
        let (Some(fifo_clinic), Some(fair_clinic)) = (fifo.tenant("clinic"), fair.tenant("clinic"))
        else {
            unreachable!("clinic tenant always present")
        };
        // Under the batch burst the FIFO baseline queues clinic requests
        // behind the screening backlog: they shed or finish late. The fair
        // scheduler keeps interactive p99 inside the deadline envelope.
        let fifo_bad = fifo_clinic.shed + fifo_clinic.deadline_viol;
        let fair_bad = fair_clinic.shed + fair_clinic.deadline_viol;
        assert!(
            fifo_bad > fifo_clinic.offered / 10,
            "FIFO must hurt the clinic under burst: {fifo_bad}/{}",
            fifo_clinic.offered
        );
        assert!(
            fair_bad * 20 < fifo_bad,
            "fair must protect the clinic: fair {fair_bad} vs fifo {fifo_bad}"
        );
        assert!(
            fair_clinic.e2e.p99 <= 0.25,
            "fair interactive p99 {} must sit inside the deadline",
            fair_clinic.e2e.p99
        );
    }

    #[test]
    fn fair_batch_throughput_matches_fifo_when_interactive_idle() {
        // Batch tenant alone: fairness must not tax throughput.
        let directory = || {
            TenantDirectory::new(vec![
                TenantSpec::new("clinic", PriorityClass::Interactive, 1, 256, "m-clinic"),
                TenantSpec::new("screen", PriorityClass::Batch, 1, 4096, "m-screen"),
            ])
            .unwrap()
        };
        let cfg = |fair: bool| TenantSimConfig {
            directory: directory(),
            loads: vec![TenantLoad::steady(0.01, 1), TenantLoad::steady(3000.0, 30_000)],
            policy: BatchPolicy::new(16, 2e-3, 0.25),
            service: ServiceModel::new(1e-4, 1e-3),
            scale: AutoscalePolicy::new(1, 4, 64, 8, 0.25),
            fair,
            seed: 2017,
            telemetry: false,
        };
        let fifo = simulate_tenants(&cfg(false));
        let fair = simulate_tenants(&cfg(true));
        let (Some(ff), Some(fr)) = (fifo.tenant("screen"), fair.tenant("screen")) else {
            unreachable!("screen tenant always present")
        };
        assert!(
            fr.throughput_rps >= 0.9 * ff.throughput_rps,
            "fair batch throughput {} must stay within 10% of FIFO {}",
            fr.throughput_rps,
            ff.throughput_rps
        );
    }

    #[test]
    fn autoscaler_grows_under_burst_and_stays_in_band() {
        let r = simulate_tenants(&tenant_cfg(true));
        assert!(r.scale_ups > 0, "the burst must trigger scale-ups");
        assert!(r.max_active <= 4, "active replicas must respect max_replicas");
        assert!(r.scale_downs > 0, "the post-burst drain must trigger scale-downs");
    }

    #[test]
    fn tenant_quota_rejects_only_the_bursting_tenant() {
        let mut cfg = tenant_cfg(true);
        // Tight quota on the bursting tenant only.
        cfg.directory = TenantDirectory::new(vec![
            TenantSpec::new("clinic", PriorityClass::Interactive, 1, 256, "m-clinic"),
            TenantSpec::new("screen", PriorityClass::Batch, 1, 64, "m-screen"),
        ])
        .unwrap();
        let r = simulate_tenants(&cfg);
        let (Some(clinic), Some(screen)) = (r.tenant("clinic"), r.tenant("screen")) else {
            unreachable!("both tenants always present")
        };
        assert!(screen.rejected > 0, "the burst must overflow the tight quota");
        assert_eq!(clinic.rejected, 0, "quota isolation: clinic never rejected");
    }

    #[test]
    fn tenant_sim_telemetry_observer_reports_classes_and_scaling() {
        let mut cfg = tenant_cfg(true);
        let without = simulate_tenants(&cfg);
        cfg.telemetry = true;
        let with = simulate_tenants(&cfg);
        let Some(tel) = with.telemetry.as_ref() else { unreachable!("telemetry was requested") };
        // Observer-only: attaching telemetry never changes the outcome.
        assert_eq!(without.tenants, with.tenants);
        assert_eq!(without.batches, with.batches);
        assert_eq!(tel.scale_ups, with.scale_ups);
        assert_eq!(tel.scale_downs, with.scale_downs);
        let classes: Vec<_> = tel.classes.iter().map(|c| c.class).collect();
        assert!(classes.contains(&PriorityClass::Interactive), "classes: {classes:?}");
        assert!(classes.contains(&PriorityClass::Batch), "classes: {classes:?}");
        let total: u64 = tel.classes.iter().map(|c| c.completed).sum();
        assert_eq!(total as usize, with.completed());
    }
}
