//! Virtual-time serving simulator — the deterministic twin of the server.
//!
//! The threaded [`crate::server::Server`] is nondeterministic by nature
//! (thread interleavings, wall-clock jitter), so the E13 experiment runs
//! this discrete-event simulator instead: same admission policy, same
//! [`crate::batcher::plan`]-shaped batching rules, same shed-on-expiry,
//! but on simulated time with an analytic [`ServiceModel`] pricing each
//! batch. Everything is pure `f64` arithmetic over a fixed arrival vector,
//! so a given configuration always yields byte-identical results — the
//! determinism contract every experiment in this repo obeys.
//!
//! Latency distributions are accumulated in dd-obs [`Histogram`]s (the
//! same log-bucketed quantile machinery the live server's metrics use) and
//! mirrored into the global registry when recording is enabled, so a
//! `DD_METRICS` run of `exp-13-serving` exports the usual
//! `serve_queue_wait_seconds` / `serve_service_seconds` / `serve_e2e_seconds`
//! series.

use crate::batcher::BatchPolicy;
use crate::replica::{FaultPlan, FaultSpec, Injected, ReplicaSetState, VersionGuard};
use crate::resil::{Action, AttemptOutcome, ResilPolicy, ResilientCall};
use crate::telemetry::{ServeTelemetry, TelemetryConfig, TelemetryReport};
use dd_obs::{HistSummary, Histogram};
use dd_tensor::Rng64;
use std::collections::VecDeque;

/// Analytic cost of one batched inference: `base_s + per_row_s · batch`.
///
/// The affine shape is what makes batching pay: the fixed `base_s`
/// (dispatch overhead, cache warmup, kernel launch in spirit) amortizes
/// over the rows of a batch, while `per_row_s` is irreducible arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed per-batch overhead, seconds.
    pub base_s: f64,
    /// Marginal cost per row, seconds.
    pub per_row_s: f64,
}

impl ServiceModel {
    /// New model; knobs must be finite and non-negative with a positive sum.
    pub fn new(base_s: f64, per_row_s: f64) -> Self {
        assert!(base_s.is_finite() && base_s >= 0.0, "base_s must be >= 0");
        assert!(per_row_s.is_finite() && per_row_s >= 0.0, "per_row_s must be >= 0");
        assert!(base_s + per_row_s > 0.0, "service model must cost something");
        ServiceModel { base_s, per_row_s }
    }

    /// Derive the per-row cost from a model's forward FLOPs on a device
    /// sustaining `device_flops_per_s`.
    pub fn from_flops(flops_per_row: u64, device_flops_per_s: f64, base_s: f64) -> Self {
        assert!(device_flops_per_s > 0.0, "device rate must be positive");
        ServiceModel::new(base_s, flops_per_row as f64 / device_flops_per_s)
    }

    /// Service time of one batch of `batch` rows.
    pub fn seconds(&self, batch: usize) -> f64 {
        self.base_s + self.per_row_s * batch as f64
    }

    /// Sustainable throughput (rows/s) when every batch is exactly `batch`
    /// rows across `workers` workers — the knee the E13 sweep measures.
    pub fn saturation_rps(&self, batch: usize, workers: usize) -> f64 {
        workers as f64 * batch as f64 / self.seconds(batch)
    }
}

/// One simulated serving configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Batching policy (shared vocabulary with the live server).
    pub policy: BatchPolicy,
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Parallel workers.
    pub workers: usize,
    /// Batch cost model.
    pub service: ServiceModel,
    /// Sorted arrival times in seconds (e.g. from
    /// [`crate::loadgen::poisson_arrivals`]).
    pub arrivals: Vec<f64>,
}

/// Everything one simulation run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Requests offered (length of the arrival vector).
    pub offered: usize,
    /// Requests admitted past the bounded queue.
    pub admitted: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Admitted requests shed for exceeding their deadline.
    pub shed: usize,
    /// Requests answered with a prediction.
    pub completed: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Mean dispatched batch size (0 when nothing dispatched).
    pub mean_batch: f64,
    /// Seconds from the first arrival to the last completion.
    pub makespan_s: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Queue-wait distribution (admission → dispatch) of completed requests.
    pub queue_wait: HistSummary,
    /// Per-batch service-time distribution.
    pub service: HistSummary,
    /// End-to-end latency distribution (admission → response).
    pub e2e: HistSummary,
}

/// Run the discrete-event simulation.
///
/// Events are arrivals and batch dispatches, processed in time order
/// (arrivals win ties so a dispatch always sees the fullest queue it
/// legally can, mirroring the live batcher's top-up-then-plan loop).
pub fn simulate(cfg: &SimConfig) -> SimReport {
    assert!(cfg.queue_capacity >= 1, "queue_capacity must be >= 1");
    assert!(cfg.workers >= 1, "workers must be >= 1");
    assert!(cfg.arrivals.windows(2).all(|w| w[1] >= w[0]), "arrivals must be sorted");

    let policy = cfg.policy;
    let mut pending: VecDeque<f64> = VecDeque::new();
    let mut free = vec![0.0f64; cfg.workers];
    let mut next = 0usize;
    let (mut rejected, mut shed, mut completed, mut batches) = (0usize, 0usize, 0usize, 0usize);
    let mut queue_wait = Histogram::new();
    let mut service = Histogram::new();
    let mut e2e = Histogram::new();
    let mut last_done = 0.0f64;
    let mut now = 0.0f64;

    loop {
        let next_arrival = cfg.arrivals.get(next).copied();
        let dispatch_at = pending.front().map(|&oldest| {
            // A full batch (or a drained arrival stream) dispatches as soon
            // as a worker frees up; a partial batch waits out max_wait.
            let ready = if pending.len() >= policy.max_batch || next_arrival.is_none() {
                now
            } else {
                oldest + policy.max_wait_s
            };
            let worker = free.iter().copied().fold(f64::INFINITY, f64::min);
            ready.max(worker).max(now)
        });

        // Arrivals win ties so a dispatch always sees the fullest legal queue.
        let take_arrival = match (next_arrival, dispatch_at) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(ta), Some(td)) => ta <= td,
        };
        if take_arrival {
            let ta = next_arrival.unwrap_or(now);
            now = ta;
            next += 1;
            if pending.len() >= cfg.queue_capacity {
                rejected += 1;
            } else {
                pending.push_back(ta);
            }
        } else {
            let td = dispatch_at.unwrap_or(now);
            {
                now = td;
                // Shed from the front: FIFO plus a uniform deadline means
                // the oldest request expires first.
                while let Some(&enq) = pending.front() {
                    if now - enq <= policy.deadline_s {
                        break;
                    }
                    pending.pop_front();
                    shed += 1;
                    dd_obs::counter_add("serve_shed_total", 1);
                }
                // Shedding may have emptied the queue or reset the oldest
                // timestamp; re-plan on the next iteration unless a batch
                // is genuinely due now.
                let due = match pending.front() {
                    None => false,
                    Some(&oldest) => {
                        pending.len() >= policy.max_batch
                            || next_arrival.is_none()
                            || now >= oldest + policy.max_wait_s
                    }
                };
                if !due {
                    continue;
                }
                let n = pending.len().min(policy.max_batch);
                let svc = cfg.service.seconds(n);
                let done = now + svc;
                // Assign to the earliest-free worker (deterministic:
                // lowest index wins ties).
                let mut wi = 0usize;
                for (k, &f) in free.iter().enumerate() {
                    if f < free[wi] {
                        wi = k;
                    }
                }
                free[wi] = done;
                for _ in 0..n {
                    if let Some(enq) = pending.pop_front() {
                        let wait = now - enq;
                        queue_wait.record(wait);
                        e2e.record(done - enq);
                        dd_obs::hist_record("serve_queue_wait_seconds", wait);
                        dd_obs::hist_record("serve_e2e_seconds", done - enq);
                    }
                }
                service.record(svc);
                dd_obs::hist_record("serve_service_seconds", svc);
                dd_obs::hist_record("serve_batch_size", n as f64);
                dd_obs::counter_add("serve_batches_total", 1);
                dd_obs::counter_add("serve_rows_total", n as u64);
                batches += 1;
                completed += n;
                last_done = last_done.max(done);
            }
        }
    }

    let offered = cfg.arrivals.len();
    let admitted = offered - rejected;
    let makespan_s = if completed > 0 { last_done } else { now };
    let throughput_rps = if makespan_s > 0.0 { completed as f64 / makespan_s } else { 0.0 };
    let mean_batch = if batches > 0 { completed as f64 / batches as f64 } else { 0.0 };
    SimReport {
        offered,
        admitted,
        rejected,
        shed,
        completed,
        batches,
        mean_batch,
        makespan_s,
        throughput_rps,
        queue_wait: queue_wait.summary(),
        service: service.summary(),
        e2e: e2e.summary(),
    }
}

/// One simulated chaos configuration: the plain serving knobs plus a
/// replica pool, a resilience policy, and a deterministic fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Batching policy (shared vocabulary with the live server).
    pub policy: BatchPolicy,
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Replica pool size (each replica serves one batch at a time).
    pub replicas: usize,
    /// Batch cost model.
    pub service: ServiceModel,
    /// Sorted arrival times in seconds.
    pub arrivals: Vec<f64>,
    /// Retry/hedge/breaker policy driving [`ResilientCall`].
    pub resil: ResilPolicy,
    /// Fault-injection knobs (stragglers, corrupt outputs, count-based
    /// crashes, respawn window, seed).
    pub faults: FaultSpec,
    /// Per-replica crash MTBF in seconds; `0` disables scheduled crashes.
    /// Arrivals are drawn from [`dd_hpcsim::FailureModel`] — the same
    /// exponential failure machinery the E11 training sweep uses.
    pub crash_mtbf_s: f64,
    /// Whether an older registry snapshot exists to fall back to when the
    /// current version's breaker opens (degraded mode).
    pub fallback: bool,
}

/// Everything one chaos run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Requests offered.
    pub offered: usize,
    /// Requests admitted past the bounded queue.
    pub admitted: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Admitted requests shed for exceeding their deadline.
    pub shed: usize,
    /// Requests answered with a valid prediction.
    pub completed: usize,
    /// Admitted, non-shed requests answered with an error.
    pub failed: usize,
    /// Completed requests served by the fallback snapshot (degraded mode).
    pub degraded: usize,
    /// Batches dispatched (including ones that ultimately failed).
    pub batches: usize,
    /// Retry attempts consumed across all requests.
    pub retries: u64,
    /// Hedged re-dispatches across all requests.
    pub hedges: u64,
    /// Replica evictions (health-check path).
    pub evictions: u64,
    /// Replica respawns back into rotation.
    pub respawns: u64,
    /// Per-replica breaker trips.
    pub breaker_opens: u64,
    /// Non-shed success fraction: `completed / (completed + failed)`,
    /// `1.0` when nothing was dispatched.
    pub availability: f64,
    /// Seconds from the first arrival to the last completion.
    pub makespan_s: f64,
    /// End-to-end latency distribution of completed requests.
    pub e2e: HistSummary,
}

/// Current-version id the chaos sim serves (the guard's key).
const CHAOS_VERSION: u64 = 1;
/// Version id of the degraded-mode fallback snapshot.
const CHAOS_FALLBACK_VERSION: u64 = 0;

/// Run the discrete-event chaos simulation.
///
/// Identical event structure to [`simulate`] — arrivals win ties,
/// front-shed on deadline, earliest-free replica — but each dispatched
/// batch is driven through the shared [`ResilientCall`] decision core
/// against a seeded [`FaultPlan`]: crashes arrive on an MTBF schedule (or
/// per-dispatch), stragglers get hedged, corrupt outputs burn the retry
/// budget and feed the per-version [`VersionGuard`], and an open guard
/// routes batches to the fallback snapshot when one exists. Attempts
/// resolved on a replica that is mid-batch queue behind it; an abandoned
/// (hedged) straggler keeps its replica busy for the full straggle — wasted
/// capacity is part of what hedging costs. Everything is pure `f64`
/// arithmetic over seeded draws: a given configuration always yields a
/// byte-identical report.
pub fn simulate_chaos(cfg: &ChaosConfig) -> ChaosReport {
    simulate_chaos_inner(cfg, 0.0, None).0
}

/// Run the chaos simulation with streaming telemetry attached and the
/// scheduled-crash plan shifted to start at `chaos_onset_s`.
///
/// The [`ServeTelemetry`] bundle observes every simulated serving event at
/// its virtual time — enqueues, sheds, completions, failures, per-attempt
/// dispatch outcomes, evictions and breaker trips — so the returned
/// [`TelemetryReport`] is the deterministic twin of what the threaded
/// server's bundle would emit for the same event stream. Shifting the
/// crash schedule (rather than the arrival vector) lets the E15 experiment
/// build a clean steady-state segment followed by chaos at a known virtual
/// time, which is what makes "detection latency" a measurable quantity.
///
/// With `chaos_onset_s == 0.0` the serving behavior (and the
/// [`ChaosReport`]) is byte-identical to [`simulate_chaos`]: telemetry
/// only observes, it never feeds back into a decision.
pub fn simulate_chaos_telemetry(
    cfg: &ChaosConfig,
    tcfg: &TelemetryConfig,
    chaos_onset_s: f64,
) -> (ChaosReport, TelemetryReport) {
    assert!(chaos_onset_s >= 0.0 && chaos_onset_s.is_finite(), "bad chaos_onset_s");
    let (report, telemetry) = simulate_chaos_inner(cfg, chaos_onset_s, Some(tcfg));
    let telemetry =
        telemetry.unwrap_or_else(|| ServeTelemetry::new(cfg.replicas, tcfg.clone()).report(0.0));
    (report, telemetry)
}

fn simulate_chaos_inner(
    cfg: &ChaosConfig,
    chaos_onset_s: f64,
    tcfg: Option<&TelemetryConfig>,
) -> (ChaosReport, Option<TelemetryReport>) {
    assert!(cfg.queue_capacity >= 1, "queue_capacity must be >= 1");
    assert!(cfg.replicas >= 1, "replicas must be >= 1");
    assert!(cfg.crash_mtbf_s >= 0.0 && cfg.crash_mtbf_s.is_finite(), "bad crash_mtbf_s");
    assert!(cfg.arrivals.windows(2).all(|w| w[1] >= w[0]), "arrivals must be sorted");

    let policy = cfg.policy;
    // Crash schedule horizon: generously past the last arrival so a run
    // that drags under retries never outlives its fault plan.
    let horizon = cfg.arrivals.last().copied().unwrap_or(0.0) * 2.0 + 60.0;
    let schedule: Vec<Vec<f64>> = if cfg.crash_mtbf_s > 0.0 {
        let fm = dd_hpcsim::FailureModel::new(cfg.crash_mtbf_s);
        (0..cfg.replicas)
            .map(|r| {
                // Shift the whole plan so the first scheduled crash can
                // only land at or after the chaos onset; the pre-onset
                // segment stays fault-free by construction.
                fm.arrivals(horizon, cfg.faults.seed.wrapping_add(1000 + r as u64))
                    .into_iter()
                    .map(|c| c + chaos_onset_s)
                    .collect()
            })
            .collect()
    } else {
        vec![Vec::new(); cfg.replicas]
    };
    let mut faults = FaultPlan::with_crash_schedule(cfg.faults, schedule);
    let mut set = ReplicaSetState::new(cfg.replicas, cfg.resil.breaker, cfg.faults.respawn_s);
    let mut guard = VersionGuard::new(cfg.resil.breaker);
    let mut rng = Rng64::new(cfg.faults.seed).split(u64::from(u32::MAX));
    // Auto hedging resolves against the worst normal batch service time —
    // the analytic stand-in for the live server's observed p99.
    let resil = cfg
        .resil
        .with_hedge(cfg.resil.hedge.resolved(Some(cfg.service.seconds(policy.max_batch)), 1e-4));

    // Requests are tagged with their arrival index so telemetry exemplars
    // and tail-sampled traces carry a stable request id.
    let mut pending: VecDeque<(u64, f64)> = VecDeque::new();
    let mut tel = tcfg.map(|t| ServeTelemetry::new(cfg.replicas, t.clone()));
    let mut free = vec![0.0f64; cfg.replicas];
    let mut next = 0usize;
    let (mut rejected, mut shed, mut completed, mut batches) = (0usize, 0usize, 0usize, 0usize);
    let (mut failed, mut degraded_total) = (0usize, 0usize);
    let (mut retries, mut hedges) = (0u64, 0u64);
    let mut e2e = Histogram::new();
    let mut last_done = 0.0f64;
    let mut now = 0.0f64;

    loop {
        let next_arrival = cfg.arrivals.get(next).copied();
        let dispatch_at = pending.front().map(|&(_, oldest)| {
            let ready = if pending.len() >= policy.max_batch || next_arrival.is_none() {
                now
            } else {
                oldest + policy.max_wait_s
            };
            // Earliest point some replica is both free and believed up.
            let replica = (0..cfg.replicas)
                .map(|r| free[r].max(set.next_up_s(r, now)))
                .fold(f64::INFINITY, f64::min);
            ready.max(replica).max(now)
        });

        let take_arrival = match (next_arrival, dispatch_at) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(ta), Some(td)) => ta <= td,
        };
        if take_arrival {
            let ta = next_arrival.unwrap_or(now);
            now = ta;
            let id = next as u64;
            next += 1;
            if pending.len() >= cfg.queue_capacity {
                rejected += 1;
                if let Some(t) = tel.as_mut() {
                    t.on_reject(ta);
                }
            } else {
                pending.push_back((id, ta));
                if let Some(t) = tel.as_mut() {
                    t.on_enqueue(ta, pending.len());
                }
            }
            continue;
        }
        now = dispatch_at.unwrap_or(now);
        while let Some(&(id, enq)) = pending.front() {
            if now - enq <= policy.deadline_s {
                break;
            }
            pending.pop_front();
            shed += 1;
            if let Some(t) = tel.as_mut() {
                t.on_shed(now, id, enq);
            }
        }
        let due = match pending.front() {
            None => false,
            Some(&(_, oldest)) => {
                pending.len() >= policy.max_batch
                    || next_arrival.is_none()
                    || now >= oldest + policy.max_wait_s
            }
        };
        if !due {
            continue;
        }
        let n = pending.len().min(policy.max_batch);
        batches += 1;

        // Version guard: current snapshot, else degraded fallback, else
        // fail the batch fast.
        let (version, degraded) = if guard.allow(CHAOS_VERSION, now) {
            (CHAOS_VERSION, false)
        } else if cfg.fallback && guard.allow(CHAOS_FALLBACK_VERSION, now) {
            (CHAOS_FALLBACK_VERSION, true)
        } else {
            for _ in 0..n {
                if let Some((id, enq)) = pending.pop_front() {
                    if let Some(t) = tel.as_mut() {
                        t.on_failure(now, id, enq);
                    }
                }
            }
            failed += n;
            continue;
        };

        let svc = cfg.service.seconds(n);
        let mut call = ResilientCall::new(resil);
        let mut t = now;
        let success = loop {
            match call.next(&mut set, t) {
                Action::Wait { seconds } => t += seconds,
                Action::Try { replica, wait_cap_s } => {
                    let start = t.max(free[replica]);
                    let mut inj = faults.inject(replica, start, svc);
                    if degraded && inj == Injected::Corrupt {
                        // Corruption is version-caused; the fallback
                        // snapshot does not exhibit it.
                        inj = Injected::None;
                    }
                    let (outcome, busy) = match inj {
                        Injected::None => {
                            (AttemptOutcome::Done { elapsed_s: (start - t) + svc }, svc)
                        }
                        Injected::Crash { after_s } => {
                            (AttemptOutcome::Crashed { elapsed_s: (start - t) + after_s }, after_s)
                        }
                        Injected::Straggle { delay_s } => {
                            let total = svc + delay_s;
                            if total > wait_cap_s {
                                (
                                    AttemptOutcome::TimedOut {
                                        elapsed_s: (start - t) + wait_cap_s,
                                    },
                                    total,
                                )
                            } else {
                                (AttemptOutcome::Done { elapsed_s: (start - t) + total }, total)
                            }
                        }
                        Injected::Corrupt => {
                            (AttemptOutcome::Corrupt { elapsed_s: (start - t) + svc }, svc)
                        }
                    };
                    free[replica] = start + busy;
                    set.note_busy_until(replica, free[replica]);
                    t += outcome.elapsed_s();
                    let before = (set.evictions(), set.breaker_opens());
                    call.observe(&mut set, replica, outcome, t, &mut rng);
                    if let Some(tm) = tel.as_mut() {
                        tm.on_dispatch(start, replica, n);
                        tm.on_outcome(t, replica, &outcome);
                        if set.evictions() > before.0 {
                            tm.on_eviction(t, replica);
                        }
                        if set.breaker_opens() > before.1 {
                            tm.on_breaker_open(t, replica);
                        }
                    }
                    match outcome {
                        AttemptOutcome::Done { .. } => guard.record_success(version, t),
                        AttemptOutcome::Corrupt { .. } => guard.record_failure(version, t),
                        _ => {}
                    }
                }
                Action::Finish { .. } => break true,
                Action::GiveUp { .. } => break false,
            }
        };
        retries += u64::from(call.retries());
        hedges += u64::from(call.hedges());
        if success {
            completed += n;
            if degraded {
                degraded_total += n;
            }
            for _ in 0..n {
                if let Some((id, enq)) = pending.pop_front() {
                    e2e.record(t - enq);
                    dd_obs::hist_record("serve_e2e_seconds", t - enq);
                    if let Some(tm) = tel.as_mut() {
                        // Queue wait ends at the dispatch decision (`now`);
                        // the request completes at `t`.
                        tm.on_complete(t, id, enq, now - enq);
                    }
                }
            }
            last_done = last_done.max(t);
        } else {
            for _ in 0..n {
                if let Some((id, enq)) = pending.pop_front() {
                    if let Some(tm) = tel.as_mut() {
                        tm.on_failure(t, id, enq);
                    }
                }
            }
            failed += n;
        }
    }

    let offered = cfg.arrivals.len();
    let admitted = offered - rejected;
    let served = completed + failed;
    let availability = if served > 0 { completed as f64 / served as f64 } else { 1.0 };
    dd_obs::counter_add("serve_retries_total", retries);
    dd_obs::counter_add("serve_hedges_total", hedges);
    dd_obs::counter_add("serve_replica_evictions_total", set.evictions());
    dd_obs::counter_add("serve_replica_respawns_total", set.respawns());
    dd_obs::counter_add("serve_breaker_opens_total", set.breaker_opens());
    dd_obs::counter_add("serve_shed_total", shed as u64);
    dd_obs::gauge_set("serve_breaker_open", set.open_breakers(now) as f64);
    let makespan_s = if completed > 0 { last_done } else { now };
    let tel_report = tel.map(|t| t.report(makespan_s.max(now)));
    let report = ChaosReport {
        offered,
        admitted,
        rejected,
        shed,
        completed,
        failed,
        degraded: degraded_total,
        batches,
        retries,
        hedges,
        evictions: set.evictions(),
        respawns: set.respawns(),
        breaker_opens: set.breaker_opens(),
        availability,
        makespan_s,
        e2e: e2e.summary(),
    };
    (report, tel_report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{poisson_arrivals, LoadConfig};
    use crate::resil::HedgePolicy;
    use crate::telemetry::SLO_AVAILABILITY;

    fn arrivals(rate: f64, n: usize, seed: u64) -> Vec<f64> {
        poisson_arrivals(&LoadConfig { rate_per_s: rate, requests: n, seed })
    }

    fn base_cfg(arrivals: Vec<f64>) -> SimConfig {
        SimConfig {
            policy: BatchPolicy::new(16, 0.002, 0.25),
            queue_capacity: 128,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals,
        }
    }

    #[test]
    fn deterministic_runs() {
        let cfg = base_cfg(arrivals(2000.0, 2000, 9));
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a, b, "same config must give identical reports");
    }

    #[test]
    fn light_load_completes_everything() {
        let cfg = base_cfg(arrivals(500.0, 1000, 1));
        let r = simulate(&cfg);
        assert_eq!(r.completed, 1000);
        assert_eq!(r.rejected + r.shed, 0);
        assert_eq!(r.admitted, 1000);
        assert!(r.throughput_rps > 0.0);
        assert_eq!(r.queue_wait.count, 1000);
        assert_eq!(r.e2e.count, 1000);
    }

    #[test]
    fn larger_batches_raise_saturated_throughput() {
        // Offer far more than batch-1 capacity: ~1/(base+per_row) ≈ 4.7k rps
        // per worker. Batching amortizes base_s and must push throughput up.
        let arr = arrivals(40_000.0, 8000, 2);
        let mut small = base_cfg(arr.clone());
        small.policy = BatchPolicy::new(1, 0.0, 0.05);
        let mut big = base_cfg(arr);
        big.policy = BatchPolicy::new(64, 0.002, 0.05);
        let rs = simulate(&small);
        let rb = simulate(&big);
        assert!(
            rb.throughput_rps > 2.0 * rs.throughput_rps,
            "batch-64 {:.0} rps should dwarf batch-1 {:.0} rps",
            rb.throughput_rps,
            rs.throughput_rps
        );
        assert!(rb.mean_batch > 8.0, "saturated batcher should coalesce, got {}", rb.mean_batch);
    }

    #[test]
    fn overload_rejects_and_bounds_latency() {
        // Offered load ~4x capacity: admission + deadlines must engage, and
        // the p99 of what *is* served stays bounded by queue+deadline math
        // instead of growing with the backlog.
        let cfg = SimConfig {
            policy: BatchPolicy::new(16, 0.002, 0.05),
            queue_capacity: 64,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals: arrivals(200_000.0, 20_000, 3),
        };
        let r = simulate(&cfg);
        assert!(r.rejected > 0, "bounded queue must reject under 4x overload");
        assert_eq!(r.offered, r.admitted + r.rejected);
        assert_eq!(r.admitted, r.completed + r.shed);
        // Served latency is bounded: deadline + one max service time, with
        // histogram quantile slack (~7.5% relative error).
        let bound = 1.2 * (cfg.policy.deadline_s + cfg.service.seconds(cfg.policy.max_batch));
        assert!(r.e2e.p99 < bound, "p99 {} exceeds bound {}", r.e2e.p99, bound);
    }

    #[test]
    fn tight_deadline_sheds_instead_of_serving_late() {
        // Deadline far below the full-queue drain time: the front-shed path
        // must engage, and nothing is ever dispatched past its deadline.
        let cfg = SimConfig {
            policy: BatchPolicy::new(1, 0.0, 0.005),
            queue_capacity: 256,
            workers: 2,
            service: ServiceModel::new(200e-6, 10e-6),
            arrivals: arrivals(40_000.0, 5000, 6),
        };
        let r = simulate(&cfg);
        assert!(r.shed > 0, "tight deadline must shed queued requests");
        assert_eq!(r.admitted, r.completed + r.shed);
        assert!(
            r.queue_wait.max <= cfg.policy.deadline_s,
            "served request waited {} past the {}s deadline",
            r.queue_wait.max,
            cfg.policy.deadline_s
        );
        assert!(r.e2e.p99 < 1.2 * (cfg.policy.deadline_s + cfg.service.seconds(1)));
    }

    #[test]
    fn conservation_always_holds() {
        for seed in 0..5u64 {
            let cfg = base_cfg(arrivals(6000.0, 3000, seed));
            let r = simulate(&cfg);
            assert_eq!(r.offered, r.admitted + r.rejected, "seed {seed}");
            assert_eq!(r.admitted, r.completed + r.shed, "seed {seed}");
            assert_eq!(r.queue_wait.count as usize, r.completed, "seed {seed}");
        }
    }

    fn chaos_cfg(arrivals: Vec<f64>) -> ChaosConfig {
        ChaosConfig {
            policy: BatchPolicy::new(16, 0.002, 0.25),
            queue_capacity: 256,
            replicas: 4,
            service: ServiceModel::new(2e-3, 0.5e-3),
            arrivals,
            resil: ResilPolicy::standard(),
            faults: FaultSpec { respawn_s: 0.25, seed: 11, ..FaultSpec::none() },
            crash_mtbf_s: 0.0,
            fallback: true,
        }
    }

    #[test]
    fn chaos_without_faults_completes_everything() {
        let r = simulate_chaos(&chaos_cfg(arrivals(800.0, 2000, 5)));
        assert_eq!(r.completed, 2000);
        assert_eq!(r.failed + r.shed + r.rejected, 0);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.retries + r.hedges, 0);
        assert_eq!(r.evictions, 0);
    }

    #[test]
    fn chaos_is_deterministic() {
        let mut cfg = chaos_cfg(arrivals(2000.0, 4000, 6));
        cfg.crash_mtbf_s = 1.0;
        cfg.faults.straggle_p = 0.02;
        cfg.faults.straggle_s = 0.08;
        cfg.faults.corrupt_p = 0.005;
        let a = simulate_chaos(&cfg);
        let b = simulate_chaos(&cfg);
        assert_eq!(a, b, "same config must give identical chaos reports");
        assert!(a.evictions > 0, "1s MTBF over a multi-second run must crash replicas");
        let mut other = cfg.clone();
        other.faults.seed = 12;
        assert_ne!(simulate_chaos(&other), a, "different seeds should differ");
    }

    #[test]
    fn chaos_conservation_holds_under_heavy_faults() {
        for seed in 0..4u64 {
            let mut cfg = chaos_cfg(arrivals(2500.0, 3000, seed));
            cfg.crash_mtbf_s = 0.5;
            cfg.faults.seed = seed;
            cfg.faults.corrupt_p = 0.01;
            cfg.faults.straggle_p = 0.05;
            cfg.faults.straggle_s = 0.05;
            let r = simulate_chaos(&cfg);
            assert_eq!(r.offered, r.admitted + r.rejected, "seed {seed}");
            assert_eq!(r.admitted, r.completed + r.failed + r.shed, "seed {seed}");
            assert_eq!(r.e2e.count as usize, r.completed, "seed {seed}");
            assert!((0.0..=1.0).contains(&r.availability), "seed {seed}");
        }
    }

    #[test]
    fn resilience_beats_the_no_retry_baseline_under_crashes() {
        let arr = arrivals(2000.0, 6000, 9);
        let mut baseline = chaos_cfg(arr.clone());
        baseline.crash_mtbf_s = 1.0;
        baseline.resil = ResilPolicy::disabled();
        let mut resil = chaos_cfg(arr);
        resil.crash_mtbf_s = 1.0;
        let rb = simulate_chaos(&baseline);
        let rr = simulate_chaos(&resil);
        assert!(
            rb.availability < 0.97,
            "no-retry baseline should bleed requests, got {}",
            rb.availability
        );
        assert!(
            rr.availability > rb.availability && rr.availability > 0.99,
            "resilience must recover availability: {} vs {}",
            rr.availability,
            rb.availability
        );
        assert!(rr.retries > 0, "recovery must come from actual retries");
    }

    #[test]
    fn hedging_cuts_straggler_tail_latency() {
        let arr = arrivals(1000.0, 4000, 10);
        let mut no_hedge = chaos_cfg(arr.clone());
        no_hedge.faults.straggle_p = 0.05;
        no_hedge.faults.straggle_s = 0.2;
        no_hedge.resil.hedge = HedgePolicy::disabled();
        let mut hedged = chaos_cfg(arr);
        hedged.faults.straggle_p = 0.05;
        hedged.faults.straggle_s = 0.2;
        hedged.resil.hedge = HedgePolicy::auto(1);
        let rn = simulate_chaos(&no_hedge);
        let rh = simulate_chaos(&hedged);
        assert!(rh.hedges > 0, "stragglers at 5% must trigger hedges");
        assert!(
            rh.e2e.p99 < 0.5 * rn.e2e.p99,
            "hedged p99 {} should cut unhedged p99 {}",
            rh.e2e.p99,
            rn.e2e.p99
        );
    }

    #[test]
    fn version_guard_falls_back_to_the_older_snapshot() {
        let arr = arrivals(1000.0, 3000, 13);
        let mut bad_version = chaos_cfg(arr.clone());
        bad_version.faults.corrupt_p = 0.8;
        bad_version.fallback = true;
        let with_fb = simulate_chaos(&bad_version);
        assert!(
            with_fb.degraded > with_fb.offered / 2,
            "an 80% corrupt current version must mostly serve degraded, got {}",
            with_fb.degraded
        );
        assert!(with_fb.availability > 0.9, "fallback rescues availability");

        let mut no_fb = bad_version.clone();
        no_fb.fallback = false;
        let without = simulate_chaos(&no_fb);
        assert!(
            without.availability < with_fb.availability,
            "no fallback must be strictly worse: {} vs {}",
            without.availability,
            with_fb.availability
        );
        assert_eq!(without.degraded, 0);
    }

    #[test]
    fn telemetry_observer_never_changes_the_chaos_report() {
        let mut cfg = chaos_cfg(arrivals(2000.0, 4000, 6));
        cfg.crash_mtbf_s = 1.0;
        cfg.faults.straggle_p = 0.02;
        cfg.faults.straggle_s = 0.08;
        cfg.faults.corrupt_p = 0.005;
        let plain = simulate_chaos(&cfg);
        let (observed, tel) =
            simulate_chaos_telemetry(&cfg, &TelemetryConfig::standard(cfg.policy.deadline_s), 0.0);
        assert_eq!(observed, plain, "telemetry must be observe-only");
        assert_eq!(tel.completed as usize, plain.completed);
        assert_eq!(tel.shed as usize, plain.shed);
        assert_eq!(tel.rejected as usize, plain.rejected);
        assert_eq!(tel.enqueued as usize, plain.offered - plain.rejected);
        assert!(tel.recorder_events > 0, "attempts must reach the flight recorder");
    }

    #[test]
    fn telemetry_twin_is_deterministic() {
        let mut cfg = chaos_cfg(arrivals(2000.0, 4000, 7));
        cfg.crash_mtbf_s = 0.5;
        cfg.faults.corrupt_p = 0.01;
        let tcfg = TelemetryConfig::standard(cfg.policy.deadline_s).with_windows(0.2, 0.8);
        let a = simulate_chaos_telemetry(&cfg, &tcfg, 0.5);
        let b = simulate_chaos_telemetry(&cfg, &tcfg, 0.5);
        assert_eq!(a, b, "same config must give identical telemetry");
    }

    #[test]
    fn onset_shifts_scheduled_crashes_past_the_steady_segment() {
        let mut cfg = chaos_cfg(arrivals(2000.0, 6000, 8));
        cfg.crash_mtbf_s = 0.05;
        let onset = 1.0;
        let tcfg = TelemetryConfig::standard(cfg.policy.deadline_s);
        let (report, tel) = simulate_chaos_telemetry(&cfg, &tcfg, onset);
        assert!(report.evictions > 0, "a 50 ms MTBF past onset must crash replicas");
        let first_crash = tel
            .dumps
            .first()
            .map(|d| d.at_s)
            .unwrap_or(f64::INFINITY)
            .min(tel.first_fired_at(SLO_AVAILABILITY).unwrap_or(f64::INFINITY));
        assert!(
            first_crash >= onset,
            "nothing chaotic may happen before the onset: first at {first_crash}"
        );
    }

    #[test]
    fn zero_wait_policy_serves_singletons_at_light_load() {
        let mut cfg = base_cfg(arrivals(100.0, 200, 4));
        cfg.policy = BatchPolicy::new(64, 0.0, 0.25);
        let r = simulate(&cfg);
        // At 100 rps with ~0.2 ms service, requests rarely overlap: almost
        // every batch is a singleton dispatched immediately.
        assert!(r.mean_batch < 1.5, "mean batch {}", r.mean_batch);
        assert_eq!(r.completed, 200);
    }
}
