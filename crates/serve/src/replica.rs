//! Replica health, deterministic fault injection, and version guarding.
//!
//! Three pieces, shared by the threaded server and the chaos simulator:
//!
//! * [`ReplicaSetState`] — what the balancer *believes* about its N
//!   replicas: up/down, per-replica [`CircuitBreaker`]s, round-robin pick
//!   with avoidance, eviction/respawn bookkeeping. Purely clock-driven, so
//!   it runs on wall time and virtual time alike.
//! * [`FaultSpec`] / [`FaultPlan`] — the *physical* truth: a seeded,
//!   fully deterministic fault injector. Crashes arrive either on a
//!   precomputed schedule (drawn from the dd-hpcsim MTBF model — the same
//!   exponential machinery E11 sweeps for training) or per-dispatch with a
//!   fixed probability; stragglers and corrupt outputs are per-attempt
//!   draws from per-replica [`Rng64`] streams. Given a spec and a seed,
//!   every engine observes the identical fault sequence.
//! * [`VersionGuard`] — a per-model-version breaker: when the current
//!   version keeps producing corrupt outputs its breaker opens and the
//!   dispatcher falls back to the previous registry snapshot (degraded
//!   mode) instead of failing requests.

use crate::resil::{BreakerPolicy, BreakerState, CircuitBreaker};
use dd_tensor::Rng64;
use std::collections::BTreeMap;

/// The balancer's view of one replica pool.
#[derive(Debug, Clone)]
pub struct ReplicaSetState {
    respawn_s: f64,
    rr: usize,
    active: usize,
    up: Vec<bool>,
    down_until: Vec<f64>,
    busy_until: Vec<f64>,
    breakers: Vec<CircuitBreaker>,
    evictions: u64,
    respawns: u64,
    breaker_opens: u64,
}

impl ReplicaSetState {
    /// A pool of `replicas` healthy replicas. `respawn_s` is the believed
    /// out-of-rotation time after an eviction (detection + restart).
    pub fn new(replicas: usize, breaker: BreakerPolicy, respawn_s: f64) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        assert!(respawn_s >= 0.0 && respawn_s.is_finite(), "respawn_s must be >= 0");
        ReplicaSetState {
            respawn_s,
            rr: 0,
            active: replicas,
            up: vec![true; replicas],
            down_until: vec![0.0; replicas],
            busy_until: vec![0.0; replicas],
            breakers: vec![CircuitBreaker::new(breaker); replicas],
            evictions: 0,
            respawns: 0,
            breaker_opens: 0,
        }
    }

    /// Pool size (provisioned replicas, the autoscaler's `max`).
    pub fn len(&self) -> usize {
        self.up.len()
    }

    /// Replicas currently activated for traffic (autoscaler-controlled;
    /// defaults to the full pool).
    pub fn active(&self) -> usize {
        self.active
    }

    /// Activate exactly the first `n` replicas. The pool is pre-allocated
    /// at its maximum size, so scaling is a bound change, not an
    /// allocation; deactivated replicas keep their breaker and health
    /// state for when they return. Clamped to `1..=len`.
    pub fn set_active(&mut self, n: usize) {
        self.active = n.clamp(1, self.up.len());
    }

    /// `true` when the pool is empty (never: construction requires >= 1).
    pub fn is_empty(&self) -> bool {
        self.up.is_empty()
    }

    /// Return evicted replicas whose respawn window has passed to rotation.
    pub fn refresh(&mut self, now_s: f64) {
        for r in 0..self.up.len() {
            if !self.up[r] && self.down_until[r] <= now_s {
                self.up[r] = true;
                self.respawns += 1;
            }
        }
    }

    /// Evict `r` from rotation until `now_s + respawn_s` (health-check
    /// path: an attempt observed the crash).
    pub fn mark_down(&mut self, r: usize, now_s: f64) {
        if self.up[r] {
            self.up[r] = false;
            self.down_until[r] = now_s + self.respawn_s;
            self.evictions += 1;
        }
    }

    /// Whether `r` is activated, in rotation, and its breaker passes
    /// traffic.
    pub fn available(&self, r: usize, now_s: f64) -> bool {
        r < self.active && self.up[r] && self.breakers[r].allow(now_s)
    }

    /// Earliest time `r` is believed back in rotation (`now_s` if up).
    pub fn next_up_s(&self, r: usize, now_s: f64) -> f64 {
        if self.up[r] {
            now_s
        } else {
            self.down_until[r].max(now_s)
        }
    }

    /// Report that `r` is occupied until `until_s` (virtual-time engines
    /// only: the sim tells the balancer which replicas are mid-batch so
    /// selection prefers idle ones; the threaded server runs attempts on
    /// the calling worker and never reports busyness).
    pub fn note_busy_until(&mut self, r: usize, until_s: f64) {
        self.busy_until[r] = self.busy_until[r].max(until_s);
    }

    /// Round-robin pick over available replicas, preferring one that is
    /// idle and different from `avoid` (the replica a retry or hedge just
    /// gave up on). Falls back to an idle `avoid`, then to the
    /// earliest-free busy replica; `None` when nothing is available.
    /// Deterministic: the cursor advances past the choice.
    pub fn pick(&mut self, now_s: f64, avoid: Option<usize>) -> Option<usize> {
        let n = self.up.len();
        let mut idle_avoid = None;
        let mut busy_best: Option<usize> = None;
        for i in 0..n {
            let r = (self.rr + i) % n;
            if !self.available(r, now_s) {
                continue;
            }
            if self.busy_until[r] > now_s {
                let better = match busy_best {
                    None => true,
                    Some(b) => self.busy_until[r] < self.busy_until[b],
                };
                if better {
                    busy_best = Some(r);
                }
                continue;
            }
            if avoid == Some(r) {
                idle_avoid = Some(r);
                continue;
            }
            self.rr = (r + 1) % n;
            return Some(r);
        }
        let choice = idle_avoid.or(busy_best);
        if let Some(r) = choice {
            self.rr = (r + 1) % n;
        }
        choice
    }

    /// Feed a success into `r`'s breaker.
    pub fn on_success(&mut self, r: usize, now_s: f64) {
        self.breakers[r].on_success(now_s);
    }

    /// Feed a failure into `r`'s breaker.
    pub fn on_failure(&mut self, r: usize, now_s: f64) {
        if self.breakers[r].on_failure(now_s) {
            self.breaker_opens += 1;
        }
    }

    /// Breaker state of `r` as of `now_s`.
    pub fn breaker_state(&self, r: usize, now_s: f64) -> BreakerState {
        self.breakers[r].state(now_s)
    }

    /// Number of active replicas whose breaker is open at `now_s` (gauge
    /// feed).
    pub fn open_breakers(&self, now_s: f64) -> usize {
        (0..self.active).filter(|&r| self.breaker_state(r, now_s) == BreakerState::Open).count()
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Respawns so far.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Breaker trips so far.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_opens
    }
}

/// Deterministic fault-injection knobs for one chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-attempt crash probability in `[0, 1]` (the count-based mode the
    /// threaded tests use; `0` disables). Schedule-based crashes come from
    /// [`FaultPlan::with_crash_schedule`] instead.
    pub crash_per_dispatch: f64,
    /// Per-attempt straggler probability in `[0, 1]`.
    pub straggle_p: f64,
    /// Mean injected straggler delay, seconds (each draw is
    /// `straggle_s · (0.5 + u)`, so delays span 0.5–1.5× the mean).
    pub straggle_s: f64,
    /// Per-attempt corrupt-output probability in `[0, 1]`.
    pub corrupt_p: f64,
    /// Physical out-of-service time after a crash, seconds.
    pub respawn_s: f64,
    /// Root seed for the per-replica draw streams.
    pub seed: u64,
}

impl FaultSpec {
    /// No faults at all (probabilities zero, a token respawn window).
    pub fn none() -> Self {
        FaultSpec {
            crash_per_dispatch: 0.0,
            straggle_p: 0.0,
            straggle_s: 0.0,
            corrupt_p: 0.0,
            respawn_s: 0.05,
            seed: 0,
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("crash_per_dispatch", self.crash_per_dispatch),
            ("straggle_p", self.straggle_p),
            ("corrupt_p", self.corrupt_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability, got {p}");
        }
        assert!(self.straggle_s >= 0.0 && self.straggle_s.is_finite(), "bad straggle_s");
        assert!(self.respawn_s >= 0.0 && self.respawn_s.is_finite(), "bad respawn_s");
    }
}

/// What the injector decided for one attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injected {
    /// No fault: the attempt runs normally.
    None,
    /// The replica is (or goes) down `after_s` seconds into the attempt.
    Crash {
        /// Seconds into the attempt the crash bites (0 = already dead).
        after_s: f64,
    },
    /// The attempt completes but takes `delay_s` extra seconds.
    Straggle {
        /// Injected extra latency, seconds.
        delay_s: f64,
    },
    /// The attempt completes with a corrupt (non-finite) output.
    Corrupt,
}

/// Seeded deterministic fault injector — the physical truth of the pool.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    rngs: Vec<Rng64>,
    schedule: Vec<Vec<f64>>,
    cursor: Vec<usize>,
    phys_down_until: Vec<f64>,
}

impl FaultPlan {
    /// Injector for `replicas` replicas with per-dispatch (count-based)
    /// crashes only.
    pub fn new(spec: FaultSpec, replicas: usize) -> Self {
        Self::with_crash_schedule(spec, vec![Vec::new(); replicas])
    }

    /// Injector whose crashes follow precomputed absolute arrival times per
    /// replica — e.g. `dd_hpcsim::FailureModel::new(mtbf).arrivals(horizon,
    /// seed + r)`, reusing the E11 MTBF model for replica failures. Arrival
    /// times falling inside a down window are skipped (a dead replica
    /// cannot die again).
    pub fn with_crash_schedule(spec: FaultSpec, schedule: Vec<Vec<f64>>) -> Self {
        spec.validate();
        assert!(!schedule.is_empty(), "need at least one replica");
        let n = schedule.len();
        let root = Rng64::new(spec.seed);
        let rngs = (0..n).map(|r| root.split(r as u64)).collect();
        FaultPlan { spec, rngs, schedule, cursor: vec![0; n], phys_down_until: vec![0.0; n] }
    }

    /// Pool size.
    pub fn replicas(&self) -> usize {
        self.schedule.len()
    }

    /// Whether replica `r` is physically down at `at_s`.
    pub fn is_down(&self, r: usize, at_s: f64) -> bool {
        at_s < self.phys_down_until[r]
    }

    /// Decide the fate of one attempt on replica `r` starting at `at_s`
    /// and expected to run `service_s` seconds. Draw order is fixed
    /// (crash, straggle, corrupt) so the per-replica streams are
    /// reproducible regardless of outcomes.
    pub fn inject(&mut self, r: usize, at_s: f64, service_s: f64) -> Injected {
        // 1. Already inside a down window: the attempt fails instantly.
        if at_s < self.phys_down_until[r] {
            return Injected::Crash { after_s: 0.0 };
        }
        // 2. Schedule-based crashes. Skip arrivals that fell inside past
        //    down windows, then check whether one lands before this
        //    attempt finishes.
        while self.cursor[r] < self.schedule[r].len()
            && self.schedule[r][self.cursor[r]] < self.phys_down_until[r]
        {
            self.cursor[r] += 1;
        }
        if let Some(&c) = self.schedule[r].get(self.cursor[r]) {
            if c <= at_s + service_s {
                self.cursor[r] += 1;
                self.phys_down_until[r] = c.max(at_s) + self.spec.respawn_s;
                return Injected::Crash { after_s: (c - at_s).max(0.0) };
            }
        }
        // 3. Count-based crashes.
        if self.spec.crash_per_dispatch > 0.0
            && self.rngs[r].uniform() < self.spec.crash_per_dispatch
        {
            self.phys_down_until[r] = at_s + self.spec.respawn_s;
            return Injected::Crash { after_s: 0.0 };
        }
        // 4. Stragglers.
        if self.spec.straggle_p > 0.0 && self.rngs[r].uniform() < self.spec.straggle_p {
            let delay_s = self.spec.straggle_s * (0.5 + self.rngs[r].uniform());
            return Injected::Straggle { delay_s };
        }
        // 5. Corrupt outputs.
        if self.spec.corrupt_p > 0.0 && self.rngs[r].uniform() < self.spec.corrupt_p {
            return Injected::Corrupt;
        }
        Injected::None
    }
}

/// Per-model-version circuit breakers driving degraded-mode fallback.
///
/// Corrupt outputs are attributed to the snapshot *version* that produced
/// them; when a version's breaker opens, [`VersionGuard::allow`] denies it
/// and the dispatcher routes to the previous registry snapshot instead
/// ([`crate::registry::ModelRegistry::previous`]). Old entries are pruned
/// so a long-lived server does not accumulate breakers.
#[derive(Debug, Clone)]
pub struct VersionGuard {
    policy: BreakerPolicy,
    breakers: BTreeMap<u64, CircuitBreaker>,
}

/// Versions retained per guard; hot-swap churn beyond this is pruned.
const GUARD_CAPACITY: usize = 8;

impl VersionGuard {
    /// A guard whose per-version breakers use `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        VersionGuard { policy, breakers: BTreeMap::new() }
    }

    fn breaker(&mut self, version: u64) -> &mut CircuitBreaker {
        if !self.breakers.contains_key(&version) {
            while self.breakers.len() >= GUARD_CAPACITY {
                let Some((&oldest, _)) = self.breakers.iter().next() else { break };
                self.breakers.remove(&oldest);
            }
            self.breakers.insert(version, CircuitBreaker::new(self.policy));
        }
        // The entry was just ensured above.
        let Some(b) = self.breakers.get_mut(&version) else {
            unreachable!("breaker inserted above")
        };
        b
    }

    /// Whether `version` may serve traffic at `now_s`.
    pub fn allow(&mut self, version: u64, now_s: f64) -> bool {
        self.breaker(version).allow(now_s)
    }

    /// Breaker state of `version` at `now_s`.
    pub fn state(&mut self, version: u64, now_s: f64) -> BreakerState {
        self.breaker(version).state(now_s)
    }

    /// Attribute a corrupt output to `version`.
    pub fn record_failure(&mut self, version: u64, now_s: f64) {
        self.breaker(version).on_failure(now_s);
    }

    /// Attribute a valid answer to `version`.
    pub fn record_success(&mut self, version: u64, now_s: f64) {
        self.breaker(version).on_success(now_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize) -> ReplicaSetState {
        ReplicaSetState::new(n, BreakerPolicy::new(2, 0.5, 1), 0.25)
    }

    #[test]
    fn pick_round_robins_and_avoids() {
        let mut s = set(3);
        assert_eq!(s.pick(0.0, None), Some(0));
        assert_eq!(s.pick(0.0, None), Some(1));
        assert_eq!(s.pick(0.0, None), Some(2));
        assert_eq!(s.pick(0.0, None), Some(0));
        // Cursor sits at 1; avoiding 1 must skip to 2.
        assert_eq!(s.pick(0.0, Some(1)), Some(2));
    }

    #[test]
    fn eviction_respawn_cycle_counts() {
        let mut s = set(2);
        s.mark_down(0, 0.0);
        s.mark_down(0, 0.01); // idempotent while down
        assert_eq!(s.evictions(), 1);
        assert!(!s.available(0, 0.1));
        assert_eq!(s.pick(0.1, None), Some(1));
        assert_eq!(s.next_up_s(0, 0.1), 0.25);
        s.refresh(0.3);
        assert!(s.available(0, 0.3));
        assert_eq!(s.respawns(), 1);
    }

    #[test]
    fn set_active_bounds_rotation() {
        let mut s = set(3);
        assert_eq!(s.active(), 3);
        s.set_active(1);
        // Only replica 0 is pickable now; the cursor keeps cycling on it.
        assert_eq!(s.pick(0.0, None), Some(0));
        assert_eq!(s.pick(0.0, None), Some(0));
        assert!(!s.available(2, 0.0));
        // Reactivation restores the full rotation and preserved state.
        s.set_active(3);
        assert_eq!(s.pick(0.0, None), Some(1));
        assert_eq!(s.pick(0.0, None), Some(2));
        // Clamped: the pool can never go dark or past its allocation.
        s.set_active(0);
        assert_eq!(s.active(), 1);
        s.set_active(99);
        assert_eq!(s.active(), 3);
    }

    #[test]
    fn avoid_is_used_as_a_last_resort() {
        let mut s = set(2);
        s.mark_down(1, 0.0);
        assert_eq!(s.pick(0.0, Some(0)), Some(0), "only replica left wins despite avoid");
        s.mark_down(0, 0.0);
        assert_eq!(s.pick(0.0, None), None, "everything down");
    }

    #[test]
    fn open_breaker_removes_a_replica_from_rotation() {
        let mut s = set(2);
        s.on_failure(0, 0.0);
        s.on_failure(0, 0.0);
        assert_eq!(s.breaker_state(0, 0.0), BreakerState::Open);
        assert_eq!(s.breaker_opens(), 1);
        assert_eq!(s.open_breakers(0.0), 1);
        assert!(!s.available(0, 0.1));
        assert_eq!(s.pick(0.1, None), Some(1));
        // Past open_s the breaker probes and the replica is pickable again.
        assert!(s.available(0, 0.6));
    }

    #[test]
    fn fault_plan_is_deterministic_per_seed() {
        let spec = FaultSpec {
            crash_per_dispatch: 0.1,
            straggle_p: 0.2,
            straggle_s: 0.01,
            corrupt_p: 0.1,
            respawn_s: 0.1,
            seed: 42,
        };
        let mut a = FaultPlan::new(spec, 2);
        let mut b = FaultPlan::new(spec, 2);
        let seq_a: Vec<Injected> =
            (0..200).map(|i| a.inject(i % 2, i as f64 * 1e-3, 1e-4)).collect();
        let seq_b: Vec<Injected> =
            (0..200).map(|i| b.inject(i % 2, i as f64 * 1e-3, 1e-4)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|i| matches!(i, Injected::Crash { .. })));
        assert!(seq_a.iter().any(|i| matches!(i, Injected::Straggle { .. })));
        let mut c = FaultPlan::new(FaultSpec { seed: 43, ..spec }, 2);
        let seq_c: Vec<Injected> =
            (0..200).map(|i| c.inject(i % 2, i as f64 * 1e-3, 1e-4)).collect();
        assert_ne!(seq_a, seq_c, "different seeds should inject differently");
    }

    #[test]
    fn scheduled_crash_bites_mid_attempt_and_respawns() {
        let spec = FaultSpec { respawn_s: 0.5, ..FaultSpec::none() };
        let mut p = FaultPlan::with_crash_schedule(spec, vec![vec![1.0, 1.2, 3.0]]);
        // Attempt spanning the 1.0s arrival crashes 0.4s in.
        assert_eq!(p.inject(0, 0.6, 0.5), Injected::Crash { after_s: 0.4 });
        assert!(p.is_down(0, 1.2));
        // Still down: instant failure; the 1.2s arrival inside the down
        // window is swallowed.
        assert_eq!(p.inject(0, 1.3, 0.1), Injected::Crash { after_s: 0.0 });
        // Back up at 1.5; clean until the 3.0s arrival.
        assert_eq!(p.inject(0, 1.6, 0.1), Injected::None);
        let Injected::Crash { after_s } = p.inject(0, 2.95, 0.1) else {
            panic!("3.0s arrival must bite");
        };
        assert!((after_s - 0.05).abs() < 1e-12, "crash 0.05s into the attempt, got {after_s}");
    }

    #[test]
    fn no_fault_spec_injects_nothing() {
        let mut p = FaultPlan::new(FaultSpec::none(), 3);
        for i in 0..100 {
            assert_eq!(p.inject(i % 3, i as f64, 1e-3), Injected::None);
        }
    }

    #[test]
    fn version_guard_opens_per_version_and_prunes() {
        let mut g = VersionGuard::new(BreakerPolicy::new(2, 1.0, 1));
        assert!(g.allow(7, 0.0));
        g.record_failure(7, 0.0);
        g.record_failure(7, 0.1);
        assert!(!g.allow(7, 0.2), "version 7 breaker must be open");
        assert!(g.allow(6, 0.2), "older version keeps its own breaker");
        g.record_success(6, 0.2);
        assert_eq!(g.state(6, 0.3), BreakerState::Closed);
        // Churn far past capacity: the guard must stay bounded and keep
        // answering.
        for v in 100..200 {
            g.record_failure(v, 1.0);
        }
        assert!(g.allow(199, 1.0));
    }
}
